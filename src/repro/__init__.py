"""repro: a full reproduction of ANVIL (Aweke et al., ASPLOS 2016) --
software-based protection against next-generation rowhammer attacks -- on a
simulated Sandy Bridge-class machine.

Quick start::

    from repro import paper_machine, AnvilModule, ClflushFreeAttack

    machine = paper_machine()
    anvil = AnvilModule(machine)
    anvil.install()
    attack = ClflushFreeAttack()
    result = attack.run(machine, max_ms=100, stop_on_flip=False)
    print(result.flips, anvil.report())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .core import AnvilConfig, AnvilModule
from .attacks import (
    AttackResult,
    ClflushFreeAttack,
    DoubleSidedClflushAttack,
    SingleSidedClflushAttack,
)
from .presets import paper_machine, small_machine
from .sim import Machine, MachineConfig

__version__ = "1.0.0"

__all__ = [
    "AnvilConfig",
    "AnvilModule",
    "AttackResult",
    "ClflushFreeAttack",
    "DoubleSidedClflushAttack",
    "Machine",
    "MachineConfig",
    "SingleSidedClflushAttack",
    "__version__",
    "paper_machine",
    "small_machine",
]
