"""Command-line interface: ``python -m repro <command>``.

Commands map onto the library's headline capabilities:

- ``attack`` — run one of the Table 1 attacks (optionally under ANVIL,
  a refresh-rate mitigation, or with CLFLUSH/pagemap restricted);
- ``defense-grid`` — the mitigation x attack matrix;
- ``spec-overhead`` — the Figure 3/Table 4 epoch study;
- ``probe-policy`` — reverse-engineer the LLC replacement policy;
- ``cache`` — scrub (``verify``, exits nonzero when corruption is found)
  or empty (``clear``) the sweep result cache; corrupt entries are
  quarantined so they never poison a sweep;
- ``lint`` — the determinism & engine-equivalence static-analysis suite
  (exits nonzero on any non-baselined finding, mirroring ``cache
  verify``; see :mod:`repro.analysis.lint`);
- ``worker`` — fleet capacity for the TCP backend: ``worker serve`` runs
  one worker in the foreground; ``worker pool --workers N`` runs a
  self-healing :class:`~repro.runner.WorkerSupervisor` that spawns N
  workers and restarts crashed ones (seeded backoff, restart budgets);
- ``info`` — the simulated machine's configuration.

Every sweep-running command (``defense-grid``, ``spec-overhead``) takes
the same execution flags — ``--jobs``, ``--backend``, ``--workers``,
``--seed``, ``--fail-policy``, ``--cell-timeout``, ``--retries``,
``--heartbeat``, ``--checkpoint``, ``--lease-ttl`` — from
one shared parent parser, mirroring the ``REPRO_JOBS`` / ``REPRO_BACKEND``
/ ``REPRO_WORKERS`` environment knobs.

The CLI runs everything at the scaled demo size so each command finishes
in seconds-to-a-minute; the benchmark harness covers paper scale.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis import format_table
from .analysis.lint import cli as lint_cli
from .attacks import (
    ClflushFreeAttack,
    DoubleSidedClflushAttack,
    SingleSidedClflushAttack,
    build_eviction_set,
    identify_replacement_policy,
)
from .core import AnvilConfig, AnvilModule
from .errors import ReproError
from .presets import small_machine
from .runner import (
    BACKENDS,
    FAILURE_POLICIES,
    Job,
    ResultCache,
    RetryPolicy,
    SweepRunner,
    derive_seed,
    serve_worker,
)
from .sim.epoch import double_refresh_normalized_time, run_epoch_cell
from .units import MB
from .workloads import SPEC2006_INT, spec_profile

ATTACKS = {
    "single-sided": SingleSidedClflushAttack,
    "double-sided": DoubleSidedClflushAttack,
    "clflush-free": ClflushFreeAttack,
}

DEMO_ANVIL = AnvilConfig(
    llc_miss_threshold=3_300, tc_ms=1.0, ts_ms=1.0,
    sampling_rate_hz=50_000, assumed_flip_accesses=30_000,
)


def _sweep_parent() -> argparse.ArgumentParser:
    """The shared execution flags of every sweep-running subcommand.

    One parent parser keeps ``defense-grid``/``spec-overhead`` (and any
    future sweep command) flag-compatible with each other and with the
    ``REPRO_JOBS``/``REPRO_BACKEND``/``REPRO_WORKERS`` environment knobs.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("sweep execution")
    group.add_argument("--jobs", type=int, default=None,
                       help="worker processes for the sweep (0 = one per "
                            "CPU; default: $REPRO_JOBS or serial)")
    group.add_argument("--backend", choices=BACKENDS, default=None,
                       help="executor backend: serial, process, or tcp "
                            "(default: $REPRO_BACKEND, else process when "
                            "--jobs > 1)")
    group.add_argument("--workers", default=None, metavar="HOST:PORT[,...]",
                       help="tcp fleet worker addresses "
                            "(default: $REPRO_WORKERS)")
    group.add_argument("--seed", type=int, default=0,
                       help="root seed; per-cell seeds derive from it")
    group.add_argument("--fail-policy", choices=FAILURE_POLICIES,
                       default="strict",
                       help="strict: raise on any failed cell; degrade: "
                            "report partial results + failure manifest")
    group.add_argument("--cell-timeout", type=float, default=None,
                       metavar="S",
                       help="per-attempt wall-clock budget per cell "
                            "(enforced on preemptible backends)")
    group.add_argument("--retries", type=int, default=2,
                       help="retries per failed cell before it is "
                            "recorded as a failure (default 2)")
    group.add_argument("--heartbeat", type=float, default=None, metavar="S",
                       help="tcp fleet liveness heartbeat interval: hung "
                            "workers are retired after 2x this and "
                            "restarted workers re-admitted mid-sweep")
    group.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="journal completed cells to PATH so an "
                            "interrupted sweep resumes where it stopped")
    group.add_argument("--lease-ttl", type=float, default=None, metavar="S",
                       help="cooperative mode (requires --checkpoint): "
                            "claim cells via journal leases of this TTL so "
                            "several runner processes share one sweep")
    return parent


def _run_worker_pool(args: argparse.Namespace) -> int:
    """``worker pool``: supervise a self-healing local worker fleet."""
    import json
    import os

    from .runner import WorkerSupervisor

    def emit(event: str, slot: int, detail: str) -> None:
        print(json.dumps(
            {"op": "pool-event", "event": event, "slot": slot,
             "detail": detail}, sort_keys=True), flush=True)

    supervisor = WorkerSupervisor(
        workers=args.pool_workers, host=args.host,
        max_restarts=args.max_restarts, seed=args.seed,
        on_event=emit,
    )
    try:
        addresses = supervisor.start()
    except OSError as exc:
        print(f"error: worker pool failed to start: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(
        {"op": "pool", "pid": os.getpid(), "workers": addresses},
        sort_keys=True), flush=True)
    try:
        supervisor.run()
    except KeyboardInterrupt:
        pass
    finally:
        supervisor.stop()
    return 0


def _sweep_runner(args: argparse.Namespace) -> SweepRunner:
    """A :class:`SweepRunner` wired from the shared sweep flags."""
    return SweepRunner(
        jobs=args.jobs, root_seed=args.seed, policy=args.fail_policy,
        backend=args.backend, workers=args.workers,
        retry=RetryPolicy(max_attempts=args.retries + 1,
                          timeout_s=args.cell_timeout),
        heartbeat_s=args.heartbeat, checkpoint=args.checkpoint,
        lease_ttl=args.lease_ttl,
    )


def _print_sweep_failures(runner: SweepRunner, policy: str) -> None:
    print(f"\n{len(runner.last_failures)} cell(s) failed "
          f"(policy={policy}):", file=sys.stderr)
    for failure in runner.last_failures:
        print(f"  {failure.key}: {failure.error_type}: {failure.error}",
              file=sys.stderr)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ANVIL (ASPLOS 2016) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sweep_parent = _sweep_parent()

    attack = sub.add_parser("attack", help="run a rowhammer attack")
    attack.add_argument("--type", choices=sorted(ATTACKS), default="double-sided")
    attack.add_argument("--ms", type=float, default=30.0,
                        help="machine-time budget in milliseconds")
    attack.add_argument("--threshold", type=int, default=30_000,
                        help="weakest-cell flip threshold (disturbance units)")
    attack.add_argument("--anvil", action="store_true",
                        help="install ANVIL before attacking")
    attack.add_argument("--refresh-scale", type=float, default=1.0)
    attack.add_argument("--no-clflush", action="store_true",
                        help="ban the CLFLUSH instruction")
    attack.add_argument("--seed", type=int, default=0)

    sub.add_parser("defense-grid", help="mitigation x attack matrix",
                   parents=[sweep_parent])

    overhead = sub.add_parser("spec-overhead", help="Figure 3 / Table 4 study",
                              parents=[sweep_parent])
    overhead.add_argument("--seconds", type=float, default=20.0)

    cache = sub.add_parser(
        "cache", help="scrub or clear the sweep result cache")
    cache.add_argument("action", choices=("verify", "clear"),
                       help="verify: checksum-scrub every entry and "
                            "quarantine corrupt ones; clear: delete all")
    cache.add_argument("--dir", default="benchmarks/results/.cache",
                       help="cache directory (default: the bench harness "
                            "cache, benchmarks/results/.cache)")
    cache.add_argument("--no-repair", action="store_true",
                       help="report corrupt entries without quarantining")

    lint = sub.add_parser(
        "lint",
        help="determinism & engine-equivalence static analysis (CI gate)")
    lint_cli.add_arguments(lint)

    probe = sub.add_parser("probe-policy",
                           help="reverse-engineer the LLC replacement policy")
    probe.add_argument("--rounds", type=int, default=30)

    worker = sub.add_parser(
        "worker", help="serve sweep cells over TCP (fleet backend)")
    worker.add_argument("action", choices=("serve", "pool"),
                        help="serve: accept cells from TcpFleetBackend "
                             "runners until interrupted; pool: supervise "
                             "N local workers, restarting crashed ones")
    worker.add_argument("--listen", default="127.0.0.1:0",
                        metavar="HOST:PORT",
                        help="serve: bind address; port 0 picks a free "
                             "port, announced as a JSON line on stdout "
                             "(default 127.0.0.1:0)")
    worker.add_argument("--workers", dest="pool_workers", type=int, default=2,
                        help="pool: supervised worker count (default 2)")
    worker.add_argument("--host", default="127.0.0.1",
                        help="pool: bind host for the workers "
                             "(default 127.0.0.1)")
    worker.add_argument("--max-restarts", type=int, default=5,
                        help="pool: per-worker restart budget before the "
                             "slot is retired (default 5)")
    worker.add_argument("--seed", type=int, default=0,
                        help="pool: seed for the deterministic restart-"
                             "backoff jitter")

    sub.add_parser("info", help="print the simulated machine configuration")
    return parser


# -- commands -------------------------------------------------------------------------


def _cmd_attack(args: argparse.Namespace) -> int:
    machine = small_machine(
        threshold_min=args.threshold,
        refresh_scale=args.refresh_scale,
        clflush_allowed=not args.no_clflush,
        seed=args.seed,
    )
    anvil = None
    if args.anvil:
        anvil = AnvilModule(machine, DEMO_ANVIL)
        anvil.install()
    attack = ATTACKS[args.type](buffer_bytes=16 * MB, seed=args.seed)
    result = attack.run(machine, max_ms=args.ms, stop_on_flip=anvil is None)
    print(f"attack          : {result.name}")
    print(f"machine time    : {result.elapsed_ms:.2f} ms")
    print(f"iterations      : {result.iterations:,}")
    print(f"bit flips       : {result.flips}")
    if result.time_to_first_flip_ms is not None:
        print(f"first flip      : {result.time_to_first_flip_ms:.2f} ms "
              f"after {result.min_row_accesses:,} row accesses")
    if anvil is not None:
        report = anvil.report()
        print(f"ANVIL detections: {report.detections} "
              f"(first at {report.first_detection_ms} ms, "
              f"{report.selective_refreshes} refreshes)")
    return 0 if (result.flips == 0) == bool(args.anvil) else 1


#: The defense-grid axes (module-level so grid cells are pool/fleet-importable).
GRID_DEFENSES = ("none", "double-refresh", "clflush-ban", "pagemap-restricted",
                 "para", "trr", "armor", "anvil")
GRID_ATTACKS = (("double-sided", "CLFLUSH double-sided"),
                ("clflush-free", "CLFLUSH-free"))


def run_defense_grid_cell(defense: str, attack: str) -> str:
    """One (defense x attack) matrix cell; the grid sweep's job body.

    Module-level and addressed by ``ATTACKS`` key so the cell is
    importable by process-pool and TCP fleet workers.  The demo machine
    is fully deterministic at these settings — no seed is taken, so the
    sweep runs the cell with ``pass_seed=False``.
    """
    from .defenses import Armor, Para, TargetedRowRefresh
    from .errors import ClflushRestrictedError, PagemapRestrictedError

    kwargs = {"threshold_min": 30_000}
    if defense == "double-refresh":
        kwargs["refresh_scale"] = 2.0
    elif defense == "clflush-ban":
        kwargs["clflush_allowed"] = False
    elif defense == "pagemap-restricted":
        kwargs["pagemap_restricted"] = True
    machine = small_machine(**kwargs)
    if defense == "para":
        Para(probability=0.002).install(machine)
    elif defense == "trr":
        TargetedRowRefresh(activation_threshold=1_000).install(machine)
    elif defense == "armor":
        Armor(hot_threshold=1_000).install(machine)
    anvil = None
    if defense == "anvil":
        anvil = AnvilModule(machine, DEMO_ANVIL)
        anvil.install()
    attack_obj = ATTACKS[attack](buffer_bytes=16 * MB)
    try:
        result = attack_obj.run(machine, max_ms=20, stop_on_flip=anvil is None)
    except (ClflushRestrictedError, PagemapRestrictedError):
        return "blocked"
    return "FLIPS" if result.flips else "protected"


def _cmd_defense_grid(args: argparse.Namespace) -> int:
    cells = [
        Job.of(
            run_defense_grid_cell,
            key=f"defense-grid/{defense}/{attack}",
            pass_seed=False,
            defense=defense,
            attack=attack,
        )
        for defense in GRID_DEFENSES
        for attack, _label in GRID_ATTACKS
    ]
    runner = _sweep_runner(args)
    by_key = {r.key: r for r in runner.run(cells)}

    def shown(defense: str, attack: str) -> str:
        result = by_key.get(f"defense-grid/{defense}/{attack}")
        if result is None or not result.ok:
            return "FAILED"
        return result.value

    rows = [
        [d] + [shown(d, attack) for attack, _label in GRID_ATTACKS]
        for d in GRID_DEFENSES
    ]
    print(format_table(
        ["defense"] + [label for _attack, label in GRID_ATTACKS],
        rows,
        title="defense grid (demo machine, 30K-unit weak cells)",
    ))
    if runner.last_failures:
        _print_sweep_failures(runner, args.fail_policy)
        return 1
    return 0


def _cmd_spec_overhead(args: argparse.Namespace) -> int:
    cells = [
        Job.of(
            run_epoch_cell,
            key=f"spec-overhead/{name}",
            seed=derive_seed(args.seed, f"spec-overhead/{name}"),
            benchmark=name,
            horizon_s=args.seconds,
        )
        for name in SPEC2006_INT
    ]
    runner = _sweep_runner(args)
    by_key = {r.key: r for r in runner.run(cells)}
    rows = []
    for name in SPEC2006_INT:
        result = by_key.get(f"spec-overhead/{name}")
        if result is None or not result.ok:
            rows.append([name, "FAILED", "-", "-", "-"])
            continue
        run = result.value
        rows.append([
            name,
            f"{run.normalized_time:.4f}",
            f"{double_refresh_normalized_time(spec_profile(name)):.4f}",
            f"{run.fp_refreshes_per_sec:.2f}",
            f"{run.trigger_fraction:.0%}",
        ])
    print(format_table(
        ["benchmark", "ANVIL time", "double-refresh time",
         "FP refreshes/s", "stage-1 trigger"],
        rows,
        title=f"SPEC2006 int, {args.seconds:.0f}s horizon "
              "(normalized to unprotected @64 ms)",
    ))
    if runner.last_failures:
        _print_sweep_failures(runner, args.fail_policy)
        return 1
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.dir)
    if args.action == "clear":
        print(f"removed {cache.clear()} cache entries from {args.dir}")
        return 0
    report = cache.verify(repair=not args.no_repair)
    print(f"cache scrub of {report['directory']}")
    print(f"  entries checked : {report['checked']}"
          f" (snapshots: {report['snapshots_checked']})")
    print(f"  intact          : {report['ok']}"
          f" (snapshots: {report['snapshots_ok']})")
    print(f"  corrupt         : {len(report['corrupt'])}")
    print(f"  quarantined     : {report['quarantined']}")
    for key in report["corrupt"]:
        print(f"    {key}")
    # Corruption is a finding, not a success: a nonzero exit lets CI gate
    # on a clean cache even though the entries were quarantined.
    return 1 if report["corrupt"] else 0


def _cmd_worker(args: argparse.Namespace) -> int:
    if args.action == "pool":
        return _run_worker_pool(args)
    try:
        serve_worker(args.listen)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_probe_policy(args: argparse.Namespace) -> int:
    machine = small_machine()
    base = machine.memory.vm.mmap(8 * MB)
    target = base + 64
    eviction_set = build_eviction_set(machine.memory, target, base, 8 * MB)
    result = identify_replacement_policy(
        machine, [target] + eviction_set, rounds=args.rounds
    )
    print(f"observed miss fraction: {result.observed_miss_fraction:.2f} "
          f"over {result.accesses} probe accesses")
    for name, score in result.ranking():
        marker = "  <-- best match" if name == result.best else ""
        print(f"  {name:<10} {score:6.1%}{marker}")
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    machine = small_machine()
    memory = machine.memory
    dram = memory.controller.config
    llc = memory.hierarchy.llc.config
    print("simulated machine (demo scale)")
    print(f"  CPU             : {machine.clock.freq_hz / 1e9:.1f} GHz")
    print(f"  LLC             : {llc.size_bytes // 1024} KB, {llc.ways}-way, "
          f"{llc.slices} slices, {llc.policy}")
    print(f"  DRAM            : {dram.capacity_bytes // MB} MB, "
          f"{dram.ranks} rank(s) x {dram.banks_per_rank} banks x "
          f"{dram.rows_per_bank} rows x {dram.row_bytes} B")
    print(f"  retention       : {dram.timings.retention_ms} ms "
          f"(tREFI {dram.timings.trefi_ns} ns, tRFC {dram.timings.trfc_ns} ns)")
    print(f"  weakest cell    : {dram.disturbance.threshold_min:,} units")
    print("paper-scale machine: repro.presets.paper_machine() "
          "(4 GB, 220K-unit weak cells)")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "attack": _cmd_attack,
        "defense-grid": _cmd_defense_grid,
        "spec-overhead": _cmd_spec_overhead,
        "cache": _cmd_cache,
        "lint": lint_cli.run,
        "probe-policy": _cmd_probe_policy,
        "worker": _cmd_worker,
        "info": _cmd_info,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
