"""Analytic fast-forward execution — the tier above :mod:`repro.sim.fastpath`.

The fast path still *interprets* every access; long-horizon sweeps over
steady-state synthetic workloads spend almost all of that work re-deriving
state the model already knows.  This engine skips whole workload periods
("laps") at a time and advances the architectural state analytically:

1. **Record.**  A workload that declares itself periodic (see
   :meth:`repro.workloads.generators.Workload.steady_program`) supplies one
   lap of concrete ops.  The engine executes laps through the reference
   :meth:`Machine.execute` loop, capturing each op's access record
   (level, latency, DRAM coordinates, activations) plus per-lap stat
   deltas, and canonicalising the machine state at the lap boundary
   (cache tags + replacement-policy state + open rows).

2. **Verify.**  The boundary state determines every future lap: caches
   and open rows are the only state that feeds back into hit/miss and
   activation decisions (address translation is timing-free, and flips
   never steer these workloads' address streams).  So the first
   *revisited* boundary state proves a limit cycle — the laps between
   the two visits repeat verbatim forever.  Replacement policies like
   bit-PLRU commonly settle into multi-lap cycles rather than a
   one-lap fixed point, which is why the engine tracks a window of
   recent boundary states instead of just comparing consecutive laps.
   The only time-dependent effects — refresh blocking, disturbance
   epochs, flip emission — are recomputed per skipped lap (below),
   never assumed.

3. **Skip.**  Skipping advances no cache/replacement/open-row state, so
   the engine always skips a *whole* cycle at once — the microstate at
   the boundary is, by construction, exactly what interpretation would
   have restored.  Each skipped lap advances the clock by its base
   cycles plus an exact *blocking sweep*: DRAM arrival offsets are
   intersected with the tREFI/tRFC refresh schedule (at most one access
   blocks per refresh window, so the sweep is O(windows · log ops) via
   :func:`repro.sim.kernels.searchsorted_left`).  Every recorded
   activation is replayed into the disturbance tracker at its exact
   timestamp (:meth:`repro.dram.device.DramDevice.replay_activation`),
   so bit flips land bit-identically to interpretation.  PMU counters,
   cache stats, and controller/device stats advance by the recorded
   deltas.

4. **Guard band.**  A lap is skipped only when its (exactly computed)
   end lies strictly before every decision point: the earliest pending
   timer (stage-1 threshold tests fire from timers), the run's
   ``max_cycles`` deadline, and the PEBS sampler's next eligible sample
   time.  Armed counter-overflow interrupts, access hooks, memory
   listeners, activation observers, and row filters disable skipping
   entirely.  Laps containing a decision point run exactly through
   :func:`repro.sim.fastpath.execute_fast`, and the boundary state is
   re-checked afterwards — a callback that perturbs the machine
   (selective refresh, ``flush_all``, TLB remap) invalidates the model,
   which is then re-recorded.

The result is bit-for-bit equivalent to :meth:`Machine.run` for every
observable: RunResult, PMU counters, PEBS sample streams, cache and
replacement state, controller/device stats, open rows, and bit flips.
"""

from __future__ import annotations

from bisect import bisect_left as _bisect_left
from dataclasses import dataclass
from math import ceil
from typing import TYPE_CHECKING, Callable, Optional

from . import kernels
from .fastpath import execute_fast
from .ops import CLFLUSH, COMPUTE, LOAD, MFENCE, STORE, Op
from .results import RunResult

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

#: Ops a steady program may contain.  PAIR_LOAD is excluded: its retire
#: order draws from the machine's LCG, whose advance a skipped lap would
#: have to model; no generator emits pairs.
_SUPPORTED_KINDS = frozenset((LOAD, STORE, CLFLUSH, MFENCE, COMPUTE))

#: Programs above this size are interpreted (recording two laps of a
#: multi-million-op period costs more than it could ever save).
MAX_PROGRAM_OPS = 1 << 21

#: Consecutive failed recording attempts before the engine stops trying
#: (decision points landing inside every lap, e.g. dense PEBS windows).
_MAX_RECORD_ATTEMPTS = 10

#: Longest boundary-state cycle the engine will hunt for (transient laps
#: before the cycle count against this too).  Recording runs at reference
#: speed, so this bounds the warm-up cost; it also bounds the memory held
#: by boundary snapshots.
_MAX_HISTORY = 48

#: Exact laps run between recording attempts, scaled by failure count —
#: keeps the reference-speed recording path off the critical path when
#: decision points land inside every lap (e.g. dense PEBS windows).
_BACKOFF_LAPS = (0, 2, 4, 8, 16, 32)

#: Upper bound on laps planned in one skip batch.  Batching amortises the
#: horizon/stat bookkeeping over many laps (vital for few-op laps like
#: the hammer loop); the cap bounds the deferred-mutation plan's memory.
_MAX_BATCH_LAPS = 4096


@dataclass(frozen=True)
class AccessProgram:
    """One exact period of a workload's op stream, with addresses resolved.

    ``ops`` must reproduce the workload's :meth:`ops` output verbatim when
    cycled (the turbo equivalence suite asserts this per generator).
    """

    ops: list
    description: str = ""

    def __len__(self) -> int:
        return len(self.ops)


@dataclass
class TurboStats:
    """Telemetry for one :meth:`Machine.run_turbo` call (exposed as
    ``machine.turbo_stats``)."""

    engaged: bool = False
    disengage_reason: str = ""
    accel: str = ""
    laps_skipped: int = 0
    laps_recorded: int = 0
    laps_exact: int = 0
    ops_skipped: int = 0
    ops_interpreted: int = 0
    model_rebuilds: int = 0


class _LapTrace:
    """One cleanly recorded lap: analytic schedule plus stat deltas."""

    __slots__ = (
        "end_state", "lap_base", "dram_off", "acts", "per_bank",
        "cache_delta", "ctl_lat_base", "loads", "stores", "clflushes",
        "dram", "dram_loads", "dram_stores", "lap_cycles",
    )


class _LapModel:
    """One lap of a verified boundary-state cycle, compiled for skipping."""

    __slots__ = (
        "cycle_pos", "lap_base", "dram_off", "off_arr", "acts", "acts_idx",
        "act_offs", "act_row_ids", "act_rows", "per_bank", "cache_delta",
        "ctl_lat_base", "loads", "stores", "clflushes", "dram", "dram_loads",
        "dram_stores", "end_state",
    )


class _SteadyModel:
    """A verified limit cycle of lap models, walked by ``pos``."""

    __slots__ = ("laps", "pos", "trefi", "trfc")


class _StateScope:
    """The slice of machine state a fixed program can observe or steer:
    per level, the cache sets its line addresses index into, plus the
    DRAM banks they decode to.

    Program behaviour is a pure function of this slice — per-set
    replacement policies never look across sets, and a bank's row buffer
    only reacts to accesses targeting that bank.  Scoping the boundary
    snapshot to it makes cycle detection and island revalidation O(sets
    touched) instead of O(all sets), which is what keeps small-lap
    programs (e.g. the hammer loop) profitable to fast-forward.
    """

    __slots__ = ("level_sets", "banks")

    def __init__(self, machine: "Machine", program: AccessProgram) -> None:
        memory = machine.memory
        vm = memory.vm
        hierarchy = memory.hierarchy
        caches = (hierarchy.l1, hierarchy.l2, hierarchy.llc)
        vaddrs = [op[1] for op in program.ops
                  if op[0] in (LOAD, STORE, CLFLUSH)]
        paddrs = kernels.batch_translate(vaddrs, vm)
        level_sets = []
        for cache in caches:
            if cache._n_slices == 1:
                idxs = kernels.batch_set_index(
                    paddrs, cache._line_bits, cache._set_mask)
            else:  # sliced LLC hashes per line; set_index stays scalar
                idxs = [cache.set_index(paddr) for paddr in paddrs]
            level_sets.append(tuple(sorted(set(idxs))))
        dense_banks, _rows, _row_ids = kernels.batch_decode(
            paddrs, memory.mapping)
        self.level_sets = tuple(level_sets)
        self.banks = tuple(sorted(set(dense_banks)))


def machine_state_key(machine: "Machine", scope: _StateScope | None = None):
    """Canonical lap-boundary state: per-set (tags, replacement state) for
    every cache level plus the open row per bank — restricted to ``scope``
    when given (see :class:`_StateScope`).

    Two boundaries with equal keys behave identically for any future op
    sequence (over the scope's addresses) — replacement decisions depend
    only on this state, and the canonicalisation (see
    ``ReplacementPolicy.state_key``) equates states that differ only by
    behaviour-preserving relabelling (e.g. true-LRU stamp values vs.
    their rank order).  Returns None when any policy cannot be
    snapshotted (stochastic policies), which disables skipping.
    """
    hierarchy = machine.memory.hierarchy
    open_rows = machine.memory.controller.device._open_rows
    caches = (hierarchy.l1, hierarchy.l2, hierarchy.llc)
    levels = []
    if scope is None:
        for cache in caches:
            sets = []
            for cset in cache._sets:
                policy_key = cset.policy.state_key()
                if policy_key is None:
                    return None
                sets.append((tuple(cset.tags), policy_key))
            levels.append(tuple(sets))
        return tuple(levels), tuple(open_rows)
    for cache, indices in zip(caches, scope.level_sets):
        all_sets = cache._sets
        sets = []
        for index in indices:
            cset = all_sets[index]
            policy_key = cset.policy.state_key()
            if policy_key is None:
                return None
            sets.append((tuple(cset.tags), policy_key))
        levels.append(tuple(sets))
    return tuple(levels), tuple(open_rows[bank] for bank in scope.banks)


def _skip_blocked(machine: "Machine") -> bool:
    """True when observers with per-access side effects (or armed overflow
    interrupts) make analytic skipping unsafe."""
    if machine._access_hooks:
        return True
    memory = machine.memory
    if memory._listeners:
        return True
    controller = memory.controller
    if controller._observers or controller._row_filters:
        return True
    pmu = machine.pmu
    for counter in (pmu._c_loads, pmu._c_stores, pmu._c_miss,
                    pmu._c_load_miss, pmu._c_store_miss):
        if counter._next_overflow is not None:
            return True
    return False


def _record_lap(machine: "Machine", lap_ops: list, deadline: int | None,
                result: RunResult, scope: _StateScope | None = None):
    """Execute one lap through the reference interpreter, capturing a
    :class:`_LapTrace`.  Returns ``(trace_or_None, stop_or_None, n)``;
    the trace is None when the lap was dirty (a timer fired, a sample was
    taken, or a refresh was issued mid-lap) or unsnapshotable.
    """
    memory = machine.memory
    hierarchy = memory.hierarchy
    lat_miss = hierarchy.miss_latency
    clflush_cost = hierarchy.config.clflush_cycles
    mfence_cost = hierarchy.config.mfence_cycles
    controller = memory.controller
    device = controller.device
    engine = device.refresh_engine
    trefi = engine.trefi_cycles
    trfc = engine.trfc_cycles
    banks_per_rank = device._banks_per_rank
    rows_per_bank = device._rows_per_bank

    sampler = machine.pmu.sampler
    samples0 = sampler.total_samples if sampler is not None else 0
    next_deadline0 = machine._next_deadline
    overhead0 = machine.overhead_cycles
    caches = (hierarchy.l1, hierarchy.l2, hierarchy.llc)
    cache0 = [
        (c.stats.hits, c.stats.misses, c.stats.evictions, c.stats.invalidations)
        for c in caches
    ]
    refresh0 = (device.stats.refreshes_issued,
                controller.stats.observer_refreshes,
                controller.stats.selective_refreshes)

    dram_off: list[int] = []
    acts: list[tuple[int, int, int]] = []
    per_bank: dict[int, int] = {}
    pre = 0  # base-cost prefix (zero-blocking advancement inside the lap)
    ctl_lat_base = 0
    loads = stores = clflushes = 0
    dram = dram_loads = dram_stores = 0
    dirty = False
    execute = machine.execute
    lap_start = machine.cycles
    n = 0
    for op in lap_ops:
        start = machine.cycles
        record = execute(op)
        n += 1
        kind = op[0]
        adv = machine.cycles - start
        if record is not None:
            if record.is_store:
                result.stores += 1
                stores += 1
            else:
                result.loads += 1
                loads += 1
            latency = record.latency_cycles
            if adv != latency:
                dirty = True  # a PMI or timer callback ran inside this op
            if record.level == "DRAM":
                result.dram_accesses += 1
                dram += 1
                if record.is_store:
                    dram_stores += 1
                else:
                    dram_loads += 1
                t_mem = start + lat_miss
                pos = t_mem % trefi
                blocked = trfc - pos if pos < trfc else 0
                base = latency - blocked
                dram_off.append(pre + lat_miss)
                ctl_lat_base += base - lat_miss
                if record.activated:
                    coord = record.coord
                    bank = coord.rank * banks_per_rank + coord.bank
                    row_id = bank * rows_per_bank + coord.row
                    acts.append((dram - 1, row_id, coord.row))
                    per_bank[bank] = per_bank.get(bank, 0) + 1
                pre += base
            else:
                pre += latency
        elif kind == CLFLUSH:
            result.clflushes += 1
            clflushes += 1
            if adv != clflush_cost:
                dirty = True
            pre += clflush_cost
        elif kind == COMPUTE:
            if adv != op[1]:
                dirty = True
            pre += op[1]
        else:  # MFENCE
            if adv != mfence_cost:
                dirty = True
            pre += mfence_cost
        if deadline is not None and machine.cycles >= deadline:
            return None, "max_cycles", n

    if sampler is not None and sampler.total_samples != samples0:
        dirty = True
    if machine.cycles >= next_deadline0:
        dirty = True  # a timer fired somewhere in the lap
    if machine.overhead_cycles != overhead0:
        dirty = True
    if (device.stats.refreshes_issued,
            controller.stats.observer_refreshes,
            controller.stats.selective_refreshes) != refresh0:
        dirty = True
    if dirty:
        return None, None, n

    end_state = machine_state_key(machine, scope)
    if end_state is None:
        return None, None, n

    trace = _LapTrace()
    trace.end_state = end_state
    trace.lap_base = pre
    trace.dram_off = dram_off
    trace.acts = acts
    trace.per_bank = per_bank
    trace.cache_delta = tuple(
        (c.stats.hits - h0, c.stats.misses - m0,
         c.stats.evictions - e0, c.stats.invalidations - i0)
        for c, (h0, m0, e0, i0) in zip(caches, cache0)
    )
    trace.ctl_lat_base = ctl_lat_base
    trace.loads = loads
    trace.stores = stores
    trace.clflushes = clflushes
    trace.dram = dram
    trace.dram_loads = dram_loads
    trace.dram_stores = dram_stores
    trace.lap_cycles = machine.cycles - lap_start
    return trace, None, n


def _build_model(cycle: list[_LapTrace], machine: "Machine") -> _SteadyModel:
    engine = machine.memory.controller.device.refresh_engine
    model = _SteadyModel()
    model.laps = []
    model.pos = 0
    model.trefi = engine.trefi_cycles
    model.trfc = engine.trfc_cycles
    for cycle_pos, trace in enumerate(cycle):
        lap = _LapModel()
        lap.cycle_pos = cycle_pos
        lap.lap_base = trace.lap_base
        lap.dram_off = trace.dram_off
        lap.off_arr = kernels.int_array(trace.dram_off)
        lap.acts = trace.acts
        lap.acts_idx = [a[0] for a in trace.acts]
        lap.act_offs = [trace.dram_off[a[0]] for a in trace.acts]
        lap.act_row_ids = [a[1] for a in trace.acts]
        lap.act_rows = [a[2] for a in trace.acts]
        lap.per_bank = trace.per_bank
        lap.cache_delta = trace.cache_delta
        lap.ctl_lat_base = trace.ctl_lat_base
        lap.loads = trace.loads
        lap.stores = trace.stores
        lap.clflushes = trace.clflushes
        lap.dram = trace.dram
        lap.dram_loads = trace.dram_loads
        lap.dram_stores = trace.dram_stores
        lap.end_state = trace.end_state
        model.laps.append(lap)
    return model


#: Shared empty block list for unblocked laps (never mutated).
_NO_BLOCKS: list[tuple[int, int]] = []


def _sweep_blocking(t0: int, lap: _LapModel, trefi: int, trfc: int):
    """Exact refresh-blocking totals for a lap starting at ``t0``.

    DRAM arrival offsets are strictly increasing, so within one tREFI
    window at most the *first* arrival inside the tRFC region blocks (it
    is pushed past the region; later arrivals land after it).  The sweep
    therefore jumps window to window — O(windows · log ops) — returning
    the accumulated delay and the ``(dram_index, delay)`` block list.
    Pure computation: no machine state is touched, so the caller can
    reject the skip (guard-band overrun) at zero cost.
    """
    offsets = lap.dram_off
    count = len(offsets)
    if count == 0:
        return 0, _NO_BLOCKS
    # Fast path: every arrival lands inside one refresh-free region of a
    # single tREFI window — no block, no search.  Small laps (the hammer
    # loop) take this branch on almost every sweep.
    pos = (t0 + offsets[0]) % trefi
    if pos >= trfc and pos + (offsets[count - 1] - offsets[0]) < trefi:
        return 0, _NO_BLOCKS
    if count < 64:
        # Scalar bisect beats per-call ndarray setup on short laps.
        arr = offsets
        search = _bisect_left
    else:
        arr = lap.off_arr
        search = kernels.searchsorted_left
    acc = 0
    blocks: list[tuple[int, int]] = []
    j = 0
    while j < count:
        t = t0 + offsets[j] + acc
        pos = t % trefi
        if pos < trfc:
            delay = trfc - pos
            blocks.append((j, delay))
            acc += delay
        boundary = t - pos + trefi
        j = search(arr, boundary - t0 - acc, j + 1)
    return acc, blocks


def _apply_batch(machine: "Machine",
                 plan: list[tuple[_LapModel, int, int, list[tuple[int, int]]]],
                 t_end: int) -> tuple[int, int, int, int]:
    """Advance the machine across a batch of planned laps analytically
    (state-mutation counterpart of :func:`_sweep_blocking`).

    Disturbance replay must land every activation at the exact cycle the
    reference run would have — so the per-lap arrival times are computed
    by the :func:`~repro.sim.kernels.activation_times` batch kernel
    (blocked activations land at their refresh-snapped times), collected
    across the whole batch, and replayed through one
    :meth:`~repro.dram.device.DramDevice.replay_activations` call, which
    amortises the per-activation bookkeeping.  Every counter/statistic
    update is likewise aggregated across the batch and applied once,
    which is what makes skipping profitable even for few-op laps like
    the hammer loop.  Returns ``(loads, stores, clflushes, dram)``
    totals for the caller's :class:`RunResult`.
    """
    device = machine.memory.controller.device
    acc_total = 0
    ev_row_ids: list[int] = []
    ev_rows: list[int] = []
    ev_times: list[int] = []
    #: lap.cycle_pos -> [lap, occurrence count].  The plan is whole model
    #: cycles, so integer stat deltas scale by the count exactly; only
    #: the activation schedule (and ``acc``) needs the per-entry pass.
    lap_counts: dict[int, list] = {}

    for lap, t0, acc, blocks in plan:
        if lap.acts:
            ev_row_ids.extend(lap.act_row_ids)
            ev_rows.extend(lap.act_rows)
            if blocks:
                ev_times.extend(kernels.activation_times(
                    t0, lap.dram_off, lap.acts_idx, blocks))
            else:
                ev_times.extend([t0 + off for off in lap.act_offs])
        acc_total += acc
        entry = lap_counts.get(lap.cycle_pos)
        if entry is None:
            lap_counts[lap.cycle_pos] = [lap, 1]
        else:
            entry[1] += 1

    if ev_row_ids:
        device.replay_activations(ev_row_ids, ev_rows, ev_times)

    loads = stores = clflushes = dram = dram_loads = dram_stores = 0
    acts_total = 0
    lat_base_total = 0
    cache_totals = ([0, 0, 0, 0], [0, 0, 0, 0], [0, 0, 0, 0])
    bank_totals: dict[int, int] = {}
    for lap, n in lap_counts.values():
        loads += lap.loads * n
        stores += lap.stores * n
        clflushes += lap.clflushes * n
        dram += lap.dram * n
        dram_loads += lap.dram_loads * n
        dram_stores += lap.dram_stores * n
        acts_total += len(lap.acts) * n
        lat_base_total += lap.ctl_lat_base * n
        for totals, delta in zip(cache_totals, lap.cache_delta):
            totals[0] += delta[0] * n
            totals[1] += delta[1] * n
            totals[2] += delta[2] * n
            totals[3] += delta[3] * n
        for bank, n_acts in lap.per_bank.items():
            bank_totals[bank] = bank_totals.get(bank, 0) + n_acts * n

    pmu = machine.pmu
    pmu._c_loads.value += loads
    pmu._c_stores.value += stores
    pmu._c_miss.value += dram
    pmu._c_load_miss.value += dram_loads
    pmu._c_store_miss.value += dram_stores

    hierarchy = machine.memory.hierarchy
    for cache, (d_hits, d_misses, d_evictions, d_invalidations) in zip(
            (hierarchy.l1, hierarchy.l2, hierarchy.llc), cache_totals):
        stats = cache.stats
        stats.hits += d_hits
        stats.misses += d_misses
        stats.evictions += d_evictions
        stats.invalidations += d_invalidations

    controller = machine.memory.controller
    ctl_stats = controller.stats
    ctl_stats.accesses += dram
    ctl_stats.total_latency_cycles += lat_base_total + acc_total
    ctl_stats.blocked_cycles += acc_total

    dev_stats = controller.device.stats
    dev_stats.accesses += dram
    dev_stats.row_hits += dram - acts_total
    dev_stats.activations += acts_total
    per_bank = dev_stats.activations_per_bank
    for bank, n_acts in bank_totals.items():
        per_bank[bank] = per_bank.get(bank, 0) + n_acts

    machine.cycles = t_end
    return loads, stores, clflushes, dram


def execute_turbo(machine: "Machine", program: AccessProgram,
                  max_cycles: int | None = None,
                  stats: TurboStats | None = None) -> RunResult:
    """Run ``program`` cycled forever (or until ``max_cycles``) with
    analytic lap skipping.  Bit-identical to feeding the cycled program
    through :meth:`Machine.run`."""
    st = stats if stats is not None else TurboStats(accel=kernels.accel_signature())
    lap_ops = program.ops
    lap_len = len(lap_ops)
    if lap_len == 0:
        raise ValueError("cannot fast-forward an empty program")

    start_cycles = machine.cycles
    start_overhead = machine.overhead_cycles
    miss_counter = machine.pmu._c_miss
    start_misses = miss_counter.read()
    start_flips = machine.memory.flip_count()
    deadline = None if max_cycles is None else start_cycles + max_cycles
    result = RunResult(start_cycles=start_cycles, end_cycles=start_cycles,
                       ops_executed=0)
    n_total = 0
    scope = _StateScope(machine, program)

    model: _SteadyModel | None = None
    #: Consecutive cleanly recorded traces, and a map from each boundary
    #: state seen in the streak (position 0 = the pre-streak state) to
    #: its position.  A revisited state closes a limit cycle.
    history: list[_LapTrace] = []
    state_index: dict = {}
    lap_estimate = 0  # cycles of the last completed lap (any path)
    attempts = 0      # consecutive dirty recording attempts
    backoff = 0       # exact laps to run before the next recording attempt
    gave_up = False

    while True:
        # Nearest decision point: earliest timer, the run deadline, and
        # (when sampling) the next eligible PEBS sample time.  Offers
        # below _next_sample_at have no side effects, so a lap ending
        # strictly before all three is safe to skip.
        horizon = machine._next_deadline
        if deadline is not None and deadline < horizon:
            horizon = deadline
        sampler = machine.pmu.sampler
        if sampler is not None and sampler.enabled:
            next_sample = ceil(sampler._next_sample_at)
            if next_sample < horizon:
                horizon = next_sample

        if model is not None and not _skip_blocked(machine):
            # Skipping never touches cache/replacement/open-row state, so
            # only *whole* cycles — which return the microstate to the
            # current boundary — may be skipped.  Sweep laps first (pure),
            # batching as many full cycles as fit under the horizon, then
            # apply the whole batch with one aggregated stat update.
            laps = model.laps
            k = len(laps)
            trefi = model.trefi
            trfc = model.trfc
            pos = model.pos
            t0 = machine.cycles
            t = t0
            plan: list = []
            while len(plan) + k <= _MAX_BATCH_LAPS:
                tc = t
                cycle = []
                fits = True
                for i in range(k):
                    lap = laps[(pos + i) % k]
                    acc, blocks = _sweep_blocking(tc, lap, trefi, trfc)
                    cycle.append((lap, tc, acc, blocks))
                    tc += lap.lap_base + acc
                    if tc >= horizon:
                        fits = False
                        break
                if not fits:
                    break
                plan.extend(cycle)
                t = tc
            if plan:
                loads, stores, clflushes, dram = _apply_batch(machine, plan, t)
                result.loads += loads
                result.stores += stores
                result.clflushes += clflushes
                result.dram_accesses += dram
                n_laps = len(plan)
                n_total += n_laps * lap_len
                lap_estimate = (t - t0) // n_laps
                st.laps_skipped += n_laps
                st.ops_skipped += n_laps * lap_len
                continue

        # A decision point (or no model) forces exact execution of this
        # lap.  Recording runs the reference interpreter; skip it when a
        # decision point is likely to land inside the lap anyway.
        room = horizon - machine.cycles
        may_record = (
            model is None and not gave_up and backoff == 0
            and (lap_estimate == 0 or room > lap_estimate + (lap_estimate >> 3))
        )
        if may_record:
            if not history:
                start_state = machine_state_key(machine, scope)
                if start_state is None:
                    gave_up = True
                    st.disengage_reason = "state not snapshotable"
                    continue
                state_index = {start_state: 0}
            trace, stop, n = _record_lap(machine, lap_ops, deadline, result,
                                         scope)
            n_total += n
            st.laps_recorded += 1
            st.ops_interpreted += n
            if stop is not None:
                result.stopped_by = stop
                break
            if trace is not None:
                attempts = 0  # only *consecutive* dirty laps give up
                lap_estimate = trace.lap_cycles
                history.append(trace)
                seen = state_index.get(trace.end_state)
                if seen is not None:
                    # The machine is back in a state it already left from:
                    # the laps recorded since then repeat forever.
                    model = _build_model(history[seen:], machine)
                    history = []
                    state_index = {}
                    attempts = 0
                else:
                    state_index[trace.end_state] = len(history)
                    if len(history) >= _MAX_HISTORY:
                        gave_up = True
                        st.disengage_reason = "steady state never converged"
            else:
                # Dirty lap: a decision point fired mid-lap; the streak is
                # broken, and interpreting for a while beats paying for
                # another reference-speed lap straight away.
                history = []
                state_index = {}
                attempts += 1
                backoff = _BACKOFF_LAPS[min(attempts, len(_BACKOFF_LAPS) - 1)]
                if attempts >= _MAX_RECORD_ATTEMPTS:
                    gave_up = True
                    st.disengage_reason = "decision points in every lap"
        else:
            remaining = None if deadline is None else deadline - machine.cycles
            seg = execute_fast(machine, iter(lap_ops), max_cycles=remaining)
            n_total += seg.ops_executed
            result.loads += seg.loads
            result.stores += seg.stores
            result.clflushes += seg.clflushes
            result.dram_accesses += seg.dram_accesses
            st.laps_exact += 1
            st.ops_interpreted += seg.ops_executed
            history = []  # an exact lap moves the state past the streak
            state_index = {}
            if backoff:
                backoff -= 1
            if seg.stopped_by == "max_cycles":
                result.stopped_by = "max_cycles"
                break
            lap_estimate = seg.end_cycles - seg.start_cycles
            if model is not None:
                # Island revalidation: a callback that ran inside this
                # lap may have perturbed cache/open-row state.  A timer
                # that only reads counters leaves the boundary state on
                # the cycle, so skipping resumes at the next position.
                if machine_state_key(machine, scope) == model.laps[model.pos].end_state:
                    model.pos = (model.pos + 1) % len(model.laps)
                else:
                    model = None
                    attempts = 0
                    st.model_rebuilds += 1

    result.ops_executed = n_total
    result.end_cycles = machine.cycles
    result.llc_misses = miss_counter.read() - start_misses
    result.new_flips = machine.memory.flip_count() - start_flips
    result.overhead_cycles = machine.overhead_cycles - start_overhead
    return result


def run_turbo(machine: "Machine", workload,
              max_cycles: int | None = None,
              until: Optional[Callable[["Machine"], bool]] = None,
              check_every: int = 64) -> RunResult:
    """Entry point behind :meth:`Machine.run_turbo`: engage the analytic
    fast-forward when the workload declares a steady program, otherwise
    delegate to the fast path (bit-identical either way).

    ``until`` predicates disable fast-forward entirely: the reference
    loop evaluates them at fixed op counts, which a skipped lap cannot
    reproduce exactly.
    """
    stats = TurboStats(accel=kernels.accel_signature())
    machine.turbo_stats = stats

    steady = getattr(workload, "steady_program", None)
    if steady is None:
        stats.disengage_reason = "raw op stream"
        return execute_fast(machine, workload, max_cycles=max_cycles,
                            until=until, check_every=check_every)

    if not workload.prepared:
        workload.prepare(machine)
    program = None
    if until is not None:
        stats.disengage_reason = "until predicate"
    else:
        program = steady()
        if program is None:
            stats.disengage_reason = "no steady program"
        elif len(program.ops) > MAX_PROGRAM_OPS:
            stats.disengage_reason = "program too large"
            program = None
        elif not _SUPPORTED_KINDS.issuperset(op[0] for op in program.ops):
            stats.disengage_reason = "unsupported op kinds"
            program = None
    if program is None:
        return execute_fast(machine, workload.ops(), max_cycles=max_cycles,
                            until=until, check_every=check_every)
    stats.engaged = True
    return execute_turbo(machine, program, max_cycles=max_cycles, stats=stats)
