"""Operation-trace recording and replay.

A trace is a plain-text file, one operation per line::

    L 7f0000001040        # load vaddr
    S 7f0000002080        # store vaddr
    F 7f0000001040        # clflush vaddr
    M                     # mfence
    C 36                  # compute cycles
    P 7f0000001040 7f0000003100   # paired loads

Traces decouple workload generation from simulation: capture an attack or
a generator once, then replay it against differently configured machines
(defense grids, parameter sweeps) with identical access sequences.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, TextIO

from ..errors import SimulationError
from .ops import CLFLUSH, COMPUTE, LOAD, MFENCE, PAIR_LOAD, STORE, Op


def format_op(op: Op) -> str:
    """One trace line for ``op`` (without newline)."""
    kind, operand = op
    if kind in (LOAD, STORE, CLFLUSH):
        return f"{kind} {operand:x}"
    if kind == MFENCE:
        return MFENCE
    if kind == COMPUTE:
        return f"{kind} {operand}"
    if kind == PAIR_LOAD:
        a, b = operand
        return f"{kind} {a:x} {b:x}"
    raise SimulationError(f"cannot serialise op kind {kind!r}")


def parse_op(line: str) -> Op:
    """Inverse of :func:`format_op`; raises on malformed lines."""
    parts = line.split()
    if not parts:
        raise SimulationError("empty trace line")
    kind = parts[0]
    try:
        if kind in (LOAD, STORE, CLFLUSH):
            return (kind, int(parts[1], 16))
        if kind == MFENCE:
            return (kind, 0)
        if kind == COMPUTE:
            return (kind, int(parts[1]))
        if kind == PAIR_LOAD:
            return (kind, (int(parts[1], 16), int(parts[2], 16)))
    except (IndexError, ValueError) as exc:
        raise SimulationError(f"malformed trace line {line!r}") from exc
    raise SimulationError(f"unknown op kind in trace line {line!r}")


def write_trace(path: str | Path, ops: Iterable[Op], limit: int | None = None) -> int:
    """Write up to ``limit`` operations to ``path``; returns ops written."""
    count = 0
    with open(path, "w") as handle:
        for op in ops:
            handle.write(format_op(op) + "\n")
            count += 1
            if limit is not None and count >= limit:
                break
    return count


def read_trace(path: str | Path) -> Iterator[Op]:
    """Stream operations back from a trace file (comments allowed)."""
    with open(path) as handle:
        yield from iter_trace(handle)


def iter_trace(handle: TextIO) -> Iterator[Op]:
    for raw in handle:
        line = raw.split("#", 1)[0].strip()
        if line:
            yield parse_op(line)
