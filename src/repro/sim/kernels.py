"""Vectorized batch kernels with a pure-stdlib fallback.

The acceleration tiers (:mod:`repro.sim.fastpath`, :mod:`repro.sim.turbo`)
and the analysis helpers operate on *chunks* of accesses: arrays of
virtual addresses, physical addresses, DRAM arrival times.  When numpy is
installed (the ``accel`` optional dependency: ``pip install repro[accel]``)
these loops run as vector operations; otherwise every kernel falls back
to an equivalent pure-Python loop.  All kernels are **integer-exact**:
the numpy and stdlib implementations return identical values bit for bit,
so the execution engines never need to care which one ran.  Disturbance
*float* accumulation deliberately stays scalar (see
:meth:`repro.dram.device.DramDevice.access_miss_fast`) because a vector
reduction could reorder float additions.

``REPRO_ACCEL=0`` (or ``off``/``stdlib``/``false``/``no``) forces the
stdlib fallback even when numpy is importable — CI runs the equivalence
suites in both modes.  :func:`accel_signature` names the active mode
(``numpy-<version>`` / ``stdlib``) and is folded into the sweep cache's
code fingerprint so cached results never mix engines.
"""

from __future__ import annotations

import os
from bisect import bisect_left as _bisect_left

ACCEL_ENV = "REPRO_ACCEL"
ENGINE_ENV = "REPRO_ENGINE"

_FALSY = ("0", "off", "stdlib", "false", "no")

#: Lazily imported numpy module (or None when unavailable).  A sentinel
#: distinguishes "not probed yet" from "probed, absent".
_UNSET = object()
_numpy = _UNSET


def _numpy_module():
    global _numpy
    if _numpy is _UNSET:
        try:
            import numpy  # noqa: PLC0415 - optional accel dependency

            _numpy = numpy
        except ImportError:
            _numpy = None
    return _numpy


def numpy_or_none():
    """The numpy module when installed *and* not disabled via
    ``REPRO_ACCEL``; the environment knob is re-read on every call so
    tests can flip modes without reimporting."""
    if os.environ.get(ACCEL_ENV, "").lower() in _FALSY:
        return None
    return _numpy_module()


def accel_available() -> bool:
    return numpy_or_none() is not None


def accel_signature() -> str:
    """The active kernel mode: ``numpy-<version>`` or ``stdlib``."""
    np = numpy_or_none()
    return f"numpy-{np.__version__}" if np is not None else "stdlib"


def engine_mode(default: str = "fastpath") -> str:
    """The configured execution engine (``REPRO_ENGINE``): one of
    ``exact`` / ``fastpath`` / ``turbo``.  Purely declarative — callers
    that honour it pick the matching ``Machine.run*`` entry point — but
    it participates in cache fingerprints either way."""
    return os.environ.get(ENGINE_ENV, "").strip().lower() or default


# -- array plumbing -------------------------------------------------------------


def int_array(values):
    """An int64 ndarray when accelerated, else the list itself.

    The result is only ever consumed by the other kernels in this module,
    which accept both representations.
    """
    np = numpy_or_none()
    if np is None:
        return list(values)
    return np.asarray(values, dtype=np.int64)


def searchsorted_left(arr, value: int, lo: int = 0) -> int:
    """``bisect_left`` over an :func:`int_array` result."""
    np = numpy_or_none()
    if np is not None and not isinstance(arr, list):
        return lo + int(np.searchsorted(arr[lo:], value, side="left"))
    return _bisect_left(arr, value, lo)


def prefix_sums(values) -> list[int]:
    """Inclusive prefix sums as plain Python ints (integer-exact)."""
    np = numpy_or_none()
    if np is not None:
        return np.cumsum(np.asarray(values, dtype=np.int64)).tolist()
    total = 0
    out = []
    for value in values:
        total += value
        out.append(total)
    return out


# -- batch address kernels ------------------------------------------------------


def batch_translate(vaddrs, vm) -> list[int]:
    """Translate a chunk of virtual addresses through ``vm``.

    Page-table walks happen once per distinct page (via ``vm.translate``,
    which also warms the software TLB exactly as the scalar path would);
    the per-address frame|offset combine is vectorized.
    """
    page_bits = vm._page_bits
    offset_mask = (1 << page_bits) - 1
    np = numpy_or_none()
    if np is None:
        frames: dict[int, int] = {}
        out = []
        for vaddr in vaddrs:
            vpn = vaddr >> page_bits
            frame = frames.get(vpn)
            if frame is None:
                frame = vm.translate(vpn << page_bits)
                frames[vpn] = frame
            out.append(frame | (vaddr & offset_mask))
        return out
    va = np.asarray(vaddrs, dtype=np.int64)
    vpns = va >> page_bits
    unique, inverse = np.unique(vpns, return_inverse=True)
    frame_table = np.fromiter(
        (vm.translate(int(vpn) << page_bits) for vpn in unique),
        dtype=np.int64,
        count=len(unique),
    )
    return (frame_table[inverse] | (va & offset_mask)).tolist()


def batch_set_index(paddrs, line_bits: int, set_mask: int) -> list[int]:
    """Cache set indices for a chunk of physical addresses (simple
    modulo-indexed caches; sliced LLCs hash per-line and stay scalar)."""
    np = numpy_or_none()
    if np is None:
        return [(paddr >> line_bits) & set_mask for paddr in paddrs]
    pa = np.asarray(paddrs, dtype=np.int64)
    return ((pa >> line_bits) & set_mask).tolist()


def batch_decode(paddrs, mapping) -> tuple[list[int], list[int], list[int]]:
    """Vectorized :meth:`~repro.dram.mapping.AddressMapping.decode` over a
    chunk: returns ``(dense_bank_ids, rows, global_row_ids)``."""
    config = mapping.config
    bank_mask = config.banks_per_rank - 1
    rank_mask = config.ranks - 1
    row_mask = config.rows_per_bank - 1
    np = numpy_or_none()
    if np is None:
        banks, rows, row_ids = [], [], []
        for paddr in paddrs:
            bank = (paddr >> mapping._bank_shift) & bank_mask
            rank = (paddr >> mapping._rank_shift) & rank_mask
            row = (paddr >> mapping._row_shift) & row_mask
            if config.xor_bank_hash:
                bank ^= row & bank_mask
            dense = rank * config.banks_per_rank + bank
            banks.append(dense)
            rows.append(row)
            row_ids.append(dense * config.rows_per_bank + row)
        return banks, rows, row_ids
    pa = np.asarray(paddrs, dtype=np.int64)
    bank = (pa >> mapping._bank_shift) & bank_mask
    rank = (pa >> mapping._rank_shift) & rank_mask
    row = (pa >> mapping._row_shift) & row_mask
    if config.xor_bank_hash:
        bank = bank ^ (row & bank_mask)
    dense = rank * config.banks_per_rank + bank
    row_ids = dense * config.rows_per_bank + row
    return dense.tolist(), row.tolist(), row_ids.tolist()


def batch_blocking(times, trefi: int, trfc: int) -> list[int]:
    """Refresh-blocking delays for a chunk of *independent* arrival times
    (:meth:`repro.dram.refresh.RefreshEngine.blocking_delay` vectorized).

    Each time is evaluated against the refresh schedule in isolation —
    the sequential arrival-shifts-arrival interaction is what the turbo
    engine's blocking sweep handles.
    """
    np = numpy_or_none()
    if np is None:
        out = []
        for t in times:
            pos = t % trefi
            out.append(trfc - pos if pos < trfc else 0)
        return out
    ts = np.asarray(times, dtype=np.int64)
    pos = ts % trefi
    return np.where(pos < trfc, trfc - pos, 0).tolist()


def activation_times(t0: int, offsets, act_indices, blocks) -> list[int]:
    """Exact arrival times for a lap's activations, with refresh blocks
    folded in (the per-activation half of the turbo engine's blocking
    sweep, vectorized).

    ``offsets`` holds the lap-relative arrival offset of every DRAM
    access; ``act_indices`` selects the accesses that activated a row;
    ``blocks`` is the lap's ``(dram_index, delay)`` block list from
    :func:`repro.sim.turbo._sweep_blocking`.  The time of activation
    ``j`` is ``t0 + offsets[j]`` plus every block delay at an index
    ``<= j`` — a blocked activation is itself pushed to its
    refresh-snapped time.  Integer-exact on both backends.
    """
    np = numpy_or_none()
    if np is None or len(act_indices) < 64:
        # Below the vector break-even point (few-op laps dominate here)
        # the scalar merge beats per-call ndarray setup on both backends.
        out = []
        block_i = 0
        block_n = len(blocks)
        block_acc = 0
        for act_idx in act_indices:
            while block_i < block_n and blocks[block_i][0] <= act_idx:
                block_acc += blocks[block_i][1]
                block_i += 1
            out.append(t0 + offsets[act_idx] + block_acc)
        return out
    offs = np.asarray(offsets, dtype=np.int64)
    acts = np.asarray(act_indices, dtype=np.int64)
    if not blocks:
        return (t0 + offs[acts]).tolist()
    block_idx = np.asarray([b[0] for b in blocks], dtype=np.int64)
    cum = np.zeros(len(blocks) + 1, dtype=np.int64)
    np.cumsum(np.asarray([b[1] for b in blocks], dtype=np.int64),
              out=cum[1:])
    k = np.searchsorted(block_idx, acts, side="right")
    return (t0 + offs[acts] + cum[k]).tolist()


def count_activations(banks, rows, n_banks: int) -> int:
    """Open-page activation count for a (bank, row) access sequence that
    starts from all-precharged banks — the analytic row-locality midpoint
    the closed-form tests compare against."""
    np = numpy_or_none()
    if np is None or isinstance(banks, list) and len(banks) < 1024:
        open_rows: list[int | None] = [None] * n_banks
        activations = 0
        for bank, row in zip(banks, rows):
            if open_rows[bank] != row:
                open_rows[bank] = row
                activations += 1
        return activations
    banks = np.asarray(banks, dtype=np.int64)
    rows = np.asarray(rows, dtype=np.int64)
    total = 0
    for bank in range(n_banks):
        mask = banks == bank
        bank_rows = rows[mask]
        if bank_rows.size == 0:
            continue
        total += 1 + int(np.count_nonzero(bank_rows[1:] != bank_rows[:-1]))
    return total
