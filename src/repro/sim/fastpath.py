"""Fast-path execution engine for the simulated machine.

:func:`execute_fast` (surfaced as :meth:`repro.sim.machine.Machine.run_fast`)
interprets an op stream with **bit-for-bit identical** architectural
outcomes to the reference ``Machine.execute`` loop — same ``RunResult``
fields, PMU counter values, PEBS sample stream, cache and
replacement-policy state, DRAM/controller statistics, and bit flips — but
several times faster.  This is the middle of the three execution tiers
(exact :meth:`~repro.sim.machine.Machine.run`, fastpath, analytic
fast-forward): :mod:`repro.sim.turbo` builds on this engine, using it for
the exact "island" laps around detector decision points while skipping
steady-state laps entirely.  Three mechanisms provide the speedup here:

1. **Batched interpretation with hoisted state.**  All per-access state
   (TLB dict, per-level cache sets, latencies, deferred counters, the
   next timer deadline) is hoisted into locals once per *batch*, where a
   batch is the run of ops between two "slow events".  Inside a batch
   the interpreter dispatches on op kind with single interned-string
   compares and walks the cache levels inline — set lookup, replacement
   update, and fill are direct dict/list operations on the hoisted
   structures rather than a chain of method calls.

2. **Translation memoisation.**  ``VirtualMemory`` keeps a software TLB
   (page -> pre-shifted frame base); the fast path resolves a virtual
   address with one dict lookup and an OR.  DRAM address decoding is
   memoised the same way (physical address -> ``DramCoord``; coords are
   immutable named tuples, so sharing them is safe).

3. **An allocation-free access loop.**  Cache hits and plain DRAM
   accesses construct no ``MemoryAccess``/``HierarchyResult`` records;
   PMU event counts and cache hit/miss/eviction statistics accumulate in
   plain local ints and are flushed to the real counter objects before
   anything could observe them.  A record only materialises when a
   defense, armed counter, or the PEBS sampler needs to see the access.

**When the slow path is taken** (the engine falls back to plain
``Machine.execute`` for the op, or takes a bookkeeping excursion, then
re-hoists its locals and opens a new batch):

- the op is not a LOAD/STORE/CLFLUSH/MFENCE/COMPUTE (``PAIR_LOAD``,
  unknown kinds);
- the virtual page is not in the software TLB (first touch of a page);
- access hooks or memory-system listeners are registered (every access
  must materialise a record for them);
- an overflow interrupt is programmed on a counter the op would bump;
- the PEBS sampler is armed and the access passes its filters (the
  sample — or the sampler's tie-breaking RNG draw — must happen exactly
  as on the slow path);
- the access reaches DRAM while controller observers or row filters are
  registered (PARA/TRR/ARMOR defenses see every activation);
- a timer deadline is reached, the ``until`` predicate is due, or
  CLFLUSH executes while disallowed.

Invariants the engine relies on (pinned by the equivalence suite in
``tests/test_fastpath_equivalence.py``):

- hoisted state only changes inside callbacks (timers, overflow
  interrupts, ``until``) or slow-path ops — all of which end the current
  batch, so the hoisted locals are never stale;
- deferred counter increments are only used while no overflow interrupt
  is programmed on that counter, and deferred counts and statistics are
  flushed before any callback, sample offer, predicate, or return;
- ops are pulled from the stream one at a time (never prefetched), so
  generators that count iterations or produce ops lazily observe the
  same consumption order as ``Machine.run``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

from ..mem.memory_system import MemoryAccess
from .ops import CLFLUSH, COMPUTE, LOAD, MFENCE, Op, STORE
from .results import RunResult

if TYPE_CHECKING:  # pragma: no cover - type-only (machine imports us)
    from .machine import Machine

#: Sentinel deadline meaning "no timer pending / no limit" — far beyond any
#: reachable cycle count, so the common case is a single int compare.
FAR_FUTURE = 1 << 62

#: Cap on the per-run DRAM decode memo (address-sweeping workloads would
#: otherwise grow it without bound; entries are pure functions of the
#: address, so clearing only costs recomputation).
_DECODE_MEMO_MAX = 1 << 16


def execute_fast(
    machine: "Machine",
    ops: Iterable[Op],
    max_cycles: int | None = None,
    until: Callable[["Machine"], bool] | None = None,
    check_every: int = 64,
) -> RunResult:
    """Run ``ops`` on ``machine``; see the module docstring for semantics."""
    memory = machine.memory
    pmu = machine.pmu
    hierarchy = memory.hierarchy
    controller = memory.controller
    vm = memory.vm
    l1, l2, llc = hierarchy.l1, hierarchy.l2, hierarchy.llc

    # -- run-constant state -----------------------------------------------------
    page_bits = vm._page_bits
    offset_mask = vm._offset_mask
    tlb_get = vm._tlb.get
    lat_l1, lat_l2, lat_l3 = hierarchy.hit_latencies
    lat_miss = hierarchy.miss_latency
    mfence_cycles = hierarchy.config.mfence_cycles
    clflush_cycles = hierarchy.config.clflush_cycles
    l1_bits, l1_mask, l1_ways = l1._line_bits, l1._set_mask, l1.config.ways
    l2_bits, l2_mask, l2_ways = l2._line_bits, l2._set_mask, l2.config.ways
    llc_bits, llc_mask, llc_ways = llc._line_bits, llc._set_mask, llc.config.ways
    l1_simple = l1._n_slices == 1
    l2_simple = l2._n_slices == 1
    llc_simple = llc._n_slices == 1
    l1_index, l2_index, llc_index = l1.set_index, l2.set_index, llc.set_index
    # Sliced-cache set indices are memoised per line; read the memo inline
    # and only call set_index (which fills it, handling the cap) on a miss.
    llc_memo_get = llc._index_memo.get
    l1_stats, l2_stats, llc_stats = l1.stats, l2.stats, llc.stats
    l1_inv_line = l1.invalidate_line
    l2_inv_line = l2.invalidate_line
    # List identities are stable (add/remove mutate in place), so per-op
    # truthiness checks on these objects stay valid across callbacks.
    hooks = machine._access_hooks
    listeners = memory._listeners
    observers = controller._observers
    row_filters = controller._row_filters
    c_loads = pmu._c_loads
    c_stores = pmu._c_stores
    c_miss = pmu._c_miss
    c_load_miss = pmu._c_load_miss
    c_store_miss = pmu._c_store_miss
    decode_memo: dict[int, object] = {}
    decode_memo_get = decode_memo.get

    start_cycles = machine.cycles
    start_overhead = machine.overhead_cycles
    start_misses = c_miss.value
    start_flips = memory.flip_count()
    deadline = FAR_FUTURE if max_cycles is None else start_cycles + max_cycles

    n = 0
    loads_n = stores_n = clflush_n = dram_n = 0
    until_left = check_every
    cycles = start_cycles
    stopped: str | None = None
    it = iter(ops)
    # Deferred PMU counts and cache statistics (flushed before anything
    # could read the real counter/stats objects).
    d_loads = d_stores = d_miss = d_load_miss = d_store_miss = 0
    d1_hit = d1_miss = d1_evict = d1_inval = 0
    d2_hit = d2_miss = d2_evict = d2_inval = 0
    d3_hit = d3_miss = d3_evict = d3_inval = 0
    d_ctl_acc = d_ctl_lat = d_ctl_blocked = 0
    d_dev_acc = d_dev_hit = d_dev_act = 0
    d_act_bank: dict[int, int] = {}  # deferred per-bank activation counts

    def _flush() -> None:
        """Drain deferred bumps and publish the local clock."""
        nonlocal d_loads, d_stores, d_miss, d_load_miss, d_store_miss
        nonlocal d1_hit, d1_miss, d1_evict, d1_inval
        nonlocal d2_hit, d2_miss, d2_evict, d2_inval
        nonlocal d3_hit, d3_miss, d3_evict, d3_inval
        nonlocal d_ctl_acc, d_ctl_lat, d_ctl_blocked
        nonlocal d_dev_acc, d_dev_hit, d_dev_act
        if d_loads:
            c_loads.value += d_loads
            d_loads = 0
        if d_stores:
            c_stores.value += d_stores
            d_stores = 0
        if d_miss:
            c_miss.value += d_miss
            d_miss = 0
        if d_load_miss:
            c_load_miss.value += d_load_miss
            d_load_miss = 0
        if d_store_miss:
            c_store_miss.value += d_store_miss
            d_store_miss = 0
        if d1_hit or d1_miss or d1_evict or d1_inval:
            l1_stats.hits += d1_hit
            l1_stats.misses += d1_miss
            l1_stats.evictions += d1_evict
            l1_stats.invalidations += d1_inval
            d1_hit = d1_miss = d1_evict = d1_inval = 0
        if d2_hit or d2_miss or d2_evict or d2_inval:
            l2_stats.hits += d2_hit
            l2_stats.misses += d2_miss
            l2_stats.evictions += d2_evict
            l2_stats.invalidations += d2_inval
            d2_hit = d2_miss = d2_evict = d2_inval = 0
        if d3_hit or d3_miss or d3_evict or d3_inval:
            llc_stats.hits += d3_hit
            llc_stats.misses += d3_miss
            llc_stats.evictions += d3_evict
            llc_stats.invalidations += d3_inval
            d3_hit = d3_miss = d3_evict = d3_inval = 0
        if d_ctl_acc:
            ctl_stats.accesses += d_ctl_acc
            ctl_stats.total_latency_cycles += d_ctl_lat
            ctl_stats.blocked_cycles += d_ctl_blocked
            d_ctl_acc = d_ctl_lat = d_ctl_blocked = 0
        if d_dev_acc:
            dev_stats.accesses += d_dev_acc
            dev_stats.row_hits += d_dev_hit
            d_dev_acc = d_dev_hit = 0
        if d_dev_act:
            dev_stats.activations += d_dev_act
            per_bank = dev_stats.activations_per_bank
            for bank_id, count in d_act_bank.items():
                per_bank[bank_id] = per_bank.get(bank_id, 0) + count
            d_act_bank.clear()
            d_dev_act = 0
        machine.cycles = cycles

    def _retire(record: MemoryAccess) -> None:
        """Full PMU retire for a materialised record (state is flushed and
        access hooks are known to be empty when this runs)."""
        sample = pmu.on_access(record, machine.cycles)
        if sample is not None and machine.pmi_cost_cycles:
            machine.cycles += machine.pmi_cost_cycles
            machine.overhead_cycles += machine.pmi_cost_cycles
        machine._fire_due_timers()

    def _post_callbacks() -> None:
        """Deadline/until bookkeeping for an op whose timers already fired
        (callbacks may have moved the clock).  Always followed by a batch
        re-hoist; sets ``stopped`` when the run should end."""
        nonlocal cycles, until_left, stopped
        cycles = machine.cycles
        if cycles >= deadline:
            stopped = "max_cycles"
            return
        if until is not None:
            until_left -= 1
            if until_left == 0:
                until_left = check_every
                done = until(machine)
                cycles = machine.cycles  # the predicate may consume time
                if done:
                    stopped = "until"

    while stopped is None:
        # -- (re)hoist state a callback or slow-path op may have changed ------
        cycles = machine.cycles
        next_deadline = machine._next_deadline
        clflush_ok = memory.clflush_allowed
        # flush_all() replaces the set lists, so they rebind per batch.
        l1_sets = l1._sets
        l2_sets = l2._sets
        llc_sets = llc._sets
        device = controller.device
        dev_miss_fast = device.access_miss_fast
        dev_stats = device.stats
        open_rows = device._open_rows
        hit_cyc = device._timings_cycles[0]
        banks_per_rank = device._banks_per_rank
        decode = controller.mapping.decode
        ctl_stats = controller.stats
        trefi = device.refresh_engine.trefi_cycles
        trfc = device.refresh_engine.trfc_cycles
        hit_defer = c_loads._next_overflow is None and c_stores._next_overflow is None
        miss_defer = hit_defer and (
            c_miss._next_overflow is None
            and c_load_miss._next_overflow is None
            and c_store_miss._next_overflow is None
        )
        sampler = pmu.sampler
        if sampler is not None and sampler.enabled:
            scfg = sampler.config
            next_sample_at = sampler._next_sample_at
            sample_loads = scfg.sample_loads
            sample_stores = scfg.sample_stores
            sample_lat_min = scfg.latency_threshold_cycles
        else:
            next_sample_at = FAR_FUTURE
            sample_loads = sample_stores = False
            sample_lat_min = 0

        for op in it:
            kind = op[0]
            slow_op = False
            if kind == LOAD or kind == STORE:
                is_store = kind == STORE
                vaddr = op[1]
                frame = tlb_get(vaddr >> page_bits)
                if frame is None or listeners or hooks or not hit_defer:
                    slow_op = True  # TLB fill / record consumers / armed counter
                else:
                    paddr = frame | (vaddr & offset_mask)
                    # ---- inline cache walk (mirrors Cache.access_fill) ----
                    line = paddr >> l1_bits
                    cset = (
                        l1_sets[line & l1_mask]
                        if l1_simple
                        else l1_sets[l1_index(paddr)]
                    )
                    way = cset.lookup.get(line)
                    if way is not None:
                        cset.policy.on_hit(way)
                        d1_hit += 1
                        lat, level = lat_l1, "L1"
                    else:
                        d1_miss += 1
                        tags = cset.tags
                        if len(cset.lookup) < l1_ways:
                            way = tags.index(None)
                        else:
                            way = cset.policy.victim()
                            del cset.lookup[tags[way]]
                            d1_evict += 1
                        tags[way] = line
                        cset.lookup[line] = way
                        cset.policy.on_fill(way)
                        line = paddr >> l2_bits
                        cset = (
                            l2_sets[line & l2_mask]
                            if l2_simple
                            else l2_sets[l2_index(paddr)]
                        )
                        way = cset.lookup.get(line)
                        if way is not None:
                            cset.policy.on_hit(way)
                            d2_hit += 1
                            lat, level = lat_l2, "L2"
                        else:
                            d2_miss += 1
                            tags = cset.tags
                            if len(cset.lookup) < l2_ways:
                                way = tags.index(None)
                            else:
                                way = cset.policy.victim()
                                del cset.lookup[tags[way]]
                                d2_evict += 1
                            tags[way] = line
                            cset.lookup[line] = way
                            cset.policy.on_fill(way)
                            line = paddr >> llc_bits
                            if llc_simple:
                                cset = llc_sets[line & llc_mask]
                            else:
                                idx = llc_memo_get(line)
                                cset = llc_sets[
                                    idx if idx is not None else llc_index(paddr)
                                ]
                            way = cset.lookup.get(line)
                            if way is not None:
                                cset.policy.on_hit(way)
                                d3_hit += 1
                                lat, level = lat_l3, "L3"
                            else:
                                d3_miss += 1
                                tags = cset.tags
                                if len(cset.lookup) < llc_ways:
                                    way = tags.index(None)
                                    tags[way] = line
                                    cset.lookup[line] = way
                                    cset.policy.on_fill(way)
                                else:
                                    way = cset.policy.victim()
                                    evicted = tags[way]
                                    del cset.lookup[evicted]
                                    d3_evict += 1
                                    tags[way] = line
                                    cset.lookup[line] = way
                                    cset.policy.on_fill(way)
                                    # Inclusive LLC: back-invalidate.
                                    l2_inv_line(evicted)
                                    l1_inv_line(evicted)
                                level = ""
                    if level:
                        # ---- cache hit: the allocation-free path ----
                        cycles += lat
                        n += 1
                        if is_store:
                            stores_n += 1
                        else:
                            loads_n += 1
                        if (
                            next_sample_at <= cycles
                            and not is_store
                            and sample_loads
                            and lat >= sample_lat_min
                        ):
                            # Armed sampler and the load passes its
                            # filters: the offer must really happen (it
                            # records a sample or burns a tie-break draw).
                            _flush()
                            _retire(
                                MemoryAccess(vaddr, paddr, is_store, level, lat, False)
                            )
                            _post_callbacks()
                            break  # re-hoist (sampler/timer state changed)
                        if is_store:
                            d_stores += 1
                        else:
                            d_loads += 1
                    else:
                        # ---- LLC miss: DRAM access ----
                        t_mem = cycles + lat_miss
                        n += 1
                        dram_n += 1
                        if is_store:
                            stores_n += 1
                        else:
                            loads_n += 1
                        if observers or row_filters or not miss_defer:
                            # Defense-visible access or armed miss counter:
                            # full controller + PMU retire semantics.
                            _flush()
                            dram = controller.access(paddr, t_mem, is_store)
                            total_lat = lat_miss + dram.latency_cycles
                            cycles += total_lat
                            machine.cycles = cycles
                            _retire(
                                MemoryAccess(
                                    vaddr,
                                    paddr,
                                    is_store,
                                    "DRAM",
                                    total_lat,
                                    True,
                                    coord=dram.coord,
                                    activated=dram.activated,
                                    new_flip_count=dram.new_flip_count,
                                )
                            )
                            _post_callbacks()
                            break  # re-hoist (callbacks may have run)
                        # Plain DRAM access: the controller demand path
                        # inlined (refresh blocking + decode + device).
                        pos = t_mem % trefi
                        blocked = trfc - pos if pos < trfc else 0
                        ent = decode_memo_get(paddr)
                        if ent is None:
                            coord = decode(paddr)
                            if len(decode_memo) >= _DECODE_MEMO_MAX:
                                decode_memo.clear()
                            ent = (
                                coord,
                                coord.rank * banks_per_rank + coord.bank,
                            )
                            decode_memo[paddr] = ent
                        coord, bank = ent
                        if open_rows[bank] == coord.row:
                            # Row-buffer hit: no activation, no disturbance,
                            # no RowAccess allocation (DramDevice.access's
                            # hit arm, with its stats deferred).
                            d_dev_acc += 1
                            d_dev_hit += 1
                            dram_lat = hit_cyc + blocked
                            activated = False
                            flips_n = 0
                        else:
                            # Row-buffer miss: the allocation-free
                            # activation arm, with accesses/activations/
                            # per-bank stats deferred like the hit arm.
                            act_lat, flips_n = dev_miss_fast(
                                coord, bank, t_mem + blocked
                            )
                            dram_lat = act_lat + blocked
                            activated = True
                            d_dev_acc += 1
                            d_dev_act += 1
                            d_act_bank[bank] = d_act_bank.get(bank, 0) + 1
                        d_ctl_acc += 1
                        d_ctl_lat += dram_lat
                        d_ctl_blocked += blocked
                        cycles += lat_miss + dram_lat
                        if next_sample_at <= cycles and (
                            sample_stores
                            if is_store
                            else (
                                sample_loads
                                and lat_miss + dram_lat >= sample_lat_min
                            )
                        ):
                            _flush()
                            _retire(
                                MemoryAccess(
                                    vaddr,
                                    paddr,
                                    is_store,
                                    "DRAM",
                                    lat_miss + dram_lat,
                                    True,
                                    coord=coord,
                                    activated=activated,
                                    new_flip_count=flips_n,
                                )
                            )
                            _post_callbacks()
                            break  # re-hoist (sampler state changed)
                        d_miss += 1
                        if is_store:
                            d_stores += 1
                            d_store_miss += 1
                        else:
                            d_loads += 1
                            d_load_miss += 1
            elif kind == COMPUTE:
                cycles += op[1]
                n += 1
            elif kind == CLFLUSH:
                vaddr = op[1]
                frame = tlb_get(vaddr >> page_bits)
                if frame is None or not clflush_ok:
                    slow_op = True  # TLB fill, or raise ClflushRestrictedError
                else:
                    paddr = frame | (vaddr & offset_mask)
                    # Inline Cache.invalidate at each level.
                    line = paddr >> l1_bits
                    cset = (
                        l1_sets[line & l1_mask]
                        if l1_simple
                        else l1_sets[l1_index(paddr)]
                    )
                    way = cset.lookup.pop(line, None)
                    if way is not None:
                        cset.tags[way] = None
                        cset.policy.on_invalidate(way)
                        d1_inval += 1
                    line = paddr >> l2_bits
                    cset = (
                        l2_sets[line & l2_mask]
                        if l2_simple
                        else l2_sets[l2_index(paddr)]
                    )
                    way = cset.lookup.pop(line, None)
                    if way is not None:
                        cset.tags[way] = None
                        cset.policy.on_invalidate(way)
                        d2_inval += 1
                    line = paddr >> llc_bits
                    if llc_simple:
                        cset = llc_sets[line & llc_mask]
                    else:
                        idx = llc_memo_get(line)
                        cset = llc_sets[idx if idx is not None else llc_index(paddr)]
                    way = cset.lookup.pop(line, None)
                    if way is not None:
                        cset.tags[way] = None
                        cset.policy.on_invalidate(way)
                        d3_inval += 1
                    cycles += clflush_cycles
                    clflush_n += 1
                    n += 1
            elif kind == MFENCE:
                cycles += mfence_cycles
                n += 1
            else:
                slow_op = True  # PAIR_LOAD and unknown kinds

            if slow_op:
                # -- full reference semantics for this one op --
                _flush()
                outcome = machine.execute(op)  # may raise; state is synced
                n += 1
                if outcome is not None:
                    for record in outcome if type(outcome) is list else (outcome,):
                        if record.is_store:
                            stores_n += 1
                        else:
                            loads_n += 1
                        if record.level == "DRAM":
                            dram_n += 1
                elif kind == CLFLUSH:
                    clflush_n += 1
                _post_callbacks()
                break  # re-hoist (execute may have run callbacks)

            # -- shared epilogue for every deferred fast op -------------------
            if cycles >= next_deadline:
                _flush()
                machine._fire_due_timers()
                _post_callbacks()
                break  # re-hoist (timer callbacks ran)
            if cycles >= deadline:
                stopped = "max_cycles"
                break
            if until is not None:
                until_left -= 1
                if until_left == 0:
                    until_left = check_every
                    _flush()
                    done = until(machine)
                    cycles = machine.cycles
                    if done:
                        stopped = "until"
                    break  # re-hoist (the predicate saw the machine)
        else:
            stopped = "exhausted"
        _flush()

    result = RunResult(
        start_cycles=start_cycles, end_cycles=machine.cycles, ops_executed=n
    )
    result.loads = loads_n
    result.stores = stores_n
    result.clflushes = clflush_n
    result.dram_accesses = dram_n
    result.llc_misses = c_miss.value - start_misses
    result.new_flips = memory.flip_count() - start_flips
    result.overhead_cycles = machine.overhead_cycles - start_overhead
    result.stopped_by = stopped
    return result
