"""Memory-operation encoding for workload streams.

Operations are plain tuples for speed (millions are executed per
experiment): ``(kind, operand)`` where ``kind`` is one of the single-char
constants below.  The helper constructors are the public way to build them.
"""

from __future__ import annotations

from typing import Iterator, Tuple

LOAD = "L"
STORE = "S"
CLFLUSH = "F"
MFENCE = "M"
COMPUTE = "C"
PAIR_LOAD = "P"

#: One operation: (kind, operand).  The operand is a virtual address for
#: LOAD/STORE/CLFLUSH, a cycle count for COMPUTE, 0 for MFENCE, and an
#: (addr_a, addr_b) tuple for PAIR_LOAD.
Op = Tuple[str, int]

#: A workload is any iterator of Ops.
OpStream = Iterator[Op]


def load(vaddr: int) -> Op:
    """A load from ``vaddr``."""
    return (LOAD, vaddr)


def store(vaddr: int) -> Op:
    """A store to ``vaddr``."""
    return (STORE, vaddr)


def clflush(vaddr: int) -> Op:
    """Flush the cache line containing ``vaddr``."""
    return (CLFLUSH, vaddr)


def mfence() -> Op:
    """A memory fence (ordering cost only)."""
    return (MFENCE, 0)


def compute(cycles: int) -> Op:
    """``cycles`` of non-memory work."""
    return (COMPUTE, cycles)


def pair_load(vaddr_a: int, vaddr_b: int) -> Op:
    """Two *independent* loads issued together.

    Models the memory-level parallelism of an out-of-order core: the two
    loads overlap, so the pair costs ``max`` of the two latencies rather
    than their sum.  The CLFLUSH-free attack interleaves its two eviction
    sets this way (the paper's 880-cycle/338 ns iteration estimate is only
    reachable with the sets overlapping).
    """
    return (PAIR_LOAD, (vaddr_a, vaddr_b))
