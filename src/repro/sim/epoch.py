"""Window-level ("epoch") model for long-horizon overhead studies.

The cycle-level machine is exact but too slow to run seconds of SPEC-class
traffic, so the Figure 3/4 and Table 4/5 experiments use this model.  It
simulates ANVIL's control loop window by window:

- per stage-1 window, draw the benchmark's LLC miss count from its
  profile (lognormal with optional row-concentrated "hot phases") and
  apply the threshold test;
- per stage-2 window, draw ~``rate*ts`` PEBS samples from the profile's
  row-locality distribution and run the *same*
  :func:`repro.core.sampler.analyze_row_samples` the kernel module uses;
- accumulate the detector's overhead cycles (stage-1 bookkeeping, PEBS
  programming, per-sample PMI cost, selective-refresh reads) against the
  elapsed window time.

Since every benign detection on a benign workload is by definition a
false positive, the model directly yields Table 4/5's superfluous-refresh
rates and Figure 3/4's normalized execution times.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from ..core.config import AnvilConfig
from ..core.sampler import RowKey, analyze_row_samples
from ..dram.config import DramTimings
from ..units import Clock
from ..workloads.spec import SpecProfile, spec_profile, window_misses


@dataclass(frozen=True)
class EpochResult:
    """Outcome of one modelled run."""

    benchmark: str
    config_name: str
    horizon_s: float
    stage1_windows: int
    stage1_triggers: int
    stage2_windows: int
    false_detections: int
    superfluous_refreshes: int
    overhead_cycles: int
    total_cycles: int
    dram_refresh_penalty: float  # additional fractional time from refresh

    @property
    def trigger_fraction(self) -> float:
        return self.stage1_triggers / self.stage1_windows if self.stage1_windows else 0.0

    @property
    def fp_refreshes_per_sec(self) -> float:
        return self.superfluous_refreshes / self.horizon_s

    @property
    def overhead_fraction(self) -> float:
        return self.overhead_cycles / self.total_cycles if self.total_cycles else 0.0

    @property
    def normalized_time(self) -> float:
        """Execution time normalized to the unprotected 64 ms baseline."""
        return 1.0 + self.overhead_fraction + self.dram_refresh_penalty


def refresh_duty(timings: DramTimings) -> float:
    """Fraction of device time consumed by refresh commands."""
    return timings.trfc_ns / timings.trefi_ns


def double_refresh_normalized_time(
    profile: SpecProfile,
    base: DramTimings | None = None,
    factor: float = 2.0,
) -> float:
    """Figure 3's "Double Refresh" bar: the workload's DRAM-bound time
    grows by the extra refresh duty."""
    base = base or DramTimings()
    scaled = base.scaled_refresh(factor)
    extra_duty = refresh_duty(scaled) - refresh_duty(base)
    return 1.0 + profile.dram_time_fraction * extra_duty


class EpochModel:
    """ANVIL's control loop against one benchmark profile."""

    def __init__(
        self,
        profile: SpecProfile,
        config: AnvilConfig | None = None,
        config_name: str = "ANVIL-baseline",
        clock: Clock | None = None,
        timings: DramTimings | None = None,
        banks: int = 16,
        refresh_factor: float = 1.0,
        seed: int = 1,
    ) -> None:
        self.profile = profile
        self.config = config or AnvilConfig.baseline()
        self.config_name = config_name
        self.clock = clock or Clock()
        self.timings = timings or DramTimings()
        self.banks = banks
        self.refresh_factor = refresh_factor
        self.seed = seed

    # -- sampling helpers ---------------------------------------------------------

    def _bank_of_row(self, row: int) -> int:
        # Sequential rows interleave across banks before advancing the
        # in-bank row index (bank bits sit below row bits).
        return row % self.banks

    def _draw_rows(self, rng: random.Random, n_samples: int, hot: bool) -> list[RowKey]:
        """One window's sampled rows.

        Scattered (non-hot) samples walk the window's touched rows in time
        order, so they land on near-unique rows — a streaming workload's
        misses never revisit a row, and a huge-footprint pointer chaser's
        samples rarely coincide.  Hot-phase samples concentrate on the
        profile's few hot rows, which is what can (rarely) look like an
        attack.
        """
        profile = self.profile
        rows: list[RowKey] = []
        hot_set = [rng.randrange(1 << 20) for _ in range(profile.hot_rows)]
        window_base = rng.randrange(1 << 20)
        spacing = max(1.0, profile.touched_rows / max(1, n_samples))
        position = rng.random() * spacing
        for _ in range(n_samples):
            if hot and rng.random() < profile.hot_fraction:
                row = rng.choice(hot_set)
            else:
                row = window_base + int(position)
                position += spacing * (0.5 + rng.random())
            rows.append((0, self._bank_of_row(row), row))
        return rows

    # -- the run --------------------------------------------------------------------

    def run(self, horizon_s: float = 10.0) -> EpochResult:
        config = self.config
        clock = self.clock
        # crc32, not hash(): the stream must be a pure function of
        # (seed, benchmark) — identical in every process and interpreter
        # launch (PYTHONHASHSEED randomises str hashes), which is what
        # lets the sweep runner cache results and fan cells out to
        # workers without changing any number.
        rng = random.Random(
            (self.seed * 0x9E3779B1) ^ zlib.crc32(self.profile.name.encode())
        )
        tc_cycles = clock.cycles_from_ms(config.tc_ms)
        ts_cycles = clock.cycles_from_ms(config.ts_ms)
        samples_per_window = max(1, round(config.sampling_rate_hz * config.ts_ms / 1e3))
        refresh_read_cycles = 150

        horizon_cycles = clock.cycles_from_s(horizon_s)
        total_cycles = 0
        overhead = 0
        stage1_windows = stage1_triggers = stage2_windows = 0
        false_detections = superfluous = 0

        while total_cycles < horizon_cycles:
            # -- stage 1 ---------------------------------------------------------
            hot = rng.random() < self.profile.hot_phase_prob
            misses = window_misses(self.profile, config.tc_ms, rng, hot)
            total_cycles += tc_cycles
            overhead += config.stage1_cost_cycles
            stage1_windows += 1
            if misses < config.llc_miss_threshold:
                continue
            stage1_triggers += 1

            # -- stage 2 ---------------------------------------------------------
            hot2 = hot or rng.random() < self.profile.hot_phase_prob
            misses2 = window_misses(self.profile, config.ts_ms, rng, hot2)
            rows = self._draw_rows(rng, samples_per_window, hot2)
            total_cycles += ts_cycles
            overhead += 2 * config.stage2_setup_cost_cycles
            overhead += len(rows) * config.pmi_cost_cycles
            stage2_windows += 1

            analysis = analyze_row_samples(rows, misses2, config)
            if analysis.attack_detected:
                false_detections += 1
                victims = 2 * len(analysis.aggressors)  # radius-1 neighbours
                superfluous += victims
                overhead += victims * refresh_read_cycles

        base = DramTimings()
        if self.refresh_factor != 1.0:
            penalty = self.profile.dram_time_fraction * (
                refresh_duty(base.scaled_refresh(self.refresh_factor))
                - refresh_duty(base)
            )
        else:
            penalty = 0.0

        return EpochResult(
            benchmark=self.profile.name,
            config_name=self.config_name,
            horizon_s=horizon_s,
            stage1_windows=stage1_windows,
            stage1_triggers=stage1_triggers,
            stage2_windows=stage2_windows,
            false_detections=false_detections,
            superfluous_refreshes=superfluous,
            overhead_cycles=overhead,
            total_cycles=total_cycles,
            dram_refresh_penalty=penalty,
        )


def run_epoch_cell(
    benchmark: str,
    config: AnvilConfig | None = None,
    config_name: str = "ANVIL-baseline",
    horizon_s: float = 10.0,
    refresh_factor: float = 1.0,
    seed: int = 1,
) -> EpochResult:
    """One sweep cell: an :class:`EpochModel` run, addressable by name.

    This is the module-level entry the sweep runner's jobs reference
    (``repro.sim.epoch:run_epoch_cell``) — every epoch-model bench cell
    is an instance of it, so results are shareable across benches through
    the runner's cache.  ``EpochResult`` and ``AnvilConfig`` are plain
    frozen dataclasses, picklable in both directions.
    """
    return EpochModel(
        spec_profile(benchmark),
        config,
        config_name=config_name,
        refresh_factor=refresh_factor,
        seed=seed,
    ).run(horizon_s)
