"""Deterministic snapshot/restore blobs for simulated machine state.

A snapshot is the full pickled object graph of a value (typically a
:class:`~repro.sim.machine.Machine`, or a prefix context holding one)
wrapped in an integrity header: a magic tag plus a truncated SHA-256 of
the payload, mirroring the result-cache entry format.  Restoring
deserialises a *fresh* object graph, so many sweep cells can fork from
one snapshot without sharing mutable state — and because every piece of
machine state (caches, DRAM device + disturbance tracker, PMU/PEBS
counters, refresher/detector/sampler state, RNG streams) round-trips
bit-for-bit, a forked cell is indistinguishable from one that replayed
the warmup itself.

Snapshotability is gated on the canonical ``state_key()`` machinery of
cache replacement policies: a :class:`Machine` whose hierarchy contains
a policy reporting ``state_key() is None`` has no canonical state and
raises :class:`~repro.errors.SnapshotUnsupportedError` — as does any
object graph that fails to pickle (open sockets, lambdas registered as
access hooks, live generators).  Callers treat that as "run cold", never
as a failure.
"""

from __future__ import annotations

import hashlib
import io
import pickle
from typing import Any

from ..errors import SnapshotError, SnapshotUnsupportedError

#: Blob format: MAGIC + sha256(payload)[:CHECKSUM_BYTES] + payload.
MAGIC = b"RPSN1\n"
CHECKSUM_BYTES = 16


def machine_unsupported_reason(machine: Any) -> str | None:
    """Why ``machine`` cannot be snapshotted, or ``None`` if it can.

    The only structural obstacle is a cache replacement policy with no
    canonical state: ``state_key()`` returning ``None`` means the
    policy's behaviour cannot be reproduced from captured state, so a
    restored machine would silently diverge.  Sets are scanned in cache
    order (L1 outward) and set order, so the reported reason is stable.
    """
    hierarchy = machine.memory.hierarchy
    for level, cache in (("l1", hierarchy.l1), ("l2", hierarchy.l2), ("llc", hierarchy.llc)):
        for index, cset in enumerate(cache._sets):
            if cset.policy.state_key() is None:
                policy = type(cset.policy).__name__
                return (
                    f"replacement policy {policy} ({level} set {index})"
                    " reports no canonical state"
                )
    return None


class _SnapshotPickler(pickle.Pickler):
    """Pickler that vetoes machines with non-canonical policy state.

    ``reducer_override`` sees every object in the graph, so a Machine
    nested anywhere inside a prefix context (tuples, dicts, dataclasses)
    is still checked before a single byte of it is serialised.
    """

    def reducer_override(self, obj: Any):
        from .machine import Machine  # deferred: machine.py imports this module

        if isinstance(obj, Machine):
            reason = machine_unsupported_reason(obj)
            if reason is not None:
                raise SnapshotUnsupportedError(reason)
        return NotImplemented  # normal pickling for everything


def snapshot_value(value: Any) -> bytes:
    """Serialise ``value`` into a checksummed snapshot blob.

    Raises :class:`SnapshotUnsupportedError` when the value cannot be
    captured deterministically (non-canonical policy state, or any
    pickling failure); callers fall back to cold execution.
    """
    buffer = io.BytesIO()
    pickler = _SnapshotPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        pickler.dump(value)
    except SnapshotUnsupportedError:
        raise
    except Exception as exc:
        raise SnapshotUnsupportedError(
            f"value cannot be snapshotted: {type(exc).__name__}: {exc}"
        ) from exc
    payload = buffer.getvalue()
    checksum = hashlib.sha256(payload).digest()[:CHECKSUM_BYTES]
    return MAGIC + checksum + payload


def restore_value(blob: bytes) -> Any:
    """Deserialise a snapshot blob into a fresh object graph.

    Raises :class:`SnapshotError` on any integrity violation (wrong
    magic, truncated header, checksum mismatch, unpicklable payload) —
    a corrupt snapshot is *detected*, never partially restored.
    """
    header = len(MAGIC) + CHECKSUM_BYTES
    if not isinstance(blob, (bytes, bytearray)) or not blob.startswith(MAGIC):
        raise SnapshotError("snapshot blob has no valid integrity header")
    if len(blob) < header:
        raise SnapshotError("snapshot blob truncated before payload")
    checksum = bytes(blob[len(MAGIC):header])
    payload = bytes(blob[header:])
    if hashlib.sha256(payload).digest()[:CHECKSUM_BYTES] != checksum:
        raise SnapshotError("snapshot blob checksum mismatch")
    try:
        return pickle.loads(payload)
    except Exception as exc:  # checksum passed but unpicklable (renamed class, ...)
        raise SnapshotError(f"snapshot blob unpicklable: {exc}") from exc
