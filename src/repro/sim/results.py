"""Run-result records for machine executions."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RunResult:
    """Summary of one :meth:`repro.sim.machine.Machine.run` call."""

    start_cycles: int
    end_cycles: int
    ops_executed: int
    loads: int = 0
    stores: int = 0
    clflushes: int = 0
    llc_misses: int = 0
    dram_accesses: int = 0
    new_flips: int = 0
    overhead_cycles: int = 0
    stopped_by: str = "exhausted"  # "exhausted" | "max_cycles" | "until"
    extra: dict = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.end_cycles - self.start_cycles
