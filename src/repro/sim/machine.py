"""The simulated machine.

A :class:`Machine` owns the clock, memory system, and PMU, and executes
operation streams while firing software timers.  Time is a single integer
cycle counter; every architectural cost (cache latencies, DRAM timings,
CLFLUSH, PMI handling, detector bookkeeping) advances it, so a workload's
slowdown under ANVIL is simply the ratio of finishing times — the same
quantity the paper measures with wall clocks on real hardware.

Kernel-style software interacts through two mechanisms, mirroring the real
module:

- **timers** (:meth:`schedule_in` / :meth:`schedule_at`) for the tc/ts
  detection windows;
- **PMU feeds**: every retiring memory access updates counters and may be
  PEBS-sampled; each delivered sample charges ``pmi_cost_cycles`` to model
  the performance-monitoring interrupt plus record processing.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..mem import MemoryAccess, MemorySystem, MemorySystemConfig
from ..pmu import Event, Pmu
from ..units import Clock
from .fastpath import FAR_FUTURE, execute_fast
from .ops import CLFLUSH, COMPUTE, LOAD, MFENCE, PAIR_LOAD, STORE, Op
from .results import RunResult


@dataclass(frozen=True)
class MachineConfig:
    """Machine-level wiring: CPU frequency plus the memory system."""

    clock: Clock = field(default_factory=Clock)
    memory: MemorySystemConfig = field(default_factory=MemorySystemConfig)


TimerCallback = Callable[["Machine"], None]


class Machine:
    """One simulated core + memory system + PMU."""

    def __init__(self, config: MachineConfig | None = None) -> None:
        self.config = config or MachineConfig()
        self.clock = self.config.clock
        self.memory = MemorySystem(self.config.memory, self.clock)
        self.pmu = Pmu(self.clock.freq_hz)
        self.cycles = 0
        #: Cost charged per delivered PEBS sample (set by ANVIL when it
        #: arms sampling); models PMI entry + PEBS drain + task_struct walk.
        self.pmi_cost_cycles = 0
        self.overhead_cycles = 0
        self._timers: list[tuple[int, int, TimerCallback]] = []
        self._timer_seq = 0
        #: Cached deadline of the earliest pending timer (``FAR_FUTURE``
        #: when none), so the per-op "is a timer due?" check is a single
        #: int compare instead of a heap peek — the common zero-timer case
        #: in :meth:`execute`/:meth:`consume` costs one comparison.
        self._next_deadline = FAR_FUTURE
        self._pair_lcg = 0x2545F491
        self._access_hooks: list[Callable[[MemoryAccess, int], None]] = []

    # -- snapshot/restore ----------------------------------------------------------

    def snapshot(self) -> bytes:
        """Capture the whole machine — caches, DRAM device + disturbance
        tracker, PMU/PEBS counters, pending timers, RNG streams — into a
        checksummed blob that :meth:`restore` turns back into an
        independent, bit-identical machine.

        Raises :class:`~repro.errors.SnapshotUnsupportedError` when any
        replacement policy reports no canonical state (``state_key() is
        None``) or the object graph cannot be pickled (e.g. lambdas
        registered as access hooks); callers should fall back to cold
        execution in that case.
        """
        from .snapshot import snapshot_value  # deferred: snapshot imports machine

        return snapshot_value(self)

    @classmethod
    def restore(cls, blob: bytes) -> "Machine":
        """A fresh machine restored from a :meth:`snapshot` blob.

        Every restore deserialises an independent object graph, so many
        cells can fork from one blob without sharing mutable state.
        Raises :class:`~repro.errors.SnapshotError` on a corrupt blob or
        if the blob does not hold a machine.
        """
        from .snapshot import SnapshotError, restore_value

        machine = restore_value(blob)
        if not isinstance(machine, cls):
            raise SnapshotError(
                f"snapshot holds {type(machine).__name__}, not {cls.__name__}"
            )
        return machine

    # -- time --------------------------------------------------------------------

    def now_ms(self) -> float:
        return self.clock.ms_from_cycles(self.cycles)

    def consume(self, cycles: int, overhead: bool = False) -> None:
        """Advance time by ``cycles`` (software work, stalls...)."""
        self.cycles += cycles
        if overhead:
            self.overhead_cycles += cycles
        self._fire_due_timers()

    # -- timers --------------------------------------------------------------------

    def schedule_at(self, deadline_cycles: int, callback: TimerCallback) -> None:
        """Run ``callback(machine)`` at the first opportunity at or after
        ``deadline_cycles``."""
        self._timer_seq += 1
        heapq.heappush(self._timers, (deadline_cycles, self._timer_seq, callback))
        if deadline_cycles < self._next_deadline:
            self._next_deadline = deadline_cycles

    def schedule_in(self, delta_cycles: int, callback: TimerCallback) -> None:
        self.schedule_at(self.cycles + delta_cycles, callback)

    def schedule_in_ms(self, delta_ms: float, callback: TimerCallback) -> None:
        self.schedule_in(self.clock.cycles_from_ms(delta_ms), callback)

    def cancel_timers(self) -> None:
        """Drop all pending timers (experiment teardown)."""
        self._timers.clear()
        self._next_deadline = FAR_FUTURE

    def _fire_due_timers(self) -> None:
        if self.cycles < self._next_deadline:
            return
        timers = self._timers
        while timers and timers[0][0] <= self.cycles:
            _, _, callback = heapq.heappop(timers)
            callback(self)
        # Callbacks may have rescheduled; the heap top is authoritative.
        self._next_deadline = timers[0][0] if timers else FAR_FUTURE

    # -- access hooks -----------------------------------------------------------------

    def add_access_hook(self, hook: Callable[[MemoryAccess, int], None]) -> None:
        """Register a callback run after every memory access (defenses and
        diagnostics that need machine time)."""
        self._access_hooks.append(hook)

    def remove_access_hook(self, hook: Callable[[MemoryAccess, int], None]) -> None:
        self._access_hooks.remove(hook)

    # -- execution ----------------------------------------------------------------------

    def execute(self, op: Op) -> MemoryAccess | list[MemoryAccess] | None:
        """Execute a single operation; returns the access record(s) for
        loads/stores (a list for PAIR_LOAD)."""
        kind, operand = op
        if kind == LOAD or kind == STORE:
            record = self.memory.access(operand, self.cycles, is_store=(kind == STORE))
            self.cycles += record.latency_cycles
            self._retire(record)
            self._fire_due_timers()
            return record
        if kind == PAIR_LOAD:
            vaddr_a, vaddr_b = operand
            rec_a = self.memory.access(vaddr_a, self.cycles, is_store=False)
            rec_b = self.memory.access(vaddr_b, self.cycles, is_store=False)
            # Independent loads overlap in the out-of-order window.
            self.cycles += max(rec_a.latency_cycles, rec_b.latency_cycles)
            # Retirement order of overlapped loads is effectively random
            # from the PEBS sampler's viewpoint; alternate it so neither
            # address stream is systematically shielded from sampling.
            self._pair_lcg = (self._pair_lcg * 1103515245 + 12345) & 0x7FFFFFFF
            if self._pair_lcg & 0x10000:
                rec_a, rec_b = rec_b, rec_a
            self._retire(rec_a)
            self._retire(rec_b)
            self._fire_due_timers()
            return [rec_a, rec_b]
        if kind == CLFLUSH:
            self.cycles += self.memory.clflush(operand, self.cycles)
            self._fire_due_timers()
            return None
        if kind == MFENCE:
            self.cycles += self.memory.config.hierarchy.mfence_cycles
            self._fire_due_timers()
            return None
        if kind == COMPUTE:
            self.cycles += operand
            self._fire_due_timers()
            return None
        raise ValueError(f"unknown op kind {kind!r}")

    def _retire(self, record: MemoryAccess) -> None:
        """Post-retirement bookkeeping: PMU update + sampling cost + hooks."""
        sample = self.pmu.on_access(record, self.cycles)
        if sample is not None and self.pmi_cost_cycles:
            self.cycles += self.pmi_cost_cycles
            self.overhead_cycles += self.pmi_cost_cycles
        for hook in self._access_hooks:
            hook(record, self.cycles)

    def run(
        self,
        ops: Iterable[Op],
        max_cycles: int | None = None,
        until: Callable[["Machine"], bool] | None = None,
        check_every: int = 64,
    ) -> RunResult:
        """Execute ``ops`` until exhaustion, ``max_cycles`` elapsed, or
        ``until(machine)`` becomes true (checked every ``check_every`` ops).
        """
        start_cycles = self.cycles
        start_overhead = self.overhead_cycles
        miss_counter = self.pmu.counter(Event.LONGEST_LAT_CACHE_MISS)
        start_misses = miss_counter.read()
        start_flips = self.memory.flip_count()
        deadline = None if max_cycles is None else start_cycles + max_cycles
        result = RunResult(start_cycles=start_cycles, end_cycles=start_cycles, ops_executed=0)
        n = 0
        for op in ops:
            outcome = self.execute(op)
            n += 1
            if outcome is not None:
                records = outcome if isinstance(outcome, list) else (outcome,)
                for record in records:
                    if record.is_store:
                        result.stores += 1
                    else:
                        result.loads += 1
                    if record.level == "DRAM":
                        result.dram_accesses += 1
            elif op[0] == CLFLUSH:
                result.clflushes += 1
            if deadline is not None and self.cycles >= deadline:
                result.stopped_by = "max_cycles"
                break
            if until is not None and n % check_every == 0 and until(self):
                result.stopped_by = "until"
                break
        result.ops_executed = n
        result.end_cycles = self.cycles
        result.llc_misses = miss_counter.read() - start_misses
        result.new_flips = self.memory.flip_count() - start_flips
        result.overhead_cycles = self.overhead_cycles - start_overhead
        return result

    def run_fast(
        self,
        ops: Iterable[Op],
        max_cycles: int | None = None,
        until: Callable[["Machine"], bool] | None = None,
        check_every: int = 64,
    ) -> RunResult:
        """Execute ``ops`` through the fast-path engine.

        Bit-for-bit equivalent to :meth:`run` — identical
        :class:`RunResult`, PMU counters, cache/replacement state, and
        flip outcomes for any op stream — but several times faster: state
        is hoisted into locals and the per-access record allocation, heap
        peek, and call-chain dispatch are skipped on the common paths (see
        :mod:`repro.sim.fastpath`).
        """
        return execute_fast(self, ops, max_cycles=max_cycles, until=until, check_every=check_every)

    def run_turbo(
        self,
        workload,
        max_cycles: int | None = None,
        until: Callable[["Machine"], bool] | None = None,
        check_every: int = 64,
    ) -> RunResult:
        """Execute a workload through the analytic fast-forward engine.

        ``workload`` is a :class:`~repro.workloads.generators.Workload`
        (prepared on demand); plain op iterables are accepted and run
        through the fast path unchanged.  When the workload declares a
        steady program and no ``until`` predicate is given, whole periods
        are skipped analytically between detector decision points (see
        :mod:`repro.sim.turbo`); otherwise this is exactly
        :meth:`run_fast`.  Bit-for-bit equivalent to :meth:`run` either
        way.  Telemetry for the last call lands on ``self.turbo_stats``.
        """
        from .turbo import run_turbo as _run_turbo  # deferred: avoids cycle

        return _run_turbo(self, workload, max_cycles=max_cycles, until=until,
                          check_every=check_every)
