"""Simulated machine: CPU clock, memory system, PMU, and timers.

:class:`repro.sim.machine.Machine` executes streams of memory operations
(loads, stores, CLFLUSH, MFENCE, compute gaps) against the memory system,
keeping global time in CPU cycles; kernel-style software (ANVIL) hooks in
through timers and PMU interrupts.  :mod:`repro.sim.epoch` provides the
fast window-level model used for long-horizon SPEC overhead studies.
"""

from .ops import (
    CLFLUSH,
    COMPUTE,
    LOAD,
    MFENCE,
    PAIR_LOAD,
    STORE,
    Op,
    clflush,
    compute,
    load,
    mfence,
    pair_load,
    store,
)
from .machine import Machine, MachineConfig
from .results import RunResult
from .turbo import AccessProgram, TurboStats

__all__ = [
    "AccessProgram",
    "CLFLUSH",
    "COMPUTE",
    "LOAD",
    "MFENCE",
    "Machine",
    "MachineConfig",
    "Op",
    "PAIR_LOAD",
    "RunResult",
    "TurboStats",
    "STORE",
    "clflush",
    "compute",
    "load",
    "mfence",
    "pair_load",
    "store",
]
