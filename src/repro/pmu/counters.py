"""Programmable event counters with overflow interrupts.

ANVIL uses "the last-level cache miss counter facility that generates an
interrupt after N misses.  The count is set such that if the miss interrupt
arrives before the sample window timer interrupt, we know that the miss
threshold has been breached" (Section 3.3).  :class:`Counter` models that:
increment on events, fire a callback once the programmed period elapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import PmuError
from .events import Event


@dataclass
class OverflowInterrupt:
    """Delivered to the overflow callback."""

    event: Event
    count_at_overflow: int
    time_cycles: int


OverflowCallback = Callable[[OverflowInterrupt], None]


class Counter:
    """One hardware event counter."""

    def __init__(self, event: Event) -> None:
        self.event = event
        self.value = 0
        self._period: int | None = None
        self._next_overflow: int | None = None
        self._callback: OverflowCallback | None = None

    def reset(self) -> None:
        self.value = 0
        if self._period is not None:
            self._next_overflow = self._period

    def read(self) -> int:
        return self.value

    def program_overflow(self, period: int, callback: OverflowCallback) -> None:
        """Request an interrupt after ``period`` further events."""
        if period <= 0:
            raise PmuError(f"overflow period must be positive, got {period}")
        self._period = period
        self._next_overflow = self.value + period
        self._callback = callback

    def clear_overflow(self) -> None:
        self._period = None
        self._next_overflow = None
        self._callback = None

    def increment(self, time_cycles: int, amount: int = 1) -> None:
        self.value += amount
        if self._next_overflow is not None and self.value >= self._next_overflow:
            callback = self._callback
            count = self.value
            # Re-arm for the next period (hardware reload behaviour).
            self._next_overflow = self.value + (self._period or 0)
            if callback is not None:
                callback(OverflowInterrupt(self.event, count, time_cycles))
