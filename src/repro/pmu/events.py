"""Performance event identifiers.

Named after the Intel events the paper's kernel module programs, so that
ANVIL's code reads like the original (Section 3.3).
"""

from __future__ import annotations

from enum import Enum, auto


class Event(Enum):
    """Countable micro-architectural events."""

    #: Last-level cache misses (demand loads + stores), the stage-1 signal.
    LONGEST_LAT_CACHE_MISS = auto()

    #: Retired loads that missed the LLC — compared against the total miss
    #: count to decide whether to sample loads, stores, or both.
    MEM_LOAD_UOPS_MISC_RETIRED_LLC_MISS = auto()

    #: Retired stores that missed the LLC (complement of the above).
    MEM_STORE_UOPS_RETIRED_LLC_MISS = auto()

    #: All retired loads.
    MEM_UOPS_RETIRED_ALL_LOADS = auto()

    #: All retired stores.
    MEM_UOPS_RETIRED_ALL_STORES = auto()
