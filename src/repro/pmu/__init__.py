"""Performance-monitoring substrate.

Models the Intel PMU facilities ANVIL programs (paper Section 3.3):

- ``LONGEST_LAT_CACHE.MISS`` — LLC miss counting with an overflow
  interrupt after N events;
- ``MEM_TRANS_RETIRED.LOAD_LATENCY`` — PEBS load-latency sampling: loads
  whose latency exceeds a programmable threshold are sampled with their
  virtual address and data source;
- ``MEM_TRANS_RETIRED.PRECISE_STORE`` — precise-store sampling;
- ``MEM_LOAD_UOPS_MISC_RETIRED.LLC_MISS`` — retired load LLC-miss count
  (used to pick which facility to sample with).
"""

from .events import Event
from .counters import Counter, OverflowInterrupt
from .pebs import DataSource, PebsRecord, PebsSampler, SamplerConfig
from .pmu import Pmu

__all__ = [
    "Counter",
    "DataSource",
    "Event",
    "OverflowInterrupt",
    "PebsRecord",
    "PebsSampler",
    "Pmu",
    "SamplerConfig",
]
