"""The PMU facade: event counters plus the PEBS sampler.

The simulated machine feeds every retiring memory access into
:meth:`Pmu.on_access`; software (ANVIL) reads counters, programs overflow
interrupts, and enables/disables sampling — the same surface the kernel
module drives through perf MSRs.
"""

from __future__ import annotations

from ..mem import MemoryAccess
from .counters import Counter
from .events import Event
from .pebs import PebsRecord, PebsSampler, SamplerConfig


class Pmu:
    """Per-machine performance-monitoring unit."""

    def __init__(self, freq_hz: float) -> None:
        self.freq_hz = freq_hz
        self.counters: dict[Event, Counter] = {e: Counter(e) for e in Event}
        self.sampler: PebsSampler | None = None
        #: PEBS is per logical core: ops retiring on another core (the
        #: heavy-load co-runners) are sampled by that core's own facility
        #: and merged at drain time — they share the event counters but do
        #: not displace the monitored core's samples.
        self.aux_sampler: PebsSampler | None = None
        # Direct references for the per-access hot path.
        self._c_miss = self.counters[Event.LONGEST_LAT_CACHE_MISS]
        self._c_load_miss = self.counters[Event.MEM_LOAD_UOPS_MISC_RETIRED_LLC_MISS]
        self._c_store_miss = self.counters[Event.MEM_STORE_UOPS_RETIRED_LLC_MISS]
        self._c_loads = self.counters[Event.MEM_UOPS_RETIRED_ALL_LOADS]
        self._c_stores = self.counters[Event.MEM_UOPS_RETIRED_ALL_STORES]

    # -- counter access -----------------------------------------------------------

    def counter(self, event: Event) -> Counter:
        return self.counters[event]

    def read(self, event: Event) -> int:
        return self.counters[event].read()

    # -- sampling ---------------------------------------------------------------

    def configure_sampler(self, config: SamplerConfig) -> PebsSampler:
        """(Re)program the PEBS facility on every core; returns the
        monitored core's sampler."""
        self.sampler = PebsSampler(config, self.freq_hz)
        if self.aux_sampler is not None:
            self.aux_sampler = PebsSampler(
                SamplerConfig(
                    rate_hz=config.rate_hz,
                    latency_threshold_cycles=config.latency_threshold_cycles,
                    sample_loads=config.sample_loads,
                    sample_stores=config.sample_stores,
                    jitter=config.jitter,
                    seed=config.seed ^ 0xC02E,
                    arm_skip_probability=config.arm_skip_probability,
                ),
                self.freq_hz,
            )
        return self.sampler

    def enable_aux_core(self) -> None:
        """Model a second core contributing PEBS samples (heavy load)."""
        if self.aux_sampler is None:
            self.aux_sampler = PebsSampler(SamplerConfig(seed=0xC02E), self.freq_hz)

    def enable_sampling(self, time_cycles: int) -> None:
        if self.sampler is None:
            raise RuntimeError("configure_sampler() before enable_sampling()")
        self.sampler.enable(time_cycles)
        if self.aux_sampler is not None:
            self.aux_sampler.enable(time_cycles)

    def disable_sampling(self) -> None:
        if self.sampler is not None:
            self.sampler.disable()
        if self.aux_sampler is not None:
            self.aux_sampler.disable()

    def drain_samples(self) -> list[PebsRecord]:
        records: list[PebsRecord] = []
        if self.sampler is not None:
            records.extend(self.sampler.drain())
        if self.aux_sampler is not None:
            records.extend(self.aux_sampler.drain())
        return records

    # -- the event feed ------------------------------------------------------------

    def on_access(self, access: MemoryAccess, time_cycles: int) -> PebsRecord | None:
        """Update all counters/samplers for one retiring memory access.

        Returns the PEBS record if this access was sampled, so the machine
        can charge the PMI + record-drain cost to the running software.
        """
        if access.is_store:
            self._c_stores.increment(time_cycles)
        else:
            self._c_loads.increment(time_cycles)
        if access.llc_miss:
            self._c_miss.increment(time_cycles)
            if access.is_store:
                self._c_store_miss.increment(time_cycles)
            else:
                self._c_load_miss.increment(time_cycles)
        if self.sampler is not None and self.sampler.enabled:
            return self.sampler.offer(access, time_cycles)
        return None

    def on_access_other_core(self, access: MemoryAccess, time_cycles: int) -> None:
        """Feed an op retiring on another core: shared event counters,
        but that core's own PEBS facility (no PMI cost charged to the
        monitored core's workload)."""
        if access.is_store:
            self._c_stores.increment(time_cycles)
        else:
            self._c_loads.increment(time_cycles)
        if access.llc_miss:
            self._c_miss.increment(time_cycles)
            if access.is_store:
                self._c_store_miss.increment(time_cycles)
            else:
                self._c_load_miss.increment(time_cycles)
        if self.aux_sampler is not None and self.aux_sampler.enabled:
            self.aux_sampler.offer(access, time_cycles)
