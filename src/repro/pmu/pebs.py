"""PEBS-style precise sampling facilities.

Models the two facilities the paper uses (Section 3.3):

- **Load Latency** (``MEM_TRANS_RETIRED.LOAD_LATENCY``): hardware samples
  load operations probabilistically; a sampled load whose latency exceeds
  a programmable threshold is tagged with its data virtual address, data
  source, and latency.  ANVIL "set[s] the clock cycle value to match
  last-level cache miss latency so that we only sample loads that miss in
  the L3 cache".

- **Precise Store** (``MEM_TRANS_RETIRED.PRECISE_STORE``): samples the
  virtual address and data source of retiring stores; the data source
  distinguishes misses.

Sampling is time-paced at ``rate_hz`` (the paper uses 5000 samples/s ≈ 30
samples per 6 ms window) with deterministic seeded jitter so that a
perfectly periodic attack loop cannot phase-lock with the sampler.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum

from ..errors import PmuError
from ..mem import MemoryAccess


class DataSource(Enum):
    """Where a sampled operation's data came from."""

    L1 = "L1"
    L2 = "L2"
    L3 = "L3"
    DRAM = "DRAM"

    @classmethod
    def of_level(cls, level: str) -> "DataSource":
        return cls(level)


@dataclass(frozen=True)
class PebsRecord:
    """One PEBS sample: the fields the paper's detector consumes."""

    vaddr: int
    data_source: DataSource
    latency_cycles: int
    is_store: bool
    time_cycles: int


@dataclass(frozen=True)
class SamplerConfig:
    """PEBS programming."""

    rate_hz: float = 5000.0
    latency_threshold_cycles: int = 40  # just below an LLC hit+miss boundary
    sample_loads: bool = True
    sample_stores: bool = False
    jitter: float = 0.4  # +-20% interval jitter
    seed: int = 7
    #: Once a sample is due ("armed"), skip each eligible op with this
    #: probability before taking one.  0 = take the first eligible op.
    #: Nonzero values model multi-core PEBS fairness: ops from different
    #: cores retire interleaved, and hardware does not favour whichever
    #: stream happens to be offered first at equal timestamps.
    arm_skip_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise PmuError("sampling rate must be positive")
        if not (self.sample_loads or self.sample_stores):
            raise PmuError("sampler must observe loads, stores, or both")
        if not 0 <= self.jitter < 1:
            raise PmuError("jitter must be in [0, 1)")
        if not 0 <= self.arm_skip_probability < 1:
            raise PmuError("arm_skip_probability must be in [0, 1)")


class PebsSampler:
    """Time-paced sampler over the stream of memory accesses."""

    def __init__(self, config: SamplerConfig, freq_hz: float) -> None:
        self.config = config
        self._interval = freq_hz / config.rate_hz  # cycles between samples
        self._rng = random.Random(config.seed)
        self._next_sample_at = self._jittered(0.0)
        self.records: list[PebsRecord] = []
        self.enabled = False
        self.total_samples = 0

    def _jittered(self, base: float) -> float:
        j = self.config.jitter
        scale = 1.0 + j * (self._rng.random() - 0.5)
        return base + self._interval * scale

    def enable(self, time_cycles: int) -> None:
        self.enabled = True
        self._next_sample_at = self._jittered(float(time_cycles))

    def disable(self) -> None:
        self.enabled = False

    def drain(self) -> list[PebsRecord]:
        """Read and clear the PEBS buffer."""
        records, self.records = self.records, []
        return records

    def offer(self, access: MemoryAccess, time_cycles: int) -> PebsRecord | None:
        """Present one retiring memory operation to the sampler."""
        if not self.enabled:
            return None
        if access.is_store:
            if not self.config.sample_stores:
                return None
        elif not self.config.sample_loads:
            return None
        if time_cycles < self._next_sample_at:
            return None
        # Loads below the latency threshold are tagged but not recorded.
        if not access.is_store and (
            access.latency_cycles < self.config.latency_threshold_cycles
        ):
            return None
        # Stores are filtered by data source instead (misses only).
        if access.is_store and not access.llc_miss:
            return None
        # Armed: break ties between interleaved streams probabilistically.
        if self.config.arm_skip_probability and (
            self._rng.random() < self.config.arm_skip_probability
        ):
            return None
        record = PebsRecord(
            vaddr=access.vaddr,
            data_source=DataSource.of_level(access.level),
            latency_cycles=access.latency_cycles,
            is_store=access.is_store,
            time_cycles=time_cycles,
        )
        self.records.append(record)
        self.total_samples += 1
        self._next_sample_at = self._jittered(float(time_cycles))
        return record
