"""Result analysis and paper-style presentation helpers."""

from .metrics import geomean, normalized_times_summary, percent
from .tables import format_figure_series, format_table

__all__ = [
    "format_figure_series",
    "format_table",
    "geomean",
    "normalized_times_summary",
    "percent",
]
