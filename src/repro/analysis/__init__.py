"""Result analysis, paper-style presentation helpers, and the
determinism/equivalence static-analysis suite (:mod:`repro.analysis.lint`)."""

from .metrics import geomean, normalized_times_summary, percent
from .tables import format_figure_series, format_table

__all__ = [
    "format_figure_series",
    "format_table",
    "geomean",
    "normalized_times_summary",
    "percent",
    "run_lint",
]


def __getattr__(name: str):
    # The lint engine is imported lazily so `import repro.analysis` on the
    # hot result-presentation path never pays for the AST machinery.
    if name == "run_lint":
        from .lint import run_lint

        return run_lint
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
