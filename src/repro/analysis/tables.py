"""ASCII rendering of paper-style tables and figure series.

The benchmark harness prints every reproduced table/figure next to the
paper's reported values so EXPERIMENTS.md can be assembled by eye.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """A boxed, column-aligned ASCII table."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    rule = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out = []
    if title:
        out.append(title)
    out.append(rule)
    out.append(line(list(headers)))
    out.append(rule)
    out.extend(line(r) for r in text_rows)
    out.append(rule)
    return "\n".join(out)


def format_figure_series(
    title: str,
    series: dict[str, dict[str, float]],
    value_format: str = "{:.4f}",
    bar_scale: tuple[float, float] | None = None,
    bar_width: int = 40,
) -> str:
    """Render figure data as labelled values with optional ASCII bars.

    ``series`` maps series name -> {category -> value} (e.g. "ANVIL" ->
    {"mcf": 1.021, ...}).  When ``bar_scale=(lo, hi)`` is given, each value
    also gets a proportional bar, which makes the figure's shape visible
    in terminal output.
    """
    categories: list[str] = []
    for values in series.values():
        for cat in values:
            if cat not in categories:
                categories.append(cat)
    out = [title]
    for name, values in series.items():
        out.append(f"  [{name}]")
        for cat in categories:
            if cat not in values:
                continue
            value = values[cat]
            text = value_format.format(value)
            if bar_scale is not None:
                lo, hi = bar_scale
                frac = 0.0 if hi <= lo else min(1.0, max(0.0, (value - lo) / (hi - lo)))
                bar = "#" * int(round(frac * bar_width))
                out.append(f"    {cat:<12} {text:>9} |{bar}")
            else:
                out.append(f"    {cat:<12} {text:>9}")
    return "\n".join(out)
