"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json

from .engine import LintResult
from .findings import Finding


def _format_finding(finding: Finding) -> str:
    lines = [f"{finding.located()}  {finding.code}  {finding.message}"]
    if finding.hint:
        lines.append(f"    hint: {finding.hint}")
    return "\n".join(lines)


def render_text(result: LintResult) -> str:
    """Human-oriented report (one finding per stanza + a summary line)."""
    out: list[str] = []
    for finding in result.blocking:
        out.append(_format_finding(finding))
    if result.baselined:
        out.append(f"{len(result.baselined)} finding(s) excused by the baseline:")
        for finding in result.baselined:
            out.append(f"  {finding.located()}  {finding.code}  (baselined)")
    for entry in result.stale_baseline:
        out.append(
            "stale baseline entry (violation fixed — remove it): "
            f"{entry.get('path')}:{entry.get('line')} {entry.get('code')} "
            f"[{entry.get('fingerprint')}]"
        )
    summary = result.summary()
    out.append(
        f"checked {summary['files']} file(s): "
        f"{summary['blocking']} blocking, {summary['baselined']} baselined, "
        f"{summary['suppressed']} noqa-suppressed, "
        f"{summary['det_scope_modules']} module(s) in determinism scope"
    )
    out.append("lint: OK" if result.ok else "lint: FAILED")
    return "\n".join(out)


def render_json(result: LintResult) -> str:
    """Machine-oriented report (stable key order for diffing in CI)."""
    payload = {
        "version": 1,
        "summary": result.summary(),
        "findings": [f.to_dict() for f in result.blocking],
        "baselined": [f.to_dict() for f in result.baselined],
        "stale_baseline": result.stale_baseline,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
