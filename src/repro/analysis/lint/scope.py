"""Determinism scope: which modules the DET rule applies to.

The DET invariant is not "nothing in the repo may call ``hash()``" — it
is "nothing *reachable from* seed derivation, cache fingerprints,
journal records, or wire payloads may be nondeterministic".  This module
makes that reachability machine-checked: it builds the intra-package
import graph from the parsed ASTs (including imports deferred inside
functions) and computes the closure of a configured root set.  A module
inside the closure is DET-scoped; everything else (benchmarks, CLI
presentation, the linter itself) is not, and may freely use wall clocks.
"""

from __future__ import annotations

import ast
from collections import deque
from pathlib import Path


def module_name(path: Path) -> str | None:
    """The dotted module name of ``path``, or ``None`` for a file that is
    not part of a package (no ``__init__.py`` chain above it)."""
    path = path.resolve()
    parts: list[str] = []
    if path.name == "__init__.py":
        current = path.parent
    else:
        if not (path.parent / "__init__.py").exists():
            return None
        parts.append(path.stem)
        current = path.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return ".".join(reversed(parts)) if parts else None


def _resolve_relative(module: str, is_package: bool, node: ast.ImportFrom) -> str | None:
    """The absolute module an ``ImportFrom`` refers to, or ``None``."""
    if node.level == 0:
        return node.module
    # Level 1 from inside a package __init__ means the package itself;
    # from a plain module it means the containing package.
    parts = module.split(".")
    anchor = parts if is_package else parts[:-1]
    drop = node.level - 1
    if drop > len(anchor):
        return None
    base = anchor[: len(anchor) - drop]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def import_edges(tree: ast.AST, module: str, is_package: bool,
                 known: set[str]) -> set[str]:
    """Modules (within ``known``) that ``module`` imports.

    ``from pkg import name`` contributes both ``pkg`` (its ``__init__``
    runs) and ``pkg.name`` when that is itself a known module.
    """
    edges: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.name
                while name:
                    if name in known:
                        edges.add(name)
                    name = name.rpartition(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(module, is_package, node)
            if base is None:
                continue
            if base in known:
                edges.add(base)
            for alias in node.names:
                candidate = f"{base}.{alias.name}"
                if candidate in known:
                    edges.add(candidate)
    return edges


def det_closure(graph: dict[str, set[str]], roots: tuple[str, ...]) -> set[str]:
    """Every module reachable from ``roots`` over the import graph
    (roots included, unknown roots ignored)."""
    seen: set[str] = set()
    queue = deque(root for root in roots if root in graph)
    while queue:
        module = queue.popleft()
        if module in seen:
            continue
        seen.add(module)
        queue.extend(graph.get(module, ()) - seen)
    return seen
