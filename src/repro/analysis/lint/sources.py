"""Parsed source files and the lint configuration object."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .noqa import suppressions
from .scope import module_name


@dataclass
class SourceFile:
    """One parsed Python file under analysis."""

    path: Path  #: absolute path
    rel: str  #: display/baseline path (posix, repo-relative when possible)
    text: str
    tree: ast.AST | None  #: ``None`` when the file fails to parse
    parse_error: str | None = None
    module: str | None = None  #: dotted module name (``None`` outside packages)
    lines: list[str] = field(default_factory=list)
    noqa: dict[int, frozenset[str]] = field(default_factory=dict)

    @property
    def is_package_init(self) -> bool:
        return self.path.name == "__init__.py"

    def endswith(self, suffixes: tuple[str, ...]) -> bool:
        posix = self.path.as_posix()
        return any(posix.endswith(suffix) for suffix in suffixes)


def parse_source(path: Path, base: Path | None = None) -> SourceFile:
    """Read and parse ``path`` (parse failures are recorded, not raised)."""
    path = path.resolve()
    rel = path.as_posix()
    if base is not None:
        try:
            rel = path.relative_to(base.resolve()).as_posix()
        except ValueError:
            pass
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return SourceFile(path=path, rel=rel, text="", tree=None,
                          parse_error=f"unreadable: {exc}")
    try:
        tree = ast.parse(text, filename=str(path))
        error = None
    except SyntaxError as exc:
        tree, error = None, f"syntax error: {exc.msg} (line {exc.lineno})"
    lines = text.splitlines()
    return SourceFile(
        path=path, rel=rel, text=text, tree=tree, parse_error=error,
        module=module_name(path), lines=lines, noqa=suppressions(lines),
    )


@dataclass(frozen=True)
class LintConfig:
    """Everything the rule set needs to know about this repo's invariants.

    The defaults encode the real contracts (see DESIGN.md "Determinism
    invariants"); tests override fields to lint synthetic trees.
    """

    #: Rule families to run.
    rules: tuple[str, ...] = ("DET", "EQV", "KER", "ERR")

    # -- DET: determinism scope ------------------------------------------------
    #: Import-graph roots: the modules that derive seeds, fingerprint code,
    #: write journal records, or build wire payloads.  Everything they
    #: (transitively) import is determinism-scoped.
    det_roots: tuple[str, ...] = (
        "repro.runner.seeding",
        "repro.runner.cache",
        "repro.runner.checkpoint",
        "repro.runner.job",
        "repro.runner.runner",
        "repro.runner.worker",
        "repro.runner.backends.wire",
        "repro.runner.backends.tcp",
    )
    #: Treat every linted file as DET-scoped and DET-core (fixture trees
    #: and ad-hoc paths, where module names do not resolve).
    det_all: bool = False
    #: path-suffix -> dotted call names exempt there.  The timing shims
    #: measure per-cell wall-clock *telemetry* (``duration_s``), which is
    #: excluded from result equality, journal identity, and cache keys.
    det_allowed_calls: tuple[tuple[str, tuple[str, ...]], ...] = (
        ("repro/runner/worker.py", ("time.perf_counter",)),
        ("repro/runner/backends/base.py", ("time.perf_counter",)),
    )
    #: The serialization core: files whose *iteration order and JSON
    #: encoding* feed hashes, journal lines, or wire frames directly.
    det_core_suffixes: tuple[str, ...] = (
        "repro/runner/seeding.py",
        "repro/runner/cache.py",
        "repro/runner/checkpoint.py",
        "repro/runner/job.py",
        "repro/runner/backends/wire.py",
        "repro/sim/snapshot.py",
    )

    # -- EQV: engine observable parity -----------------------------------------
    #: (file suffix, class name, method name) of the reference engine.
    eqv_source: tuple[str, str, str] = ("repro/sim/machine.py", "Machine", "run")
    #: Files that must mirror every observable the reference writes.
    eqv_mirrors: tuple[str, ...] = ("repro/sim/fastpath.py", "repro/sim/turbo.py")
    #: The result class whose attribute writes are the observables.
    eqv_result_class: str = "RunResult"

    # -- KER: integer-exact kernels --------------------------------------------
    ker_suffixes: tuple[str, ...] = ("repro/sim/kernels.py",)

    # -- ERR: no swallowed exceptions ------------------------------------------
    #: Call names that count as "recording the error into a structured
    #: result" inside a broad handler.
    err_recorders: tuple[str, ...] = (
        "JobResult", "TaskOutcome", "record_failure", "warn",
    )
