"""The ``python -m repro lint`` command (parser wiring + handler).

Follows the ``cache verify`` convention: exit 0 on a clean tree, exit 1
when any non-baselined finding remains — so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from .baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    BaselineError,
    load_baseline,
    save_baseline,
)
from .engine import run_lint
from .reporting import render_json, render_text
from .rules import RULES
from .sources import LintConfig


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files/directories to lint (default: the repro package "
             "sources plus ./benchmarks when present)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        dest="fmt", help="report format (default text)")
    parser.add_argument("--rules", default=None, metavar="FAM[,FAM...]",
                        help="rule families to run (default: "
                             f"{','.join(sorted(RULES))})")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="baseline file of grandfathered findings "
                             f"(default: ./{DEFAULT_BASELINE_NAME} when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file (report everything)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the current findings to the baseline "
                             "file and exit 0 (each entry still needs a "
                             "justification filled in before commit)")
    parser.add_argument("--det-all", action="store_true",
                        help="treat every linted file as determinism-scoped "
                             "(fixture trees / ad-hoc paths)")


def default_paths() -> list[str]:
    """The repo's own sources: the installed ``repro`` package directory
    plus ``./benchmarks`` when run from the repo root."""
    import repro

    paths = [os.path.dirname(os.path.abspath(repro.__file__))]
    if os.path.isdir("benchmarks"):
        paths.append("benchmarks")
    return paths


def run(args: argparse.Namespace) -> int:
    if args.rules:
        families = tuple(
            token.strip().upper() for token in args.rules.split(",") if token.strip()
        )
    else:
        families = LintConfig.rules
    config = LintConfig(rules=families, det_all=args.det_all)

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        if Path(DEFAULT_BASELINE_NAME).is_file():
            baseline_path = DEFAULT_BASELINE_NAME

    baseline: Baseline | None = None
    if baseline_path is not None and not args.no_baseline and not args.write_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    paths = list(args.paths) or default_paths()
    try:
        result = run_lint(paths, config=config, baseline=baseline)
    except ValueError as exc:  # unknown rule family from --rules
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE_NAME
        save_baseline(target, result.blocking)
        print(f"wrote {len(result.blocking)} finding(s) to {target}")
        return 0

    print(render_json(result) if args.fmt == "json" else render_text(result))
    return 0 if result.ok else 1
