"""``# repro: noqa[RULE]`` suppression comments.

A violation is suppressed when its line carries a repro noqa comment that
either names no rules (blanket) or names the finding's rule family
(``DET``) or exact code (``DET003``).  The marker is deliberately
namespaced (``repro:``) so it never collides with flake8/ruff ``noqa``
semantics, and rule lists are explicit so a suppression documents *what*
invariant is being waived at that site.
"""

from __future__ import annotations

import re

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)

#: Sentinel for a blanket (rule-less) suppression.
ALL_RULES = "*"


def suppressions(lines: list[str]) -> dict[int, frozenset[str]]:
    """Map of 1-based line number -> suppressed rule tokens.

    Tokens are upper-cased rule families or codes; a blanket ``noqa``
    yields ``{ALL_RULES}``.
    """
    out: dict[int, frozenset[str]] = {}
    for i, line in enumerate(lines, start=1):
        if "#" not in line:
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            out[i] = frozenset((ALL_RULES,))
        else:
            out[i] = frozenset(
                token.strip().upper() for token in rules.split(",") if token.strip()
            )
    return out


def is_suppressed(rule: str, code: str, line: int, noqa: dict[int, frozenset[str]]) -> bool:
    tokens = noqa.get(line)
    if not tokens:
        return False
    return ALL_RULES in tokens or rule.upper() in tokens or code.upper() in tokens
