"""The lint engine: collect, parse, scope, run rules, filter, report.

:func:`run_lint` is the single entry point (the CLI and the test suite
both call it).  Pipeline:

1. collect ``.py`` files from the given paths (skipping caches and
   hidden directories), parse each once;
2. build the intra-package import graph and compute the DET closure;
3. run every requested rule over the shared :class:`LintContext`;
4. assign baseline fingerprints, drop ``# repro: noqa[RULE]``-suppressed
   findings, then split the rest against the baseline.

A file that fails to parse is itself a blocking ``PARSE`` finding — a
linter that silently skips unparseable determinism-critical code would
be the exact failure mode this suite exists to prevent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .baseline import Baseline
from .findings import Finding, assign_fingerprints
from .noqa import is_suppressed
from .rules import RULES, LintContext
from .scope import det_closure, import_edges
from .sources import LintConfig, SourceFile, parse_source

_SKIP_DIRS = {"__pycache__", ".git", ".cache", "results", "quarantine"}


@dataclass
class LintResult:
    """Outcome of one lint run."""

    files: list[SourceFile] = field(default_factory=list)
    #: Findings that block (not suppressed, not baselined).
    blocking: list[Finding] = field(default_factory=list)
    #: Findings excused by the committed baseline.
    baselined: list[Finding] = field(default_factory=list)
    #: Count of findings silenced by ``# repro: noqa`` comments.
    suppressed: int = 0
    #: Baseline entries that no longer match any finding.
    stale_baseline: list[dict] = field(default_factory=list)
    det_scope: set[str] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        return not self.blocking

    def summary(self) -> dict:
        return {
            "files": len(self.files),
            "blocking": len(self.blocking),
            "baselined": len(self.baselined),
            "suppressed": self.suppressed,
            "stale_baseline": len(self.stale_baseline),
            "det_scope_modules": len(self.det_scope),
            "ok": self.ok,
        }


def collect_files(paths: list[str | Path], base: Path | None = None) -> list[SourceFile]:
    """Parse every ``.py`` file under ``paths`` (deduplicated, sorted)."""
    base = base or Path.cwd()
    seen: set[Path] = set()
    ordered: list[Path] = []

    def add(path: Path) -> None:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            ordered.append(resolved)

    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if any(part in _SKIP_DIRS or part.startswith(".")
                       for part in sub.relative_to(path).parts[:-1]):
                    continue
                add(sub)
        elif path.suffix == ".py":
            add(path)
    return [parse_source(path, base=base) for path in ordered]


def build_det_scope(files: list[SourceFile], config: LintConfig) -> set[str]:
    """The determinism closure over the linted files' import graph."""
    known = {f.module for f in files if f.module is not None}
    graph: dict[str, set[str]] = {}
    for src in files:
        if src.module is None or src.tree is None:
            continue
        graph[src.module] = import_edges(
            src.tree, src.module, src.is_package_init, known
        )
    return det_closure(graph, config.det_roots)


def run_lint(
    paths: list[str | Path],
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
    base: Path | None = None,
) -> LintResult:
    """Lint ``paths`` and return the filtered result (see module docstring)."""
    config = config or LintConfig()
    files = collect_files(paths, base=base)
    ctx = LintContext(
        files=files, config=config, det_scope=build_det_scope(files, config),
    )

    raw: list[Finding] = []
    for src in files:
        if src.parse_error is not None:
            raw.append(Finding(
                rule="PARSE", code="PARSE001", path=src.rel, line=1, col=0,
                message=src.parse_error,
                hint="fix the file; unparseable code cannot be verified",
            ))
    for family in config.rules:
        rule_cls = RULES.get(family)
        if rule_cls is None:
            raise ValueError(
                f"unknown lint rule {family!r} (known: {', '.join(sorted(RULES))})"
            )
        raw.extend(rule_cls().run(ctx))

    lines_by_path = {src.rel: src.lines for src in files}
    noqa_by_path = {src.rel: src.noqa for src in files}
    fingerprinted = assign_fingerprints(raw, lines_by_path)

    kept: list[Finding] = []
    suppressed = 0
    for finding in fingerprinted:
        noqa = noqa_by_path.get(finding.path, {})
        if is_suppressed(finding.rule, finding.code, finding.line, noqa):
            suppressed += 1
        else:
            kept.append(finding)

    result = LintResult(files=files, suppressed=suppressed,
                        det_scope=ctx.det_scope)
    if baseline is None:
        result.blocking = kept
    else:
        result.blocking, result.baselined, result.stale_baseline = (
            baseline.split(kept)
        )
    return result
