"""Determinism & engine-equivalence static analysis (``python -m repro lint``).

An AST-based lint suite that machine-checks the coding invariants every
bit-identical-results guarantee in this repo rests on:

=======  ==============================================================
``DET``  nothing reachable from seed derivation, ``code_fingerprint``,
         journal records, or wire payloads may call ``hash()``/``id()``/
         wall clocks/``os.urandom``/the unseeded global RNG; the
         serialization core must iterate sorted and ``json.dumps`` with
         ``sort_keys=True``
``EQV``  every observable ``Machine.run`` writes on its ``RunResult``
         must also be written (or aggregated) by the fastpath and turbo
         engines
``KER``  ``repro.sim.kernels`` stays integer-exact: no float literals,
         no true division, no ``math.*``
``ERR``  no broad ``except Exception`` that swallows without re-raising,
         returning, or recording a structured result
=======  ==============================================================

Suppressions are explicit (``# repro: noqa[DET]``), grandfathered
findings live in a committed baseline (``.repro-lint-baseline.json``),
and the CLI exits nonzero on any blocking finding so CI gates on it.
"""

from .baseline import Baseline, load_baseline, save_baseline
from .engine import LintResult, collect_files, run_lint
from .findings import Finding
from .reporting import render_json, render_text
from .rules import RULES
from .sources import LintConfig

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintResult",
    "RULES",
    "collect_files",
    "load_baseline",
    "render_json",
    "render_text",
    "run_lint",
    "save_baseline",
]
