"""DET — determinism of everything feeding seeds, fingerprints, journal
records, and wire payloads.

Two tiers, both scoped by the import-graph closure in
:mod:`repro.analysis.lint.scope`:

* **Banned calls** (any DET-scoped module): ``hash()`` and ``id()`` are
  process-randomized / address-based; ``time.time`` and
  ``time.perf_counter`` read wall clocks; ``os.urandom`` is explicit
  entropy; module-level ``random.*`` uses the unseeded global RNG.  The
  seeded ``random.Random(seed)`` constructor is the sanctioned form;
  ``time.monotonic``/``time.sleep`` are scheduling, not results, and stay
  legal.
* **Serialization core** (the files that *build* hashed/framed bytes):
  iterating a dict view or a set without ``sorted(...)`` bakes hash-seed
  or insertion order into the output, and ``json.dumps`` without
  ``sort_keys=True`` bakes dict order into journal lines / wire frames.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..sources import SourceFile
from .base import LintContext, Rule, dotted_name

#: dotted call name -> (code, message, hint)
_BANNED_CALLS = {
    "hash": ("DET001",
             "builtin hash() is randomized per process (PYTHONHASHSEED)",
             "use zlib.crc32 or repro.runner.seeding.stable_hash instead"),
    "id": ("DET002",
           "id() is a memory address; it differs across runs and workers",
           "derive identity from the object's data, not its address"),
    "time.time": ("DET003",
                  "wall-clock time.time() in determinism-scoped code",
                  "machine time is the simulated cycle counter; wall clocks "
                  "may only feed telemetry (see the worker timing shims)"),
    "time.perf_counter": ("DET003",
                          "wall-clock time.perf_counter() in determinism-scoped code",
                          "machine time is the simulated cycle counter; wall clocks "
                          "may only feed telemetry (see the worker timing shims)"),
    "perf_counter": ("DET003",
                     "wall-clock perf_counter() in determinism-scoped code",
                     "machine time is the simulated cycle counter; wall clocks "
                     "may only feed telemetry (see the worker timing shims)"),
    "os.urandom": ("DET004",
                   "os.urandom() is entropy; results must be a pure function "
                   "of (grid, root seed)",
                   "derive bytes from a seeded digest (hashlib over stable inputs)"),
    "urandom": ("DET004",
                "urandom() is entropy; results must be a pure function "
                "of (grid, root seed)",
                "derive bytes from a seeded digest (hashlib over stable inputs)"),
}

_DICT_VIEWS = ("keys", "values", "items")


class DetRule(Rule):
    FAMILY = "DET"

    def run(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for src in ctx.parsed():
            in_scope = ctx.config.det_all or (
                src.module is not None and src.module in ctx.det_scope
            )
            if not in_scope:
                continue
            allowed = self._allowed_for(src, ctx)
            findings.extend(self._check_calls(src, allowed))
            if ctx.config.det_all or src.endswith(ctx.config.det_core_suffixes):
                findings.extend(self._check_core(src))
        return findings

    @staticmethod
    def _allowed_for(src: SourceFile, ctx: LintContext) -> frozenset[str]:
        allowed: set[str] = set()
        posix = src.path.as_posix()
        for suffix, names in ctx.config.det_allowed_calls:
            if posix.endswith(suffix):
                allowed.update(names)
                # Accept both the dotted and from-imported spellings.
                allowed.update(name.rpartition(".")[2] for name in names)
        return frozenset(allowed)

    def _check_calls(self, src: SourceFile, allowed: frozenset[str]) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in _BANNED_CALLS and name not in allowed:
                code, message, hint = _BANNED_CALLS[name]
                findings.append(Finding(
                    rule=self.FAMILY, code=code, path=src.rel,
                    line=node.lineno, col=node.col_offset,
                    message=message, hint=hint,
                ))
            elif (name.startswith("random.") and name.count(".") == 1
                    and name != "random.Random"):
                findings.append(Finding(
                    rule=self.FAMILY, code="DET005", path=src.rel,
                    line=node.lineno, col=node.col_offset,
                    message=f"{name}() uses the unseeded module-level RNG",
                    hint="construct random.Random(seed) with a derived seed "
                         "(repro.runner.seeding.derive_seed)",
                ))
        return findings

    def _check_core(self, src: SourceFile) -> list[Finding]:
        """Serialization-core checks: iteration order + JSON key order."""
        findings: list[Finding] = []
        sorted_wrapped = self._sorted_wrapped(src.tree)
        for node in ast.walk(src.tree):
            iters: list[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                if id(node) not in sorted_wrapped:
                    iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                findings.extend(self._check_iter(src, it))
            if isinstance(node, ast.Call):
                findings.extend(self._check_dumps(src, node))
        return findings

    @staticmethod
    def _sorted_wrapped(tree: ast.AST) -> set[int]:
        """ids of comprehension nodes passed directly to ``sorted(...)``
        (their iteration order is laundered by the sort)."""
        wrapped: set[int] = set()
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                    and node.func.id == "sorted"):
                for arg in node.args:
                    if isinstance(arg, (ast.ListComp, ast.SetComp,
                                        ast.GeneratorExp)):
                        wrapped.add(id(arg))
        return wrapped

    def _check_iter(self, src: SourceFile, it: ast.expr) -> list[Finding]:
        if (isinstance(it, ast.Call) and isinstance(it.func, ast.Attribute)
                and it.func.attr in _DICT_VIEWS and not it.args):
            return [Finding(
                rule=self.FAMILY, code="DET006", path=src.rel,
                line=it.lineno, col=it.col_offset,
                message=f"iterating .{it.func.attr}() in serialization-core "
                        "code without sorted()",
                hint="wrap in sorted(...) so the emitted order is a function "
                     "of the data, not of insertion history",
            )]
        is_set_call = (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                       and it.func.id in ("set", "frozenset"))
        if isinstance(it, ast.Set) or is_set_call:
            return [Finding(
                rule=self.FAMILY, code="DET007", path=src.rel,
                line=it.lineno, col=it.col_offset,
                message="iterating a set in serialization-core code "
                        "(order follows the per-process string hash)",
                hint="iterate sorted(the_set) instead",
            )]
        return []

    def _check_dumps(self, src: SourceFile, node: ast.Call) -> list[Finding]:
        name = dotted_name(node.func)
        if name not in ("json.dumps", "json.dump"):
            return []
        for kw in node.keywords:
            if kw.arg == "sort_keys":
                if isinstance(kw.value, ast.Constant) and kw.value.value is True:
                    return []
                break
        return [Finding(
            rule=self.FAMILY, code="DET008", path=src.rel,
            line=node.lineno, col=node.col_offset,
            message=f"{name}() without sort_keys=True in serialization-core "
                    "code (journal/wire bytes would depend on dict order)",
            hint="pass sort_keys=True so identical records serialize "
                 "identically everywhere",
        )]
