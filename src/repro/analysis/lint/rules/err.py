"""ERR — broad exception handlers must not swallow.

``except Exception`` (or bare ``except:``) is legal here only when the
handler visibly *does something* with the failure: re-raises, returns a
value the caller interprets, or records the error into a structured
result (``JobResult``/``TaskOutcome``/``record_failure``/``warnings.warn``
— the recorder set is configurable).  A broad handler whose body merely
``pass``es or ``continue``s turns a worker crash, a corrupt record, or a
genuine bug into silence — which is exactly how a sweep quietly stops
being bit-identical.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from .base import LintContext, Rule

_BROAD = ("Exception", "BaseException")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True
    if isinstance(node, ast.Name):
        return node.id in _BROAD
    if isinstance(node, ast.Tuple):
        return any(isinstance(e, ast.Name) and e.id in _BROAD for e in node.elts)
    return False


class ErrRule(Rule):
    FAMILY = "ERR"

    def run(self, ctx: LintContext) -> list[Finding]:
        recorders = set(ctx.config.err_recorders)
        findings: list[Finding] = []
        for src in ctx.parsed():
            for node in ast.walk(src.tree):
                if not isinstance(node, ast.ExceptHandler) or not _is_broad(node):
                    continue
                if self._handles(node.body, recorders):
                    continue
                caught = ("bare except" if node.type is None
                          else f"except {ast.unparse(node.type)}")
                findings.append(Finding(
                    rule=self.FAMILY, code="ERR001", path=src.rel,
                    line=node.lineno, col=node.col_offset,
                    message=f"{caught} swallows the error (no raise, no "
                            "return, no structured record)",
                    hint="narrow the exception type, re-raise, or attach the "
                         "error to a structured result (JobResult/TaskOutcome)",
                ))
        return findings

    @staticmethod
    def _handles(body: list[ast.stmt], recorders: set[str]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Raise, ast.Return)):
                    return True
                if isinstance(node, ast.Call):
                    func = node.func
                    name = (func.id if isinstance(func, ast.Name)
                            else func.attr if isinstance(func, ast.Attribute)
                            else None)
                    if name in recorders:
                        return True
        return False
