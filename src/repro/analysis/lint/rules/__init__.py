"""Rule registry: family token -> rule class."""

from .base import LintContext, Rule
from .det import DetRule
from .eqv import EqvRule
from .err import ErrRule
from .ker import KerRule

RULES: dict[str, type[Rule]] = {
    DetRule.FAMILY: DetRule,
    EqvRule.FAMILY: EqvRule,
    KerRule.FAMILY: KerRule,
    ErrRule.FAMILY: ErrRule,
}

__all__ = ["RULES", "LintContext", "Rule", "DetRule", "EqvRule", "ErrRule", "KerRule"]
