"""The rule contract.

A rule is a class with a ``FAMILY`` (the token used in ``--rules``,
noqa comments, and baselines) and a ``run(ctx)`` returning findings.
Rules see the whole project (:class:`LintContext`), so cross-file checks
(EQV) and scope-aware checks (DET) are first-class rather than bolted on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..findings import Finding
from ..sources import LintConfig, SourceFile


@dataclass
class LintContext:
    """Everything a rule may inspect."""

    files: list[SourceFile]
    config: LintConfig
    #: Dotted module names inside the determinism closure (see scope.py).
    det_scope: set[str] = field(default_factory=set)

    def parsed(self) -> list[SourceFile]:
        return [f for f in self.files if f.tree is not None]


class Rule:
    """Base class; subclasses set ``FAMILY`` and implement ``run``."""

    FAMILY = "?"

    def run(self, ctx: LintContext) -> list[Finding]:
        raise NotImplementedError


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
