"""KER — the batch kernels stay integer-exact.

``repro.sim.kernels`` promises that its numpy and stdlib implementations
return bit-identical values, which only holds while every kernel is pure
integer arithmetic: one float literal, one true division, or one
``math.*`` call and the two backends can disagree in the last ulp —
which the sweep cache would then happily serve cross-engine.  Float
accumulation that *must* exist (DRAM disturbance) lives outside this
module by design.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from .base import LintContext, Rule


class KerRule(Rule):
    FAMILY = "KER"

    def run(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for src in ctx.parsed():
            if not (ctx.config.det_all or src.endswith(ctx.config.ker_suffixes)):
                continue
            for node in ast.walk(src.tree):
                if isinstance(node, ast.Constant) and type(node.value) is float:
                    findings.append(Finding(
                        rule=self.FAMILY, code="KER001", path=src.rel,
                        line=node.lineno, col=node.col_offset,
                        message=f"float literal {node.value!r} in an "
                                "integer-exact kernel module",
                        hint="kernels must be pure integer arithmetic; move "
                             "float math to the caller",
                    ))
                elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                    findings.append(Finding(
                        rule=self.FAMILY, code="KER002", path=src.rel,
                        line=node.lineno, col=node.col_offset,
                        message="true division (/) in an integer-exact "
                                "kernel module",
                        hint="use floor division (//) or restructure to "
                             "avoid division",
                    ))
                elif (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id == "math"):
                    findings.append(Finding(
                        rule=self.FAMILY, code="KER003", path=src.rel,
                        line=node.lineno, col=node.col_offset,
                        message=f"math.{node.func.attr}() in an integer-exact "
                                "kernel module",
                        hint="math.* returns floats; keep kernels integral",
                    ))
        return findings
