"""EQV — engine observable parity.

The reference interpreter (``Machine.run``) defines the observable
surface of an execution: every attribute it writes on its ``RunResult``
is a promise that ``run_fast`` and ``run_turbo`` reproduce bit-for-bit.
The runtime equivalence suites check *values*; this rule checks
*coverage*: a counter added to ``Machine.run`` that no mirror engine
writes (or aggregates) is flagged before any test can probabilistically
miss it.

Mechanically: collect attribute writes (plus constructor keywords) on
variables bound to ``RunResult(...)`` inside the source method, then
require each such attribute to be written somewhere in every mirror
file.  Mirrors may write more (engine telemetry); they may not write
less.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..sources import SourceFile
from .base import LintContext, Rule


def result_writes(nodes: list[ast.stmt], result_class: str) -> tuple[set[str], int]:
    """Attributes written on ``result_class`` instances within ``nodes``.

    Returns the attribute set and the line of the first construction
    (0 when no instance is built here).
    """
    tracked: set[str] = set()
    attrs: set[str] = set()
    first_line = 0
    for stmt in nodes:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                value = node.value
                if (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
                        and value.func.id == result_class):
                    first_line = first_line or value.lineno
                    attrs.update(kw.arg for kw in value.keywords if kw.arg)
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            tracked.add(target.id)
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in tracked):
                    attrs.add(target.attr)
    return attrs, first_line


class EqvRule(Rule):
    FAMILY = "EQV"

    def run(self, ctx: LintContext) -> list[Finding]:
        config = ctx.config
        source_suffix, class_name, method_name = config.eqv_source
        source = self._find(ctx, source_suffix)
        if source is None:
            return []
        method = self._method(source, class_name, method_name)
        if method is None:
            return [Finding(
                rule=self.FAMILY, code="EQV000", path=source.rel, line=1, col=0,
                message=f"cannot find {class_name}.{method_name} in {source.rel}",
                hint="update eqv_source in the lint configuration",
            )]
        observables, _ = result_writes(method.body, config.eqv_result_class)
        findings: list[Finding] = []
        for suffix in config.eqv_mirrors:
            mirror = self._find(ctx, suffix)
            if mirror is None:
                continue
            mirrored, line = result_writes(
                mirror.tree.body, config.eqv_result_class,
            )
            for attr in sorted(observables - mirrored):
                findings.append(Finding(
                    rule=self.FAMILY, code="EQV001", path=mirror.rel,
                    line=line or 1, col=0,
                    message=f"{class_name}.{method_name} writes "
                            f"{config.eqv_result_class}.{attr} but this engine "
                            "never writes it",
                    hint="mirror (or aggregate) the new observable here so "
                         "run/run_fast/run_turbo stay bit-identical, then "
                         "extend the engine-equivalence tests",
                ))
        return findings

    @staticmethod
    def _find(ctx: LintContext, suffix: str) -> SourceFile | None:
        for src in ctx.parsed():
            if src.path.as_posix().endswith(suffix):
                return src
        return None

    @staticmethod
    def _method(src: SourceFile, class_name: str, method_name: str) -> ast.FunctionDef | None:
        for node in src.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                for item in node.body:
                    if (isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                            and item.name == method_name):
                        return item
        return None
