"""Finding records and stable fingerprints.

A :class:`Finding` is one rule violation anchored at ``path:line:col``.
Its *fingerprint* is what the baseline file stores: a digest of the rule,
the file, the **text** of the offending source line, and the finding's
occurrence index among identical (rule, path, line-text) triples in that
file.  Line text instead of line number keeps baselines stable while
unrelated edits shift code up or down; the occurrence index keeps two
identical violations on different lines distinguishable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation."""

    rule: str  #: rule family, e.g. ``"DET"``
    code: str  #: specific check, e.g. ``"DET003"``
    path: str  #: repo-relative posix path
    line: int  #: 1-based line number
    col: int  #: 0-based column
    message: str
    hint: str = ""
    #: Filled in by the engine once per file (see module docstring).
    fingerprint: str = field(default="", compare=False)

    def located(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule, "code": self.code, "path": self.path,
            "line": self.line, "col": self.col, "message": self.message,
            "hint": self.hint, "fingerprint": self.fingerprint,
        }


def compute_fingerprint(rule: str, path: str, line_text: str, occurrence: int) -> str:
    """The baseline identity of one finding (see module docstring)."""
    material = "\x1f".join((rule, path, line_text.strip(), str(occurrence)))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


def assign_fingerprints(findings: list[Finding], lines_by_path: dict[str, list[str]]) -> list[Finding]:
    """Return ``findings`` with fingerprints filled in, sorted by location."""
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))
    seen: dict[tuple[str, str, str], int] = {}
    out: list[Finding] = []
    for finding in ordered:
        lines = lines_by_path.get(finding.path, [])
        text = lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
        key = (finding.rule, finding.path, text.strip())
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        out.append(Finding(
            rule=finding.rule, code=finding.code, path=finding.path,
            line=finding.line, col=finding.col, message=finding.message,
            hint=finding.hint,
            fingerprint=compute_fingerprint(finding.rule, finding.path, text, occurrence),
        ))
    return out
