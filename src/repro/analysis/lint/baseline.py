"""The committed lint baseline: grandfathered findings.

A baseline entry pairs a finding fingerprint (see
:mod:`repro.analysis.lint.findings`) with a human justification.  Active
findings whose fingerprint appears in the baseline do not block the
build; entries whose fingerprint no longer matches anything are *stale*
and reported so the file shrinks as debt is paid down.  The baseline is
JSON, committed at the repo root (``.repro-lint-baseline.json``), and is
expected to be empty on a healthy tree — it exists so a new rule can land
as a blocking CI gate without requiring every historical violation to be
fixed in the same change.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


class BaselineError(ValueError):
    """An unreadable or structurally invalid baseline file."""


@dataclass
class Baseline:
    """Parsed baseline file."""

    path: str = ""
    entries: list[dict] = field(default_factory=list)

    @property
    def fingerprints(self) -> set[str]:
        return {str(entry.get("fingerprint", "")) for entry in self.entries}

    def split(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding], list[dict]]:
        """Partition ``findings`` into (blocking, baselined) and return the
        stale baseline entries as the third element."""
        known = self.fingerprints
        blocking = [f for f in findings if f.fingerprint not in known]
        baselined = [f for f in findings if f.fingerprint in known]
        matched = {f.fingerprint for f in baselined}
        stale = [e for e in self.entries if str(e.get("fingerprint", "")) not in matched]
        return blocking, baselined, stale


def load_baseline(path: str | Path) -> Baseline:
    """Load ``path``; raises :class:`BaselineError` on malformed content."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    except ValueError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} must be an object with version={BASELINE_VERSION}"
        )
    entries = payload.get("findings", [])
    if not isinstance(entries, list) or not all(isinstance(e, dict) for e in entries):
        raise BaselineError(f"baseline {path} 'findings' must be a list of objects")
    return Baseline(path=str(path), entries=entries)


def save_baseline(path: str | Path, findings: list[Finding],
                  justification: str = "grandfathered; fix or justify") -> None:
    """Write ``findings`` as a fresh baseline at ``path``."""
    entries = [
        {
            "fingerprint": f.fingerprint, "rule": f.rule, "code": f.code,
            "path": f.path, "line": f.line, "message": f.message,
            "justification": justification,
        }
        for f in findings
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
