"""Aggregate metrics used by the benchmark harness."""

from __future__ import annotations

import math
from typing import Iterable


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the conventional SPEC aggregate)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percent(value: float, digits: int = 2) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"


def normalized_times_summary(times: dict[str, float]) -> dict[str, float]:
    """Average/peak slowdown summary for a set of normalized exec times
    (the quantities quoted in the abstract: 'average slowdown of 1%',
    'worst-case slowdown of 3.2%')."""
    slowdowns = {name: t - 1.0 for name, t in times.items()}
    peak_name = max(slowdowns, key=lambda n: slowdowns[n])
    return {
        "average_slowdown": sum(slowdowns.values()) / len(slowdowns),
        "geomean_time": geomean(list(times.values())),
        "peak_slowdown": slowdowns[peak_name],
    }
