"""Self-healing local fleet: spawn, monitor, and restart sweep workers.

``python -m repro worker pool --workers N`` runs a
:class:`WorkerSupervisor`: it launches ``N`` fleet worker processes
(``python -m repro worker serve``) on OS-assigned loopback ports,
watches them, and restarts any that die — with seeded exponential
backoff and a per-slot restart budget, so a crash-looping worker backs
off progressively and is eventually *retired* instead of burning CPU
forever.

Supervision lifecycle (per slot)::

    spawn ──▶ RUNNING ──exit──▶ BACKOFF ──delay elapsed──▶ spawn
                 │                  │
                 │                  └─ restarts > budget ──▶ RETIRED
                 └──stop()──▶ terminated

Each restart re-binds the *same* address (host:port) the slot was
originally assigned, which is what makes mid-sweep recovery work: a
:class:`~repro.runner.backends.tcp.TcpFleetBackend` running with a
heartbeat re-dials dead addresses periodically, so the replacement
worker is re-admitted into the fleet without the runner ever knowing a
pid changed.

The restart backoff is *seeded*, not wall-clock-random: the jitter
factor is derived from ``(seed, slot, restart count)`` via
:func:`~.seeding.stable_hash`, so a given supervisor configuration
replays the same restart schedule every time (the DET discipline applied
to operations, not just results — flaky-looking restart storms must be
reproducible to be debuggable).

The supervisor never touches sweep state: workers are stateless cell
executors, and every durability/retry decision stays in the runner
(RetryPolicy) and the journal (leases, first-done-wins).  Killing a
supervised worker mid-cell therefore loses nothing — the runner retries
the cell elsewhere and the result is bit-identical by construction.
"""

from __future__ import annotations

import subprocess
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from .seeding import stable_hash
from .worker import spawn_worker_process

#: Granularity of the deterministic restart-backoff jitter fraction.
_JITTER_BUCKETS = 4096


@dataclass
class _Slot:
    """One supervised worker position (a stable address, many pids)."""

    index: int
    proc: subprocess.Popen | None = None
    address: str | None = None
    restarts: int = 0
    retired: bool = False
    next_start: float = 0.0
    last_exit: int | None = None
    pids: list[int] = field(default_factory=list)


class WorkerSupervisor:
    """Spawn ``workers`` local fleet workers and keep them alive.

    ``max_restarts`` is the per-slot budget: a slot that dies more than
    this many times is retired permanently (the fleet shrinks — the
    runner's degrade path owns what happens next).  ``seed`` drives the
    deterministic restart-backoff jitter.  ``on_event`` (if given)
    receives ``(event, slot_index, detail)`` tuples for ``spawn``,
    ``exit``, ``restart``, ``retire``, and ``stop`` — the CLI prints
    them as JSON lines.
    """

    def __init__(
        self,
        workers: int = 2,
        host: str = "127.0.0.1",
        max_restarts: int = 5,
        backoff_base_s: float = 0.25,
        backoff_cap_s: float = 30.0,
        seed: int = 0,
        spawn_timeout_s: float = 30.0,
        on_event: Callable[[str, int, str], None] | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        self.host = host
        self.max_restarts = max_restarts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.seed = seed
        self.spawn_timeout_s = spawn_timeout_s
        self.on_event = on_event
        self.restarts_total = 0
        self.retired_total = 0
        self.events: list[tuple[str, int, str]] = []
        self._slots = [_Slot(index=i) for i in range(workers)]
        self._stopped = False

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> list[str]:
        """Spawn every slot's first worker; returns their addresses."""
        for slot in self._slots:
            self._spawn(slot)
        return self.addresses()

    def addresses(self) -> list[str]:
        """Every slot's stable ``host:port`` address (spawn order)."""
        return [slot.address for slot in self._slots if slot.address]

    def _event(self, event: str, slot: _Slot, detail: str) -> None:
        self.events.append((event, slot.index, detail))
        if self.on_event is not None:
            self.on_event(event, slot.index, detail)

    def _spawn(self, slot: _Slot) -> None:
        # A restart re-binds the slot's original port (the worker's
        # listener uses SO_REUSEADDR), keeping the address stable so the
        # runner's re-admission finds the replacement.
        listen = slot.address or f"{self.host}:0"
        proc, address = spawn_worker_process(listen, self.spawn_timeout_s)
        slot.proc = proc
        slot.address = address
        slot.pids.append(proc.pid)
        self._event("spawn", slot, f"pid {proc.pid} on {address}")

    def restart_backoff_s(self, slot_index: int, restarts: int) -> float:
        """Delay before restart number ``restarts`` of ``slot_index``.

        Exponential with a cap, scaled by a deterministic factor in
        ``[0.5, 1.5)`` derived from ``(seed, slot, restarts)`` — the same
        supervisor replays the same restart schedule, and sibling slots
        that died together do not restart in lockstep.
        """
        if restarts <= 0:
            return 0.0
        delay = min(self.backoff_cap_s,
                    self.backoff_base_s * (2 ** (restarts - 1)))
        frac = (stable_hash("supervisor-restart", self.seed, slot_index,
                            restarts) % _JITTER_BUCKETS) / _JITTER_BUCKETS
        return delay * (0.5 + frac)

    def poll(self) -> None:
        """One supervision tick: reap exits, schedule/execute restarts."""
        if self._stopped:
            return
        now = time.monotonic()
        for slot in self._slots:
            if slot.retired:
                continue
            if slot.proc is not None:
                code = slot.proc.poll()
                if code is None:
                    continue
                slot.last_exit = code
                slot.proc = None
                self._event("exit", slot, f"exit code {code}")
                if slot.restarts >= self.max_restarts:
                    slot.retired = True
                    self.retired_total += 1
                    self._event(
                        "retire", slot,
                        f"restart budget ({self.max_restarts}) exhausted",
                    )
                    continue
                slot.restarts += 1
                delay = self.restart_backoff_s(slot.index, slot.restarts)
                slot.next_start = now + delay
                self._event(
                    "restart", slot,
                    f"attempt {slot.restarts}/{self.max_restarts} "
                    f"in {delay:.2f}s",
                )
                continue
            if now >= slot.next_start:
                try:
                    self._spawn(slot)
                    self.restarts_total += 1
                except OSError as exc:
                    # The replacement itself failed to come up: charge
                    # the budget and back off again.
                    self._event("exit", slot, f"respawn failed: {exc}")
                    if slot.restarts >= self.max_restarts:
                        slot.retired = True
                        self.retired_total += 1
                        self._event(
                            "retire", slot,
                            f"restart budget ({self.max_restarts}) exhausted",
                        )
                        continue
                    slot.restarts += 1
                    slot.next_start = now + self.restart_backoff_s(
                        slot.index, slot.restarts)

    def run(self, stop: threading.Event | None = None,
            poll_s: float = 0.2) -> None:
        """Supervise until ``stop`` is set (or forever)."""
        while stop is None or not stop.is_set():
            self.poll()
            if stop is not None:
                stop.wait(poll_s)
            else:
                time.sleep(poll_s)

    def alive(self) -> int:
        """Slots with a currently running worker process."""
        return sum(
            1 for slot in self._slots
            if slot.proc is not None and slot.proc.poll() is None
        )

    def slots(self) -> list[_Slot]:
        return list(self._slots)

    def stop(self) -> None:
        """Terminate every worker and stop supervising."""
        self._stopped = True
        for slot in self._slots:
            if slot.proc is None:
                continue
            slot.proc.terminate()
        for slot in self._slots:
            if slot.proc is None:
                continue
            try:
                slot.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                slot.proc.kill()
                slot.proc.wait()
            self._event("stop", slot, f"terminated pid {slot.proc.pid}")
            slot.proc = None
