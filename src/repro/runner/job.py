"""The sweep job model.

A :class:`Job` names one independent, seeded experiment cell: a callable
(referenced directly or as a ``"module:qualname"`` spec so it can cross
process boundaries), its keyword parameters, and an optional explicit
seed.  Jobs are plain data — picklable, hashable, and with a stable
identity — which is what lets the runner chunk them across a process
pool, key an on-disk cache on them, and still aggregate results in input
order.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from .seeding import canonical_repr, stable_digest


def callable_spec(fn: Callable | str) -> str:
    """``"module:qualname"`` for a module-level callable (or pass through).

    Only importable, module-level functions can cross a process boundary
    by name; lambdas and closures are rejected up front with a clear
    message rather than failing inside a worker.
    """
    if isinstance(fn, str):
        if ":" not in fn:
            raise ValueError(f"callable spec must look like 'module:name', got {fn!r}")
        return fn
    name = getattr(fn, "__qualname__", None)
    module = getattr(fn, "__module__", None)
    if not name or not module or "<locals>" in name or name == "<lambda>":
        raise ValueError(
            f"job callable {fn!r} is not a module-level function; "
            "sweep cells must be importable by name"
        )
    return f"{module}:{name}"


def resolve_callable(spec: str) -> Callable:
    """Import the callable a ``"module:qualname"`` spec names."""
    module_name, _, qualname = spec.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise TypeError(f"{spec} resolved to non-callable {obj!r}")
    return obj


@dataclass(frozen=True)
class Job:
    """One sweep cell: ``fn(**params, seed=seed)``.

    ``key`` identifies the cell within its sweep (it also namespaces the
    derived seed); when omitted it is built from the callable spec and
    params.  ``seed=None`` means "derive from the runner's root seed";
    ``pass_seed=False`` is for cells that are deterministic without one.
    """

    fn: str
    params: tuple[tuple[str, Any], ...] = ()
    key: str = ""
    seed: int | None = None
    pass_seed: bool = True

    def __post_init__(self) -> None:
        if not self.key:
            digest = stable_digest("job", self.fn, self.params)[:12]
            object.__setattr__(self, "key", f"{self.fn}#{digest}")

    @classmethod
    def of(
        cls,
        fn: Callable | str,
        key: str = "",
        seed: int | None = None,
        pass_seed: bool = True,
        **params: Any,
    ) -> "Job":
        """Build a job from a callable and keyword parameters."""
        items = tuple(sorted(params.items()))
        for name, value in items:
            canonical_repr(value)  # fail fast on non-canonical params
        return cls(
            fn=callable_spec(fn), params=items, key=key, seed=seed,
            pass_seed=pass_seed,
        )

    @property
    def kwargs(self) -> dict[str, Any]:
        return dict(self.params)


@dataclass(frozen=True)
class JobResult:
    """One completed cell, in sweep input order.

    Equality intentionally ignores the run-to-run bookkeeping fields
    (``duration_s``, ``cached``, ``resumed``, ``attempts``, and the
    error detail strings); two results compare equal iff the same job
    produced the same outcome (value + ``ok``) with the same seed — the
    property the equivalence gates assert between serial, parallel,
    cached, and fault-recovered executions.

    A failed cell (every retry exhausted) is still a ``JobResult``:
    ``ok=False``, ``value=None``, with the exception's class name and
    message captured in ``error_type``/``error`` — sweeps never lose an
    exception into a worker's void.
    """

    key: str
    value: Any
    seed: int | None
    cached: bool = field(default=False, compare=False)
    duration_s: float = field(default=0.0, compare=False)
    ok: bool = True
    error: str | None = field(default=None, compare=False)
    error_type: str | None = field(default=None, compare=False)
    attempts: int = field(default=1, compare=False)
    resumed: bool = field(default=False, compare=False)


def run_job(job: Job, seed: int | None) -> Any:
    """Execute one job in the current process (worker and serial path)."""
    fn = resolve_callable(job.fn)
    kwargs = job.kwargs
    if job.pass_seed:
        kwargs["seed"] = seed
    return fn(**kwargs)
