"""The sweep job model.

A :class:`Job` names one independent, seeded experiment cell: a callable
(referenced directly or as a ``"module:qualname"`` spec so it can cross
process boundaries), its keyword parameters, and an optional explicit
seed.  Jobs are plain data — picklable, hashable, and with a stable
identity — which is what lets the runner chunk them across a process
pool, key an on-disk cache on them, and still aggregate results in input
order.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from .seeding import canonical_repr, stable_digest


def callable_spec(fn: Callable | str) -> str:
    """``"module:qualname"`` for a module-level callable (or pass through).

    Only importable, module-level functions can cross a process boundary
    by name; lambdas and closures are rejected up front with a clear
    message rather than failing inside a worker.
    """
    if isinstance(fn, str):
        if ":" not in fn:
            raise ValueError(f"callable spec must look like 'module:name', got {fn!r}")
        return fn
    name = getattr(fn, "__qualname__", None)
    module = getattr(fn, "__module__", None)
    if not name or not module or "<locals>" in name or name == "<lambda>":
        raise ValueError(
            f"job callable {fn!r} is not a module-level function; "
            "sweep cells must be importable by name"
        )
    return f"{module}:{name}"


def resolve_callable(spec: str) -> Callable:
    """Import the callable a ``"module:qualname"`` spec names."""
    module_name, _, qualname = spec.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise TypeError(f"{spec} resolved to non-callable {obj!r}")
    return obj


@dataclass(frozen=True)
class Prefix:
    """A shared warmup stage cells can fork from.

    Same ``module:qualname`` discipline as cells: the callable builds
    the warm context (typically a :class:`~repro.sim.Machine` plus
    workload, run to the divergence point) and returns it.  The runner
    groups cells by identical ``(fn, params, derived seed)``, executes
    each distinct prefix once per worker, snapshots the returned context
    (:mod:`repro.sim.snapshot`), and hands every member cell a fresh
    restored copy as the ``prefix`` keyword argument.  A context that
    cannot be snapshotted (non-canonical policy state, unpicklable
    graph) silently degrades to cold per-cell execution.

    ``seed=None`` derives the prefix seed from the runner's root seed
    and ``key``, so the same prefix under the same root seed is shared
    across every cell — and across sweeps, via the snapshot cache.
    """

    fn: str
    params: tuple[tuple[str, Any], ...] = ()
    key: str = ""
    seed: int | None = None
    pass_seed: bool = True

    def __post_init__(self) -> None:
        if not self.key:
            digest = stable_digest("prefix", self.fn, self.params)[:12]
            object.__setattr__(self, "key", f"{self.fn}#{digest}")

    @classmethod
    def of(
        cls,
        fn: Callable | str,
        key: str = "",
        seed: int | None = None,
        pass_seed: bool = True,
        **params: Any,
    ) -> "Prefix":
        """Build a prefix stage from a callable and keyword parameters."""
        items = tuple(sorted(params.items()))
        for name, value in items:
            canonical_repr(value)  # fail fast on non-canonical params
        return cls(
            fn=callable_spec(fn), params=items, key=key, seed=seed,
            pass_seed=pass_seed,
        )

    @property
    def kwargs(self) -> dict[str, Any]:
        return dict(self.params)


@dataclass(frozen=True)
class Job:
    """One sweep cell: ``fn(**params, seed=seed)``.

    ``key`` identifies the cell within its sweep (it also namespaces the
    derived seed); when omitted it is built from the callable spec and
    params.  ``seed=None`` means "derive from the runner's root seed";
    ``pass_seed=False`` is for cells that are deterministic without one.
    A job with a :class:`Prefix` additionally receives the warm context
    as ``fn(**params, prefix=ctx, seed=seed)``; the prefix identity is
    part of the job's auto-generated key (and of its result-cache key),
    so the same cell forked from different prefixes never aliases.
    """

    fn: str
    params: tuple[tuple[str, Any], ...] = ()
    key: str = ""
    seed: int | None = None
    pass_seed: bool = True
    prefix: Prefix | None = None

    def __post_init__(self) -> None:
        if not self.key:
            if self.prefix is not None:
                digest = stable_digest("job", self.fn, self.params, self.prefix)[:12]
            else:
                digest = stable_digest("job", self.fn, self.params)[:12]
            object.__setattr__(self, "key", f"{self.fn}#{digest}")

    @classmethod
    def of(
        cls,
        fn: Callable | str,
        key: str = "",
        seed: int | None = None,
        pass_seed: bool = True,
        prefix: Prefix | None = None,
        **params: Any,
    ) -> "Job":
        """Build a job from a callable and keyword parameters."""
        items = tuple(sorted(params.items()))
        for name, value in items:
            canonical_repr(value)  # fail fast on non-canonical params
        return cls(
            fn=callable_spec(fn), params=items, key=key, seed=seed,
            pass_seed=pass_seed, prefix=prefix,
        )

    @property
    def kwargs(self) -> dict[str, Any]:
        return dict(self.params)


@dataclass(frozen=True)
class JobResult:
    """One completed cell, in sweep input order.

    Equality intentionally ignores the run-to-run bookkeeping fields
    (``duration_s``, ``cached``, ``resumed``, ``attempts``, and the
    error detail strings); two results compare equal iff the same job
    produced the same outcome (value + ``ok``) with the same seed — the
    property the equivalence gates assert between serial, parallel,
    cached, and fault-recovered executions.

    A failed cell (every retry exhausted) is still a ``JobResult``:
    ``ok=False``, ``value=None``, with the exception's class name and
    message captured in ``error_type``/``error`` — sweeps never lose an
    exception into a worker's void.
    """

    key: str
    value: Any
    seed: int | None
    cached: bool = field(default=False, compare=False)
    duration_s: float = field(default=0.0, compare=False)
    ok: bool = True
    error: str | None = field(default=None, compare=False)
    error_type: str | None = field(default=None, compare=False)
    attempts: int = field(default=1, compare=False)
    resumed: bool = field(default=False, compare=False)


#: Sentinel: "no prefix context supplied — compute it fresh".
_FRESH = object()


def run_prefix(prefix: Prefix, seed: int | None) -> Any:
    """Execute one prefix stage in the current process."""
    fn = resolve_callable(prefix.fn)
    kwargs = prefix.kwargs
    if prefix.pass_seed:
        kwargs["seed"] = seed
    return fn(**kwargs)


def run_job(
    job: Job,
    seed: int | None,
    prefix_value: Any = _FRESH,
    prefix_seed: int | None = None,
) -> Any:
    """Execute one job in the current process (worker and serial path).

    For a prefixed job, ``prefix_value`` is the warm context to fork
    from (supplied by the backend's snapshot machinery); when absent the
    prefix is computed fresh — the cold path, and the semantic baseline
    every warm-started run must match bit-for-bit.
    """
    fn = resolve_callable(job.fn)
    kwargs = job.kwargs
    if job.pass_seed:
        kwargs["seed"] = seed
    if job.prefix is not None:
        if prefix_value is _FRESH:
            if prefix_seed is None:
                prefix_seed = job.prefix.seed
            prefix_value = run_prefix(job.prefix, prefix_seed)
        kwargs["prefix"] = prefix_value
    return fn(**kwargs)
