"""Declarative sweep execution: jobs, deterministic seeds, process pools,
and incremental result caching.

Every reproduced figure/table iterates a (config x workload x seed) grid
of independent, seeded simulations.  This package turns such a grid into
a list of :class:`Job` cells and executes it with :class:`SweepRunner`:
serially, across a process pool, or straight from the on-disk result
cache — always producing the identical, input-ordered result list.

Quick form::

    from repro.runner import Job, SweepRunner

    jobs = [
        Job.of(my_cell, key=f"{cfg}/{wl}", config=cfg, workload=wl)
        for cfg in configs for wl in workloads
    ]
    values = SweepRunner(jobs=4, root_seed=7, cache=".cache").values(jobs)
"""

from .cache import ResultCache, code_fingerprint
from .job import Job, JobResult, callable_spec, resolve_callable, run_job
from .runner import JOBS_ENV, SweepRunner, default_jobs
from .seeding import canonical_repr, derive_seed, stable_digest, stable_hash

__all__ = [
    "JOBS_ENV",
    "Job",
    "JobResult",
    "ResultCache",
    "SweepRunner",
    "callable_spec",
    "canonical_repr",
    "code_fingerprint",
    "default_jobs",
    "derive_seed",
    "resolve_callable",
    "run_job",
    "stable_digest",
    "stable_hash",
]
