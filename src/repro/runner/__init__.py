"""Declarative sweep execution: jobs, deterministic seeds, pluggable
executor backends, incremental result caching, and fault-tolerant
recovery.

Every reproduced figure/table iterates a (config x workload x seed) grid
of independent, seeded simulations.  This package turns such a grid into
a list of :class:`Job` cells and executes it with :class:`SweepRunner`:
in-process (:class:`SerialBackend`), across a local pool
(:class:`ProcessPoolBackend`), sharded over a TCP fleet of worker
machines (:class:`TcpFleetBackend`, one ``python -m repro worker serve``
per host), or straight from the on-disk result cache — always producing
the identical, input-ordered, bit-identical result list.  A
cell that raises, hangs past its timeout, or kills its worker is retried
with backoff (final attempt in-process) and, if it still fails, becomes
a structured error record governed by the sweep's failure policy;
completed cells journal to a checkpoint manifest so interrupted sweeps
resume where they stopped.  :class:`FaultPlan`/:class:`FaultInjector`
make every one of those recovery paths deterministically testable.

Quick form::

    from repro.runner import Job, SweepRunner

    jobs = [
        Job.of(my_cell, key=f"{cfg}/{wl}", config=cfg, workload=wl)
        for cfg in configs for wl in workloads
    ]
    runner = SweepRunner(jobs=4, root_seed=7, cache=".cache",
                         policy="degrade", timeout_s=300.0,
                         checkpoint=".cache/sweep.journal")
    values = runner.values(jobs)
"""

from .backends import (
    BACKENDS,
    SNAPSHOT_ENV,
    BackendUnavailableError,
    CellTask,
    ExecutorBackend,
    ProcessPoolBackend,
    SerialBackend,
    TaskOutcome,
    TcpFleetBackend,
    TransientSubmitError,
    WorkerHealth,
    make_backend,
    snapshots_enabled,
)
from .backends.wire import WireProtocolError
from .cache import ResultCache, code_fingerprint, invalidate_fingerprints
from .checkpoint import LeaseTable, SweepJournal, sweep_id
from .faults import (
    Fault,
    FaultInjector,
    FaultPlan,
    InjectedCrashError,
    InjectedFaultError,
    InjectedFreezeError,
    InjectedPartitionError,
    permanent_cells,
)
from .job import (
    Job,
    JobResult,
    Prefix,
    callable_spec,
    resolve_callable,
    run_job,
    run_prefix,
)
from .policy import DEGRADE, FAILURE_POLICIES, STRICT, RetryPolicy, parse_failure_policy
from .runner import (
    BACKEND_ENV,
    JOBS_ENV,
    WORKERS_ENV,
    SweepRunner,
    default_backend,
    default_jobs,
    default_workers,
)
from .seeding import canonical_repr, derive_seed, stable_digest, stable_hash
from .supervisor import WorkerSupervisor
from .worker import serve as serve_worker
from .worker import spawn_worker_process, start_thread_worker

__all__ = [
    "BACKENDS",
    "BACKEND_ENV",
    "BackendUnavailableError",
    "CellTask",
    "DEGRADE",
    "ExecutorBackend",
    "FAILURE_POLICIES",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "InjectedCrashError",
    "InjectedFaultError",
    "InjectedFreezeError",
    "InjectedPartitionError",
    "JOBS_ENV",
    "Job",
    "JobResult",
    "LeaseTable",
    "Prefix",
    "ProcessPoolBackend",
    "ResultCache",
    "RetryPolicy",
    "SNAPSHOT_ENV",
    "STRICT",
    "SerialBackend",
    "SweepJournal",
    "SweepRunner",
    "TaskOutcome",
    "TcpFleetBackend",
    "TransientSubmitError",
    "WORKERS_ENV",
    "WireProtocolError",
    "WorkerHealth",
    "WorkerSupervisor",
    "callable_spec",
    "canonical_repr",
    "code_fingerprint",
    "default_backend",
    "default_jobs",
    "default_workers",
    "derive_seed",
    "invalidate_fingerprints",
    "make_backend",
    "parse_failure_policy",
    "permanent_cells",
    "resolve_callable",
    "run_job",
    "run_prefix",
    "serve_worker",
    "snapshots_enabled",
    "spawn_worker_process",
    "stable_digest",
    "stable_hash",
    "start_thread_worker",
    "sweep_id",
]
