"""Declarative sweep execution: jobs, deterministic seeds, process pools,
incremental result caching, and fault-tolerant recovery.

Every reproduced figure/table iterates a (config x workload x seed) grid
of independent, seeded simulations.  This package turns such a grid into
a list of :class:`Job` cells and executes it with :class:`SweepRunner`:
serially, across a process pool, or straight from the on-disk result
cache — always producing the identical, input-ordered result list.  A
cell that raises, hangs past its timeout, or kills its worker is retried
with backoff (final attempt in-process) and, if it still fails, becomes
a structured error record governed by the sweep's failure policy;
completed cells journal to a checkpoint manifest so interrupted sweeps
resume where they stopped.  :class:`FaultPlan`/:class:`FaultInjector`
make every one of those recovery paths deterministically testable.

Quick form::

    from repro.runner import Job, SweepRunner

    jobs = [
        Job.of(my_cell, key=f"{cfg}/{wl}", config=cfg, workload=wl)
        for cfg in configs for wl in workloads
    ]
    runner = SweepRunner(jobs=4, root_seed=7, cache=".cache",
                         policy="degrade", timeout_s=300.0,
                         checkpoint=".cache/sweep.journal")
    values = runner.values(jobs)
"""

from .cache import ResultCache, code_fingerprint
from .checkpoint import SweepJournal, sweep_id
from .faults import (
    Fault,
    FaultInjector,
    FaultPlan,
    InjectedCrashError,
    InjectedFaultError,
    permanent_cells,
)
from .job import Job, JobResult, callable_spec, resolve_callable, run_job
from .policy import DEGRADE, FAILURE_POLICIES, STRICT, RetryPolicy, parse_failure_policy
from .runner import JOBS_ENV, SweepRunner, default_jobs
from .seeding import canonical_repr, derive_seed, stable_digest, stable_hash

__all__ = [
    "DEGRADE",
    "FAILURE_POLICIES",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "InjectedCrashError",
    "InjectedFaultError",
    "JOBS_ENV",
    "Job",
    "JobResult",
    "ResultCache",
    "RetryPolicy",
    "STRICT",
    "SweepJournal",
    "SweepRunner",
    "callable_spec",
    "canonical_repr",
    "code_fingerprint",
    "default_jobs",
    "derive_seed",
    "parse_failure_policy",
    "permanent_cells",
    "resolve_callable",
    "run_job",
    "stable_digest",
    "stable_hash",
    "sweep_id",
]
