"""Line-JSON wire protocol shared by :class:`~.tcp.TcpFleetBackend` and
the ``python -m repro worker serve`` fleet worker.

Every message is one JSON object per ``\\n``-terminated line — the same
torn-line-safe framing the checkpoint journal uses.  Python values that
must cross the wire intact (the :class:`~repro.runner.job.Job` payload,
cell return values) ride as base64-encoded pickles inside JSON strings;
everything else is plain JSON scalars.

Protocol (version 1) — runner is the client, workers are servers:

===========  ============================================================
direction    message
===========  ============================================================
runner→w     ``{"op": "hello", "version": 1, "path": [sys.path...]}``
w→runner     ``{"op": "welcome", "version": 1, "pid": N, "host": "..."}``
runner→w     ``{"op": "run", "task_id": N, "job": "<b64 pickle>",
             "seed": N|null, "fault": [kind, ...]|null,
             "prefix_seed": N|null, "prefix_group": "..."|null,
             "prefix_blob": "<b64 snapshot>"|null,
             "prefix_fault": [kind, ...]|null}``
w→runner     ``{"op": "result", "task_id": N, "ok": true,
             "value": "<b64 pickle>", "duration_s": F,
             "prefix": "<b64 snapshot>"?}``
w→runner     ``{"op": "result", "task_id": N, "ok": false,
             "error_type": "...", "error": "...", "reject": bool}``
runner→w     ``{"op": "ping", "token": N}`` / w→runner ``{"op": "pong", ...}``
w→runner     ``{"op": "unsupported", "version": N, "got": M,
             "error": "..."}`` — version mismatch, connection refused
runner→w     ``{"op": "bye"}`` — the worker closes the connection
===========  ============================================================

A worker executes one ``run`` at a time per connection and never replies
out of order, so ``task_id`` correlation is trivial.  ``reject: true``
on a failed result means the value could not be serialised at all — the
runner treats the backend as useless for this sweep (exactly the
process-pool pickling semantics).  A dropped connection *is* the
lost-worker signal: there are no explicit failure notifications to lose.

``ping``/``pong`` doubles as the liveness heartbeat: workers answer
pings even while a cell is executing (execution runs in a side thread),
so an unanswered ping means the worker *process* is wedged — frozen,
stopped, or deadlocked — not merely busy.  The runner retires a worker
that stays silent for two heartbeat intervals after a ping.

Version negotiation fails fast, by name, in both directions: a worker
that receives a ``hello`` with a foreign version replies ``unsupported``
(naming both versions) and closes; a runner that receives a ``welcome``
or ``unsupported`` with a foreign version raises
:class:`WireProtocolError` instead of silently dropping the worker.

The worker announces itself on stdout with
``{"op": "listening", "host": ..., "port": ..., "pid": ...}`` so callers
binding port 0 can discover the real port (and scripts can wait for
readiness).
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
from typing import Any

PROTOCOL_VERSION = 1

#: Cap on one wire line (a 64 MiB pickled value is a bug, not a result).
MAX_LINE_BYTES = 64 * 1024 * 1024


class WireError(Exception):
    """A malformed frame or value on the fleet wire."""


class WireProtocolError(WireError):
    """The two ends of the fleet wire speak different protocol versions.

    Raised (runner side) or reported via an ``unsupported`` reply (worker
    side) with *both* versions named, so a mixed-version fleet fails fast
    and legibly instead of with an opaque decode error mid-sweep.
    """


def version_mismatch(ours: int, theirs: object, peer: str) -> WireProtocolError:
    """A uniformly worded :class:`WireProtocolError` naming both versions."""
    return WireProtocolError(
        f"wire protocol version mismatch: this side speaks v{ours}, "
        f"{peer} speaks v{theirs!r}"
    )


def encode_value(value: Any) -> str:
    """Base64-pickle ``value`` for embedding in a JSON message."""
    return base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_value(text: str) -> Any:
    """Inverse of :func:`encode_value`."""
    return pickle.loads(base64.b64decode(text))


def encode_bytes(data: bytes) -> str:
    """Base64 raw bytes (snapshot blobs — already self-checksummed, so
    no pickle envelope) for embedding in a JSON message."""
    return base64.b64encode(data).decode("ascii")


def decode_bytes(text: str) -> bytes:
    """Inverse of :func:`encode_bytes` (raises ``ValueError`` on junk)."""
    return base64.b64decode(text.encode("ascii"), validate=True)


def send_message(sock: socket.socket, message: dict) -> None:
    """Send one line-JSON message (raises ``OSError`` on a dead peer)."""
    sock.sendall(json.dumps(message, sort_keys=True).encode("utf-8") + b"\n")


def split_lines(buffer: bytes) -> tuple[list[dict], bytes]:
    """Parse every complete line in ``buffer`` into messages; returns the
    messages and the unterminated remainder.  Undecodable lines raise
    :class:`WireError` (a framing bug, not recoverable data)."""
    messages: list[dict] = []
    while b"\n" in buffer:
        line, buffer = buffer.split(b"\n", 1)
        if not line:
            continue
        try:
            message = json.loads(line)
        except ValueError as exc:
            raise WireError(f"undecodable wire line: {exc}") from exc
        if not isinstance(message, dict):
            raise WireError(f"wire line is not an object: {message!r}")
        messages.append(message)
    if len(buffer) > MAX_LINE_BYTES:
        raise WireError("wire line exceeds the frame size limit")
    return messages, buffer


def recv_message(sock: socket.socket, buffer: bytes) -> tuple[dict | None, bytes]:
    """Blocking read of the next message on ``sock`` (``None`` on EOF).

    ``buffer`` carries bytes left over from the previous call; the
    caller must thread the returned remainder back in.
    """
    while True:
        messages, buffer = split_lines(buffer)
        if messages:
            # At most one complete message is consumed per call; push any
            # extra back onto the buffer in wire order.
            extra = b"".join(
                json.dumps(m, sort_keys=True).encode("utf-8") + b"\n"
                for m in messages[1:]
            )
            return messages[0], extra + buffer
        chunk = sock.recv(65536)
        if not chunk:
            return None, buffer
        buffer += chunk


def parse_address(address: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (IPv4/hostname form)."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"worker address must look like HOST:PORT, got {address!r}")
    return host, int(port)
