"""In-process serial backend: one task at a time, zero isolation.

The reference implementation of the backend contract — and the executor
of last resort the runner falls back to when a richer backend reports
:class:`~.base.BackendUnavailableError`.  Execution happens inside
:meth:`poll` in the parent process, so crash faults raise
:class:`~repro.runner.faults.InjectedCrashError` instead of exiting the
interpreter, and per-cell timeouts are unenforceable
(``preemptible=False``).
"""

from __future__ import annotations

from .base import ERROR, OK, CellTask, ExecutorBackend, TaskOutcome, WorkerHealth, run_task


class SerialBackend(ExecutorBackend):
    name = "serial"
    preemptible = False

    def __init__(self) -> None:
        self._pending: CellTask | None = None
        self._done = 0
        self._failed = 0

    @property
    def capacity(self) -> int:
        return 1

    def submit(self, task: CellTask) -> None:
        if self._pending is not None:
            raise RuntimeError("serial backend already has a task in flight")
        self._pending = task

    def poll(self, timeout: float | None) -> list[TaskOutcome]:
        task = self._pending
        if task is None:
            return []
        self._pending = None
        try:
            value, duration, prefix_blob = run_task(task, in_worker=False)
        except Exception as exc:
            self._failed += 1
            return [TaskOutcome(
                task_id=task.task_id, kind=ERROR,
                error=str(exc) or repr(exc), error_type=type(exc).__name__,
            )]
        self._done += 1
        return [TaskOutcome(
            task_id=task.task_id, kind=OK, value=value, duration_s=duration,
            prefix_blob=prefix_blob,
        )]

    def abandon(self, task_ids) -> None:
        # An in-process task cannot be preempted; nothing to reclaim.
        self._pending = None

    def worker_health(self) -> list[WorkerHealth]:
        return [WorkerHealth(
            worker_id="in-process", alive=True, tasks_done=self._done,
            tasks_failed=self._failed,
            current_task=self._pending.task_id if self._pending else None,
        )]
