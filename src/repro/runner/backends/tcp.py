"""Multi-host TCP fleet backend: shard sweep cells across networked
worker processes.

The runner is the client; each fleet worker (``python -m repro worker
serve --listen HOST:PORT``) is a server executing one cell at a time per
connection.  Cells are sharded dynamically — whichever worker is idle
gets the next ready cell — which is safe because SHA-256 per-cell seed
derivation makes placement irrelevant to results.

Lost-worker semantics feed straight into the runner's existing
:class:`~repro.runner.policy.RetryPolicy` path:

- a dropped connection (worker crashed, was killed, or the network
  partitioned) settles that worker's in-flight cell as ``lost`` — the
  runner charges the attempt and re-dispatches on a surviving worker;
- :meth:`TcpFleetBackend.abandon` (per-cell wall-clock timeout) severs
  the stuck worker's connection: the fleet shrinks by one and the sweep
  continues on the survivors;
- when every worker is gone, ``capacity`` reaches zero and the runner
  falls back to its in-process serial executor — a fleet-wide outage
  degrades a sweep, never kills it.

Workers that merely *partitioned* (connection severed, process alive)
keep serving: a later sweep can reconnect to them.

With ``heartbeat_s`` set, two more robustness layers engage:

- **hung-worker detection** — the backend pings any worker idle for one
  heartbeat interval; a worker that stays silent for two intervals with
  a ping outstanding is retired as *hung* (its in-flight cell settles
  ``lost`` → retried elsewhere).  Workers answer pings from their reader
  thread even mid-cell, so a missed heartbeat means the worker process
  is wedged — frozen, stopped, deadlocked — not busy;
- **re-admission** — addresses with no live connection are periodically
  re-dialled (short, heartbeat-scale timeout), so a worker restarted by
  :class:`~repro.runner.supervisor.WorkerSupervisor` — which re-binds
  the same port — rejoins the fleet mid-sweep instead of staying dead.

Both are scheduling-only mechanisms: results stay a pure function of
(grid, root seed) at any heartbeat setting or churn schedule.
"""

from __future__ import annotations

import select
import socket
import sys
import time
from collections import deque
from typing import Iterable, Sequence

from .base import (
    ERROR,
    LOST,
    OK,
    REJECTED,
    BackendUnavailableError,
    CellTask,
    ExecutorBackend,
    TaskOutcome,
    TransientSubmitError,
    WorkerHealth,
    normalize_addresses,
)
from .wire import (
    PROTOCOL_VERSION,
    WireError,
    decode_bytes,
    decode_value,
    encode_bytes,
    encode_value,
    parse_address,
    recv_message,
    send_message,
    split_lines,
    version_mismatch,
)

#: Seconds allowed for connect + hello/welcome per worker.
CONNECT_TIMEOUT_S = 10.0


class _FleetWorker:
    """Runner-side state for one connected fleet worker."""

    def __init__(self, worker_id: str, address: str, sock: socket.socket,
                 pid: int | None) -> None:
        self.worker_id = worker_id
        self.address = address
        self.sock = sock
        self.pid = pid
        self.buffer = b""
        self.task: CellTask | None = None
        self.alive = True
        self.tasks_done = 0
        self.tasks_failed = 0
        self.detail = ""
        # Heartbeat bookkeeping (monotonic clock: scheduling, not results).
        self.last_recv = time.monotonic()
        self.last_ping = 0.0
        self.pings = 0


class TcpFleetBackend(ExecutorBackend):
    name = "tcp"
    preemptible = True

    def __init__(
        self,
        workers: str | Sequence[str],
        connect_timeout_s: float = CONNECT_TIMEOUT_S,
        heartbeat_s: float | None = None,
    ) -> None:
        self.addresses = normalize_addresses(workers)
        if not self.addresses:
            raise ValueError("TcpFleetBackend needs at least one HOST:PORT address")
        if heartbeat_s is not None and heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be positive, got {heartbeat_s}")
        self.connect_timeout_s = connect_timeout_s
        self.heartbeat_s = heartbeat_s
        self.workers_lost = 0
        self.workers_hung = 0
        self.workers_readmitted = 0
        self.fleet_size = 0
        self._workers: list[_FleetWorker] = []
        self._ready: deque[TaskOutcome] = deque()
        self._generation: dict[str, int] = {}
        self._last_readmit = 0.0

    # -- fleet membership ---------------------------------------------------------

    def _connect(
        self, address: str, timeout_s: float | None = None,
    ) -> _FleetWorker | None:
        """Dial one worker.  ``None`` for unreachable/unresponsive peers;
        :class:`WireProtocolError` (fail fast, both versions named) for a
        reachable peer speaking the wrong protocol version."""
        timeout = self.connect_timeout_s if timeout_s is None else timeout_s
        try:
            host, port = parse_address(address)
            sock = socket.create_connection((host, port), timeout=timeout)
        except (OSError, ValueError):
            return None
        try:
            send_message(sock, {
                "op": "hello", "version": PROTOCOL_VERSION,
                "path": list(sys.path),
            })
            sock.settimeout(timeout)
            welcome, buffer = recv_message(sock, b"")
        except (OSError, WireError):
            sock.close()
            return None
        if welcome is None or welcome.get("op") not in ("welcome", "unsupported"):
            sock.close()
            return None
        if (welcome.get("op") == "unsupported"
                or welcome.get("version") != PROTOCOL_VERSION):
            sock.close()
            raise version_mismatch(
                PROTOCOL_VERSION, welcome.get("version"),
                f"fleet worker {address}",
            )
        try:
            sock.settimeout(None)
            sock.setblocking(False)
        except OSError:
            sock.close()
            return None
        generation = self._generation.get(address, 0) + 1
        self._generation[address] = generation
        worker_id = address if generation == 1 else f"{address}#{generation}"
        worker = _FleetWorker(worker_id, address, sock, welcome.get("pid"))
        worker.buffer = buffer
        return worker

    def start(self) -> None:
        if self._workers:  # reconnect semantics: a fresh fleet per run
            self.shutdown(cancel=True)
        self._workers = []
        self._generation = {}
        self._last_readmit = time.monotonic()
        unreachable = []
        for address in self.addresses:
            worker = self._connect(address)
            if worker is None:
                unreachable.append(address)
            else:
                self._workers.append(worker)
        self.fleet_size = len(self._workers)
        if not self._workers:
            raise BackendUnavailableError(
                f"no fleet worker reachable (tried {', '.join(unreachable)})"
            )

    def _lose(self, worker: _FleetWorker, reason: str) -> TaskOutcome | None:
        """Mark ``worker`` dead; settle its in-flight cell as ``lost``."""
        if not worker.alive:
            return None
        worker.alive = False
        worker.detail = reason
        self.workers_lost += 1
        try:
            worker.sock.close()
        except OSError:
            pass
        task, worker.task = worker.task, None
        if task is None:
            return None
        worker.tasks_failed += 1
        return TaskOutcome(
            task_id=task.task_id, kind=LOST,
            error=f"fleet worker {worker.worker_id} lost: {reason}",
            error_type="WorkerLost",
        )

    def _alive(self) -> list[_FleetWorker]:
        return [w for w in self._workers if w.alive]

    # -- the backend contract -----------------------------------------------------

    @property
    def capacity(self) -> int:
        return len(self._alive())

    def submit(self, task: CellTask) -> None:
        try:
            payload = {
                "op": "run", "task_id": task.task_id,
                "job": encode_value(task.job), "seed": task.seed,
                "fault": list(task.fault_spec) if task.fault_spec else None,
                "prefix_seed": task.prefix_seed,
                "prefix_group": task.prefix_group,
                "prefix_blob": (
                    encode_bytes(task.prefix_blob)
                    if task.prefix_blob is not None else None
                ),
                "prefix_fault": (
                    list(task.prefix_fault_spec)
                    if task.prefix_fault_spec else None
                ),
            }
        except Exception as exc:
            raise BackendUnavailableError(
                f"job cannot cross the fleet wire: {exc}"
            ) from exc
        for worker in self._alive():
            if worker.task is not None:
                continue
            try:
                worker.sock.setblocking(True)
                send_message(worker.sock, payload)
                worker.sock.setblocking(False)
            except OSError as exc:
                outcome = self._lose(worker, f"send failed: {exc}")
                if outcome is not None:  # pragma: no cover — worker was idle
                    self._ready.append(outcome)
                continue
            worker.task = task
            return
        raise TransientSubmitError("no idle fleet worker")

    def poll(self, timeout: float | None) -> list[TaskOutcome]:
        if self._ready:
            out = list(self._ready)
            self._ready.clear()
            return out
        workers = self._alive()
        if not workers:
            return []
        if self.heartbeat_s is not None:
            # Wake at least twice per heartbeat interval so pings and
            # hung-detection run on time even with no wire traffic.
            half = self.heartbeat_s / 2
            timeout = half if timeout is None else min(timeout, half)
        try:
            readable, _, _ = select.select(
                [w.sock for w in workers], [], [], timeout
            )
        except OSError:
            readable = [w.sock for w in workers]
        out: list[TaskOutcome] = []
        by_sock = {w.sock: w for w in workers}
        for sock in readable:
            worker = by_sock[sock]
            try:
                chunk = sock.recv(1 << 20)
            except BlockingIOError:
                continue
            except OSError as exc:
                outcome = self._lose(worker, f"recv failed: {exc}")
                if outcome is not None:
                    out.append(outcome)
                continue
            if not chunk:
                outcome = self._lose(worker, "connection closed")
                if outcome is not None:
                    out.append(outcome)
                continue
            worker.buffer += chunk
            worker.last_recv = time.monotonic()
            try:
                messages, worker.buffer = split_lines(worker.buffer)
            except WireError as exc:
                outcome = self._lose(worker, str(exc))
                if outcome is not None:
                    out.append(outcome)
                continue
            for message in messages:
                outcome = self._handle(worker, message)
                if outcome is not None:
                    out.append(outcome)
        if self.heartbeat_s is not None:
            out.extend(self._heartbeat())
            self._readmit()
        return out

    def _heartbeat(self) -> list[TaskOutcome]:
        """Ping idle workers; retire those silent past two intervals.

        A worker answers pings from its reader thread even mid-cell, so
        ``idle >= 2 * heartbeat_s`` with a ping outstanding means the
        *process* is wedged — not busy — and its cell must be retried
        elsewhere (the lost-worker → RetryPolicy path).
        """
        assert self.heartbeat_s is not None
        now = time.monotonic()
        hb = self.heartbeat_s
        out: list[TaskOutcome] = []
        for worker in self._alive():
            idle = now - worker.last_recv
            if idle >= 2 * hb and worker.last_ping > worker.last_recv:
                self.workers_hung += 1
                outcome = self._lose(
                    worker,
                    f"missed heartbeats: silent for {idle:.2f}s "
                    f"(interval {hb}s, ping unanswered)",
                )
                if outcome is not None:
                    out.append(outcome)
                continue
            if idle >= hb and now - worker.last_ping >= hb:
                worker.pings += 1
                try:
                    worker.sock.setblocking(True)
                    send_message(worker.sock, {"op": "ping", "token": worker.pings})
                    worker.sock.setblocking(False)
                    worker.last_ping = now
                except OSError as exc:
                    outcome = self._lose(worker, f"ping failed: {exc}")
                    if outcome is not None:
                        out.append(outcome)
        return out

    def _readmit(self) -> None:
        """Re-dial addresses with no live worker (restarted/recovered
        peers rejoin mid-sweep).  Runs at most every two heartbeat
        intervals with a short, heartbeat-scale connect timeout, so a
        still-dead address cannot stall the dispatch loop."""
        assert self.heartbeat_s is not None
        now = time.monotonic()
        interval = 2 * max(self.heartbeat_s, 0.25)
        if now - self._last_readmit < interval:
            return
        self._last_readmit = now
        live = {w.address for w in self._alive()}
        for address in self.addresses:
            if address in live:
                continue
            try:
                worker = self._connect(
                    address,
                    timeout_s=min(self.connect_timeout_s,
                                  max(self.heartbeat_s, 0.25)),
                )
            except WireError:
                # A wrong-version replacement is not capacity; keep the
                # sweep going on the surviving workers.
                continue
            if worker is None:
                continue
            self._workers.append(worker)
            self.workers_readmitted += 1
            self.fleet_size = max(self.fleet_size, len(self._alive()))

    def _handle(self, worker: _FleetWorker, message: dict) -> TaskOutcome | None:
        op = message.get("op")
        if op == "pong":
            return None
        if op != "result":
            return self._lose(worker, f"unexpected message {op!r}")
        task, worker.task = worker.task, None
        if task is None or message.get("task_id") != task.task_id:
            return self._lose(worker, "result for a task it was not running")
        if message.get("ok"):
            try:
                value = decode_value(message.get("value", ""))
            except Exception as exc:
                worker.tasks_failed += 1
                return TaskOutcome(
                    task_id=task.task_id, kind=REJECTED,
                    error=f"result undecodable: {exc}", error_type="WireError",
                )
            prefix_blob = None
            blob_text = message.get("prefix")
            if blob_text:
                try:
                    prefix_blob = decode_bytes(blob_text)
                except (ValueError, TypeError):
                    prefix_blob = None  # a bad blob is a lost optimisation, not a failure
            worker.tasks_done += 1
            return TaskOutcome(
                task_id=task.task_id, kind=OK, value=value,
                duration_s=float(message.get("duration_s", 0.0)),
                prefix_blob=prefix_blob,
            )
        worker.tasks_failed += 1
        kind = REJECTED if message.get("reject") else ERROR
        return TaskOutcome(
            task_id=task.task_id, kind=kind,
            error=message.get("error") or "fleet worker reported failure",
            error_type=message.get("error_type") or "WorkerError",
        )

    def abandon(self, task_ids: Iterable[int]) -> None:
        dropped = set(task_ids)
        for worker in self._alive():
            if worker.task is not None and worker.task.task_id in dropped:
                # Sever the stuck worker; its process may still be
                # computing, but it is out of this fleet.
                worker.task = None
                self._lose(worker, "abandoned past the cell deadline")

    def shutdown(self, cancel: bool = True) -> None:
        for worker in self._workers:
            if not worker.alive:
                continue
            try:
                worker.sock.setblocking(True)
                send_message(worker.sock, {"op": "bye"})
            except OSError:
                pass
            try:
                worker.sock.close()
            except OSError:
                pass
            worker.alive = False
            worker.detail = worker.detail or "shut down"
        self._ready.clear()

    def worker_health(self) -> list[WorkerHealth]:
        return [
            WorkerHealth(
                worker_id=w.worker_id, alive=w.alive,
                tasks_done=w.tasks_done, tasks_failed=w.tasks_failed,
                current_task=w.task.task_id if w.task else None,
                detail=w.detail,
            )
            for w in self._workers
        ]

    def stats(self) -> dict[str, int]:
        return {
            "workers_lost": self.workers_lost,
            "workers_hung": self.workers_hung,
            "workers_readmitted": self.workers_readmitted,
            "fleet_size": self.fleet_size,
        }
