"""Pluggable executor backends for :class:`~repro.runner.SweepRunner`.

The runner owns sweep policy (seeds, cache, retries, timeouts, journal);
a backend owns the mechanics of running cells: in-process
(:class:`SerialBackend`), on a local process pool
(:class:`ProcessPoolBackend`), or across a TCP fleet of worker
processes (:class:`TcpFleetBackend`).  All backends are interchangeable
by construction — per-cell SHA-256 seed derivation makes placement
irrelevant, so the same sweep yields bit-identical results on any of
them (enforced by the conformance suite in ``tests/test_backends.py``).
"""

from __future__ import annotations

from ...errors import ConfigError
from .base import (
    ERROR,
    LOST,
    OK,
    OUTCOME_KINDS,
    REJECTED,
    REQUEUED,
    SNAPSHOT_ENV,
    BackendUnavailableError,
    CellTask,
    ExecutorBackend,
    TaskOutcome,
    TransientSubmitError,
    WorkerHealth,
    normalize_addresses,
    run_task,
    snapshots_enabled,
)
from .process import ProcessPoolBackend
from .serial import SerialBackend
from .tcp import TcpFleetBackend

#: Names accepted by ``--backend`` / ``REPRO_BACKEND`` / ``SweepRunner``.
BACKENDS = ("serial", "process", "tcp")


def make_backend(
    name: str,
    *,
    jobs: int = 1,
    workers=None,
    max_rebuilds: int = 16,
    heartbeat_s: float | None = None,
) -> ExecutorBackend:
    """Build a backend from its registry name.

    ``jobs`` sizes the process pool; ``workers`` is the TCP fleet's
    ``HOST:PORT`` address list (string or sequence).  A ``tcp://h:p,h:p``
    name carries its own addresses.  ``heartbeat_s`` enables the TCP
    fleet's liveness heartbeat and mid-sweep worker re-admission
    (ignored by the other backends, which have no remote peers to probe).
    """
    spec = (name or "").strip().lower()
    if spec.startswith("tcp://"):
        workers = spec[len("tcp://"):]
        spec = "tcp"
    if spec == "serial":
        return SerialBackend()
    if spec == "process":
        return ProcessPoolBackend(max(1, jobs), max_rebuilds=max_rebuilds)
    if spec == "tcp":
        addresses = normalize_addresses(workers)
        if not addresses:
            raise ConfigError(
                "tcp backend needs worker addresses (--workers HOST:PORT[,...]"
                " or REPRO_WORKERS)"
            )
        return TcpFleetBackend(addresses, heartbeat_s=heartbeat_s)
    raise ConfigError(f"unknown sweep backend {name!r}; expected one of {BACKENDS}")


__all__ = [
    "BACKENDS",
    "BackendUnavailableError",
    "CellTask",
    "ERROR",
    "ExecutorBackend",
    "LOST",
    "OK",
    "OUTCOME_KINDS",
    "ProcessPoolBackend",
    "REJECTED",
    "REQUEUED",
    "SNAPSHOT_ENV",
    "SerialBackend",
    "TaskOutcome",
    "TcpFleetBackend",
    "TransientSubmitError",
    "WorkerHealth",
    "make_backend",
    "normalize_addresses",
    "run_task",
    "snapshots_enabled",
]
