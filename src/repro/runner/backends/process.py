"""Local process-pool backend (the pre-refactor ``SweepRunner`` pool
mechanics, extracted behind :class:`~.base.ExecutorBackend`).

Pool lifecycle policy, unchanged from the original dispatcher:

- workers are created lazily with the ``fork`` start method where
  available (shares the parent's imported modules and ``sys.path`` with
  zero warmup); elsewhere an initializer replays the parent's import
  path into spawned workers;
- a dead worker (``BrokenProcessPool``) settles its task as ``lost``
  (the runner charges the attempt), re-offers every sibling in-flight
  task as ``requeued`` (uncharged), and retires the pool — a fresh one
  is built on the next submit.  A bounded number of rebuilds
  (``max_rebuilds``) guards against a systemically broken pool: beyond
  it the backend declares itself unavailable and the runner goes serial;
- a payload or result that cannot cross the process boundary
  (``PicklingError`` and the ``AttributeError``/``TypeError`` shapes
  pickle raises) settles as ``rejected``: the pool is useless for this
  sweep, not just for one attempt;
- :meth:`~ProcessPoolBackend.abandon` (the runner's per-cell timeout)
  retires the whole pool — a worker stuck inside a cell cannot be
  preempted individually — and re-offers innocent tasks uncharged.
"""

from __future__ import annotations

import pickle
import sys
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from typing import Iterable

from .base import (
    ERROR,
    LOST,
    OK,
    REJECTED,
    REQUEUED,
    BackendUnavailableError,
    CellTask,
    ExecutorBackend,
    TaskOutcome,
    TransientSubmitError,
    WorkerHealth,
    run_task,
)

#: Exception types that mean "this payload/result cannot cross the process
#: boundary" — the pool is useless for the sweep, not just for one attempt.
_PICKLE_ERRORS = (pickle.PicklingError, AttributeError, TypeError)


def _init_worker(path: list[str]) -> None:
    """Give spawned workers the parent's import path (bench modules live
    outside ``site-packages``); fork workers inherit it anyway."""
    for entry in reversed(path):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def _pool_run(task: CellTask) -> tuple:
    """Worker-side entry: execute one cell attempt inside a pool worker."""
    return run_task(task, in_worker=True)


class ProcessPoolBackend(ExecutorBackend):
    name = "process"
    preemptible = True

    def __init__(self, workers: int, max_rebuilds: int = 16) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.max_rebuilds = max_rebuilds
        self.pool_breaks = 0
        self._pool: ProcessPoolExecutor | None = None
        self._futures: dict = {}  # Future -> CellTask
        self._ready: deque[TaskOutcome] = deque()
        self._dead = False
        self._done = 0
        self._failed = 0

    @property
    def capacity(self) -> int:
        return self.workers

    # -- pool lifecycle -----------------------------------------------------------

    def _ensure_pool(self) -> None:
        if self._pool is not None:
            return
        if self._dead:
            raise BackendUnavailableError("process pool permanently broken")
        try:
            import multiprocessing

            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(list(sys.path),),
            )
        except (OSError, ImportError, ValueError, RuntimeError) as exc:
            self._dead = True
            raise BackendUnavailableError(
                f"cannot start a process pool: {exc}"
            ) from exc

    def _retire_pool(self, cancel: bool) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=cancel)
            self._pool = None

    def _requeue_in_flight(self) -> None:
        """Re-offer every tracked in-flight task uncharged (collateral
        damage from someone else's crash/timeout)."""
        for task in self._futures.values():
            self._ready.append(TaskOutcome(task_id=task.task_id, kind=REQUEUED))
        self._futures.clear()

    def _break_pool(self) -> None:
        self.pool_breaks += 1
        self._requeue_in_flight()
        self._retire_pool(cancel=True)
        if self.pool_breaks > self.max_rebuilds:
            self._dead = True

    # -- the backend contract -----------------------------------------------------

    def start(self) -> None:
        self._ensure_pool()

    def submit(self, task: CellTask) -> None:
        self._ensure_pool()
        try:
            fut = self._pool.submit(_pool_run, task)
        except (BrokenProcessPool, RuntimeError) as exc:
            self._break_pool()
            if self._dead:
                raise BackendUnavailableError(
                    f"process pool broke {self.pool_breaks} times; giving up"
                ) from exc
            raise TransientSubmitError(str(exc) or repr(exc)) from exc
        self._futures[fut] = task

    def poll(self, timeout: float | None) -> list[TaskOutcome]:
        if self._ready:
            out = list(self._ready)
            self._ready.clear()
            return out
        if not self._futures:
            return []
        done, _ = futures_wait(
            set(self._futures), timeout=timeout, return_when=FIRST_COMPLETED
        )
        out: list[TaskOutcome] = []
        broken = False
        for fut in done:
            task = self._futures.pop(fut)
            try:
                value, duration, prefix_blob = fut.result()
            except BrokenProcessPool:
                # The worker running this cell (or a sibling) died.
                broken = True
                self._failed += 1
                out.append(TaskOutcome(
                    task_id=task.task_id, kind=LOST,
                    error="worker process died (BrokenProcessPool)",
                    error_type="WorkerCrash",
                ))
            except _PICKLE_ERRORS as exc:
                # Genuine cell errors of these types still surface as
                # failures on the runner's in-process path.
                out.append(TaskOutcome(
                    task_id=task.task_id, kind=REJECTED,
                    error=str(exc) or repr(exc), error_type=type(exc).__name__,
                ))
            except Exception as exc:
                self._failed += 1
                out.append(TaskOutcome(
                    task_id=task.task_id, kind=ERROR,
                    error=str(exc) or repr(exc), error_type=type(exc).__name__,
                ))
            else:
                self._done += 1
                out.append(TaskOutcome(
                    task_id=task.task_id, kind=OK, value=value,
                    duration_s=duration, prefix_blob=prefix_blob,
                ))
        if broken:
            self._break_pool()
        out.extend(self._ready)
        self._ready.clear()
        return out

    def abandon(self, task_ids: Iterable[int]) -> None:
        dropped = set(task_ids)
        self._futures = {
            fut: task for fut, task in self._futures.items()
            if task.task_id not in dropped
        }
        # A stuck worker cannot be preempted individually: retire the
        # whole pool (rebuilt on next submit); innocents re-offer uncharged.
        self._requeue_in_flight()
        self._retire_pool(cancel=True)

    def shutdown(self, cancel: bool = True) -> None:
        self._futures.clear()
        self._ready.clear()
        self._retire_pool(cancel=cancel)

    def worker_health(self) -> list[WorkerHealth]:
        return [WorkerHealth(
            worker_id=f"pool[{self.workers}]",
            alive=self._pool is not None and not self._dead,
            tasks_done=self._done, tasks_failed=self._failed,
            detail=f"pool_breaks={self.pool_breaks}",
        )]

    def stats(self) -> dict[str, int]:
        return {"pool_breaks": self.pool_breaks}
