"""The executor-backend contract: *how* sweep cells run.

:class:`~repro.runner.runner.SweepRunner` owns sweep *policy* — seed
derivation, caching, retry/backoff, per-cell timeouts, failure policies,
and the checkpoint journal.  Everything about where a cell's code
actually executes lives behind :class:`ExecutorBackend`: in this process
(:class:`~.serial.SerialBackend`), on a local process pool
(:class:`~.process.ProcessPoolBackend`), or on a fleet of networked
worker processes (:class:`~.tcp.TcpFleetBackend`).

The contract is deliberately small:

- :meth:`ExecutorBackend.start` brings the backend up (connect, warm a
  pool); it raises :class:`BackendUnavailableError` when execution can
  never work here, which the runner answers with its in-process serial
  fallback.
- :meth:`ExecutorBackend.submit` hands over one :class:`CellTask`; it
  may raise :class:`TransientSubmitError` ("not right now — re-offer the
  task later, uncharged") or :class:`BackendUnavailableError` ("never").
- :meth:`ExecutorBackend.poll` blocks up to ``timeout`` seconds and
  returns completed :class:`TaskOutcome` records.  Outcomes carry a
  *kind* that tells the runner how to charge the cell:

  ========== =====================================================
  ``ok``      cell value computed; settle the cell
  ``error``   the cell raised; charge the attempt, retry/backoff
  ``lost``    the worker died under the cell; charge the attempt
  ``requeued`` collateral damage (a sibling's crash/abandonment);
              re-dispatch without charging an attempt
  ``rejected`` the payload/result cannot cross this backend's
              boundary at all; the runner goes serial for the sweep
  ========== =====================================================

- :meth:`ExecutorBackend.abandon` gives up on stuck in-flight tasks (the
  runner's per-cell wall-clock timeout); the backend reclaims whatever
  capacity it can and re-offers innocent tasks as ``requeued`` outcomes.
- :meth:`ExecutorBackend.worker_health` reports per-worker liveness and
  throughput; :meth:`ExecutorBackend.stats` aggregates counters
  (``pool_breaks``, ``workers_lost``) that the runner merges into
  ``last_stats``.

Because every cell's seed is a pure function of (root seed, job key),
*placement is irrelevant to results*: any two backends executing the
same grid must produce bit-identical :class:`~repro.runner.job.JobResult`
lists.  ``tests/test_backends.py`` enforces that conformance for every
registered backend.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ...errors import ReproError, SnapshotError, SnapshotUnsupportedError
from ...sim.snapshot import restore_value, snapshot_value
from ..faults import trip
from ..job import Job, run_job, run_prefix

#: Outcome kinds (see the table in the module docstring).
OK = "ok"
ERROR = "error"
LOST = "lost"
REQUEUED = "requeued"
REJECTED = "rejected"

OUTCOME_KINDS = (OK, ERROR, LOST, REQUEUED, REJECTED)


class BackendUnavailableError(ReproError):
    """The backend can never execute this sweep (no pool, no reachable
    workers, unserializable payloads...); the runner falls back to its
    in-process serial executor."""


class TransientSubmitError(ReproError):
    """The backend could not accept a task *right now* (a pool mid-
    rebuild, every fleet worker busy/just-lost); the runner re-offers
    the task later without charging an attempt."""


@dataclass(frozen=True)
class CellTask:
    """One dispatched cell attempt: the job, its derived seed, and the
    (optional, picklable) fault spec that must trip before the body.

    Prefixed jobs additionally carry the prefix's derived seed, its
    sharing-group digest (identical ``(fn, params, seed)`` ⇒ identical
    group), an optional pre-restored snapshot blob (how warm contexts
    cross the process pickle boundary and the TCP wire), and an optional
    fault spec that trips only when the prefix actually executes freshly
    on the worker (never on a snapshot restore).
    """

    task_id: int
    index: int
    job: Job
    seed: int | None
    fault_spec: tuple | None = None
    prefix_seed: int | None = None
    prefix_group: str | None = None
    prefix_blob: bytes | None = None
    prefix_fault_spec: tuple | None = None


@dataclass(frozen=True)
class TaskOutcome:
    """One completed/settled task as reported by a backend.

    ``prefix_blob`` is the snapshot a worker produced while executing a
    prefix stage freshly — the runner persists it to the snapshot cache
    and attaches it to later tasks of the same group, so each distinct
    prefix executes at most once per worker (and usually once per sweep).
    """

    task_id: int
    kind: str
    value: Any = None
    duration_s: float = 0.0
    error: str | None = None
    error_type: str | None = None
    prefix_blob: bytes | None = None


@dataclass
class WorkerHealth:
    """Liveness/throughput of one backend worker (health reporting)."""

    worker_id: str
    alive: bool = True
    tasks_done: int = 0
    tasks_failed: int = 0
    current_task: int | None = None
    detail: str = ""


#: Opt-out knob for the snapshot/warm-start machinery.  Re-read per call
#: (like ``REPRO_ACCEL``): ``REPRO_SNAPSHOT=0`` makes every cell compute
#: its prefix fresh — the cold path warm runs are gated against.
SNAPSHOT_ENV = "REPRO_SNAPSHOT"

_FALSY = ("0", "off", "false", "no")


def snapshots_enabled() -> bool:
    """Whether prefix snapshots are enabled (``REPRO_SNAPSHOT`` knob)."""
    return os.environ.get(SNAPSHOT_ENV, "1").strip().lower() not in _FALSY


#: Sentinel memo entry: this prefix group is known unsnapshotable on
#: this worker — every member cell recomputes the prefix fresh (cold).
_COLD = object()

#: Worker-local memo: prefix group digest -> snapshot blob (or _COLD).
#: Holds the *blob*, never the live context: cells mutate their context,
#: so each one must fork a fresh copy via ``restore_value``.  Because a
#: group digest is a pure function of (prefix fn, params, seed) and
#: prefixes are deterministic, a stale-entry hazard cannot exist.
_prefix_memo: dict[str, Any] = {}
_PREFIX_MEMO_MAX = 8


def _reset_prefix_memo() -> None:
    """Drop the worker-local prefix memo (test isolation hook)."""
    _prefix_memo.clear()


def _memoize_prefix(group: str, entry: Any) -> None:
    if group not in _prefix_memo and len(_prefix_memo) >= _PREFIX_MEMO_MAX:
        _prefix_memo.pop(next(iter(_prefix_memo)))
    _prefix_memo[group] = entry


def _prefix_context(task: CellTask, in_worker: bool) -> tuple[Any, bytes | None]:
    """The warm context for ``task``'s prefix, plus a snapshot blob to
    report upstream when this call produced a fresh one.

    Resolution order: worker-local memo → the blob the runner attached
    (cache hit or a sibling worker's snapshot) → fresh execution.  A
    fresh context is snapshotted so later group members fork from it; an
    unsnapshotable context poisons the group to cold-per-cell instead of
    erroring.  Corrupt blobs are detected (checksum) and recomputed.
    """
    prefix = task.job.prefix
    if not snapshots_enabled():
        return run_prefix(prefix, task.prefix_seed), None
    group = task.prefix_group
    if group is not None:
        memo = _prefix_memo.get(group)
        if memo is _COLD:
            return run_prefix(prefix, task.prefix_seed), None
        if memo is not None:
            try:
                return restore_value(memo), None
            except SnapshotError:
                _prefix_memo.pop(group, None)  # corrupt memo: recompute below
        if task.prefix_blob is not None:
            try:
                ctx = restore_value(task.prefix_blob)
            except SnapshotError:
                pass  # corrupt attached blob: recompute below
            else:
                _memoize_prefix(group, task.prefix_blob)
                return ctx, None
    if task.prefix_fault_spec is not None:
        trip(task.prefix_fault_spec, in_worker)
    ctx = run_prefix(prefix, task.prefix_seed)
    if group is None:
        return ctx, None
    try:
        blob = snapshot_value(ctx)
    except SnapshotUnsupportedError:
        _memoize_prefix(group, _COLD)
        return ctx, None
    _memoize_prefix(group, blob)
    return ctx, blob


def run_task(task: CellTask, in_worker: bool) -> tuple[Any, float, bytes | None]:
    """Execute one cell attempt in the current process.

    Shared by every backend's execution site (serial, pool worker, fleet
    worker); the fault spec trips *before* the cell body, crashing,
    raising, hanging, or partitioning as planned.  Returns the cell
    value, the wall-clock duration, and the prefix snapshot blob when
    this attempt executed a prefix stage freshly (``None`` otherwise).
    """
    t0 = time.perf_counter()
    if task.fault_spec is not None:
        trip(task.fault_spec, in_worker)
    if task.job.prefix is None:
        value = run_job(task.job, task.seed)
        return value, time.perf_counter() - t0, None
    ctx, blob = _prefix_context(task, in_worker)
    value = run_job(task.job, task.seed, prefix_value=ctx)
    return value, time.perf_counter() - t0, blob


class ExecutorBackend:
    """Abstract executor backend (see module docstring for the contract).

    ``name`` identifies the backend in stats/CLI; ``preemptible`` tells
    the runner whether per-cell wall-clock timeouts are enforceable (an
    in-process cell cannot be abandoned, a pool/fleet worker can).
    """

    name: str = "?"
    preemptible: bool = False

    def start(self) -> None:
        """Bring the backend up; raise :class:`BackendUnavailableError`
        if execution can never work here."""

    @property
    def capacity(self) -> int:
        """How many tasks may be in flight concurrently (live workers)."""
        raise NotImplementedError

    def submit(self, task: CellTask) -> None:
        """Accept one task for execution (see module docstring for the
        exception contract)."""
        raise NotImplementedError

    def poll(self, timeout: float | None) -> list[TaskOutcome]:
        """Completed outcomes, blocking up to ``timeout`` seconds
        (``None`` = until at least one task settles)."""
        raise NotImplementedError

    def abandon(self, task_ids: Iterable[int]) -> None:
        """Give up on stuck in-flight tasks; innocent collateral tasks
        come back as ``requeued`` outcomes from the next :meth:`poll`."""

    def shutdown(self, cancel: bool = True) -> None:
        """Release workers/connections; idempotent."""

    def worker_health(self) -> list[WorkerHealth]:
        """Per-worker liveness and throughput."""
        return []

    def stats(self) -> dict[str, int]:
        """Aggregate counters merged into ``SweepRunner.last_stats``."""
        return {}


def normalize_addresses(workers: str | Sequence[str] | None) -> tuple[str, ...]:
    """Worker addresses from a ``"host:port,host:port"`` string or a
    sequence of such entries."""
    if workers is None:
        return ()
    if isinstance(workers, str):
        workers = workers.split(",")
    return tuple(w.strip() for w in workers if w and w.strip())
