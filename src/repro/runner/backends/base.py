"""The executor-backend contract: *how* sweep cells run.

:class:`~repro.runner.runner.SweepRunner` owns sweep *policy* — seed
derivation, caching, retry/backoff, per-cell timeouts, failure policies,
and the checkpoint journal.  Everything about where a cell's code
actually executes lives behind :class:`ExecutorBackend`: in this process
(:class:`~.serial.SerialBackend`), on a local process pool
(:class:`~.process.ProcessPoolBackend`), or on a fleet of networked
worker processes (:class:`~.tcp.TcpFleetBackend`).

The contract is deliberately small:

- :meth:`ExecutorBackend.start` brings the backend up (connect, warm a
  pool); it raises :class:`BackendUnavailableError` when execution can
  never work here, which the runner answers with its in-process serial
  fallback.
- :meth:`ExecutorBackend.submit` hands over one :class:`CellTask`; it
  may raise :class:`TransientSubmitError` ("not right now — re-offer the
  task later, uncharged") or :class:`BackendUnavailableError` ("never").
- :meth:`ExecutorBackend.poll` blocks up to ``timeout`` seconds and
  returns completed :class:`TaskOutcome` records.  Outcomes carry a
  *kind* that tells the runner how to charge the cell:

  ========== =====================================================
  ``ok``      cell value computed; settle the cell
  ``error``   the cell raised; charge the attempt, retry/backoff
  ``lost``    the worker died under the cell; charge the attempt
  ``requeued`` collateral damage (a sibling's crash/abandonment);
              re-dispatch without charging an attempt
  ``rejected`` the payload/result cannot cross this backend's
              boundary at all; the runner goes serial for the sweep
  ========== =====================================================

- :meth:`ExecutorBackend.abandon` gives up on stuck in-flight tasks (the
  runner's per-cell wall-clock timeout); the backend reclaims whatever
  capacity it can and re-offers innocent tasks as ``requeued`` outcomes.
- :meth:`ExecutorBackend.worker_health` reports per-worker liveness and
  throughput; :meth:`ExecutorBackend.stats` aggregates counters
  (``pool_breaks``, ``workers_lost``) that the runner merges into
  ``last_stats``.

Because every cell's seed is a pure function of (root seed, job key),
*placement is irrelevant to results*: any two backends executing the
same grid must produce bit-identical :class:`~repro.runner.job.JobResult`
lists.  ``tests/test_backends.py`` enforces that conformance for every
registered backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ...errors import ReproError
from ..faults import trip
from ..job import Job, run_job

#: Outcome kinds (see the table in the module docstring).
OK = "ok"
ERROR = "error"
LOST = "lost"
REQUEUED = "requeued"
REJECTED = "rejected"

OUTCOME_KINDS = (OK, ERROR, LOST, REQUEUED, REJECTED)


class BackendUnavailableError(ReproError):
    """The backend can never execute this sweep (no pool, no reachable
    workers, unserializable payloads...); the runner falls back to its
    in-process serial executor."""


class TransientSubmitError(ReproError):
    """The backend could not accept a task *right now* (a pool mid-
    rebuild, every fleet worker busy/just-lost); the runner re-offers
    the task later without charging an attempt."""


@dataclass(frozen=True)
class CellTask:
    """One dispatched cell attempt: the job, its derived seed, and the
    (optional, picklable) fault spec that must trip before the body."""

    task_id: int
    index: int
    job: Job
    seed: int | None
    fault_spec: tuple | None = None


@dataclass(frozen=True)
class TaskOutcome:
    """One completed/settled task as reported by a backend."""

    task_id: int
    kind: str
    value: Any = None
    duration_s: float = 0.0
    error: str | None = None
    error_type: str | None = None


@dataclass
class WorkerHealth:
    """Liveness/throughput of one backend worker (health reporting)."""

    worker_id: str
    alive: bool = True
    tasks_done: int = 0
    tasks_failed: int = 0
    current_task: int | None = None
    detail: str = ""


def run_task(task: CellTask, in_worker: bool) -> tuple[Any, float]:
    """Execute one cell attempt in the current process.

    Shared by every backend's execution site (serial, pool worker, fleet
    worker); the fault spec trips *before* the cell body, crashing,
    raising, hanging, or partitioning as planned.
    """
    t0 = time.perf_counter()
    if task.fault_spec is not None:
        trip(task.fault_spec, in_worker)
    value = run_job(task.job, task.seed)
    return value, time.perf_counter() - t0


class ExecutorBackend:
    """Abstract executor backend (see module docstring for the contract).

    ``name`` identifies the backend in stats/CLI; ``preemptible`` tells
    the runner whether per-cell wall-clock timeouts are enforceable (an
    in-process cell cannot be abandoned, a pool/fleet worker can).
    """

    name: str = "?"
    preemptible: bool = False

    def start(self) -> None:
        """Bring the backend up; raise :class:`BackendUnavailableError`
        if execution can never work here."""

    @property
    def capacity(self) -> int:
        """How many tasks may be in flight concurrently (live workers)."""
        raise NotImplementedError

    def submit(self, task: CellTask) -> None:
        """Accept one task for execution (see module docstring for the
        exception contract)."""
        raise NotImplementedError

    def poll(self, timeout: float | None) -> list[TaskOutcome]:
        """Completed outcomes, blocking up to ``timeout`` seconds
        (``None`` = until at least one task settles)."""
        raise NotImplementedError

    def abandon(self, task_ids: Iterable[int]) -> None:
        """Give up on stuck in-flight tasks; innocent collateral tasks
        come back as ``requeued`` outcomes from the next :meth:`poll`."""

    def shutdown(self, cancel: bool = True) -> None:
        """Release workers/connections; idempotent."""

    def worker_health(self) -> list[WorkerHealth]:
        """Per-worker liveness and throughput."""
        return []

    def stats(self) -> dict[str, int]:
        """Aggregate counters merged into ``SweepRunner.last_stats``."""
        return {}


def normalize_addresses(workers: str | Sequence[str] | None) -> tuple[str, ...]:
    """Worker addresses from a ``"host:port,host:port"`` string or a
    sequence of such entries."""
    if workers is None:
        return ()
    if isinstance(workers, str):
        workers = workers.split(",")
    return tuple(w.strip() for w in workers if w and w.strip())
