"""Deterministic seed derivation and stable structural hashing.

Everything the sweep runner does — per-job seeds, cache keys, job
identities — must be reproducible across processes, interpreter launches,
and machines.  Python's builtin ``hash`` is randomized per process
(``PYTHONHASHSEED``), so this module provides a canonical-form SHA-256
hash instead and derives per-job seeds from it.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields, is_dataclass
from typing import Any

#: Seeds are truncated to 32 bits so they stay friendly to every consumer
#: (``random.Random``, numpy-style generators, C extensions).
SEED_BITS = 32
SEED_MASK = (1 << SEED_BITS) - 1


def canonical_repr(obj: Any) -> str:
    """A stable textual form of ``obj`` for hashing.

    Supports the types sweep parameters are made of: scalars, strings,
    bytes, tuples/lists, dicts (sorted by key), sets/frozensets (sorted),
    and dataclasses (class name + field items).  Anything else must
    provide a deterministic ``repr`` — instances that default to
    ``<... at 0x7f...>`` are rejected because their repr embeds a memory
    address and would poison cache keys.
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return repr(obj)
    if isinstance(obj, float):
        return repr(obj)  # repr(float) is shortest-roundtrip, stable
    if isinstance(obj, (tuple, list)):
        inner = ",".join(canonical_repr(x) for x in obj)
        return f"[{inner}]" if isinstance(obj, list) else f"({inner})"
    if isinstance(obj, dict):
        items = sorted((canonical_repr(k), canonical_repr(v)) for k, v in obj.items())
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(obj, (set, frozenset)):
        return "set{" + ",".join(sorted(canonical_repr(x) for x in obj)) + "}"
    if is_dataclass(obj) and not isinstance(obj, type):
        items = ",".join(
            f"{f.name}={canonical_repr(getattr(obj, f.name))}" for f in fields(obj)
        )
        return f"{type(obj).__name__}({items})"
    if type(obj).__repr__ is object.__repr__:
        raise TypeError(
            f"cannot canonicalise {type(obj).__name__}: default object repr "
            "is not deterministic (give the job plain-data params instead)"
        )
    return repr(obj)


def stable_hash(*parts: Any) -> int:
    """A 64-bit hash of ``parts`` that is identical in every process."""
    digest = hashlib.sha256(
        "\x1f".join(canonical_repr(p) for p in parts).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


def stable_digest(*parts: Any) -> str:
    """Full hex SHA-256 of ``parts`` (cache keys / filenames)."""
    return hashlib.sha256(
        "\x1f".join(canonical_repr(p) for p in parts).encode()
    ).hexdigest()


def derive_seed(root_seed: int, job_key: str) -> int:
    """The per-job seed for ``job_key`` under ``root_seed``.

    A pure function of its arguments: the same grid swept with the same
    root seed gets the same per-cell seeds no matter how cells are
    ordered, chunked, or distributed across workers.
    """
    return stable_hash("seed", root_seed, job_key) & SEED_MASK
