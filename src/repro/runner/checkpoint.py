"""Append-only sweep checkpoint journal (checkpoint/resume).

A :class:`SweepJournal` records every *successfully* completed cell of a
sweep as one JSON line (key, seed, attempts, pickled value) appended and
flushed immediately — so a sweep that is interrupted, killed, or aborted
by a ``strict`` failure can be resumed and recompute only the cells that
never finished.  The journal is scoped to a ``sweep_id`` (a stable
digest of the root seed, the cell keys, and the code fingerprint): a
journal written by a *different* sweep — or by different code — is
ignored and replaced rather than replayed.

Crash-safety model: entries are single ``\\n``-terminated lines, written
with an immediate flush.  A torn final line (the process died mid-write)
is detected at load time and discarded; every earlier line is intact.
The runner deletes the journal once a sweep completes with zero
failures; while failures remain, the journal is kept so the next run
retries exactly the unfinished cells.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import warnings
from pathlib import Path
from typing import IO, Iterable

from .job import JobResult
from .seeding import stable_digest

_HEADER_KIND = "sweep-journal"
_VERSION = 1


def sweep_id(root_seed: int, keys: Iterable[str], fingerprint: str = "") -> str:
    """Identity of one sweep: (root seed, ordered cell keys, code)."""
    return stable_digest("sweep", root_seed, tuple(keys), fingerprint)


class SweepJournal:
    """One on-disk checkpoint manifest for one sweep."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._fh: IO[str] | None = None
        self._active_id: str | None = None
        #: Undecodable records skipped by the most recent :meth:`load`.
        self.skipped_records = 0

    # -- reading -----------------------------------------------------------------

    def load(self, expected_id: str) -> dict[str, JobResult]:
        """Completed cells journalled for ``expected_id``, keyed by job key.

        Returns ``{}`` when the journal is missing, unreadable, or
        belongs to a different sweep (stale journals are replaced on the
        next :meth:`record`, not replayed).  Lines are independent JSON
        records, so a torn or undecodable line is skipped without
        affecting the entries around it.
        """
        self.skipped_records = 0
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return {}
        lines = text.split("\n")
        done: dict[str, JobResult] = {}
        header_ok = False
        for i, line in enumerate(lines):
            if not line:
                continue
            if i == len(lines) - 1 and not text.endswith("\n"):
                continue  # torn final line: the writer died mid-append
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not header_ok:
                if (record.get("kind") != _HEADER_KIND
                        or record.get("sweep_id") != expected_id
                        or record.get("version") != _VERSION):
                    return {}
                header_ok = True
                continue
            try:
                value = pickle.loads(base64.b64decode(record["value"]))
                key = record["key"]
            except Exception as exc:
                # Unpickling runs arbitrary __setstate__ code, so the
                # breadth is unavoidable — but the skip must be loud:
                # an undecodable record is journal corruption, and the
                # cell silently recomputing would mask it.
                self.skipped_records += 1
                warnings.warn(
                    f"skipping undecodable journal record in {self.path}: "
                    f"{type(exc).__name__}: {exc}",
                    RuntimeWarning, stacklevel=2,
                )
                continue
            done[key] = JobResult(
                key=key, value=value, seed=record.get("seed"),
                attempts=int(record.get("attempts", 1)), resumed=True,
            )
        return done

    # -- writing -----------------------------------------------------------------

    def open_for(self, journal_id: str, resume: bool = True) -> None:
        """Open the journal for appending under ``journal_id``.

        With ``resume`` the existing file is kept when (and only when)
        its header matches; otherwise it is replaced with a fresh header.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        keep = resume and self._header_matches(journal_id)
        self._fh = self.path.open("a" if keep else "w", encoding="utf-8")
        self._active_id = journal_id
        if keep:
            # Neutralise a torn final line so the next record starts on
            # a fresh line instead of merging into the partial one.
            try:
                if self.path.stat().st_size and not self.path.read_bytes().endswith(b"\n"):
                    self._fh.write("\n")
                    self._fh.flush()
            except OSError:
                pass
        else:
            self._fh.write(json.dumps(
                {"kind": _HEADER_KIND, "version": _VERSION,
                 "sweep_id": journal_id},
                sort_keys=True,
            ) + "\n")
            self._fh.flush()

    def _header_matches(self, journal_id: str) -> bool:
        try:
            with self.path.open("r", encoding="utf-8") as fh:
                first = fh.readline()
            record = json.loads(first)
        except (OSError, ValueError):
            return False
        return (record.get("kind") == _HEADER_KIND
                and record.get("sweep_id") == journal_id)

    def record(self, result: JobResult) -> bool:
        """Append one completed cell; returns False if the value cannot
        be journalled (unpicklable values simply recompute on resume)."""
        if self._fh is None:
            raise RuntimeError("journal is not open; call open_for() first")
        try:
            payload = base64.b64encode(
                pickle.dumps(result.value, protocol=pickle.HIGHEST_PROTOCOL)
            ).decode("ascii")
        except Exception:
            return False
        self._fh.write(json.dumps(
            {"key": result.key, "seed": result.seed,
             "attempts": result.attempts, "value": payload},
            sort_keys=True,
        ) + "\n")
        self._fh.flush()
        return True

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.flush()
            finally:
                self._fh.close()
                self._fh = None

    def complete(self) -> None:
        """The sweep finished with no failures: the journal is obsolete."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass
