"""Append-only sweep checkpoint journal (checkpoint/resume/cooperate).

A :class:`SweepJournal` records every *successfully* completed cell of a
sweep as one JSON line (key, seed, attempts, pickled value) appended
durably — so a sweep that is interrupted, killed, or aborted by a
``strict`` failure can be resumed and recompute only the cells that
never finished.  The journal is scoped to a ``sweep_id`` (a stable
digest of the root seed, the cell keys, and the code fingerprint): a
journal written by a *different* sweep — or by different code — is
ignored and replaced rather than replayed.

Concurrent-append safety: the journal is opened with ``O_APPEND`` and
every record is emitted as **one** ``os.write`` of a single complete
``\\n``-terminated line.  POSIX guarantees that an ``O_APPEND`` write
lands atomically at the current end of file, so any number of writer
processes sharing one journal never interleave *partial* lines — records
from different writers simply alternate, whole line by whole line.  A
torn final line can therefore only come from a writer that died mid-
``write``; it is detected at load time and discarded, and every earlier
line is intact.  This is what makes the journal a safe coordination
substrate for multi-runner sweeps, not just a private checkpoint.

Cooperative sweeps add two record kinds on top of ``done``:

- ``lease`` records (``claim``/``renew``/``release``) carry a runner id,
  a cell key, and an absolute ``time.monotonic`` expiry.  Replaying them
  in file order yields a :class:`LeaseTable`; *file order is the
  arbiter* — when two runners race to claim one cell, the claim that
  reached the file first (while unexpired) holds the lease, and both
  runners agree because both replay the same append-only sequence.
- duplicate ``done`` records for one key resolve **first-wins**: the
  first durable record is authoritative; later ones are verified
  bit-identical (payload digest) and dropped (``duplicate_records``), or
  counted and warned about if they conflict (``conflicting_records``).
  Leases are advisory work-spreading; this rule is what makes
  double-completion safe.

The runner deletes the journal once a sweep completes with zero
failures; while failures remain, the journal is kept so the next run
retries exactly the unfinished cells.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import time
import warnings
from pathlib import Path
from typing import Iterable

from .job import JobResult
from .seeding import stable_digest

_HEADER_KIND = "sweep-journal"
_DONE_KIND = "done"
_LEASE_KIND = "lease"
_VERSION = 1

_LEASE_OPS = ("claim", "renew", "release")


def sweep_id(root_seed: int, keys: Iterable[str], fingerprint: str = "") -> str:
    """Identity of one sweep: (root seed, ordered cell keys, code)."""
    return stable_digest("sweep", root_seed, tuple(keys), fingerprint)


class LeaseTable:
    """Current lease state, folded from journal records in file order.

    ``holder(key)`` answers *who may work on this cell right now* — the
    runner named by the earliest claim that is still unexpired (renews
    extend it, releases clear it).  A claim over an expired foreign
    lease succeeds and remembers the evicted runner, so
    ``stale_holder(key)`` lets a claimant tell a reclaim (another
    runner's lease lapsed) from a first claim.

    Expiry times are absolute ``time.monotonic`` values; on Linux
    ``CLOCK_MONOTONIC`` is system-wide, so they compare meaningfully
    across cooperating runner processes on one machine.
    """

    def __init__(self) -> None:
        self._leases: dict[str, tuple[str, float]] = {}
        self._evicted: dict[str, str] = {}

    def apply(self, record: dict, now: float) -> None:
        """Fold one ``lease`` journal record into the table."""
        op = record.get("op")
        key = record.get("key")
        runner = record.get("runner")
        if op not in _LEASE_OPS or not isinstance(key, str) \
                or not isinstance(runner, str):
            return
        current = self._leases.get(key)
        if op == "claim":
            try:
                expires = float(record.get("expires", 0.0))
            except (TypeError, ValueError):
                return
            if current is None or current[0] == runner:
                self._leases[key] = (runner, expires)
            elif current[1] <= now:
                # Expired foreign lease: the claim evicts it (a reclaim).
                self._evicted[key] = current[0]
                self._leases[key] = (runner, expires)
            # else: an unexpired foreign lease holds; file order wins.
        elif op == "renew":
            try:
                expires = float(record.get("expires", 0.0))
            except (TypeError, ValueError):
                return
            if current is not None and current[0] == runner:
                self._leases[key] = (runner, max(current[1], expires))
        elif op == "release":
            if current is not None and current[0] == runner:
                self._evicted.pop(key, None)
                del self._leases[key]

    def holder(self, key: str, now: float | None = None) -> str | None:
        """The runner holding an *unexpired* lease on ``key``, or None."""
        current = self._leases.get(key)
        if current is None:
            return None
        if now is None:
            now = time.monotonic()
        return current[0] if current[1] > now else None

    def stale_holder(self, key: str, now: float | None = None) -> str | None:
        """The runner whose lapsed lease on ``key`` was (or would be)
        evicted — the reclaim-detection counterpart of :meth:`holder`."""
        evicted = self._evicted.get(key)
        if evicted is not None:
            return evicted
        current = self._leases.get(key)
        if current is None:
            return None
        if now is None:
            now = time.monotonic()
        return current[0] if current[1] <= now else None

    def held_by(self, runner: str, now: float | None = None) -> list[str]:
        """Keys currently leased (unexpired) by ``runner``, sorted."""
        if now is None:
            now = time.monotonic()
        return sorted(
            key for key, (holder, expires) in sorted(self._leases.items())
            if holder == runner and expires > now
        )


class SweepJournal:
    """One on-disk checkpoint manifest for one sweep.

    Any number of writer processes may share one journal: appends are
    single ``O_APPEND`` writes of complete lines (see module docstring),
    reads replay the shared file.  :meth:`poll_updates` follows the file
    incrementally, so cooperating runners see each other's ``done`` and
    ``lease`` records without re-reading from the top.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._fd: int | None = None
        self._active_id: str | None = None
        #: Undecodable records skipped by the most recent replay.
        self.skipped_records = 0
        #: Duplicate ``done`` records dropped after bit-identical verification.
        self.duplicate_records = 0
        #: Duplicate ``done`` records whose payload digest *disagreed*.
        self.conflicting_records = 0
        #: Lease state folded from the records replayed so far.
        self.leases = LeaseTable()
        self._done_digest: dict[str, str] = {}
        self._follow_offset = 0
        self._follow_header_seen = False
        self._follow_dead = False

    # -- reading -----------------------------------------------------------------

    def load(self, expected_id: str) -> dict[str, JobResult]:
        """Completed cells journalled for ``expected_id``, keyed by job key.

        Returns ``{}`` when the journal is missing, unreadable, or
        belongs to a different sweep (stale journals are replaced on the
        next :meth:`record`, not replayed).  Lines are independent JSON
        records, so a torn or undecodable line is skipped without
        affecting the entries around it.  Resets and primes the follow
        cursor, so a later :meth:`poll_updates` continues incrementally
        from here.
        """
        self._reset_follow()
        done = self._replay_new(expected_id)
        return {} if self._follow_dead else done

    def poll_updates(self, expected_id: str) -> dict[str, JobResult]:
        """Newly appended ``done`` records since the last replay.

        Follows the file from the cursor left by :meth:`load` / the
        previous poll: only complete (``\\n``-terminated) lines are
        consumed, a partial tail is left for the next poll, and ``lease``
        records are folded into :attr:`leases` along the way.  Returns
        only cells not seen before (first-wins).  If the file was
        truncated or rewritten under a foreign header, the follower goes
        dead and returns ``{}`` forever (a fresh :meth:`load` revives it).
        """
        if self._follow_dead:
            return {}
        return self._replay_new(expected_id)

    def _reset_follow(self) -> None:
        self.skipped_records = 0
        self.duplicate_records = 0
        self.conflicting_records = 0
        self.leases = LeaseTable()
        self._done_digest = {}
        self._follow_offset = 0
        self._follow_header_seen = False
        self._follow_dead = False

    def _replay_new(self, expected_id: str) -> dict[str, JobResult]:
        try:
            with open(self.path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                if size < self._follow_offset:
                    # Truncated/rewritten behind our back: a foreign
                    # sweep took the file over.
                    self._follow_dead = True
                    return {}
                fh.seek(self._follow_offset)
                data = fh.read(size - self._follow_offset)
        except OSError:
            if self._follow_header_seen:
                # The journal vanished mid-follow (peer completed the
                # sweep and unlinked it) — nothing new, not an error.
                return {}
            self._follow_dead = True
            return {}
        end = data.rfind(b"\n")
        if end < 0:
            return {}
        chunk = data[: end + 1]
        self._follow_offset += end + 1
        now = time.monotonic()
        fresh: dict[str, JobResult] = {}
        for raw in chunk.split(b"\n"):
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except ValueError:
                continue
            if not isinstance(record, dict):
                continue
            kind = record.get("kind", _DONE_KIND)
            if not self._follow_header_seen:
                if (kind != _HEADER_KIND
                        or record.get("sweep_id") != expected_id
                        or record.get("version") != _VERSION):
                    self._follow_dead = True
                    return {}
                self._follow_header_seen = True
                continue
            if kind == _HEADER_KIND:
                # A header mid-file: ours (harmless re-open) or foreign
                # (another sweep truncated and took over — stop trusting
                # anything after it).
                if (record.get("sweep_id") == expected_id
                        and record.get("version") == _VERSION):
                    continue
                self._follow_dead = True
                return fresh
            if kind == _LEASE_KIND:
                self.leases.apply(record, now)
                continue
            if kind != _DONE_KIND:
                continue  # unknown record kind: forward compatibility
            self._ingest_done(record, fresh)
        return fresh

    def _ingest_done(self, record: dict, fresh: dict[str, JobResult]) -> None:
        key = record.get("key")
        payload = record.get("value")
        if not isinstance(key, str) or not isinstance(payload, str):
            self.skipped_records += 1
            return
        digest = stable_digest("journal-done", payload, record.get("seed"))
        seen = self._done_digest.get(key)
        if seen is not None:
            # First durable done record wins; later duplicates are
            # verified bit-identical and dropped.
            if digest == seen:
                self.duplicate_records += 1
            else:
                self.conflicting_records += 1
                warnings.warn(
                    f"conflicting duplicate journal record for cell {key!r} "
                    f"in {self.path}: keeping the first durable result",
                    RuntimeWarning, stacklevel=3,
                )
            return
        try:
            value = pickle.loads(base64.b64decode(payload))
        except Exception as exc:
            # Unpickling runs arbitrary __setstate__ code, so the
            # breadth is unavoidable — but the skip must be loud:
            # an undecodable record is journal corruption, and the
            # cell silently recomputing would mask it.
            self.skipped_records += 1
            warnings.warn(
                f"skipping undecodable journal record in {self.path}: "
                f"{type(exc).__name__}: {exc}",
                RuntimeWarning, stacklevel=3,
            )
            return
        self._done_digest[key] = digest
        fresh[key] = JobResult(
            key=key, value=value, seed=record.get("seed"),
            attempts=int(record.get("attempts", 1)), resumed=True,
        )

    # -- writing -----------------------------------------------------------------

    def open_for(self, journal_id: str, resume: bool = True) -> None:
        """Open the journal for appending under ``journal_id``.

        With ``resume`` the existing file is kept when (and only when)
        its header matches; otherwise it is replaced with a fresh header.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        keep = resume and self._header_matches(journal_id)
        flags = os.O_WRONLY | os.O_CREAT | os.O_APPEND
        if not keep:
            flags |= os.O_TRUNC
            self._reset_follow()
        elif self._follow_dead:
            # The follower died on an earlier load() — typically because
            # a peer won the race to create the journal between that
            # load and now, so there was nothing to read yet.  The
            # header matches *this* sweep, so restart the follower from
            # the top: peer records must not stay invisible.
            self._reset_follow()
        self.close()
        self._fd = os.open(self.path, flags, 0o644)
        self._active_id = journal_id
        if keep:
            # Neutralise a torn final line so the next record starts on
            # a fresh line instead of merging into the partial one.  The
            # stray blank line is skipped by every reader.
            try:
                if self.path.stat().st_size and not self.path.read_bytes().endswith(b"\n"):
                    os.write(self._fd, b"\n")
            except OSError:
                pass
        else:
            self._append({"kind": _HEADER_KIND, "version": _VERSION,
                          "sweep_id": journal_id})

    def _header_matches(self, journal_id: str) -> bool:
        try:
            with self.path.open("r", encoding="utf-8") as fh:
                first = fh.readline()
            record = json.loads(first)
        except (OSError, ValueError):
            return False
        return (record.get("kind") == _HEADER_KIND
                and record.get("sweep_id") == journal_id)

    def _append(self, record: dict) -> None:
        """Emit one record as a single ``write`` of one complete line.

        ``O_APPEND`` + one ``os.write`` per line is the entire
        concurrent-writer story: the kernel appends the whole line
        atomically, so parallel writers interleave at line granularity
        only.  (Splitting this into multiple writes would reintroduce
        torn-line interleaving — don't.)
        """
        if self._fd is None:
            raise RuntimeError("journal is not open; call open_for() first")
        line = json.dumps(record, sort_keys=True).encode("utf-8") + b"\n"
        os.write(self._fd, line)

    def record(self, result: JobResult) -> bool:
        """Append one completed cell; returns False if the value cannot
        be journalled (unpicklable values simply recompute on resume)."""
        if self._fd is None:
            raise RuntimeError("journal is not open; call open_for() first")
        try:
            payload = base64.b64encode(
                pickle.dumps(result.value, protocol=pickle.HIGHEST_PROTOCOL)
            ).decode("ascii")
        except Exception:
            return False
        self._append({"kind": _DONE_KIND, "key": result.key,
                      "seed": result.seed, "attempts": result.attempts,
                      "value": payload})
        return True

    # -- leases ------------------------------------------------------------------

    def claim(self, runner_id: str, keys: Iterable[str], ttl_s: float) -> float:
        """Append ``claim`` records for ``keys`` expiring ``ttl_s`` from
        now (monotonic).  Appending does not *grant* the lease — replay
        the journal afterwards and check :attr:`leases` to learn who won
        (file order is the arbiter)."""
        expires = time.monotonic() + ttl_s
        for key in keys:
            self._append({"kind": _LEASE_KIND, "op": "claim",
                          "runner": runner_id, "key": key,
                          "expires": expires})
        return expires

    def renew(self, runner_id: str, keys: Iterable[str], ttl_s: float) -> float:
        """Extend ``runner_id``'s leases on ``keys`` by ``ttl_s`` from now."""
        expires = time.monotonic() + ttl_s
        for key in keys:
            self._append({"kind": _LEASE_KIND, "op": "renew",
                          "runner": runner_id, "key": key,
                          "expires": expires})
        return expires

    def release(self, runner_id: str, keys: Iterable[str]) -> None:
        """Relinquish ``runner_id``'s leases on ``keys``."""
        for key in keys:
            self._append({"kind": _LEASE_KIND, "op": "release",
                          "runner": runner_id, "key": key})

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            finally:
                self._fd = None

    def complete(self) -> None:
        """The sweep finished with no failures: the journal is obsolete."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass
