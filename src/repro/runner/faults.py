"""Deterministic fault injection for sweep execution.

A :class:`FaultPlan` names, ahead of time, exactly which sweep cells
fail, how, and on which attempts — so every recovery path in
:class:`~.runner.SweepRunner` (worker crash, cell exception, hang +
timeout, cache-entry corruption) is reproducibly exercisable in tests
and CI rather than only on unlucky production runs.  Plans are plain
data: build one explicitly from :class:`Fault` records, or derive one
from a seed with :meth:`FaultPlan.random` (same seed, same plan — on
every machine).

Fault kinds:

- ``"error"`` — the cell raises :class:`InjectedFaultError`;
- ``"crash"`` — the worker process hard-exits (``os._exit``), breaking
  the pool mid-sweep; executed in-process (serial path / final serial
  attempt) it raises :class:`InjectedCrashError` instead of killing the
  parent;
- ``"hang"`` — the cell sleeps ``hang_s`` wall-clock seconds before
  failing, tripping the runner's per-cell timeout;
- ``"partition"`` — a simulated *network* partition: on a TCP fleet
  worker the connection to the runner is severed while the worker
  process stays alive and serving (the runner sees a lost worker and
  retries the cell elsewhere); executed in-process or on a pool worker
  — where there is no network to cut — it raises
  :class:`InjectedPartitionError` like an ordinary cell failure;
- ``"freeze"`` — a simulated *hung-but-connected* worker: a TCP fleet
  worker goes mute — the connection stays open but nothing (not even a
  heartbeat ``pong``) is ever sent again — exactly the signature of a
  stopped/deadlocked process, detectable only by the runner's missed
  heartbeats; executed in-process or on a pool worker it raises
  :class:`InjectedFreezeError` like an ordinary cell failure;
- ``"corrupt"`` — the cell itself succeeds, but its freshly written
  :class:`~.cache.ResultCache` entry is overwritten with garbage,
  exercising the checksum/quarantine path on the next run.

The runner embeds the matching fault *spec* (a picklable tuple) into
each dispatched payload; :func:`trip` executes it on the worker side.
"""

from __future__ import annotations

import hashlib
import os
import random
import time
from dataclasses import dataclass
from typing import Iterable

from ..errors import ReproError

#: Exit code used by injected worker crashes (visible in pool diagnostics).
CRASH_EXIT_CODE = 86

FAULT_KINDS = ("error", "crash", "hang", "partition", "freeze", "corrupt")


class InjectedFaultError(ReproError):
    """A fault-plan-injected cell failure (distinguishable from real bugs)."""


class InjectedCrashError(InjectedFaultError):
    """In-process stand-in for a worker crash: raised instead of
    ``os._exit`` when a crash fault fires outside a pool worker."""


class InjectedPartitionError(InjectedFaultError):
    """A simulated network partition.  A TCP fleet worker catches this
    and severs its connection without replying (process stays alive);
    everywhere else it surfaces as an ordinary injected cell failure."""


class InjectedFreezeError(InjectedFaultError):
    """A simulated hung-but-connected worker.  A TCP fleet worker
    intercepts the spec before execution and goes mute (the connection
    stays open, heartbeats go unanswered — the runner must detect it via
    missed ``pong``\\ s, not a socket error); everywhere else it surfaces
    as an ordinary injected cell failure."""


@dataclass(frozen=True)
class Fault:
    """One planned failure.

    ``cell`` selects the target by sweep index (position in the cell
    list handed to ``run``) or by job key.  ``attempts`` lists the
    attempt numbers (1-based) on which the fault fires; ``None`` means
    *every* attempt — a permanent failure that must end up in the
    failure manifest.  ``hang_s`` only applies to ``"hang"`` faults.
    ``stage="prefix"`` aims the fault at the cell's shared prefix stage
    instead of the cell body: it trips only when the worker actually
    executes the prefix freshly (never on a snapshot restore), so it
    exercises the warm-start machinery's retry/fallback paths.
    """

    kind: str
    cell: int | str
    attempts: tuple[int, ...] | None = (1,)
    hang_s: float = 30.0
    stage: str = "cell"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}")
        if self.attempts is not None and not self.attempts:
            raise ValueError("attempts must be a non-empty tuple or None (= always)")
        if self.hang_s <= 0:
            raise ValueError(f"hang_s must be positive, got {self.hang_s}")
        if self.stage not in ("cell", "prefix"):
            raise ValueError(f"stage must be 'cell' or 'prefix', got {self.stage!r}")

    def fires_on(self, attempt: int) -> bool:
        return self.attempts is None or attempt in self.attempts


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of planned faults for one sweep."""

    faults: tuple[Fault, ...] = ()

    @classmethod
    def of(cls, *faults: Fault) -> "FaultPlan":
        return cls(faults=tuple(faults))

    @classmethod
    def random(
        cls,
        seed: int,
        n_cells: int,
        crashes: int = 1,
        errors: int = 1,
        hangs: int = 0,
        partitions: int = 0,
        corruptions: int = 0,
        attempts: tuple[int, ...] | None = (1,),
        hang_s: float = 30.0,
    ) -> "FaultPlan":
        """A seed-deterministic plan over ``n_cells`` sweep cells.

        Targets are drawn without replacement from ``range(n_cells)``
        via ``random.Random(seed)``, so the same (seed, shape) always
        injects into the same cell indices — in CI, in tests, anywhere.
        """
        wanted = crashes + errors + hangs + partitions + corruptions
        if wanted > n_cells:
            raise ValueError(
                f"cannot place {wanted} faults in a {n_cells}-cell sweep"
            )
        rng = random.Random(seed)
        targets = rng.sample(range(n_cells), wanted)
        faults: list[Fault] = []
        for kind, count in (("crash", crashes), ("error", errors),
                            ("hang", hangs), ("partition", partitions),
                            ("corrupt", corruptions)):
            for _ in range(count):
                faults.append(Fault(kind=kind, cell=targets.pop(0),
                                    attempts=attempts, hang_s=hang_s))
        return cls(faults=tuple(faults))

    def faults_for(self, index: int, key: str) -> tuple[Fault, ...]:
        """Every fault aimed at cell ``index`` / ``key``."""
        return tuple(
            f for f in self.faults
            if (f.cell == index if isinstance(f.cell, int) else f.cell == key)
        )

    def cells(self) -> tuple[int | str, ...]:
        """The distinct targeted cells, in plan order."""
        seen: list[int | str] = []
        for f in self.faults:
            if f.cell not in seen:
                seen.append(f.cell)
        return tuple(seen)


class FaultInjector:
    """Applies a :class:`FaultPlan` during one sweep execution.

    The runner asks :meth:`spec_for` at dispatch time; a non-``None``
    spec rides inside the (picklable) worker payload and is executed by
    :func:`trip` before the cell body runs.  ``corruption_for`` is
    checked runner-side after a successful cache store.  ``tripped``
    records every fault armed, as ``(key, kind, attempt)`` tuples, for
    assertions and failure manifests.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.tripped: list[tuple[str, str, int]] = []

    def spec_for(
        self, index: int, key: str, attempt: int
    ) -> tuple | None:
        for fault in self.plan.faults_for(index, key):
            if (fault.stage != "cell" or fault.kind == "corrupt"
                    or not fault.fires_on(attempt)):
                continue
            self.tripped.append((key, fault.kind, attempt))
            if fault.kind == "hang":
                return ("hang", fault.hang_s)
            return (fault.kind, key, attempt)
        return None

    def prefix_spec_for(
        self, index: int, key: str, attempt: int
    ) -> tuple | None:
        """Like :meth:`spec_for`, for ``stage="prefix"`` faults.  The
        spec rides as the task's ``prefix_fault_spec`` and only actually
        trips when the prefix executes freshly on the worker (a snapshot
        restore bypasses it — restoring cannot crash the warmup)."""
        for fault in self.plan.faults_for(index, key):
            if (fault.stage != "prefix" or fault.kind == "corrupt"
                    or not fault.fires_on(attempt)):
                continue
            self.tripped.append((key, fault.kind, attempt))
            if fault.kind == "hang":
                return ("hang", fault.hang_s)
            return (fault.kind, key, attempt)
        return None

    def corruption_for(self, index: int, key: str) -> bool:
        return any(
            f.kind == "corrupt" for f in self.plan.faults_for(index, key)
        )

    def corrupt_entry(self, cache, cache_key: str) -> bool:
        """Overwrite ``cache_key``'s on-disk entry with garbage bytes.

        The garbage is derived from the cache key, not drawn from
        ``os.urandom``: fault injection is part of the deterministic
        sweep contract, so even the corruption bytes are a pure function
        of the plan (DET invariant).
        """
        path = cache.path_for(cache_key)
        if not path.exists():
            return False
        garbage = hashlib.sha256(
            b"injected-corruption\x00" + cache_key.encode("utf-8")
        ).digest()[:8]
        path.write_bytes(b"\x00injected-corruption\x00" + garbage)
        return True


def trip(spec: tuple, in_worker: bool) -> None:
    """Execute a fault spec (worker side; also the serial path).

    Crash faults only hard-exit inside a pool worker — in-process they
    raise :class:`InjectedCrashError` so a serial run (or the final
    serial attempt) records a structured failure instead of killing the
    parent interpreter.
    """
    kind = spec[0]
    if kind == "error":
        raise InjectedFaultError(
            f"injected cell exception (cell {spec[1]!r}, attempt {spec[2]})"
        )
    if kind == "crash":
        if in_worker:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedCrashError(
            f"injected worker crash (cell {spec[1]!r}, attempt {spec[2]}, in-process)"
        )
    if kind == "hang":
        time.sleep(spec[1])
        raise InjectedFaultError(f"injected hang elapsed after {spec[1]}s")
    if kind == "partition":
        raise InjectedPartitionError(
            f"injected network partition (cell {spec[1]!r}, attempt {spec[2]})"
        )
    if kind == "freeze":
        # A fleet worker never gets here: its connection handler
        # intercepts the spec and goes mute instead (see worker.py).
        raise InjectedFreezeError(
            f"injected worker freeze (cell {spec[1]!r}, attempt {spec[2]}, "
            "in-process)"
        )
    raise ValueError(f"unknown fault spec {spec!r}")


def permanent_cells(plan: FaultPlan, keys: Iterable[str],
                    max_attempts: int) -> list[str]:
    """Job keys whose planned faults cover every attempt — the cells a
    ``degrade`` sweep's failure manifest must list exactly."""
    out: list[str] = []
    for index, key in enumerate(keys):
        faults = [f for f in plan.faults_for(index, key) if f.kind != "corrupt"]
        if faults and all(
            any(f.fires_on(a) for f in faults)
            for a in range(1, max_attempts + 1)
        ):
            out.append(key)
    return out
