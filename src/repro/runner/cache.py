"""Incremental on-disk result cache for sweep cells.

Each completed cell's return value is pickled under a key that is a
stable hash of (callable spec, params, seed, code fingerprint).  The code
fingerprint covers the ``repro`` package sources *and* the module that
defines the cell function, so editing either invalidates exactly the
cells whose behaviour could have changed — re-running a sweep recomputes
only changed cells.

Writes are atomic (tmp file + ``os.replace``) so concurrent workers and
parallel bench runs can never observe a torn entry; a corrupt or
unreadable entry degrades to a cache miss.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

from .seeding import stable_digest

#: Memoised source fingerprints, keyed by directory/file path.
_fingerprints: dict[str, str] = {}


def _hash_tree(root: Path) -> str:
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


def code_fingerprint(extra_module_file: str | None = None) -> str:
    """Hex digest of the ``repro`` sources (+ one extra module's source).

    Computed once per process per path; a sweep's cache entries survive
    exactly as long as the code that produced them is byte-identical.
    """
    package_root = Path(__file__).resolve().parent.parent
    key = str(package_root)
    tree = _fingerprints.get(key)
    if tree is None:
        tree = _hash_tree(package_root)
        _fingerprints[key] = tree
    if not extra_module_file:
        return tree
    extra = _fingerprints.get(extra_module_file)
    if extra is None:
        try:
            extra = hashlib.sha256(Path(extra_module_file).read_bytes()).hexdigest()
        except OSError:
            extra = "unreadable"
        _fingerprints[extra_module_file] = extra
    return f"{tree}-{extra}"


class ResultCache:
    """Pickle-per-entry cache directory (default layout:
    ``benchmarks/results/.cache/<key>.pkl``)."""

    #: Sentinel distinguishing "miss" from a cached ``None`` value.
    MISS = object()

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key_for(
        self, fn_spec: str, params: tuple, seed: int | None,
        fingerprint: str = "",
    ) -> str:
        return stable_digest("cell", fn_spec, params, seed, fingerprint)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or :data:`MISS`."""
        try:
            with self._path(key).open("rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            self.misses += 1
            return self.MISS
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Atomically persist ``value`` under ``key``."""
        self.directory.mkdir(parents=True, exist_ok=True)
        # Self-ignoring directory, pytest-cache style: cached cells are
        # derived data and must never be committed.
        marker = self.directory / ".gitignore"
        if not marker.exists():
            marker.write_text("*\n")
        target = self._path(key)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=f".{key[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
