"""Incremental on-disk result cache for sweep cells.

Each completed cell's return value is pickled under a key that is a
stable hash of (callable spec, params, seed, code fingerprint).  The code
fingerprint covers the ``repro`` package sources *and* the module that
defines the cell function, so editing either invalidates exactly the
cells whose behaviour could have changed — re-running a sweep recomputes
only changed cells.

Writes are atomic (tmp file + ``os.replace``) so concurrent workers and
parallel bench runs can never observe a torn entry.  Every entry carries
an integrity header — a magic tag plus a truncated SHA-256 of the pickle
payload — so bit-rot, torn files from crashed writers, and injected
corruption are *detected*, not deserialized: a corrupt entry counts as a
miss, is moved into a ``quarantine/`` subdirectory on first sight (never
re-read every run), and :meth:`ResultCache.verify` scrubs a whole cache
directory on demand (exposed as ``python -m repro cache verify``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

from ..errors import CacheCorruptionError
from ..sim import kernels
from .seeding import stable_digest

#: Memoised source fingerprints, keyed by directory/file path.  Each
#: entry pairs the digest with the stat signature (mtimes + sizes) it was
#: computed from, so a long-lived process re-hashes exactly when sources
#: change on disk instead of serving a stale fingerprint forever (the
#: future service mode must never serve cache hits against edited code).
_fingerprints: dict[str, tuple[tuple, str]] = {}

#: Entry format: MAGIC + sha256(payload)[:CHECKSUM_BYTES] + payload.
MAGIC = b"RPRC1\n"
CHECKSUM_BYTES = 16

#: Subdirectory (inside the cache dir) holding quarantined corrupt entries.
QUARANTINE_DIR = "quarantine"

#: Subdirectory holding prefix snapshot blobs (warm-start contexts).
SNAPSHOT_DIR = "snapshots"


def _hash_tree(root: Path) -> str:
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


def _tree_signature(root: Path) -> tuple:
    """Cheap change detector for a source tree: sorted (relpath,
    mtime_ns, size) triples.  An ``os.stat`` walk per call instead of a
    full re-hash; any edit, addition, or deletion changes it."""
    signature = []
    for path in sorted(root.rglob("*.py")):
        try:
            st = path.stat()
        except OSError:
            continue
        signature.append((str(path.relative_to(root)), st.st_mtime_ns, st.st_size))
    return tuple(signature)


def _tree_fingerprint(root: Path) -> str:
    """The content digest of ``root``, memoised against its stat signature."""
    key = str(root)
    signature = _tree_signature(root)
    memo = _fingerprints.get(key)
    if memo is not None and memo[0] == signature:
        return memo[1]
    digest = _hash_tree(root)
    _fingerprints[key] = (signature, digest)
    return digest


def _file_fingerprint(path_str: str) -> str:
    """The content digest of one file, memoised against (mtime, size)."""
    try:
        st = os.stat(path_str)
        signature = ((st.st_mtime_ns, st.st_size),)
    except OSError:
        signature = (("missing",),)
    memo = _fingerprints.get(path_str)
    if memo is not None and memo[0] == signature:
        return memo[1]
    try:
        digest = hashlib.sha256(Path(path_str).read_bytes()).hexdigest()
    except OSError:
        digest = "unreadable"
    _fingerprints[path_str] = (signature, digest)
    return digest


def invalidate_fingerprints(path: str | os.PathLike | None = None) -> None:
    """Drop memoised code fingerprints (all of them, or one path's).

    The memo self-invalidates on mtime/size changes; this is the explicit
    big hammer for callers that need a guaranteed re-hash (a service mode
    reloading code, or tests that rewrite sources in place within the
    filesystem's mtime granularity)."""
    if path is None:
        _fingerprints.clear()
    else:
        _fingerprints.pop(str(path), None)


def code_fingerprint(extra_module_file: str | None = None) -> str:
    """Hex digest of the ``repro`` sources (+ one extra module's source),
    suffixed with the active execution engine and kernel mode.

    The source tree digest is memoised per path against a stat signature
    (every file's mtime + size), so a long-lived process that edits — or
    hot-reloads — sources gets a fresh fingerprint on the next call
    rather than serving stale cache hits; :func:`invalidate_fingerprints`
    forces it.  The engine/accel suffix is re-read per call
    (``REPRO_ENGINE`` / ``REPRO_ACCEL`` plus numpy's presence and
    version), so cache entries produced under different engines or kernel
    backends never alias even though all engines promise bit-identical
    results — a fingerprint mismatch is a recompute, never a wrong
    answer.
    """
    package_root = Path(__file__).resolve().parent.parent
    tree = _tree_fingerprint(package_root)
    mode = f"{kernels.engine_mode()}-{kernels.accel_signature()}"
    if not extra_module_file:
        return f"{tree}-{mode}"
    return f"{tree}-{_file_fingerprint(extra_module_file)}-{mode}"


def encode_entry(value: Any) -> bytes:
    """Serialise ``value`` with the integrity header."""
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    checksum = hashlib.sha256(payload).digest()[:CHECKSUM_BYTES]
    return MAGIC + checksum + payload


def decode_entry(blob: bytes) -> Any:
    """Deserialise an entry, raising :class:`CacheCorruptionError` on any
    integrity violation (wrong magic, truncated header, bad checksum)."""
    header = len(MAGIC) + CHECKSUM_BYTES
    if not blob.startswith(MAGIC) or len(blob) < header:
        raise CacheCorruptionError("cache entry has no valid integrity header")
    checksum = blob[len(MAGIC):header]
    payload = blob[header:]
    if hashlib.sha256(payload).digest()[:CHECKSUM_BYTES] != checksum:
        raise CacheCorruptionError("cache entry checksum mismatch")
    try:
        return pickle.loads(payload)
    except Exception as exc:  # checksum passed but unpicklable (e.g. renamed class)
        raise CacheCorruptionError(f"cache entry unpicklable: {exc}") from exc


class ResultCache:
    """Pickle-per-entry cache directory (default layout:
    ``benchmarks/results/.cache/<key>.pkl``)."""

    #: Sentinel distinguishing "miss" from a cached ``None`` value.
    MISS = object()

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.quarantined = 0
        self.snapshot_hits = 0
        self.snapshot_misses = 0
        self.snapshot_stores = 0

    def key_for(
        self, fn_spec: str, params: tuple, seed: int | None,
        fingerprint: str = "", prefix: Any = None,
    ) -> str:
        """The result-entry key for one cell.

        ``prefix`` (a :class:`~repro.runner.job.Prefix`, when the job
        has one) participates so the same cell forked from different
        prefixes never aliases; prefix-less jobs keep their historical
        keys.
        """
        if prefix is None:
            return stable_digest("cell", fn_spec, params, seed, fingerprint)
        return stable_digest("cell", fn_spec, params, seed, fingerprint, prefix)

    def snapshot_key_for(
        self, fn_spec: str, params: tuple, seed: int | None,
        fingerprint: str = "",
    ) -> str:
        """The snapshot-entry key for one prefix stage (same code-
        fingerprint discipline as results: editing the prefix's module
        or the ``repro`` sources invalidates its cached snapshots)."""
        return stable_digest("snapshot", fn_spec, params, seed, fingerprint)

    def path_for(self, key: str) -> Path:
        """The on-disk path of ``key``'s entry (it may not exist)."""
        return self.directory / f"{key}.pkl"

    def snapshot_path_for(self, key: str) -> Path:
        """The on-disk path of ``key``'s snapshot entry (may not exist)."""
        return self.directory / SNAPSHOT_DIR / f"{key}.pkl"

    # Backwards-compatible private alias.
    _path = path_for

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or :data:`MISS`.

        A corrupt entry degrades to a miss *and* is quarantined on the
        spot, so a torn file can never be re-read run after run.
        """
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return self.MISS
        try:
            value = decode_entry(blob)
        except CacheCorruptionError:
            self.corrupt += 1
            self.misses += 1
            self._quarantine(path)
            return self.MISS
        self.hits += 1
        return value

    def _write_entry(self, target: Path, value: Any) -> None:
        """Atomically persist one encoded entry at ``target``."""
        self.directory.mkdir(parents=True, exist_ok=True)
        # Self-ignoring directory, pytest-cache style: cached cells are
        # derived data and must never be committed.
        marker = self.directory / ".gitignore"
        if not marker.exists():
            marker.write_text("*\n")
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=target.parent, prefix=f".{target.stem[:16]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(encode_entry(value))
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def put(self, key: str, value: Any) -> None:
        """Atomically persist ``value`` under ``key``."""
        self._write_entry(self.path_for(key), value)
        self.stores += 1

    def get_snapshot(self, key: str) -> Any:
        """The cached snapshot blob (``bytes``) for ``key``, or
        :data:`MISS`.  Corrupt entries quarantine exactly like results
        (the blob carries its own inner checksum too — this outer check
        guards the cache file, the inner one guards the wire/memo)."""
        path = self.snapshot_path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.snapshot_misses += 1
            return self.MISS
        try:
            value = decode_entry(blob)
        except CacheCorruptionError:
            self.corrupt += 1
            self.snapshot_misses += 1
            self._quarantine(path)
            return self.MISS
        if not isinstance(value, bytes):
            self.corrupt += 1
            self.snapshot_misses += 1
            self._quarantine(path)
            return self.MISS
        self.snapshot_hits += 1
        return value

    def put_snapshot(self, key: str, blob: bytes) -> None:
        """Atomically persist a prefix snapshot blob under ``key``."""
        self._write_entry(self.snapshot_path_for(key), blob)
        self.snapshot_stores += 1

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry out of the lookup path (delete as a last
        resort) so it is never decoded again."""
        qdir = self.directory / QUARANTINE_DIR
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
            self.quarantined += 1
            return
        except OSError:
            pass
        try:
            path.unlink()
            self.quarantined += 1
        except OSError:
            pass

    def verify(self, repair: bool = True) -> dict[str, Any]:
        """Scrub every entry — results *and* prefix snapshots;
        quarantine (with ``repair``) the corrupt ones.

        Returns a report: ``checked``/``ok`` counts (results +
        snapshots, with snapshot-only counts broken out), the corrupt
        entry keys (snapshot entries prefixed ``snapshots/``), and how
        many were quarantined.  A nonzero ``corrupt`` list is the CI
        gate's failure condition for both entry kinds.
        """
        report: dict[str, Any] = {
            "directory": str(self.directory),
            "checked": 0, "ok": 0, "corrupt": [], "quarantined": 0,
            "snapshots_checked": 0, "snapshots_ok": 0,
        }
        if not self.directory.is_dir():
            return report

        def scrub(path: Path, label: str, snapshot: bool) -> None:
            report["checked"] += 1
            if snapshot:
                report["snapshots_checked"] += 1
            try:
                value = decode_entry(path.read_bytes())
                if snapshot and not isinstance(value, bytes):
                    raise CacheCorruptionError("snapshot entry is not a blob")
            except (CacheCorruptionError, OSError):
                report["corrupt"].append(label)
                if repair:
                    before = self.quarantined
                    self._quarantine(path)
                    report["quarantined"] += self.quarantined - before
            else:
                report["ok"] += 1
                if snapshot:
                    report["snapshots_ok"] += 1

        for path in sorted(self.directory.glob("*.pkl")):
            scrub(path, path.stem, snapshot=False)
        snapdir = self.directory / SNAPSHOT_DIR
        if snapdir.is_dir():
            for path in sorted(snapdir.glob("*.pkl")):
                scrub(path, f"{SNAPSHOT_DIR}/{path.stem}", snapshot=True)
        return report

    def clear(self) -> int:
        """Delete every entry (including quarantined ones and prefix
        snapshots); returns the number of live entries removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for sub in (QUARANTINE_DIR, SNAPSHOT_DIR):
                subdir = self.directory / sub
                if not subdir.is_dir():
                    continue
                live = sub == SNAPSHOT_DIR  # quarantined entries don't count
                for path in subdir.glob("*.pkl"):
                    try:
                        path.unlink()
                    except OSError:
                        continue
                    if live:
                        removed += 1
        return removed
