"""Failure and retry policies for sweep execution.

Two knobs govern what :class:`~.runner.SweepRunner` does when a cell
fails (raises, times out, or takes its worker process down):

- :data:`FailurePolicy` — what the *sweep* does once every cell has had
  its chances: ``"strict"`` raises an aggregated
  :class:`~repro.errors.SweepError`, ``"degrade"`` returns the full
  result list with failed cells recorded as structured
  :class:`~.job.JobResult` error records (the failure manifest lives in
  ``runner.last_failures`` / ``runner.last_stats``).
- :class:`RetryPolicy` — what one *cell* gets: bounded attempts with
  exponential backoff, an optional per-attempt wall-clock timeout
  (enforced in pool mode, where a stuck worker can be abandoned), and an
  in-process serial final attempt so no pool-level flakiness can starve
  a cell of its last chance.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigError
from .seeding import stable_hash

#: Granularity of the deterministic backoff jitter fraction.
_JITTER_BUCKETS = 4096

#: Raise an aggregated :class:`~repro.errors.SweepError` when any cell fails.
STRICT = "strict"
#: Return partial results; failures become structured error records.
DEGRADE = "degrade"

FAILURE_POLICIES = (STRICT, DEGRADE)


def parse_failure_policy(name: str) -> str:
    """Validate a failure-policy name (``strict`` or ``degrade``)."""
    policy = str(name).lower()
    if policy not in FAILURE_POLICIES:
        raise ConfigError(
            f"unknown failure policy {name!r}; expected one of {FAILURE_POLICIES}"
        )
    return policy


@dataclass(frozen=True)
class RetryPolicy:
    """Per-cell retry/timeout behaviour.

    ``max_attempts`` counts every try, including the first; ``1`` means
    no retries.  A failed attempt ``n`` waits
    ``min(backoff_cap_s, backoff_base_s * 2**(n-1))`` before the cell is
    re-dispatched, spread by ``jitter``: a *seeded* multiplicative spread
    of ``±jitter/2`` derived from the cell key via
    :func:`~.seeding.stable_hash` — not from ``random`` or the wall
    clock, so the DET invariant holds — which decorrelates the retry
    times of cells that failed together (a fleet-wide partition must not
    produce a synchronized retry storm).  ``timeout_s`` is the
    per-attempt wall-clock budget —
    enforced only when a process pool is running (an in-process cell
    cannot be preempted; the serial path runs without a deadline).  With
    ``serial_final_attempt`` (the default), a cell's last attempt always
    runs in-process in the parent, so a broken or saturated pool can
    never consume a cell's final chance.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    timeout_s: float | None = None
    serial_final_attempt: bool = True
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ConfigError("backoff durations must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError(f"timeout_s must be positive, got {self.timeout_s}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_s(self, failures: int, key: str | None = None) -> float:
        """Delay before the next attempt after ``failures`` failed ones.

        With a ``key`` (the cell's job key) the exponential delay is
        scaled by a deterministic factor in ``[1 - jitter/2,
        1 + jitter/2)`` derived from ``(key, failures)`` — the same cell
        always backs off the same amount, but sibling cells that failed
        in the same event spread out instead of retrying in lockstep.
        Without a key (or with ``jitter=0``) the schedule is the exact
        exponential.
        """
        if failures <= 0:
            return 0.0
        delay = min(self.backoff_cap_s, self.backoff_base_s * (2 ** (failures - 1)))
        if self.jitter and key is not None:
            frac = (stable_hash("retry-jitter", key, failures)
                    % _JITTER_BUCKETS) / _JITTER_BUCKETS
            delay *= 1.0 + self.jitter * (frac - 0.5)
        return delay

    def with_timeout(self, timeout_s: float | None) -> "RetryPolicy":
        return replace(self, timeout_s=timeout_s)
