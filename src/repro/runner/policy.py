"""Failure and retry policies for sweep execution.

Two knobs govern what :class:`~.runner.SweepRunner` does when a cell
fails (raises, times out, or takes its worker process down):

- :data:`FailurePolicy` — what the *sweep* does once every cell has had
  its chances: ``"strict"`` raises an aggregated
  :class:`~repro.errors.SweepError`, ``"degrade"`` returns the full
  result list with failed cells recorded as structured
  :class:`~.job.JobResult` error records (the failure manifest lives in
  ``runner.last_failures`` / ``runner.last_stats``).
- :class:`RetryPolicy` — what one *cell* gets: bounded attempts with
  exponential backoff, an optional per-attempt wall-clock timeout
  (enforced in pool mode, where a stuck worker can be abandoned), and an
  in-process serial final attempt so no pool-level flakiness can starve
  a cell of its last chance.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigError

#: Raise an aggregated :class:`~repro.errors.SweepError` when any cell fails.
STRICT = "strict"
#: Return partial results; failures become structured error records.
DEGRADE = "degrade"

FAILURE_POLICIES = (STRICT, DEGRADE)


def parse_failure_policy(name: str) -> str:
    """Validate a failure-policy name (``strict`` or ``degrade``)."""
    policy = str(name).lower()
    if policy not in FAILURE_POLICIES:
        raise ConfigError(
            f"unknown failure policy {name!r}; expected one of {FAILURE_POLICIES}"
        )
    return policy


@dataclass(frozen=True)
class RetryPolicy:
    """Per-cell retry/timeout behaviour.

    ``max_attempts`` counts every try, including the first; ``1`` means
    no retries.  A failed attempt ``n`` waits
    ``min(backoff_cap_s, backoff_base_s * 2**(n-1))`` before the cell is
    re-dispatched.  ``timeout_s`` is the per-attempt wall-clock budget —
    enforced only when a process pool is running (an in-process cell
    cannot be preempted; the serial path runs without a deadline).  With
    ``serial_final_attempt`` (the default), a cell's last attempt always
    runs in-process in the parent, so a broken or saturated pool can
    never consume a cell's final chance.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    timeout_s: float | None = None
    serial_final_attempt: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ConfigError("backoff durations must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError(f"timeout_s must be positive, got {self.timeout_s}")

    def backoff_s(self, failures: int) -> float:
        """Delay before the next attempt after ``failures`` failed ones."""
        if failures <= 0:
            return 0.0
        return min(self.backoff_cap_s, self.backoff_base_s * (2 ** (failures - 1)))

    def with_timeout(self, timeout_s: float | None) -> "RetryPolicy":
        return replace(self, timeout_s=timeout_s)
