"""Fleet worker: the server side of the TCP sweep backend.

``python -m repro worker serve --listen HOST:PORT`` turns any machine
with the ``repro`` package into sweep capacity: the runner's
:class:`~.backends.tcp.TcpFleetBackend` connects, handshakes, and
streams ``run`` messages (see :mod:`.backends.wire` for the protocol).
Each connection executes one cell at a time in a dedicated thread, so a
single worker process serves several runners (or several connections
from one runner) concurrently.

Each connection runs at most one cell at a time, but the cell body
executes in a *side* thread while the connection's reader loop keeps
answering ``ping`` with ``pong`` — so the heartbeat measures process
liveness, not busyness: a worker that misses heartbeats is wedged, not
merely slow.  (A lock serialises sends, so a ``pong`` never interleaves
with a ``result`` on the wire.)

Fault-injection semantics on a worker match a pool worker's:
``crash`` faults hard-exit the process (the runner sees the connection
drop — a lost worker), ``hang`` faults sleep past the runner's cell
deadline, and ``partition`` faults sever this connection while leaving
the process alive and serving (a network partition, not a death).
``freeze`` faults (cell stage) mute the connection instead of executing:
it stays open but nothing — not even a ``pong`` — is ever sent again,
the exact signature of a stopped or deadlocked worker process, so the
runner's missed-heartbeat detector can be exercised deterministically.

A ``hello`` carrying a foreign protocol version is answered with an
``unsupported`` message naming both versions, then the connection is
closed — a mixed-version fleet fails fast instead of mid-sweep.

Helpers for tests/benches:

- :func:`start_thread_worker` runs a worker inside the current process
  (real loopback sockets, no subprocess) — crash faults raise instead of
  exiting, exactly like the runner's serial path;
- :func:`spawn_worker_process` launches a real worker subprocess and
  returns its (process, address) once it announces readiness.
"""

from __future__ import annotations

import json
import os
import socket
import sys
import threading
import time
from typing import Callable

from .backends.base import CellTask, run_task
from .backends.wire import (
    PROTOCOL_VERSION,
    decode_bytes,
    decode_value,
    encode_bytes,
    encode_value,
    parse_address,
    recv_message,
    send_message,
    version_mismatch,
)
from .faults import InjectedPartitionError


def parse_listen(spec: str) -> tuple[str, int]:
    """``"HOST:PORT"`` (or bare ``"PORT"``) → ``(host, port)``;
    port 0 asks the OS for a free port."""
    if ":" not in spec:
        return "127.0.0.1", int(spec)
    return parse_address(spec)


def _execute(message: dict, in_worker: bool) -> dict:
    """Run one ``run`` message; returns the ``result`` reply.

    Raises :class:`InjectedPartitionError` through to the caller — a
    partition has no reply by definition.
    """
    task_id = message.get("task_id")
    try:
        job = decode_value(message["job"])
        fault = message.get("fault")
        prefix_fault = message.get("prefix_fault")
        blob_text = message.get("prefix_blob")
        task = CellTask(
            task_id=task_id if isinstance(task_id, int) else -1,
            index=-1, job=job, seed=message.get("seed"),
            fault_spec=tuple(fault) if fault else None,
            prefix_seed=message.get("prefix_seed"),
            prefix_group=message.get("prefix_group"),
            prefix_blob=decode_bytes(blob_text) if blob_text else None,
            prefix_fault_spec=tuple(prefix_fault) if prefix_fault else None,
        )
        value, duration, prefix_blob = run_task(task, in_worker)
    except InjectedPartitionError:
        raise
    except Exception as exc:
        return {
            "op": "result", "task_id": task_id, "ok": False,
            "error_type": type(exc).__name__,
            "error": str(exc) or repr(exc),
        }
    try:
        payload = encode_value(value)
    except Exception as exc:
        # The value cannot cross the wire at all: tell the runner to
        # stop using this backend for the sweep (pool pickling parity).
        return {
            "op": "result", "task_id": task_id, "ok": False, "reject": True,
            "error_type": type(exc).__name__,
            "error": f"result not serializable: {exc}",
        }
    reply = {
        "op": "result", "task_id": task_id, "ok": True,
        "value": payload, "duration_s": duration,
    }
    if prefix_blob is not None:
        reply["prefix"] = encode_bytes(prefix_blob)
    return reply


def _handle_connection(conn: socket.socket, in_worker: bool) -> None:
    buffer = b""
    send_lock = threading.Lock()
    severed = threading.Event()
    busy = threading.Event()  # a cell is executing on this connection
    muted = False

    def reply(message: dict) -> None:
        with send_lock:
            send_message(conn, message)

    def execute_async(message: dict) -> None:
        # The cell runs in a side thread so the reader loop below keeps
        # answering pings mid-cell: heartbeats measure process liveness,
        # not busyness.  ``busy`` clears *before* the result is sent, so
        # by the time the runner can react to the reply with another
        # ``run``, this connection already reads as idle again.
        def body() -> None:
            try:
                result = _execute(message, in_worker)
            except InjectedPartitionError:
                # Sever the link, stay alive: a partition, not a death.
                severed.set()
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                return
            busy.clear()
            try:
                reply(result)
            except OSError:
                pass

        busy.set()
        threading.Thread(target=body, daemon=True).start()

    try:
        while True:
            message, buffer = recv_message(conn, buffer)
            if message is None or severed.is_set():
                return
            if muted:
                continue  # frozen: read and discard forever, never answer
            op = message.get("op")
            if op == "hello":
                version = message.get("version")
                if version != PROTOCOL_VERSION:
                    reply({
                        "op": "unsupported", "version": PROTOCOL_VERSION,
                        "got": version,
                        "error": str(version_mismatch(
                            PROTOCOL_VERSION, version, "the runner")),
                    })
                    return
                for entry in reversed(message.get("path") or ()):
                    if isinstance(entry, str) and entry not in sys.path:
                        sys.path.insert(0, entry)
                reply({
                    "op": "welcome", "version": PROTOCOL_VERSION,
                    "pid": os.getpid(), "host": socket.gethostname(),
                })
            elif op == "ping":
                reply({"op": "pong", "token": message.get("token")})
            elif op == "bye":
                return
            elif op == "run":
                if busy.is_set():
                    return  # protocol violation: one run at a time
                fault = message.get("fault")
                if fault and fault[0] == "freeze":
                    muted = True  # hung-but-connected from here on
                    continue
                execute_async(message)
            else:
                return  # protocol violation: drop the connection
    except (OSError, ValueError):
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


def serve(
    listen: str = "127.0.0.1:0",
    *,
    in_worker: bool = True,
    announce: bool = True,
    ready: Callable[[tuple[str, int]], None] | None = None,
    stop: threading.Event | None = None,
) -> None:
    """Serve sweep cells until interrupted (or ``stop`` is set).

    With ``announce`` (the CLI default) the bound address is printed as a
    ``{"op": "listening", ...}`` JSON line on stdout, so callers that
    bind port 0 can discover the real port and wait for readiness.
    """
    host, port = parse_listen(listen)
    server = socket.create_server((host, port))
    server.settimeout(0.2)
    bound = server.getsockname()
    if announce:
        print(json.dumps({
            "op": "listening", "host": bound[0], "port": bound[1],
            "pid": os.getpid(),
        }, sort_keys=True), flush=True)
    if ready is not None:
        ready((bound[0], bound[1]))
    try:
        while stop is None or not stop.is_set():
            try:
                conn, _peer = server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=_handle_connection, args=(conn, in_worker), daemon=True,
            ).start()
    finally:
        server.close()


# -- helpers for tests and benches ------------------------------------------------


def start_thread_worker(host: str = "127.0.0.1") -> tuple[str, Callable[[], None]]:
    """An in-process worker on a loopback socket; returns its
    ``"host:port"`` address and a stop callable.

    Runs with ``in_worker=False`` so injected crash faults raise instead
    of hard-exiting the caller's interpreter.
    """
    stop = threading.Event()
    bound: list[tuple[str, int]] = []
    ready = threading.Event()

    def note(address: tuple[str, int]) -> None:
        bound.append(address)
        ready.set()

    thread = threading.Thread(
        target=serve,
        kwargs=dict(listen=f"{host}:0", in_worker=False, announce=False,
                    ready=note, stop=stop),
        daemon=True,
    )
    thread.start()
    if not ready.wait(timeout=10.0):
        stop.set()
        raise OSError("thread worker did not come up within 10s")
    address = f"{bound[0][0]}:{bound[0][1]}"
    return address, stop.set


def spawn_worker_process(
    listen: str = "127.0.0.1:0", timeout_s: float = 30.0,
):
    """Launch ``python -m repro worker serve`` and wait for readiness.

    Returns ``(subprocess.Popen, "host:port")``.  The child inherits the
    current environment plus the ``repro`` package's source directory on
    ``PYTHONPATH`` (the runner's hello also replays its full import path
    to the worker, so bench/test modules resolve there too).
    """
    import subprocess

    src_dir = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = os.environ.copy()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "serve", "--listen", listen],
        stdout=subprocess.PIPE, text=True, env=env,
    )
    deadline = time.monotonic() + timeout_s
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line:
            break
        if proc.poll() is not None:
            raise OSError(
                f"fleet worker exited with {proc.returncode} before announcing"
            )
    try:
        note = json.loads(line)
        assert note["op"] == "listening"
        address = f"{note['host']}:{note['port']}"
    except (ValueError, KeyError, AssertionError) as exc:
        proc.terminate()
        raise OSError(f"fleet worker announce line unreadable: {line!r}") from exc
    return proc, address
