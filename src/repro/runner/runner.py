"""Backend-pluggable sweep execution with deterministic seeding, caching,
and fault tolerance.

:class:`SweepRunner` takes a list of independent :class:`~.job.Job` cells
and executes them

- **deterministically**: every cell's seed is derived from the runner's
  root seed and the cell's key (:func:`~.seeding.derive_seed`), so the
  result set is a pure function of (grid, root seed) — bit-identical
  whether cells run serially, across a local process pool, or sharded
  over a TCP fleet of worker machines;
- **on a pluggable backend**: the runner owns sweep *policy* (seeds,
  cache, retry/backoff, timeouts, journal); the *mechanics* of running
  cells live behind the :class:`~.backends.ExecutorBackend` interface —
  ``serial`` (in-process), ``process`` (local pool), or ``tcp``
  (multi-host fleet; ``python -m repro worker serve`` on each host);
- **incrementally**: with a :class:`~.cache.ResultCache` attached, cells
  whose (params, seed, code fingerprint) already have an entry are served
  from disk and only changed cells recompute;
- **fault-tolerantly**: a cell that raises, exceeds its per-attempt
  wall-clock timeout, or takes its worker down (a crashed pool process,
  a lost fleet connection) is retried with exponential backoff on a
  fresh worker, with its *final* attempt run in-process so no backend
  flakiness can consume a cell's last chance.  A backend that becomes
  unusable altogether (no pool, every fleet worker gone, unpicklable
  payloads) degrades the sweep to the in-process serial executor rather
  than failing it.  Cells that exhaust their attempts become structured
  :class:`~.job.JobResult` error records — under the ``strict`` failure
  policy the sweep then raises an aggregated
  :class:`~repro.errors.SweepError`; under ``degrade`` it returns the
  full partial result list plus a failure manifest
  (``last_failures`` / ``last_stats``);
- **resumably**: with ``checkpoint=<path>``, completed cells journal to
  an append-only manifest (:class:`~.checkpoint.SweepJournal`) flushed
  per cell, so an interrupted, killed, or strict-aborted sweep resumes
  recomputing only unfinished cells.  ``KeyboardInterrupt`` shuts the
  backend down and flushes the journal before propagating;
- **cooperatively**: with ``lease_ttl=<seconds>`` (requires
  ``checkpoint``), several runner processes drain *one* sweep through
  one shared journal.  Each runner claims cells via journal lease
  records before dispatching them, adopts peers' durable ``done``
  records instead of recomputing, renews its leases while working, and
  reclaims cells whose holder died (leases expire on the monotonic
  clock).  Double-completions at the race edges resolve first-wins with
  bit-identical verification, so the merged result set equals a clean
  serial run no matter which runner is killed when;
- **verifiably-on-purpose**: a seed-deterministic
  :class:`~.faults.FaultPlan` can inject worker crashes, cell
  exceptions, hangs, network partitions, and cache corruption at chosen
  cells, so every one of the recovery paths above is exercisable in
  tests and CI.
"""

from __future__ import annotations

import math
import os
import sys
import time
import warnings
from collections import deque
from itertools import count
from typing import Any, Callable, Sequence

from ..errors import ConfigError, SweepError
from .backends import (
    ERROR,
    LOST,
    OK,
    REJECTED,
    REQUEUED,
    BackendUnavailableError,
    CellTask,
    ExecutorBackend,
    TransientSubmitError,
    WorkerHealth,
    make_backend,
    normalize_addresses,
    run_task,
    snapshots_enabled,
)
from .cache import ResultCache, code_fingerprint
from .checkpoint import SweepJournal, sweep_id
from .faults import FaultInjector, FaultPlan
from .job import Job, JobResult, resolve_callable
from .policy import STRICT, RetryPolicy, parse_failure_policy
from .seeding import derive_seed, stable_digest

#: Environment knob mirrored by the CLI/pytest ``--jobs`` options.
JOBS_ENV = "REPRO_JOBS"
#: Environment knobs mirrored by the CLI/pytest ``--backend``/``--workers``
#: options: backend name and the TCP fleet's HOST:PORT address list.
BACKEND_ENV = "REPRO_BACKEND"
WORKERS_ENV = "REPRO_WORKERS"

_warned_negative_jobs = False


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (serial when unset or invalid).

    A negative value clamps to serial (with a one-time warning) instead
    of flowing into a backend's ``max_workers=<0``.
    """
    global _warned_negative_jobs
    raw = os.environ.get(JOBS_ENV, "")
    try:
        jobs = int(raw)
    except ValueError:
        return 1
    if jobs < 0:
        if not _warned_negative_jobs:
            _warned_negative_jobs = True
            warnings.warn(
                f"{JOBS_ENV}={jobs} is negative; clamping to serial (1)",
                RuntimeWarning, stacklevel=2,
            )
        return 1
    return jobs if jobs != 0 else (os.cpu_count() or 1)


def default_backend() -> str | None:
    """Backend name from ``REPRO_BACKEND`` (``None`` = pick by ``jobs``)."""
    return os.environ.get(BACKEND_ENV, "").strip().lower() or None


def default_workers() -> tuple[str, ...]:
    """TCP fleet addresses from ``REPRO_WORKERS`` (comma-separated)."""
    return normalize_addresses(os.environ.get(WORKERS_ENV, ""))


class _LeaseCoop:
    """One run's view of journal-lease cooperation.

    Wraps the shared :class:`~.checkpoint.SweepJournal` with the three
    verbs the dispatcher needs: *claim* a cell before dispatching it
    (file order arbitrates races; an expired foreign lease is reclaimed),
    *poll* for peers' durable completions to adopt, and *renew*/-
    *release* held leases.  Every decision folds out of the shared
    append-only journal, so all cooperating runners see the same state.
    """

    def __init__(self, journal: SweepJournal, journal_id: str,
                 ttl_s: float, runner_id: str) -> None:
        self.journal = journal
        self.journal_id = journal_id
        self.ttl_s = ttl_s
        self.runner_id = runner_id
        #: How often the dispatcher should look for peer activity while
        #: idle — a fraction of the TTL so expiries are seen promptly.
        self.poll_s = max(0.02, min(0.25, ttl_s / 4))
        self.claimed: set[str] = set()
        self.stats: dict[str, int] = {
            "leases_claimed": 0, "lease_losses": 0, "leases_reclaimed": 0,
            "lease_renewals": 0, "adopted": 0,
        }
        self._fresh: dict[str, JobResult] = {}
        self._last_renew = time.monotonic()

    def _consume(self) -> None:
        # Accumulate rather than return: try_claim() replays the journal
        # too, and any done records it surfaces must not be swallowed —
        # they stay queued here until the next poll() drains them.
        self._fresh.update(self.journal.poll_updates(self.journal_id))

    def poll(self) -> dict[str, JobResult]:
        """Peers' newly journalled completions (adopt, don't recompute)."""
        self._consume()
        self._maybe_renew()
        fresh, self._fresh = self._fresh, {}
        return fresh

    def _maybe_renew(self) -> None:
        now = time.monotonic()
        if self.claimed and now - self._last_renew >= self.ttl_s / 3.0:
            self.journal.renew(self.runner_id, sorted(self.claimed), self.ttl_s)
            self.stats["lease_renewals"] += 1
            self._last_renew = now

    def foreign_holder(self, key: str) -> str | None:
        """The peer holding an unexpired lease on ``key`` (None = free)."""
        holder = self.journal.leases.holder(key)
        return None if holder is None or holder == self.runner_id else holder

    def try_claim(self, key: str) -> bool:
        """Append a claim and let journal file order arbitrate it."""
        if key in self.claimed:
            return True
        stale = self.journal.leases.stale_holder(key)
        self.journal.claim(self.runner_id, [key], self.ttl_s)
        self._consume()
        if self.journal.leases.holder(key) == self.runner_id:
            self.claimed.add(key)
            self.stats["leases_claimed"] += 1
            if stale is not None and stale != self.runner_id:
                self.stats["leases_reclaimed"] += 1
            return True
        self.stats["lease_losses"] += 1
        return False

    def settle(self, key: str) -> None:
        """The cell completed here: its ``done`` record supersedes the
        lease, which is simply left to expire (an explicit release would
        invite a peer to recompute before it sees the record)."""
        self.claimed.discard(key)

    def release_key(self, key: str) -> None:
        """Give the cell up (permanent failure here): a peer with its
        own attempt budget may claim it immediately."""
        if key in self.claimed:
            self.journal.release(self.runner_id, [key])
            self.claimed.discard(key)

    def release_all(self) -> None:
        if self.claimed:
            self.journal.release(self.runner_id, sorted(self.claimed))
            self.claimed.clear()


class SweepRunner:
    """Declarative executor for (config x workload x seed) grids.

    ``jobs`` is the worker count (``1`` = serial, ``0`` = one per CPU,
    ``None`` = read ``REPRO_JOBS``); ``root_seed`` anchors per-cell seed
    derivation; ``cache`` is a :class:`ResultCache`, a directory path, or
    ``None`` to disable caching.

    ``backend`` picks how cells execute: ``"serial"``, ``"process"``,
    ``"tcp"`` (or ``"tcp://host:port,..."``), a ready
    :class:`~.backends.ExecutorBackend` instance, or ``None`` to read
    ``REPRO_BACKEND`` and fall back to process-pool-when-parallel.
    ``workers`` lists the TCP fleet's ``HOST:PORT`` addresses (string or
    sequence; default ``REPRO_WORKERS``).

    Fault-tolerance knobs: ``policy`` is the sweep-level failure policy
    (``"strict"`` or ``"degrade"``); ``retry`` a :class:`RetryPolicy`
    (attempts/backoff/timeout); ``timeout_s`` a convenience override of
    ``retry.timeout_s``; ``checkpoint`` a journal path enabling
    checkpoint/resume; ``fault_plan`` a deterministic
    :class:`~.faults.FaultPlan` for chaos testing.

    Robustness knobs: ``heartbeat_s`` enables the TCP fleet's liveness
    heartbeat (hung-worker detection + mid-sweep re-admission of
    restarted workers); ``lease_ttl`` (requires ``checkpoint``) makes
    the run *cooperative* — several runners pointed at the same journal
    share one sweep via lease records; ``runner_id`` names this runner
    in those records (defaults to a pid-based id).
    """

    def __init__(
        self,
        jobs: int | None = None,
        root_seed: int = 0,
        cache: ResultCache | str | os.PathLike | None = None,
        chunk_size: int | None = None,
        policy: str = STRICT,
        retry: RetryPolicy | None = None,
        timeout_s: float | None = None,
        checkpoint: str | os.PathLike | None = None,
        fault_plan: FaultPlan | None = None,
        backend: str | ExecutorBackend | None = None,
        workers: str | Sequence[str] | None = None,
        heartbeat_s: float | None = None,
        lease_ttl: float | None = None,
        runner_id: str | None = None,
    ) -> None:
        if jobs is None:
            jobs = default_jobs()
        elif jobs == 0:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1 (or 0 for one per CPU), got {jobs}")
        self.jobs = jobs
        self.root_seed = root_seed
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.chunk_size = chunk_size  # retained for API compatibility; unused
        self.policy = parse_failure_policy(policy)
        if retry is None:
            retry = RetryPolicy()
        if timeout_s is not None:
            retry = retry.with_timeout(timeout_s)
        self.retry = retry
        self.checkpoint = checkpoint
        self.fault_plan = fault_plan
        self.backend = backend
        self.workers = normalize_addresses(workers) or None
        if heartbeat_s is not None and heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be positive, got {heartbeat_s}")
        self.heartbeat_s = heartbeat_s
        if lease_ttl is not None and lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        if lease_ttl is not None and checkpoint is None:
            raise ConfigError(
                "lease_ttl requires checkpoint=<path>: cooperation is "
                "mediated entirely by the shared sweep journal"
            )
        self.lease_ttl = lease_ttl
        if runner_id is None:
            # pid + monotonic microseconds: unique among the cooperating
            # runners on one machine without reaching for os.urandom
            # (identity is bookkeeping, not part of any result).
            runner_id = (
                f"runner-{os.getpid()}-"
                f"{int(time.monotonic() * 1e6) & 0xFFFFFF:06x}"
            )
        self.runner_id = runner_id
        #: Execution summary of the most recent :meth:`run`.
        self.last_stats: dict[str, Any] = {}
        #: Failure manifest of the most recent :meth:`run` (``ok=False``
        #: :class:`JobResult` records, in sweep input order).
        self.last_failures: list[JobResult] = []
        #: The injector used by the most recent :meth:`run` (``None``
        #: without a fault plan); ``last_injector.tripped`` logs what fired.
        self.last_injector: FaultInjector | None = None
        #: Per-worker health reports from the most recent :meth:`run`'s
        #: backend (empty for a pure cache/journal replay).
        self.last_worker_health: list[WorkerHealth] = []

    # -- seed/cache bookkeeping ---------------------------------------------------

    def seed_for(self, job: Job) -> int | None:
        """The seed ``job`` will run with (explicit, derived, or None)."""
        if not job.pass_seed:
            return job.seed
        if job.seed is not None:
            return job.seed
        return derive_seed(self.root_seed, job.key)

    def _fingerprint_for(self, fn_spec: str, memo: dict[str, str]) -> str:
        """The code fingerprint covering ``fn_spec``'s defining module
        (memoised per spec for the duration of one run)."""
        fingerprint = memo.get(fn_spec)
        if fingerprint is None:
            module_name = fn_spec.partition(":")[0]
            module = sys.modules.get(module_name)
            if module is None:
                module = resolve_callable(fn_spec).__module__
                module = sys.modules.get(module)
            module_file = getattr(module, "__file__", None)
            fingerprint = code_fingerprint(module_file)
            memo[fn_spec] = fingerprint
        return fingerprint

    def _cache_key(self, job: Job, seed: int | None, memo: dict[str, str]) -> str:
        fingerprint = self._fingerprint_for(job.fn, memo)
        if (job.prefix is not None
                and job.prefix.fn.partition(":")[0] != job.fn.partition(":")[0]):
            # The cell's result depends on the prefix's code too; fold in
            # its module fingerprint when it lives elsewhere.
            fingerprint = (
                f"{fingerprint}-{self._fingerprint_for(job.prefix.fn, memo)}"
            )
        assert self.cache is not None
        return self.cache.key_for(
            job.fn, job.params, seed, fingerprint, prefix=job.prefix,
        )

    def prefix_seed_for(self, prefix) -> int | None:
        """The seed a prefix stage runs with (explicit, derived, None)."""
        if not prefix.pass_seed:
            return prefix.seed
        if prefix.seed is not None:
            return prefix.seed
        return derive_seed(self.root_seed, prefix.key)

    # -- backend resolution -------------------------------------------------------

    def _resolve_backend(self, pending: int) -> ExecutorBackend:
        """The backend for this run (never ``None``; may raise
        :class:`BackendUnavailableError` from its ``start``)."""
        spec = self.backend
        if spec is None:
            spec = default_backend()
        if isinstance(spec, ExecutorBackend):
            return spec
        jobs = min(self.jobs, pending) if pending else 1
        if spec is None:
            spec = "process" if jobs > 1 else "serial"
        workers = self.workers or default_workers()
        return make_backend(
            spec, jobs=jobs, workers=workers,
            max_rebuilds=2 * pending + 4,
            heartbeat_s=self.heartbeat_s,
        )

    # -- execution ---------------------------------------------------------------

    def run(self, cells: Sequence[Job], resume: bool = True) -> list[JobResult]:
        """Execute ``cells``; results come back in input order.

        The output is bit-identical to running the cells in a plain
        serial loop: the backend choice, parallelism, retries, worker
        scheduling, cache hits, and journal resumption are all invisible
        in the result set.  Failed cells appear as ``ok=False`` records
        under ``degrade``; under ``strict`` the sweep raises
        :class:`SweepError` once every cell has had its attempts
        (completed cells are still journalled first, so a strict abort
        is resumable).
        """
        cells = list(cells)
        keys = [job.key for job in cells]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"duplicate job keys in sweep: {dupes}")

        seeds = [self.seed_for(job) for job in cells]
        results: list[JobResult | None] = [None] * len(cells)
        failures: list[JobResult] = []
        injector = FaultInjector(self.fault_plan) if self.fault_plan else None
        self.last_injector = injector
        self.last_worker_health = []

        # Checkpoint journal: replay completed cells of this exact sweep.
        journal: SweepJournal | None = None
        coop: _LeaseCoop | None = None
        journal_hits = 0
        if self.checkpoint is not None:
            if self.lease_ttl is not None:
                # A cooperating runner must never truncate the shared
                # journal: a fresh header would destroy its peers'
                # records mid-sweep.
                resume = True
            journal = SweepJournal(self.checkpoint)
            journal_id = sweep_id(self.root_seed, keys, code_fingerprint())
            if resume:
                done = journal.load(journal_id)
                for i, job in enumerate(cells):
                    entry = done.get(job.key)
                    if entry is not None and entry.seed == seeds[i]:
                        results[i] = entry
                        journal_hits += 1
            journal.open_for(journal_id, resume=resume)
            if self.lease_ttl is not None:
                coop = _LeaseCoop(
                    journal, journal_id, self.lease_ttl, self.runner_id,
                )

        # Result cache: serve identical (params, seed, code) cells from disk.
        fingerprint_memo: dict[str, str] = {}
        cache_keys: dict[int, str] = {}
        pending: list[int] = []
        for i, job in enumerate(cells):
            if results[i] is not None:
                continue
            if self.cache is not None:
                key = self._cache_key(job, seeds[i], fingerprint_memo)
                cache_keys[i] = key
                value = self.cache.get(key)
                if value is not self.cache.MISS:
                    results[i] = JobResult(
                        key=job.key, value=value, seed=seeds[i], cached=True
                    )
                    continue
            pending.append(i)

        cache_hits = sum(
            1 for r in results if r is not None and r.cached
        )

        # Prefix sharing: group pending cells by identical (prefix fn,
        # params, derived seed); prefetch each distinct group's snapshot
        # from the cache so member cells fork instead of replaying the
        # warmup.  Blobs produced by workers mid-sweep are added to
        # ``blobs`` (and persisted) as they arrive.
        prefix_seeds: list[int | None] = [None] * len(cells)
        prefix_groups: list[str | None] = [None] * len(cells)
        for i, job in enumerate(cells):
            if job.prefix is None:
                continue
            pseed = self.prefix_seed_for(job.prefix)
            prefix_seeds[i] = pseed
            prefix_groups[i] = stable_digest(
                "prefix-group", job.prefix.fn, job.prefix.params, pseed
            )
        prefix_ctx: dict[str, Any] = {
            "seeds": prefix_seeds, "groups": prefix_groups,
            "blobs": {}, "cache_keys": {}, "stored": set(),
            "hits": 0, "misses": 0, "stores": 0,
        }
        if self.cache is not None and snapshots_enabled():
            for i in pending:
                group = prefix_groups[i]
                if group is None or group in prefix_ctx["cache_keys"]:
                    continue
                prefix = cells[i].prefix
                skey = self.cache.snapshot_key_for(
                    prefix.fn, prefix.params, prefix_seeds[i],
                    self._fingerprint_for(prefix.fn, fingerprint_memo),
                )
                prefix_ctx["cache_keys"][group] = skey
                blob = self.cache.get_snapshot(skey)
                if blob is self.cache.MISS:
                    prefix_ctx["misses"] += 1
                else:
                    prefix_ctx["hits"] += 1
                    prefix_ctx["blobs"][group] = blob
                    prefix_ctx["stored"].add(group)

        def finish(i: int, result: JobResult) -> None:
            if results[i] is not None:
                return  # already settled (e.g. adopted from a peer)
            results[i] = result
            if not result.ok:
                failures.append(result)
                return
            if journal is not None and not result.resumed:
                # Adopted results came *from* the journal — re-recording
                # them would just mint duplicate done records.
                journal.record(result)
            if self.cache is not None:
                self.cache.put(cache_keys[i], result.value)
                if injector is not None and injector.corruption_for(i, cells[i].key):
                    injector.corrupt_entry(self.cache, cache_keys[i])

        dispatch_stats: dict[str, Any] = {
            "retries": 0, "timeouts": 0, "pool_breaks": 0, "workers_lost": 0,
            "backend": "serial", "workers": 1,
        }
        if coop is not None:
            dispatch_stats.update(coop.stats)
            dispatch_stats["runner_id"] = self.runner_id
        mode = "serial"
        if pending:
            try:
                mode = self._dispatch(
                    cells, seeds, pending, finish, injector, dispatch_stats,
                    prefix_ctx, coop,
                )
            except KeyboardInterrupt:
                # Completed cells are already journalled (flushed per
                # record); close cleanly so a resume picks them up.
                if journal is not None:
                    journal.close()
                raise

        self.last_failures = failures
        self.last_stats = {
            "cells": len(cells),
            "executed": len(pending),
            "cache_hits": cache_hits,
            "journal_hits": journal_hits,
            "mode": mode,
            "failures": len(failures),
            "failed": [r.key for r in failures],
            "prefix_groups": len({g for g in prefix_groups if g is not None}),
            "snapshot_hits": prefix_ctx["hits"],
            "snapshot_misses": prefix_ctx["misses"],
            "snapshot_stores": prefix_ctx["stores"],
            **dispatch_stats,
        }

        if journal is not None:
            if failures or coop is not None:
                # Keep the file: unfinished cells resume later, and in
                # cooperative mode peers may still be tailing it for
                # leases/adoptions — unlinking it under them would leave
                # them waiting on records they can no longer see.
                journal.close()
            else:
                journal.complete()

        if failures and self.policy == STRICT:
            raise SweepError(failures, [r for r in results if r is not None])
        return [r for r in results if r is not None]

    def values(self, cells: Sequence[Job]) -> list[Any]:
        """Just the cell values, in input order."""
        return [r.value for r in self.run(cells)]

    # -- the resilient dispatcher -------------------------------------------------

    def _dispatch(
        self,
        cells: list[Job],
        seeds: list[int | None],
        pending: list[int],
        finish: Callable[[int, JobResult], None],
        injector: FaultInjector | None,
        stats: dict[str, Any],
        prefix_ctx: dict[str, Any] | None = None,
        coop: "_LeaseCoop | None" = None,
    ) -> str:
        """Execute ``pending`` cell indices on the resolved backend with
        retries/timeouts, reporting each completion through ``finish``;
        returns the mode string (``serial``, ``parallel``, or
        ``serial-fallback``).

        With ``coop``, every cell passes a lease gate before dispatch:
        cells leased by a live peer park in ``foreign`` (re-checked as
        leases expire and peers' ``done`` records arrive), and the loop
        only ends once every cell is settled locally — computed here,
        adopted from a peer, or failed for good.
        """
        policy = self.retry
        max_att = policy.max_attempts
        timeout_s = policy.timeout_s
        attempts: dict[int, int] = dict.fromkeys(pending, 0)
        ready_at: dict[int, float] = dict.fromkeys(pending, 0.0)
        queue: deque[int] = deque(pending)
        task_ids = count()
        in_flight: dict[int, tuple[int, float]] = {}  # task_id -> (idx, deadline)
        settled: set[int] = set()
        foreign: deque[int] = deque()  # parked: leased by a live peer
        by_key = {cells[i].key: i for i in pending}

        backend: ExecutorBackend | None = None
        serial_only = False
        mode = "serial"
        try:
            backend = self._resolve_backend(len(pending))
            backend.start()
        except BackendUnavailableError as exc:
            warnings.warn(
                f"sweep backend unavailable ({exc}); running serially",
                RuntimeWarning, stacklevel=3,
            )
            if backend is not None:
                backend.shutdown(cancel=True)
            backend = None
            serial_only = True
            mode = "serial-fallback"
        else:
            mode = "serial" if backend.name == "serial" else "parallel"
            stats["backend"] = backend.name
            stats["workers"] = max(1, backend.capacity)
        serial_backend = backend is not None and not backend.preemptible

        if prefix_ctx is None:
            prefix_ctx = {
                "seeds": [None] * len(cells), "groups": [None] * len(cells),
                "blobs": {}, "cache_keys": {}, "stored": set(),
                "hits": 0, "misses": 0, "stores": 0,
            }

        def spec_for(idx: int, attempt: int) -> tuple | None:
            if injector is None:
                return None
            return injector.spec_for(idx, cells[idx].key, attempt)

        def prefix_spec_for(idx: int, attempt: int) -> tuple | None:
            if injector is None or cells[idx].prefix is None:
                return None
            return injector.prefix_spec_for(idx, cells[idx].key, attempt)

        def make_task(idx: int, task_id: int) -> CellTask:
            group = prefix_ctx["groups"][idx]
            return CellTask(
                task_id=task_id, index=idx, job=cells[idx], seed=seeds[idx],
                fault_spec=spec_for(idx, attempts[idx]),
                prefix_seed=prefix_ctx["seeds"][idx],
                prefix_group=group,
                prefix_blob=(
                    prefix_ctx["blobs"].get(group) if group is not None else None
                ),
                prefix_fault_spec=prefix_spec_for(idx, attempts[idx]),
            )

        def note_blob(idx: int, blob: bytes | None) -> None:
            """Persist + share a worker-produced prefix snapshot so the
            rest of the group forks instead of recomputing."""
            if blob is None:
                return
            group = prefix_ctx["groups"][idx]
            if group is None:
                return
            prefix_ctx["blobs"].setdefault(group, blob)
            if self.cache is None or group in prefix_ctx["stored"]:
                return
            skey = prefix_ctx["cache_keys"].get(group)
            if skey is None:
                return
            self.cache.put_snapshot(skey, blob)
            prefix_ctx["stored"].add(group)
            prefix_ctx["stores"] += 1

        def settle(idx: int, result: JobResult) -> None:
            settled.add(idx)
            if coop is not None:
                if result.ok:
                    coop.settle(cells[idx].key)
                else:
                    coop.release_key(cells[idx].key)
            finish(idx, result)

        def record_failure(idx: int, error_type: str, message: str) -> None:
            if attempts[idx] >= max_att:
                settle(idx, JobResult(
                    key=cells[idx].key, value=None, seed=seeds[idx],
                    ok=False, error=message, error_type=error_type,
                    attempts=attempts[idx],
                ))
            else:
                stats["retries"] += 1
                ready_at[idx] = time.monotonic() + policy.backoff_s(
                    attempts[idx], cells[idx].key,
                )
                queue.append(idx)

        def run_inproc(idx: int) -> None:
            attempts[idx] += 1
            task = make_task(idx, task_id=-1)
            try:
                value, duration, blob = run_task(task, in_worker=False)
            except Exception as exc:
                record_failure(idx, type(exc).__name__, str(exc) or repr(exc))
                return
            note_blob(idx, blob)
            settle(idx, JobResult(
                key=cells[idx].key, value=value, seed=seeds[idx],
                duration_s=duration, attempts=attempts[idx],
            ))

        def next_ready(now: float) -> int | None:
            for _ in range(len(queue)):
                idx = queue.popleft()
                if idx in settled:
                    continue
                if ready_at[idx] <= now:
                    return idx
                queue.append(idx)
            return None

        def adopt_updates() -> None:
            """Fold peers' journal activity in: adopt their durable
            completions, un-park cells whose leases lapsed."""
            if coop is None:
                return
            fresh = coop.poll()
            for key in sorted(fresh):
                idx = by_key.get(key)
                if idx is None or idx in settled:
                    continue
                result = fresh[key]
                if result.seed != seeds[idx]:
                    continue  # foreign record; recompute rather than trust it
                settled.add(idx)
                coop.stats["adopted"] += 1
                coop.settle(key)
                finish(idx, result)
            for _ in range(len(foreign)):
                idx = foreign.popleft()
                if idx in settled:
                    continue
                if coop.foreign_holder(cells[idx].key) is None:
                    queue.append(idx)  # lease lapsed/released: contend for it
                else:
                    foreign.append(idx)

        def claim_gate(idx: int) -> bool:
            """May this runner dispatch ``idx`` right now?  Cells a live
            peer holds park in ``foreign`` (False)."""
            if coop is None:
                return True
            key = cells[idx].key
            if coop.foreign_holder(key) is not None or not coop.try_claim(key):
                foreign.append(idx)
                return False
            return True

        def go_serial() -> None:
            """Fall back to the in-process executor for the rest of the
            sweep; in-flight cells re-dispatch uncharged."""
            nonlocal serial_only, mode
            serial_only = True
            mode = "serial-fallback"
            for _tid, (idx, _dl) in in_flight.items():
                attempts[idx] -= 1
                queue.append(idx)
            in_flight.clear()
            if backend is not None:
                backend.shutdown(cancel=True)

        try:
            while queue or in_flight or foreign:
                adopt_updates()
                if serial_only:
                    if not queue:
                        if not foreign:
                            continue  # settled by adoption; loop re-checks
                        # Only peer-leased cells remain: wait for their
                        # done records or their lease expiries.
                        time.sleep(coop.poll_s)
                        continue
                    idx = queue.popleft()
                    if idx in settled:
                        continue
                    if not claim_gate(idx):
                        continue
                    delay = ready_at[idx] - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
                    run_inproc(idx)
                    continue

                # A backend with no workers left (a collapsed TCP fleet)
                # cannot make progress: finish the sweep in-process.
                if backend.capacity < 1:
                    go_serial()
                    continue

                # Dispatch every ready cell up to the backend's capacity.
                now = time.monotonic()
                while queue and len(in_flight) < backend.capacity:
                    idx = next_ready(now)
                    if idx is None:
                        break
                    if not claim_gate(idx):
                        continue
                    if (policy.serial_final_attempt and max_att > 1
                            and not serial_backend
                            and attempts[idx] == max_att - 1):
                        # Final attempt: in-process, immune to backend
                        # flakiness.
                        run_inproc(idx)
                        now = time.monotonic()
                        continue
                    attempts[idx] += 1
                    task = make_task(idx, task_id=next(task_ids))
                    try:
                        backend.submit(task)
                    except TransientSubmitError:
                        attempts[idx] -= 1
                        queue.appendleft(idx)
                        break
                    except BackendUnavailableError:
                        attempts[idx] -= 1
                        queue.appendleft(idx)
                        go_serial()
                        break
                    deadline = now + timeout_s if timeout_s else math.inf
                    in_flight[task.task_id] = (idx, deadline)
                if serial_only:
                    continue
                if not in_flight:
                    if queue:
                        # Nothing in flight, nothing ready: sleep out the
                        # shortest backoff (but keep polling peers).
                        soonest = min(ready_at[i] for i in queue)
                        pause = soonest - time.monotonic()
                        if coop is not None:
                            pause = min(pause, coop.poll_s)
                        if pause > 0:
                            time.sleep(pause)
                    elif foreign:
                        # Everything left is leased to live peers.
                        time.sleep(coop.poll_s)
                    continue

                # Wake on the first completion, the nearest deadline, or
                # the nearest retry-ready time (to keep workers fed).
                wake = min(dl for (_i, dl) in in_flight.values())
                if queue and len(in_flight) < backend.capacity:
                    wake = min(wake, min(ready_at[i] for i in queue))
                wait_t = (None if wake == math.inf
                          else max(0.0, wake - time.monotonic()))
                if coop is not None:
                    wait_t = (coop.poll_s if wait_t is None
                              else min(wait_t, coop.poll_s))
                outcomes = backend.poll(wait_t)

                rejected = False
                for outcome in outcomes:
                    entry = in_flight.pop(outcome.task_id, None)
                    if entry is None:
                        continue  # already settled (e.g. timed out)
                    idx, _dl = entry
                    if idx in settled:
                        continue  # adopted from a peer while in flight
                    if outcome.kind == OK:
                        note_blob(idx, outcome.prefix_blob)
                        settle(idx, JobResult(
                            key=cells[idx].key, value=outcome.value,
                            seed=seeds[idx], duration_s=outcome.duration_s,
                            attempts=attempts[idx],
                        ))
                    elif outcome.kind == ERROR:
                        record_failure(
                            idx, outcome.error_type or "WorkerError",
                            outcome.error or "cell failed on worker",
                        )
                    elif outcome.kind == LOST:
                        # The worker died under this cell: charge the
                        # attempt and re-dispatch on surviving capacity.
                        record_failure(
                            idx, outcome.error_type or "WorkerCrash",
                            outcome.error or "worker lost mid-cell",
                        )
                    elif outcome.kind == REQUEUED:
                        # Collateral damage from a sibling's crash or an
                        # abandonment: re-offer without charging.
                        attempts[idx] -= 1
                        queue.append(idx)
                    elif outcome.kind == REJECTED:
                        # The payload/result cannot cross this backend's
                        # boundary at all.  Uncharge and finish
                        # in-process, where no serialisation happens (and
                        # genuine cell errors of these types still
                        # surface as failures there).
                        attempts[idx] -= 1
                        queue.appendleft(idx)
                        rejected = True
                if rejected:
                    go_serial()
                    continue

                # Per-cell wall-clock timeouts: charge + fail the expired
                # cells, then let the backend reclaim what it can
                # (innocent in-flight cells re-dispatch uncharged).
                if timeout_s and backend.preemptible:
                    now = time.monotonic()
                    expired = [
                        tid for tid, (_i, dl) in in_flight.items() if dl <= now
                    ]
                    if expired:
                        stats["timeouts"] += len(expired)
                        for tid in expired:
                            idx, _dl = in_flight.pop(tid)
                            if idx in settled:
                                continue
                            record_failure(
                                idx, "CellTimeout",
                                f"cell exceeded {timeout_s}s wall-clock "
                                f"budget (attempt {attempts[idx]})",
                            )
                        backend.abandon(expired)
            # Normal completion: a clean synchronous shutdown.
            if backend is not None and not serial_only:
                backend.shutdown(cancel=False)
        finally:
            # KeyboardInterrupt / unexpected error: abandon workers and
            # cancel anything not yet started; merge backend counters.
            if coop is not None:
                try:
                    coop.release_all()
                except OSError:
                    pass  # journal gone (a peer completed the sweep)
                for key, value in coop.stats.items():
                    stats[key] = value
            if backend is not None:
                backend.shutdown(cancel=True)
                self.last_worker_health = backend.worker_health()
                for key, value in backend.stats().items():
                    stats[key] = value
        return mode
