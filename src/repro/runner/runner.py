"""Process-pool sweep execution with deterministic seeding and caching.

:class:`SweepRunner` takes a list of independent :class:`~.job.Job` cells
and executes them

- **deterministically**: every cell's seed is derived from the runner's
  root seed and the cell's key (:func:`~.seeding.derive_seed`), so the
  result set is a pure function of (grid, root seed) — bit-identical
  whether cells run serially, across 2 workers, or across 32;
- **in parallel**: cells fan out over a ``ProcessPoolExecutor`` in
  chunks (amortising pickling), with results aggregated back in input
  order;
- **incrementally**: with a :class:`~.cache.ResultCache` attached, cells
  whose (params, seed, code fingerprint) already have an entry are served
  from disk and only changed cells recompute;
- **robustly**: worker count 1, an unstartable pool, or a pool that
  breaks mid-sweep all degrade to the plain serial loop that defines the
  reference semantics.
"""

from __future__ import annotations

import os
import pickle
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Sequence

from .cache import ResultCache, code_fingerprint
from .job import Job, JobResult, resolve_callable, run_job
from .seeding import derive_seed

#: Environment knob mirrored by the CLI/pytest ``--jobs`` options.
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (serial when unset or invalid)."""
    raw = os.environ.get(JOBS_ENV, "")
    try:
        jobs = int(raw)
    except ValueError:
        return 1
    return jobs if jobs != 0 else (os.cpu_count() or 1)


def _init_worker(path: list[str]) -> None:
    """Give spawned workers the parent's import path (bench modules live
    outside ``site-packages``); fork workers inherit it anyway."""
    for entry in reversed(path):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def _execute_cell(item: tuple[Job, int | None]) -> tuple[Any, float]:
    job, seed = item
    t0 = time.perf_counter()
    value = run_job(job, seed)
    return value, time.perf_counter() - t0


class SweepRunner:
    """Declarative executor for (config x workload x seed) grids.

    ``jobs`` is the worker count (``1`` = serial, ``0`` = one per CPU,
    ``None`` = read ``REPRO_JOBS``); ``root_seed`` anchors per-cell seed
    derivation; ``cache`` is a :class:`ResultCache`, a directory path, or
    ``None`` to disable caching.
    """

    def __init__(
        self,
        jobs: int | None = None,
        root_seed: int = 0,
        cache: ResultCache | str | os.PathLike | None = None,
        chunk_size: int | None = None,
    ) -> None:
        if jobs is None:
            jobs = default_jobs()
        elif jobs == 0:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1 (or 0 for one per CPU), got {jobs}")
        self.jobs = jobs
        self.root_seed = root_seed
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.chunk_size = chunk_size
        #: Execution summary of the most recent :meth:`run`.
        self.last_stats: dict[str, Any] = {}

    # -- seed/cache bookkeeping ---------------------------------------------------

    def seed_for(self, job: Job) -> int | None:
        """The seed ``job`` will run with (explicit, derived, or None)."""
        if not job.pass_seed:
            return job.seed
        if job.seed is not None:
            return job.seed
        return derive_seed(self.root_seed, job.key)

    def _cache_key(self, job: Job, seed: int | None, memo: dict[str, str]) -> str:
        fingerprint = memo.get(job.fn)
        if fingerprint is None:
            module_name = job.fn.partition(":")[0]
            module = sys.modules.get(module_name)
            if module is None:
                module = resolve_callable(job.fn).__module__
                module = sys.modules.get(module)
            module_file = getattr(module, "__file__", None)
            fingerprint = code_fingerprint(module_file)
            memo[job.fn] = fingerprint
        assert self.cache is not None
        return self.cache.key_for(job.fn, job.params, seed, fingerprint)

    # -- execution ---------------------------------------------------------------

    def run(self, cells: Sequence[Job]) -> list[JobResult]:
        """Execute ``cells``; results come back in input order.

        The output is bit-identical to running the cells in a plain
        serial loop: parallelism, chunking, worker scheduling, and cache
        hits are all invisible in the result set.
        """
        cells = list(cells)
        keys = [job.key for job in cells]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"duplicate job keys in sweep: {dupes}")

        seeds = [self.seed_for(job) for job in cells]
        results: list[JobResult | None] = [None] * len(cells)
        pending: list[int] = []

        fingerprint_memo: dict[str, str] = {}
        cache_keys: dict[int, str] = {}
        if self.cache is not None:
            for i, job in enumerate(cells):
                key = self._cache_key(job, seeds[i], fingerprint_memo)
                cache_keys[i] = key
                value = self.cache.get(key)
                if value is not self.cache.MISS:
                    results[i] = JobResult(
                        key=job.key, value=value, seed=seeds[i], cached=True
                    )
                else:
                    pending.append(i)
        else:
            pending = list(range(len(cells)))

        workers = min(self.jobs, len(pending))
        mode = "serial" if workers <= 1 else "parallel"
        if pending:
            payloads = [(cells[i], seeds[i]) for i in pending]
            if workers > 1:
                outcomes = self._run_pool(payloads, workers)
                if outcomes is None:
                    mode = "serial-fallback"
                    outcomes = [_execute_cell(p) for p in payloads]
            else:
                outcomes = [_execute_cell(p) for p in payloads]
            for i, (value, duration) in zip(pending, outcomes):
                results[i] = JobResult(
                    key=cells[i].key, value=value, seed=seeds[i],
                    duration_s=duration,
                )
                if self.cache is not None:
                    self.cache.put(cache_keys[i], value)

        self.last_stats = {
            "cells": len(cells),
            "executed": len(pending),
            "cache_hits": len(cells) - len(pending),
            "workers": workers if mode == "parallel" else 1,
            "mode": mode,
        }
        return [r for r in results if r is not None]

    def values(self, cells: Sequence[Job]) -> list[Any]:
        """Just the cell values, in input order."""
        return [r.value for r in self.run(cells)]

    def _run_pool(
        self, payloads: list[tuple[Job, int | None]], workers: int
    ) -> list[tuple[Any, float]] | None:
        """Fan ``payloads`` out over a process pool; ``None`` means the
        pool could not run them (caller falls back to the serial loop)."""
        chunk = self.chunk_size or max(1, len(payloads) // (workers * 4))
        try:
            import multiprocessing

            # fork (where available) shares the parent's imported modules
            # and sys.path with zero per-worker warmup; elsewhere the
            # initializer replays the import path for spawned workers.
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            with ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(list(sys.path),),
            ) as pool:
                return list(pool.map(_execute_cell, payloads, chunksize=chunk))
        except (OSError, ImportError, BrokenProcessPool,
                pickle.PicklingError, AttributeError, TypeError):
            # No usable pool (sandboxed environment, dead workers) or an
            # unpicklable payload/result — pickle reports the latter as
            # PicklingError, AttributeError (local objects), or TypeError
            # (unpicklable types) depending on the object.  The serial
            # loop is always available and re-raises any genuine cell
            # error.
            return None
