"""Process-pool sweep execution with deterministic seeding, caching, and
fault tolerance.

:class:`SweepRunner` takes a list of independent :class:`~.job.Job` cells
and executes them

- **deterministically**: every cell's seed is derived from the runner's
  root seed and the cell's key (:func:`~.seeding.derive_seed`), so the
  result set is a pure function of (grid, root seed) — bit-identical
  whether cells run serially, across 2 workers, or across 32;
- **in parallel**: cells fan out over a ``ProcessPoolExecutor`` as
  individual futures, with results aggregated back in input order;
- **incrementally**: with a :class:`~.cache.ResultCache` attached, cells
  whose (params, seed, code fingerprint) already have an entry are served
  from disk and only changed cells recompute;
- **fault-tolerantly**: a cell that raises, exceeds its per-attempt
  wall-clock timeout, or takes its worker process down is retried with
  exponential backoff on a fresh worker (the pool is rebuilt after a
  crash or an abandoned hung worker), with its *final* attempt run
  in-process so pool-level flakiness can never consume a cell's last
  chance.  Cells that exhaust their attempts become structured
  :class:`~.job.JobResult` error records — under the ``strict`` failure
  policy the sweep then raises an aggregated
  :class:`~repro.errors.SweepError`; under ``degrade`` it returns the
  full partial result list plus a failure manifest
  (``last_failures`` / ``last_stats``);
- **resumably**: with ``checkpoint=<path>``, completed cells journal to
  an append-only manifest (:class:`~.checkpoint.SweepJournal`) flushed
  per cell, so an interrupted, killed, or strict-aborted sweep resumes
  recomputing only unfinished cells.  ``KeyboardInterrupt`` shuts the
  pool down (``cancel_futures=True``) and flushes the journal before
  propagating;
- **verifiably-on-purpose**: a seed-deterministic
  :class:`~.faults.FaultPlan` can inject worker crashes, cell
  exceptions, hangs, and cache corruption at chosen cells, so every one
  of the recovery paths above is exercisable in tests and CI.
"""

from __future__ import annotations

import math
import os
import pickle
import sys
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from ..errors import SweepError
from .cache import ResultCache, code_fingerprint
from .checkpoint import SweepJournal, sweep_id
from .faults import FaultInjector, FaultPlan, trip
from .job import Job, JobResult, resolve_callable, run_job
from .policy import STRICT, RetryPolicy, parse_failure_policy
from .seeding import derive_seed

#: Environment knob mirrored by the CLI/pytest ``--jobs`` options.
JOBS_ENV = "REPRO_JOBS"

_warned_negative_jobs = False


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (serial when unset or invalid).

    A negative value clamps to serial (with a one-time warning) instead
    of flowing into ``ProcessPoolExecutor(max_workers=<0)``.
    """
    global _warned_negative_jobs
    raw = os.environ.get(JOBS_ENV, "")
    try:
        jobs = int(raw)
    except ValueError:
        return 1
    if jobs < 0:
        if not _warned_negative_jobs:
            _warned_negative_jobs = True
            warnings.warn(
                f"{JOBS_ENV}={jobs} is negative; clamping to serial (1)",
                RuntimeWarning, stacklevel=2,
            )
        return 1
    return jobs if jobs != 0 else (os.cpu_count() or 1)


def _init_worker(path: list[str]) -> None:
    """Give spawned workers the parent's import path (bench modules live
    outside ``site-packages``); fork workers inherit it anyway."""
    for entry in reversed(path):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def _execute_cell(item: tuple[Job, int | None, tuple | None, bool]) -> tuple[Any, float]:
    """Run one cell attempt (worker and in-process path); the optional
    fault spec trips *before* the cell body, crashing/raising/hanging as
    planned."""
    job, seed, fault_spec, in_worker = item
    t0 = time.perf_counter()
    if fault_spec is not None:
        trip(fault_spec, in_worker)
    value = run_job(job, seed)
    return value, time.perf_counter() - t0


#: Exception types that mean "this payload/result cannot cross the process
#: boundary" — the pool is useless for the sweep, not just for one attempt.
_PICKLE_ERRORS = (pickle.PicklingError, AttributeError, TypeError)


class SweepRunner:
    """Declarative executor for (config x workload x seed) grids.

    ``jobs`` is the worker count (``1`` = serial, ``0`` = one per CPU,
    ``None`` = read ``REPRO_JOBS``); ``root_seed`` anchors per-cell seed
    derivation; ``cache`` is a :class:`ResultCache`, a directory path, or
    ``None`` to disable caching.

    Fault-tolerance knobs: ``policy`` is the sweep-level failure policy
    (``"strict"`` or ``"degrade"``); ``retry`` a :class:`RetryPolicy`
    (attempts/backoff/timeout); ``timeout_s`` a convenience override of
    ``retry.timeout_s``; ``checkpoint`` a journal path enabling
    checkpoint/resume; ``fault_plan`` a deterministic
    :class:`~.faults.FaultPlan` for chaos testing.
    """

    def __init__(
        self,
        jobs: int | None = None,
        root_seed: int = 0,
        cache: ResultCache | str | os.PathLike | None = None,
        chunk_size: int | None = None,
        policy: str = STRICT,
        retry: RetryPolicy | None = None,
        timeout_s: float | None = None,
        checkpoint: str | os.PathLike | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if jobs is None:
            jobs = default_jobs()
        elif jobs == 0:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1 (or 0 for one per CPU), got {jobs}")
        self.jobs = jobs
        self.root_seed = root_seed
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.chunk_size = chunk_size  # retained for API compatibility; unused
        self.policy = parse_failure_policy(policy)
        if retry is None:
            retry = RetryPolicy()
        if timeout_s is not None:
            retry = retry.with_timeout(timeout_s)
        self.retry = retry
        self.checkpoint = checkpoint
        self.fault_plan = fault_plan
        #: Execution summary of the most recent :meth:`run`.
        self.last_stats: dict[str, Any] = {}
        #: Failure manifest of the most recent :meth:`run` (``ok=False``
        #: :class:`JobResult` records, in sweep input order).
        self.last_failures: list[JobResult] = []
        #: The injector used by the most recent :meth:`run` (``None``
        #: without a fault plan); ``last_injector.tripped`` logs what fired.
        self.last_injector: FaultInjector | None = None

    # -- seed/cache bookkeeping ---------------------------------------------------

    def seed_for(self, job: Job) -> int | None:
        """The seed ``job`` will run with (explicit, derived, or None)."""
        if not job.pass_seed:
            return job.seed
        if job.seed is not None:
            return job.seed
        return derive_seed(self.root_seed, job.key)

    def _cache_key(self, job: Job, seed: int | None, memo: dict[str, str]) -> str:
        fingerprint = memo.get(job.fn)
        if fingerprint is None:
            module_name = job.fn.partition(":")[0]
            module = sys.modules.get(module_name)
            if module is None:
                module = resolve_callable(job.fn).__module__
                module = sys.modules.get(module)
            module_file = getattr(module, "__file__", None)
            fingerprint = code_fingerprint(module_file)
            memo[job.fn] = fingerprint
        assert self.cache is not None
        return self.cache.key_for(job.fn, job.params, seed, fingerprint)

    # -- execution ---------------------------------------------------------------

    def run(self, cells: Sequence[Job], resume: bool = True) -> list[JobResult]:
        """Execute ``cells``; results come back in input order.

        The output is bit-identical to running the cells in a plain
        serial loop: parallelism, retries, worker scheduling, cache hits,
        and journal resumption are all invisible in the result set.
        Failed cells appear as ``ok=False`` records under ``degrade``;
        under ``strict`` the sweep raises :class:`SweepError` once every
        cell has had its attempts (completed cells are still journalled
        first, so a strict abort is resumable).
        """
        cells = list(cells)
        keys = [job.key for job in cells]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"duplicate job keys in sweep: {dupes}")

        seeds = [self.seed_for(job) for job in cells]
        results: list[JobResult | None] = [None] * len(cells)
        failures: list[JobResult] = []
        injector = FaultInjector(self.fault_plan) if self.fault_plan else None
        self.last_injector = injector

        # Checkpoint journal: replay completed cells of this exact sweep.
        journal: SweepJournal | None = None
        journal_hits = 0
        if self.checkpoint is not None:
            journal = SweepJournal(self.checkpoint)
            journal_id = sweep_id(self.root_seed, keys, code_fingerprint())
            if resume:
                done = journal.load(journal_id)
                for i, job in enumerate(cells):
                    entry = done.get(job.key)
                    if entry is not None and entry.seed == seeds[i]:
                        results[i] = entry
                        journal_hits += 1
            journal.open_for(journal_id, resume=resume)

        # Result cache: serve identical (params, seed, code) cells from disk.
        fingerprint_memo: dict[str, str] = {}
        cache_keys: dict[int, str] = {}
        pending: list[int] = []
        for i, job in enumerate(cells):
            if results[i] is not None:
                continue
            if self.cache is not None:
                key = self._cache_key(job, seeds[i], fingerprint_memo)
                cache_keys[i] = key
                value = self.cache.get(key)
                if value is not self.cache.MISS:
                    results[i] = JobResult(
                        key=job.key, value=value, seed=seeds[i], cached=True
                    )
                    continue
            pending.append(i)

        cache_hits = sum(
            1 for r in results if r is not None and r.cached
        )

        def finish(i: int, result: JobResult) -> None:
            results[i] = result
            if not result.ok:
                failures.append(result)
                return
            if journal is not None:
                journal.record(result)
            if self.cache is not None:
                self.cache.put(cache_keys[i], result.value)
                if injector is not None and injector.corruption_for(i, cells[i].key):
                    injector.corrupt_entry(self.cache, cache_keys[i])

        workers = min(self.jobs, len(pending))
        mode = "serial" if workers <= 1 else "parallel"
        dispatch_stats = {"retries": 0, "timeouts": 0, "pool_breaks": 0}
        if pending:
            try:
                mode = self._dispatch(
                    cells, seeds, pending, workers, finish, injector,
                    dispatch_stats,
                )
            except KeyboardInterrupt:
                # Completed cells are already journalled (flushed per
                # record); close cleanly so a resume picks them up.
                if journal is not None:
                    journal.close()
                raise

        self.last_failures = failures
        self.last_stats = {
            "cells": len(cells),
            "executed": len(pending),
            "cache_hits": cache_hits,
            "journal_hits": journal_hits,
            "workers": workers if mode == "parallel" else 1,
            "mode": mode,
            "failures": len(failures),
            "failed": [r.key for r in failures],
            **dispatch_stats,
        }

        if journal is not None:
            if failures:
                journal.close()  # keep: unfinished cells resume later
            else:
                journal.complete()

        if failures and self.policy == STRICT:
            raise SweepError(failures, [r for r in results if r is not None])
        return [r for r in results if r is not None]

    def values(self, cells: Sequence[Job]) -> list[Any]:
        """Just the cell values, in input order."""
        return [r.value for r in self.run(cells)]

    # -- the resilient dispatcher -------------------------------------------------

    def _dispatch(
        self,
        cells: list[Job],
        seeds: list[int | None],
        pending: list[int],
        workers: int,
        finish: Callable[[int, JobResult], None],
        injector: FaultInjector | None,
        stats: dict[str, int],
    ) -> str:
        """Execute ``pending`` cell indices with retries/timeouts,
        reporting each completion through ``finish``; returns the mode
        string (``serial``, ``parallel``, or ``serial-fallback``)."""
        policy = self.retry
        max_att = policy.max_attempts
        timeout_s = policy.timeout_s
        attempts: dict[int, int] = dict.fromkeys(pending, 0)
        ready_at: dict[int, float] = dict.fromkeys(pending, 0.0)
        queue: deque[int] = deque(pending)
        serial_only = workers <= 1
        mode = "serial" if serial_only else "parallel"
        pool: ProcessPoolExecutor | None = None
        in_flight: dict[Any, tuple[int, float]] = {}
        # Runaway guard: legitimate fault recovery rebuilds the pool a
        # bounded number of times; anything beyond this is a systemically
        # broken pool and the serial loop is the only safe executor.
        max_pool_breaks = 2 * len(pending) + 4

        def spec_for(idx: int, attempt: int) -> tuple | None:
            if injector is None:
                return None
            return injector.spec_for(idx, cells[idx].key, attempt)

        def record_failure(idx: int, error_type: str, message: str) -> None:
            if attempts[idx] >= max_att:
                finish(idx, JobResult(
                    key=cells[idx].key, value=None, seed=seeds[idx],
                    ok=False, error=message, error_type=error_type,
                    attempts=attempts[idx],
                ))
            else:
                stats["retries"] += 1
                ready_at[idx] = time.monotonic() + policy.backoff_s(attempts[idx])
                queue.append(idx)

        def run_inproc(idx: int) -> None:
            attempts[idx] += 1
            try:
                value, duration = _execute_cell(
                    (cells[idx], seeds[idx], spec_for(idx, attempts[idx]), False)
                )
            except Exception as exc:
                record_failure(idx, type(exc).__name__, str(exc) or repr(exc))
                return
            finish(idx, JobResult(
                key=cells[idx].key, value=value, seed=seeds[idx],
                duration_s=duration, attempts=attempts[idx],
            ))

        def next_ready(now: float) -> int | None:
            for _ in range(len(queue)):
                idx = queue.popleft()
                if ready_at[idx] <= now:
                    return idx
                queue.append(idx)
            return None

        def retire_pool(cancel: bool) -> None:
            nonlocal pool
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=cancel)
                pool = None

        def drop_in_flight_uncharged() -> None:
            """Re-queue every in-flight cell without charging an attempt
            (collateral damage from someone else's crash/timeout)."""
            for _fut, (idx, _dl) in in_flight.items():
                attempts[idx] -= 1
                queue.append(idx)
            in_flight.clear()

        def break_pool() -> None:
            nonlocal serial_only, mode
            stats["pool_breaks"] += 1
            drop_in_flight_uncharged()
            retire_pool(cancel=True)
            if stats["pool_breaks"] > max_pool_breaks:
                serial_only = True
                mode = "serial-fallback"

        def go_serial() -> None:
            nonlocal serial_only, mode
            serial_only = True
            mode = "serial-fallback"
            drop_in_flight_uncharged()
            retire_pool(cancel=True)

        def ensure_pool() -> None:
            nonlocal pool
            if pool is not None or serial_only:
                return
            try:
                import multiprocessing

                # fork (where available) shares the parent's imported
                # modules and sys.path with zero per-worker warmup;
                # elsewhere the initializer replays the import path for
                # spawned workers.
                methods = multiprocessing.get_all_start_methods()
                context = multiprocessing.get_context(
                    "fork" if "fork" in methods else None
                )
                pool = ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=context,
                    initializer=_init_worker,
                    initargs=(list(sys.path),),
                )
            except (OSError, ImportError, ValueError, RuntimeError):
                go_serial()

        try:
            while queue or in_flight:
                if serial_only:
                    idx = queue.popleft()
                    delay = ready_at[idx] - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
                    run_inproc(idx)
                    continue

                # Dispatch every ready cell up to the worker limit.
                now = time.monotonic()
                while queue and len(in_flight) < workers and not serial_only:
                    idx = next_ready(now)
                    if idx is None:
                        break
                    if (policy.serial_final_attempt and max_att > 1
                            and attempts[idx] == max_att - 1):
                        # Final attempt: in-process, immune to pool flakiness.
                        run_inproc(idx)
                        now = time.monotonic()
                        continue
                    ensure_pool()
                    if serial_only:
                        queue.appendleft(idx)
                        break
                    attempts[idx] += 1
                    payload = (cells[idx], seeds[idx],
                               spec_for(idx, attempts[idx]), True)
                    try:
                        fut = pool.submit(_execute_cell, payload)
                    except (BrokenProcessPool, RuntimeError):
                        attempts[idx] -= 1
                        queue.appendleft(idx)
                        break_pool()
                        continue
                    deadline = now + timeout_s if timeout_s else math.inf
                    in_flight[fut] = (idx, deadline)
                if serial_only or not in_flight:
                    if not serial_only and queue:
                        # Nothing in flight, nothing ready: sleep out the
                        # shortest backoff.
                        soonest = min(ready_at[i] for i in queue)
                        pause = soonest - time.monotonic()
                        if pause > 0:
                            time.sleep(pause)
                    continue

                # Wake on the first completion, the nearest deadline, or
                # the nearest retry-ready time (to keep workers fed).
                wake = min(dl for (_i, dl) in in_flight.values())
                if queue and len(in_flight) < workers:
                    wake = min(wake, min(ready_at[i] for i in queue))
                wait_t = (None if wake == math.inf
                          else max(0.0, wake - time.monotonic()))
                done, _ = futures_wait(
                    set(in_flight), timeout=wait_t, return_when=FIRST_COMPLETED
                )

                broken = False
                for fut in done:
                    idx, _dl = in_flight.pop(fut)
                    try:
                        value, duration = fut.result()
                    except BrokenProcessPool:
                        # The worker running this cell (or a sibling)
                        # died; charge the attempt and re-dispatch on a
                        # fresh pool.
                        broken = True
                        record_failure(
                            idx, "WorkerCrash",
                            "worker process died (BrokenProcessPool)",
                        )
                    except _PICKLE_ERRORS as exc:
                        # The payload or result cannot cross the process
                        # boundary at all: the pool is useless for this
                        # sweep.  Uncharge and finish in-process, where
                        # no pickling happens (and genuine cell errors of
                        # these types still surface as failures there).
                        attempts[idx] -= 1
                        queue.appendleft(idx)
                        go_serial()
                        break
                    except Exception as exc:
                        record_failure(
                            idx, type(exc).__name__, str(exc) or repr(exc)
                        )
                    else:
                        finish(idx, JobResult(
                            key=cells[idx].key, value=value, seed=seeds[idx],
                            duration_s=duration, attempts=attempts[idx],
                        ))
                if serial_only:
                    continue
                if broken:
                    break_pool()
                    continue

                # Per-cell wall-clock timeouts: a worker stuck inside a
                # cell cannot be preempted individually, so the expired
                # cell is charged + failed and the whole pool is retired
                # (innocent in-flight cells re-dispatch uncharged).
                if timeout_s:
                    now = time.monotonic()
                    expired = [
                        fut for fut, (_i, dl) in in_flight.items() if dl <= now
                    ]
                    if expired:
                        stats["timeouts"] += len(expired)
                        for fut in expired:
                            idx, _dl = in_flight.pop(fut)
                            record_failure(
                                idx, "CellTimeout",
                                f"cell exceeded {timeout_s}s wall-clock "
                                f"budget (attempt {attempts[idx]})",
                            )
                        drop_in_flight_uncharged()
                        retire_pool(cancel=True)
            # Normal completion: a clean synchronous shutdown.
            retire_pool(cancel=False)
        finally:
            # KeyboardInterrupt / unexpected error: abandon workers and
            # cancel anything not yet started.
            retire_pool(cancel=True)
        return mode
