"""Generic memory-access workload generators.

Each workload allocates its own buffer on ``prepare`` and then yields an
infinite operation stream.  The generators cover the access-pattern
archetypes that matter to a rowhammer detector:

- :class:`StreamWorkload` — sequential scans: high miss rate, misses walk
  rows sequentially (no row reuse, should never look like hammering);
- :class:`RandomAccessWorkload` — uniform random over a working set:
  miss rate set by working-set size vs LLC, misses scattered over rows;
- :class:`PointerChaseWorkload` — dependent loads (mcf-style latency
  bound);
- :class:`ThrashWorkload` — a reuse loop slightly larger than the LLC:
  high miss rate *with row reuse*, the benign pattern most likely to look
  like an attack (the false-positive generator);
- :class:`MixedWorkload` — weighted interleaving of the above.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Iterator

from ..sim.machine import Machine
from ..sim.ops import Op, compute, load, store
from ..units import MB


class Workload(ABC):
    """A preparable, replayable operation stream."""

    name: str = "workload"

    def __init__(self, think_cycles: int = 20, store_fraction: float = 0.0,
                 seed: int = 0) -> None:
        self.think_cycles = think_cycles
        self.store_fraction = store_fraction
        self.seed = seed
        self.prepared = False
        self._base = 0

    @abstractmethod
    def _length_bytes(self) -> int:
        """Buffer size to allocate."""

    @abstractmethod
    def _addresses(self) -> Iterator[int]:
        """Infinite stream of byte offsets into the buffer."""

    def prepare(self, machine: Machine) -> None:
        if self.prepared:
            return
        self._base = machine.memory.vm.mmap(self._length_bytes())
        self.prepared = True

    def ops(self) -> Iterator[Op]:
        """Infinite op stream: one memory op plus think time per address."""
        if not self.prepared:
            raise RuntimeError("call prepare(machine) before ops()")
        rng = random.Random(self.seed ^ 0xC0FFEE)
        think = self.think_cycles
        store_fraction = self.store_fraction
        for offset in self._addresses():
            vaddr = self._base + offset
            if store_fraction and rng.random() < store_fraction:
                yield store(vaddr)
            else:
                yield load(vaddr)
            if think:
                yield compute(think)


class StreamWorkload(Workload):
    """Sequential scan with a fixed stride, wrapping around the buffer."""

    name = "stream"

    def __init__(self, buffer_bytes: int = 64 * MB, stride: int = 64, **kwargs):
        super().__init__(**kwargs)
        self.buffer_bytes = buffer_bytes
        self.stride = stride

    def _length_bytes(self) -> int:
        return self.buffer_bytes

    def _addresses(self) -> Iterator[int]:
        offset = 0
        while True:
            yield offset
            offset = (offset + self.stride) % self.buffer_bytes


class RandomAccessWorkload(Workload):
    """Uniform random line accesses over a working set."""

    name = "random"

    def __init__(self, working_set_bytes: int = 16 * MB, line: int = 64, **kwargs):
        super().__init__(**kwargs)
        self.working_set_bytes = working_set_bytes
        self.line = line

    def _length_bytes(self) -> int:
        return self.working_set_bytes

    def _addresses(self) -> Iterator[int]:
        rng = random.Random(self.seed)
        lines = self.working_set_bytes // self.line
        while True:
            yield rng.randrange(lines) * self.line


class PointerChaseWorkload(Workload):
    """A permutation cycle of dependent loads over the working set."""

    name = "pointer-chase"

    def __init__(self, working_set_bytes: int = 8 * MB, line: int = 64, **kwargs):
        super().__init__(**kwargs)
        self.working_set_bytes = working_set_bytes
        self.line = line

    def _length_bytes(self) -> int:
        return self.working_set_bytes

    def _addresses(self) -> Iterator[int]:
        rng = random.Random(self.seed)
        lines = list(range(self.working_set_bytes // self.line))
        rng.shuffle(lines)
        position = 0
        while True:
            yield lines[position] * self.line
            position = (position + 1) % len(lines)


class ThrashWorkload(Workload):
    """Cyclic reuse over a footprint slightly exceeding the LLC.

    Every access misses (the reuse distance exceeds associativity) while
    the *same* lines — and therefore the same DRAM rows — are revisited
    every lap.  This is the benign pattern closest to hammering; ANVIL's
    bank-locality check is what keeps it from being flagged when its rows
    are served by open row buffers.
    """

    name = "thrash"

    def __init__(self, footprint_bytes: int = 6 * MB, line: int = 64, **kwargs):
        super().__init__(**kwargs)
        self.footprint_bytes = footprint_bytes
        self.line = line

    def _length_bytes(self) -> int:
        return self.footprint_bytes

    def _addresses(self) -> Iterator[int]:
        lines = self.footprint_bytes // self.line
        offset = 0
        while True:
            yield offset * self.line
            offset = (offset + 1) % lines


class MixedWorkload(Workload):
    """Weighted interleaving of component workloads (shared machine)."""

    name = "mixed"

    def __init__(self, components: list[tuple[Workload, float]], **kwargs):
        super().__init__(**kwargs)
        if not components:
            raise ValueError("MixedWorkload needs at least one component")
        self.components = components

    def _length_bytes(self) -> int:  # pragma: no cover - not used
        return 0

    def _addresses(self) -> Iterator[int]:  # pragma: no cover - not used
        raise NotImplementedError

    def prepare(self, machine: Machine) -> None:
        for workload, _ in self.components:
            workload.prepare(machine)
        self.prepared = True

    def ops(self) -> Iterator[Op]:
        if not self.prepared:
            raise RuntimeError("call prepare(machine) before ops()")
        rng = random.Random(self.seed ^ 0xD1CE)
        streams = [workload.ops() for workload, _ in self.components]
        weights = [weight for _, weight in self.components]
        while True:
            (stream,) = rng.choices(streams, weights=weights)
            yield next(stream)
