"""Generic memory-access workload generators.

Each workload allocates its own buffer on ``prepare`` and then yields an
infinite operation stream.  The generators cover the access-pattern
archetypes that matter to a rowhammer detector:

- :class:`StreamWorkload` — sequential scans: high miss rate, misses walk
  rows sequentially (no row reuse, should never look like hammering);
- :class:`RandomAccessWorkload` — uniform random over a working set:
  miss rate set by working-set size vs LLC, misses scattered over rows;
- :class:`PointerChaseWorkload` — dependent loads (mcf-style latency
  bound);
- :class:`ThrashWorkload` — a reuse loop slightly larger than the LLC:
  high miss rate *with row reuse*, the benign pattern most likely to look
  like an attack (the false-positive generator);
- :class:`MixedWorkload` — weighted interleaving of the above.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

from ..sim.machine import Machine
from ..sim.ops import Op, clflush, compute, load, store
from ..sim.turbo import AccessProgram
from ..units import MB

#: Defaults for :meth:`Workload.closed_form`: the small-machine LLC and
#: the physical contiguity granule (one 4 KiB page under scrambled
#: placement; pass the row size instead for linear placement).
DEFAULT_LLC_BYTES = 3 * MB
DEFAULT_LINE_BYTES = 64
DEFAULT_GRANULE_BYTES = 4096


@dataclass(frozen=True)
class ClosedFormStats:
    """Analytic steady-state statistics of a generator — the parameters
    the fast-forward tier's consumers (benches, sweeps) reason with, and
    what the property tests pin against long empirical runs.

    ``miss_rate`` is expected LLC misses per *memory* access;
    ``row_locality`` is the expected fraction of DRAM accesses served by
    an already-open row buffer (0.0 when the workload produces no DRAM
    traffic).  ``mpki`` derives misses per 1000 *executed ops* (think
    ops included), matching PMU-counter arithmetic.
    """

    miss_rate: float
    row_locality: float
    mem_ops_per_period: int
    ops_per_period: int

    @property
    def mpki(self) -> float:
        if not self.ops_per_period:
            return 0.0
        return 1000.0 * self.miss_rate * self.mem_ops_per_period / self.ops_per_period


class Workload(ABC):
    """A preparable, replayable operation stream."""

    name: str = "workload"

    def __init__(self, think_cycles: int = 20, store_fraction: float = 0.0,
                 seed: int = 0) -> None:
        self.think_cycles = think_cycles
        self.store_fraction = store_fraction
        self.seed = seed
        self.prepared = False
        self._base = 0

    @abstractmethod
    def _length_bytes(self) -> int:
        """Buffer size to allocate."""

    @abstractmethod
    def _addresses(self) -> Iterator[int]:
        """Infinite stream of byte offsets into the buffer."""

    def prepare(self, machine: Machine) -> None:
        if self.prepared:
            return
        self._base = machine.memory.vm.mmap(self._length_bytes())
        self.prepared = True

    def ops(self) -> Iterator[Op]:
        """Infinite op stream: one memory op plus think time per address."""
        if not self.prepared:
            raise RuntimeError("call prepare(machine) before ops()")
        rng = random.Random(self.seed ^ 0xC0FFEE)
        think = self.think_cycles
        store_fraction = self.store_fraction
        for offset in self._addresses():
            vaddr = self._base + offset
            if store_fraction and rng.random() < store_fraction:
                yield store(vaddr)
            else:
                yield load(vaddr)
            if think:
                yield compute(think)

    def _steady_offsets(self) -> list[int] | None:
        """One full period of :meth:`_addresses` as a concrete offset
        list, or None when the stream is aperiodic."""
        return None

    def steady_program(self) -> AccessProgram | None:
        """One exact period of :meth:`ops`, or None when aperiodic.

        The turbo engine (:meth:`Machine.run_turbo`) fast-forwards a
        workload only when its stream is declared periodic here; cycling
        the returned program must reproduce :meth:`ops` verbatim (the
        equivalence suite asserts this per generator).  A nonzero
        ``store_fraction`` breaks periodicity — the load/store decision
        is an independent RNG draw per access — so it disables the
        program.
        """
        if self.store_fraction:
            return None
        offsets = self._steady_offsets()
        if offsets is None:
            return None
        if not self.prepared:
            raise RuntimeError("call prepare(machine) before steady_program()")
        base = self._base
        think = self.think_cycles
        ops: list[Op] = []
        for offset in offsets:
            ops.append(load(base + offset))
            if think:
                ops.append(compute(think))
        return AccessProgram(ops=ops, description=f"{self.name} period")

    def closed_form(
        self,
        llc_bytes: int = DEFAULT_LLC_BYTES,
        line_bytes: int = DEFAULT_LINE_BYTES,
        granule_bytes: int = DEFAULT_GRANULE_BYTES,
    ) -> ClosedFormStats | None:
        """Analytic steady-state statistics against a given LLC size and
        physical contiguity granule, or None when no closed form exists
        (mixed/aperiodic compositions)."""
        return None

    def _ops_per_period(self, mem_ops: int) -> int:
        return mem_ops * 2 if self.think_cycles else mem_ops


class StreamWorkload(Workload):
    """Sequential scan with a fixed stride, wrapping around the buffer."""

    name = "stream"

    def __init__(self, buffer_bytes: int = 64 * MB, stride: int = 64, **kwargs):
        super().__init__(**kwargs)
        self.buffer_bytes = buffer_bytes
        self.stride = stride

    def _length_bytes(self) -> int:
        return self.buffer_bytes

    def _addresses(self) -> Iterator[int]:
        offset = 0
        while True:
            yield offset
            offset = (offset + self.stride) % self.buffer_bytes

    def _steady_offsets(self) -> list[int]:
        # The walk returns to offset 0 after buffer/gcd(stride, buffer)
        # steps — one full period.
        period = self.buffer_bytes // math.gcd(self.stride, self.buffer_bytes)
        offsets = []
        offset = 0
        for _ in range(period):
            offsets.append(offset)
            offset = (offset + self.stride) % self.buffer_bytes
        return offsets

    def closed_form(self, llc_bytes=DEFAULT_LLC_BYTES,
                    line_bytes=DEFAULT_LINE_BYTES,
                    granule_bytes=DEFAULT_GRANULE_BYTES) -> ClosedFormStats:
        period = self.buffer_bytes // math.gcd(self.stride, self.buffer_bytes)
        stride_eff = max(self.stride, line_bytes)
        if self.buffer_bytes <= llc_bytes:
            # Fits in cache: after one warm-up lap, nothing misses.
            miss_rate, locality = 0.0, 0.0
        else:
            # Cyclic reuse beyond LLC capacity: every distinct line misses
            # once per touch; sub-line strides revisit each line
            # line/stride times, missing on the first touch only.
            miss_rate = min(1.0, self.stride / line_bytes)
            # Misses walk the address space sequentially: one activation
            # per contiguity granule, every other access in the granule a
            # row-buffer hit.
            locality = max(0.0, 1.0 - stride_eff / granule_bytes)
        return ClosedFormStats(
            miss_rate=miss_rate,
            row_locality=locality,
            mem_ops_per_period=period,
            ops_per_period=self._ops_per_period(period),
        )


class RandomAccessWorkload(Workload):
    """Uniform random line accesses over a working set."""

    name = "random"

    def __init__(self, working_set_bytes: int = 16 * MB, line: int = 64, **kwargs):
        super().__init__(**kwargs)
        self.working_set_bytes = working_set_bytes
        self.line = line

    def _length_bytes(self) -> int:
        return self.working_set_bytes

    def _addresses(self) -> Iterator[int]:
        rng = random.Random(self.seed)
        lines = self.working_set_bytes // self.line
        while True:
            yield rng.randrange(lines) * self.line

    def closed_form(self, llc_bytes=DEFAULT_LLC_BYTES,
                    line_bytes=DEFAULT_LINE_BYTES,
                    granule_bytes=DEFAULT_GRANULE_BYTES) -> ClosedFormStats:
        # Uniform random over the working set: in steady state the LLC
        # holds llc/ws of the set, so that fraction of accesses hit.
        miss_rate = max(0.0, 1.0 - llc_bytes / self.working_set_bytes)
        # Scattered misses essentially never land in an open row.
        return ClosedFormStats(
            miss_rate=miss_rate,
            row_locality=0.0,
            mem_ops_per_period=1,
            ops_per_period=self._ops_per_period(1),
        )


class PointerChaseWorkload(Workload):
    """A permutation cycle of dependent loads over the working set."""

    name = "pointer-chase"

    def __init__(self, working_set_bytes: int = 8 * MB, line: int = 64, **kwargs):
        super().__init__(**kwargs)
        self.working_set_bytes = working_set_bytes
        self.line = line

    def _length_bytes(self) -> int:
        return self.working_set_bytes

    def _addresses(self) -> Iterator[int]:
        rng = random.Random(self.seed)
        lines = list(range(self.working_set_bytes // self.line))
        rng.shuffle(lines)
        position = 0
        while True:
            yield lines[position] * self.line
            position = (position + 1) % len(lines)

    def _steady_offsets(self) -> list[int]:
        # Reconstruct the exact permutation _addresses() walks.
        rng = random.Random(self.seed)
        lines = list(range(self.working_set_bytes // self.line))
        rng.shuffle(lines)
        return [line * self.line for line in lines]

    def closed_form(self, llc_bytes=DEFAULT_LLC_BYTES,
                    line_bytes=DEFAULT_LINE_BYTES,
                    granule_bytes=DEFAULT_GRANULE_BYTES) -> ClosedFormStats:
        period = self.working_set_bytes // self.line
        # A permutation cycle is a reuse loop over the whole working set:
        # beyond LLC capacity everything misses, and the shuffled order
        # destroys any row locality.
        miss_rate = 1.0 if self.working_set_bytes > llc_bytes else 0.0
        return ClosedFormStats(
            miss_rate=miss_rate,
            row_locality=0.0,
            mem_ops_per_period=period,
            ops_per_period=self._ops_per_period(period),
        )


class ThrashWorkload(Workload):
    """Cyclic reuse over a footprint slightly exceeding the LLC.

    Every access misses (the reuse distance exceeds associativity) while
    the *same* lines — and therefore the same DRAM rows — are revisited
    every lap.  This is the benign pattern closest to hammering; ANVIL's
    bank-locality check is what keeps it from being flagged when its rows
    are served by open row buffers.
    """

    name = "thrash"

    def __init__(self, footprint_bytes: int = 6 * MB, line: int = 64, **kwargs):
        super().__init__(**kwargs)
        self.footprint_bytes = footprint_bytes
        self.line = line

    def _length_bytes(self) -> int:
        return self.footprint_bytes

    def _addresses(self) -> Iterator[int]:
        lines = self.footprint_bytes // self.line
        offset = 0
        while True:
            yield offset * self.line
            offset = (offset + 1) % lines

    def _steady_offsets(self) -> list[int]:
        lines = self.footprint_bytes // self.line
        return [index * self.line for index in range(lines)]

    def closed_form(self, llc_bytes=DEFAULT_LLC_BYTES,
                    line_bytes=DEFAULT_LINE_BYTES,
                    granule_bytes=DEFAULT_GRANULE_BYTES) -> ClosedFormStats:
        period = self.footprint_bytes // self.line
        miss_rate = 1.0 if self.footprint_bytes > llc_bytes else 0.0
        locality = (
            max(0.0, 1.0 - self.line / granule_bytes) if miss_rate else 0.0
        )
        return ClosedFormStats(
            miss_rate=miss_rate,
            row_locality=locality,
            mem_ops_per_period=period,
            ops_per_period=self._ops_per_period(period),
        )


class HammerWorkload(Workload):
    """The paper's CLFLUSH hammer loop (Section 2.1) as a workload.

    Each lap loads ``aggressors`` addresses that share a bank but sit in
    distinct rows, flushing every line immediately after the load, so all
    accesses reach DRAM and each one closes the previous row — maximum
    activation rate on the victim bank.  ``prepare`` scans the allocated
    buffer's pages (via the pagemap path, like the attacker would) for a
    bank with enough distinct rows.

    Besides being the detector's true-positive generator, this is the
    showcase for the fast-forward tier: the lap is a handful of ops and
    leaves no cache residue behind (the flushes undo the fills), so the
    boundary state cycles almost immediately.
    """

    name = "hammer"

    def __init__(self, aggressors: int = 2, span_bytes: int = 4 * MB, **kwargs):
        super().__init__(**kwargs)
        if aggressors < 1:
            raise ValueError("need at least one aggressor")
        if kwargs.get("store_fraction"):
            raise ValueError("hammer loop is load+clflush only")
        self.aggressors = aggressors
        self.span_bytes = span_bytes
        self._targets: list[int] = []

    def _length_bytes(self) -> int:
        return self.span_bytes

    def _addresses(self) -> Iterator[int]:
        while True:
            for vaddr in self._targets:
                yield vaddr - self._base

    def prepare(self, machine: Machine) -> None:
        if self.prepared:
            return
        super().prepare(machine)
        page = machine.memory.vm.config.page_bytes
        by_bank: dict[tuple[int, int], dict[int, int]] = {}
        for vaddr in range(self._base, self._base + self.span_bytes, page):
            coord = machine.memory.row_of_vaddr(vaddr)
            rows = by_bank.setdefault((coord.rank, coord.bank), {})
            rows.setdefault(coord.row, vaddr)
            if len(rows) >= self.aggressors:
                self._targets = sorted(rows.values())[: self.aggressors]
                return
        raise RuntimeError(
            f"no bank exposes {self.aggressors} distinct rows within "
            f"{self.span_bytes} bytes; enlarge span_bytes"
        )

    def _lap_ops(self) -> list[Op]:
        ops: list[Op] = []
        think = self.think_cycles
        for vaddr in self._targets:
            ops.append(load(vaddr))
            ops.append(clflush(vaddr))
            if think:
                ops.append(compute(think))
        return ops

    def ops(self) -> Iterator[Op]:
        if not self.prepared:
            raise RuntimeError("call prepare(machine) before ops()")
        lap = self._lap_ops()
        while True:
            yield from lap

    def steady_program(self) -> AccessProgram:
        if not self.prepared:
            raise RuntimeError("call prepare(machine) before steady_program()")
        return AccessProgram(ops=self._lap_ops(), description=f"{self.name} period")

    def closed_form(self, llc_bytes=DEFAULT_LLC_BYTES,
                    line_bytes=DEFAULT_LINE_BYTES,
                    granule_bytes=DEFAULT_GRANULE_BYTES) -> ClosedFormStats:
        # Every load misses (its line was just flushed); with one
        # aggressor the bank's row stays open, with several they evict
        # each other's row buffer on every single access.
        ops_per_period = self.aggressors * (2 + (1 if self.think_cycles else 0))
        return ClosedFormStats(
            miss_rate=1.0,
            row_locality=1.0 if self.aggressors == 1 else 0.0,
            mem_ops_per_period=self.aggressors,
            ops_per_period=ops_per_period,
        )


class MixedWorkload(Workload):
    """Weighted interleaving of component workloads (shared machine)."""

    name = "mixed"

    def __init__(self, components: list[tuple[Workload, float]], **kwargs):
        super().__init__(**kwargs)
        if not components:
            raise ValueError("MixedWorkload needs at least one component")
        self.components = components

    def _length_bytes(self) -> int:  # pragma: no cover - not used
        return 0

    def _addresses(self) -> Iterator[int]:  # pragma: no cover - not used
        raise NotImplementedError

    def prepare(self, machine: Machine) -> None:
        for workload, _ in self.components:
            workload.prepare(machine)
        self.prepared = True

    def ops(self) -> Iterator[Op]:
        if not self.prepared:
            raise RuntimeError("call prepare(machine) before ops()")
        rng = random.Random(self.seed ^ 0xD1CE)
        streams = [workload.ops() for workload, _ in self.components]
        weights = [weight for _, weight in self.components]
        while True:
            (stream,) = rng.choices(streams, weights=weights)
            yield next(stream)
