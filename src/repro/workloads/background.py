"""Background load for the heavy-load detection experiments.

Section 4.2: "To emulate heavy load, we run the rowhammering applications
along with memory-intensive applications (mcf, libquantum and omnetpp
running at the same time)".

On a multi-core machine those co-runners execute on *other* cores: they
do not slow the attack loop directly, but their LLC misses land in the
shared miss counters (raising the totals the locality analysis divides
by) and their loads/stores are PEBS-sampled by *their own core's*
facility, so the pooled sample set the detector analyses contains both
streams.  :class:`BackgroundMix` models exactly that: co-runner accesses
are injected through the shared memory system interleaved with the
foreground's (via a machine access hook, topped up by a timer when the
foreground is compute-bound) and fed to the PMU's auxiliary-core sampler.

The default ``scale`` reflects the paper's testbed: an i5-2540M has two
cores, so the three co-runners time-share one core — and contend with the
attack for the shared LLC and memory channel — leaving each at roughly a
quarter of its standalone miss rate.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..mem import MemoryAccess
from ..sim.machine import Machine
from ..sim.ops import CLFLUSH, COMPUTE, MFENCE, Op, STORE
from .spec import SpecWorkload, spec_profile


def interleave(streams: list[Iterator[Op]], weights: list[float], seed: int = 0) -> Iterator[Op]:
    """Merge op streams by weighted random choice (single-core timesharing)."""
    rng = random.Random(seed)
    while True:
        (stream,) = rng.choices(streams, weights=weights)
        yield next(stream)


class BackgroundMix:
    """Co-runner traffic injected into the shared LLC/DRAM/PMU.

    ``benchmarks`` defaults to the paper's heavy-load trio.  ``scale``
    multiplies each co-runner's standalone miss rate (0.25 ~= three
    co-runners time-sharing the second core of the paper's dual-core
    testbed while contending for its memory system).
    """

    HEAVY_TRIO = ("mcf", "libquantum", "omnetpp")

    def __init__(
        self,
        benchmarks: tuple[str, ...] = HEAVY_TRIO,
        scale: float = 0.25,
        tick_ms: float = 0.05,
        seed: int = 99,
        buffer_cap_bytes: int = 8 << 20,
    ) -> None:
        self.benchmarks = benchmarks
        self.scale = scale
        self.tick_ms = tick_ms
        self.seed = seed
        self.buffer_cap_bytes = buffer_cap_bytes
        self.injected_ops = 0
        self._machine: Machine | None = None
        self._streams: list[Iterator[Op]] = []
        self._ops_per_cycle = 0.0
        self._pending = 0.0
        self._last_cycles = 0
        self._running = False
        self._injecting = False
        self._rng = random.Random(seed)

    def attach(self, machine: Machine) -> None:
        """Prepare co-runner buffers and start interleaved injection."""
        self._machine = machine
        workloads = []
        for i, name in enumerate(self.benchmarks):
            profile = spec_profile(name)
            workload = SpecWorkload(
                profile, seed=self.seed + i,
                stream_limit_bytes=self.buffer_cap_bytes,
            )
            workload.prepare(machine)
            workloads.append(workload)
            self._streams.append(workload.ops())
        # Inject enough *memory* ops that misses land at the scaled rate;
        # the SpecWorkload streams carry the right hit/miss mix, so the op
        # rate is (misses per ms / miss fraction).
        ops_per_ms = self.scale * sum(
            w.profile.misses_per_ms / max(1e-6, w.miss_fraction) for w in workloads
        )
        self._ops_per_cycle = ops_per_ms / machine.clock.cycles_from_ms(1.0)
        self._last_cycles = machine.cycles
        self._running = True
        machine.pmu.enable_aux_core()  # co-runners retire on another core
        machine.add_access_hook(self._on_foreground_access)
        machine.schedule_in_ms(self.tick_ms, self._tick)

    def detach(self) -> None:
        self._running = False
        if self._machine is not None:
            try:
                self._machine.remove_access_hook(self._on_foreground_access)
            except ValueError:
                pass

    # -- injection ------------------------------------------------------------

    def _on_foreground_access(self, access: MemoryAccess, time_cycles: int) -> None:
        del access
        self._inject_up_to(time_cycles)

    def _tick(self, machine: Machine) -> None:
        """Catch-up injector for compute-bound foreground phases."""
        if not self._running:
            return
        self._inject_up_to(machine.cycles)
        machine.schedule_in_ms(self.tick_ms, self._tick)

    def _inject_up_to(self, time_cycles: int) -> None:
        """Inject the co-runner ops that retired since the last call."""
        if not self._running or self._injecting:
            return
        machine = self._machine
        assert machine is not None
        elapsed = time_cycles - self._last_cycles
        self._last_cycles = time_cycles
        if elapsed <= 0:
            return
        self._pending += elapsed * self._ops_per_cycle
        count = int(self._pending)
        if count <= 0:
            return
        self._pending -= count
        self._injecting = True  # co-runner accesses must not re-enter
        try:
            memsys = machine.memory
            pmu = machine.pmu
            for _ in range(count):
                stream = self._rng.choice(self._streams)
                op = next(stream)
                while op[0] in (COMPUTE, MFENCE, CLFLUSH):
                    op = next(stream)  # co-runner compute costs no shared time
                kind, vaddr = op
                record = memsys.access(vaddr, time_cycles, is_store=(kind == STORE))
                pmu.on_access_other_core(record, time_cycles)
                self.injected_ops += 1
        finally:
            self._injecting = False
