"""Workloads: generic memory-access generators, SPEC2006-integer-calibrated
synthetic benchmarks, and background-load mixing for the heavy-load
experiments.

Real SPEC binaries cannot run on the simulated machine; the profiles in
:mod:`repro.workloads.spec` are calibrated so that each benchmark's two
ANVIL-relevant statistics — LLC miss rate relative to the stage-1
threshold, and the DRAM-row locality of its misses — match the published
characterisations the paper's results depend on (Section 4.3: mcf,
libquantum, omnetpp and xalancbmk cross the stage-1 threshold 95-99% of
the time; h264ref, gobmk, sjeng and hmmer less than 10%).
"""

from .generators import (
    ClosedFormStats,
    HammerWorkload,
    MixedWorkload,
    PointerChaseWorkload,
    RandomAccessWorkload,
    StreamWorkload,
    ThrashWorkload,
    Workload,
)
from .spec import SPEC2006_INT, SpecProfile, SpecWorkload, spec_profile
from .background import BackgroundMix, interleave

__all__ = [
    "BackgroundMix",
    "ClosedFormStats",
    "HammerWorkload",
    "MixedWorkload",
    "PointerChaseWorkload",
    "RandomAccessWorkload",
    "SPEC2006_INT",
    "SpecProfile",
    "SpecWorkload",
    "StreamWorkload",
    "ThrashWorkload",
    "Workload",
    "interleave",
    "spec_profile",
]
