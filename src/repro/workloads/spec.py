"""SPEC CPU2006 integer benchmark profiles.

The paper evaluates ANVIL's overhead and false positives on the 12
SPEC2006 integer benchmarks (Sections 4.3-4.5).  We cannot run the
binaries, so each benchmark is characterised by the statistics that fully
determine its interaction with ANVIL:

- **LLC miss rate** (median misses/ms and window-to-window lognormal
  variability): sets how often stage 1 triggers.  Calibrated so the
  paper's groupings hold: mcf/libquantum/omnetpp/xalancbmk cross the 20K
  per 6 ms threshold 95-99% of the time; h264ref/gobmk/sjeng/hmmer <10%.
- **Row locality of misses** (hot-phase probability, hot-row count, and
  the fraction of misses that hit the hot rows during such a phase):
  sets the false-positive propensity of Table 4.  Phase-y benchmarks with
  tight reuse loops (bzip2, gcc) occasionally concentrate misses on few
  rows; streaming benchmarks (libquantum) and pointer-chasers with huge
  footprints (mcf) scatter them.
- **DRAM-bound time fraction**: sets sensitivity to refresh blocking
  (the Figure 3 double-refresh overhead).
- **Load fraction of misses**: drives ANVIL's facility selection.

The numbers are calibrated from published SPEC2006 memory
characterisations and tuned so the reproduced tables land in the paper's
regimes; they are inputs to the model, not measurements of it.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass
from typing import Iterator

from ..sim.machine import Machine
from ..sim.ops import Op, compute, load, store
from ..units import MB
from .generators import Workload


@dataclass(frozen=True)
class SpecProfile:
    """Statistical profile of one benchmark."""

    name: str
    #: median LLC misses per millisecond (lognormal across 6 ms windows)
    misses_per_ms: float
    #: lognormal sigma of per-window miss counts
    miss_sigma: float
    #: probability a window falls in a row-concentrated reuse phase
    hot_phase_prob: float
    #: distinct hot rows during such a phase
    hot_rows: int
    #: fraction of misses landing on the hot rows during a phase
    hot_fraction: float
    #: multiplier on the window's miss count during a hot phase
    hot_miss_boost: float
    #: distinct DRAM rows touched by scattered misses per window
    touched_rows: int
    #: fraction of execution time stalled on DRAM (refresh sensitivity)
    dram_time_fraction: float
    #: fraction of LLC misses that are loads (facility selection)
    load_miss_fraction: float
    #: working-set size for the access-level generator
    working_set_mb: int


def _p(name, misses_per_ms, miss_sigma, hot_phase_prob, hot_rows, hot_fraction,
       hot_miss_boost, touched_rows, dram_time_fraction, load_miss_fraction,
       working_set_mb) -> SpecProfile:
    return SpecProfile(
        name=name,
        misses_per_ms=misses_per_ms,
        miss_sigma=miss_sigma,
        hot_phase_prob=hot_phase_prob,
        hot_rows=hot_rows,
        hot_fraction=hot_fraction,
        hot_miss_boost=hot_miss_boost,
        touched_rows=touched_rows,
        dram_time_fraction=dram_time_fraction,
        load_miss_fraction=load_miss_fraction,
        working_set_mb=working_set_mb,
    )


#: The 12 SPEC2006 integer benchmarks of Tables 4/5 and Figures 3/4.
SPEC2006_INT: dict[str, SpecProfile] = {
    p.name: p
    for p in (
        _p("astar",      2_200, 0.50, 0.0060, 2, 0.55, 3.5,  400, 0.15, 0.85, 32),
        _p("bzip2",      2_800, 0.55, 0.0420, 2, 0.55, 2.8,  300, 0.20, 0.75, 48),
        _p("gcc",        3_000, 0.60, 0.0300, 2, 0.42, 2.6,  500, 0.20, 0.80, 64),
        _p("gobmk",        400, 0.80, 0.0120, 2, 0.75, 12.0, 150, 0.05, 0.85, 16),
        _p("h264ref",      150, 0.60, 0.0000, 1, 0.00, 1.0,  100, 0.04, 0.90, 16),
        _p("hmmer",         60, 0.50, 0.0000, 1, 0.00, 1.0,   60, 0.02, 0.95, 8),
        _p("libquantum", 20_000, 0.20, 0.0005, 2, 0.30, 1.15, 900, 0.60, 0.55, 64),
        _p("mcf",        25_000, 0.30, 0.0001, 2, 0.25, 1.10, 20_000, 0.70, 0.90, 256),
        _p("omnetpp",    10_000, 0.30, 0.0010, 2, 0.30, 1.30, 6_000, 0.50, 0.80, 128),
        _p("perlbench",     800, 0.70, 0.0030, 2, 0.50, 4.0,  250, 0.05, 0.85, 32),
        _p("sjeng",        500, 0.70, 0.0010, 2, 0.30, 3.0,  200, 0.04, 0.85, 16),
        _p("xalancbmk",  6_000, 0.35, 0.0022, 2, 0.40, 1.5,  900, 0.35, 0.85, 64),
    )
}


def spec_profile(name: str) -> SpecProfile:
    """Look up a benchmark profile by name."""
    try:
        return SPEC2006_INT[name]
    except KeyError:
        raise KeyError(
            f"unknown SPEC2006 int benchmark {name!r}; "
            f"choose from {sorted(SPEC2006_INT)}"
        ) from None


class SpecWorkload(Workload):
    """Access-level generator approximating a profile's miss behaviour.

    Emits a mixture of always-missing accesses (a sequential miss stream
    over a large buffer) and always-hitting accesses (a small hot buffer),
    with the miss fraction solved so the achieved LLC miss rate matches
    ``profile.misses_per_ms``.  Used for background load and integration
    tests; the long-horizon overhead studies use the epoch model instead.
    """

    def __init__(self, profile: SpecProfile, think_cycles: int = 12,
                 miss_latency_cycles: int = 150, hit_latency_cycles: int = 5,
                 freq_hz: float = 2.6e9, stream_limit_bytes: int | None = None,
                 **kwargs) -> None:
        super().__init__(think_cycles=think_cycles, **kwargs)
        self.profile = profile
        self.name = profile.name
        self._miss_fraction = self._solve_miss_fraction(
            profile.misses_per_ms, miss_latency_cycles, hit_latency_cycles, freq_hz
        )
        self._hot_base = 0
        self._stream_len = max(4 * MB, profile.working_set_mb * MB // 4)
        if stream_limit_bytes is not None:
            # Cap the miss-stream buffer (small test machines); the buffer
            # still exceeds the LLC, so the miss mix is unchanged.
            self._stream_len = min(self._stream_len, max(4 * MB, stream_limit_bytes))

    def _solve_miss_fraction(self, misses_per_ms: float, miss_cyc: int,
                             hit_cyc: int, freq_hz: float) -> float:
        """Miss fraction f with f / t_op(f) = target misses per cycle."""
        target = misses_per_ms / (freq_hz / 1e3)  # misses per cycle
        # t_op(f) = think + f*miss_cyc + (1-f)*hit_cyc  ->  linear solve
        think = self.think_cycles
        denominator = 1.0 - target * (miss_cyc - hit_cyc)
        if denominator <= 0:
            return 1.0
        f = target * (think + hit_cyc) / denominator
        return min(1.0, max(0.0, f))

    @property
    def miss_fraction(self) -> float:
        return self._miss_fraction

    def _length_bytes(self) -> int:
        return self._stream_len

    def prepare(self, machine: Machine) -> None:
        if self.prepared:
            return
        self._base = machine.memory.vm.mmap(self._stream_len)
        self._hot_base = machine.memory.vm.mmap(64 * 1024)
        self.prepared = True

    def _addresses(self) -> Iterator[int]:  # pragma: no cover - ops() overrides
        raise NotImplementedError

    def ops(self) -> Iterator[Op]:
        if not self.prepared:
            raise RuntimeError("call prepare(machine) before ops()")
        # crc32 keeps the stream identical across processes (str hash() is
        # PYTHONHASHSEED-randomised), so seeded workloads replay exactly
        # in sweep-runner workers and cache comparisons.
        rng = random.Random(self.seed ^ zlib.crc32(self.name.encode()) & 0xFFFF)
        miss_fraction = self._miss_fraction
        store_fraction = 1.0 - self.profile.load_miss_fraction
        think = self.think_cycles
        stream_lines = self._stream_len // 64
        hot_lines = 1024
        position = 0
        while True:
            if rng.random() < miss_fraction:
                vaddr = self._base + (position % stream_lines) * 64
                position += 1 + int(rng.random() * 3)  # skip lines: stay cold
            else:
                vaddr = self._hot_base + rng.randrange(hot_lines) * 64
            if rng.random() < store_fraction:
                yield store(vaddr)
            else:
                yield load(vaddr)
            if think:
                yield compute(think)


def window_misses(profile: SpecProfile, window_ms: float, rng: random.Random,
                  hot: bool) -> int:
    """Draw one window's LLC miss count from the profile's distribution.

    Profiles are characterised at 6 ms windows; shorter windows average
    over fewer phase fragments and are therefore burstier, so sigma is
    scaled by sqrt(6 ms / window).
    """
    median = profile.misses_per_ms * window_ms
    sigma = profile.miss_sigma * math.sqrt(6.0 / window_ms)
    draw = median * math.exp(rng.gauss(0.0, sigma))
    if hot:
        draw *= profile.hot_miss_boost
    return max(0, int(draw))
