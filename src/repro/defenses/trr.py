"""Counter-based targeted row refresh (TRR), as in LPDDR4/DDR4 modules
and Intel's pTRR (paper Sections 1.2 and 5.2.2).

"The mechanism tracks the number of row activations within a fixed time
window, and selectively refreshes rows neighboring a too-frequently
accessed DRAM row."

Real TRR implementations track only a small number of rows per bank
(which is what later made many-sided attacks possible); ``table_size``
models that limit.  When a tracked row's activation count inside the
current window crosses ``activation_threshold``, its neighbours are
refreshed and the counter resets.
"""

from __future__ import annotations

from ..dram import DramCoord
from ..sim.machine import Machine
from .base import Defense


class TargetedRowRefresh(Defense):
    """Per-bank activation counters with limited tracker slots."""

    def __init__(
        self,
        activation_threshold: int = 32_768,
        window_ms: float = 64.0,
        table_size: int = 16,
    ) -> None:
        if activation_threshold <= 0 or table_size <= 0:
            raise ValueError("threshold and table size must be positive")
        self.activation_threshold = activation_threshold
        self.window_ms = window_ms
        self.table_size = table_size
        self.name = f"trr-t{activation_threshold}"
        self.triggered = 0
        self.evicted_trackers = 0
        self._window_cycles = 0
        self._rows_per_bank = 0
        # (rank, bank) -> {row: [count, window_index]}
        self._tables: dict[tuple[int, int], dict[int, list[int]]] = {}

    def install(self, machine: Machine) -> None:
        self._window_cycles = machine.clock.cycles_from_ms(self.window_ms)
        self._rows_per_bank = machine.memory.mapping.config.rows_per_bank
        machine.memory.controller.add_observer(self)

    def uninstall(self, machine: Machine) -> None:
        machine.memory.controller.remove_observer(self)

    # -- ActivationObserver ------------------------------------------------------

    def on_activation(self, coord: DramCoord, time_cycles: int) -> list[DramCoord]:
        table = self._tables.setdefault(coord.bank_key, {})
        window = time_cycles // self._window_cycles if self._window_cycles else 0
        entry = table.get(coord.row)
        if entry is None:
            if len(table) >= self.table_size:
                # Evict the coldest tracker (the real modules' weakness).
                coldest = min(table, key=lambda row: table[row][0])
                del table[coldest]
                self.evicted_trackers += 1
            entry = table[coord.row] = [0, window]
        if entry[1] != window:
            entry[0], entry[1] = 0, window
        entry[0] += 1
        if entry[0] < self.activation_threshold:
            return []
        entry[0] = 0
        self.triggered += 1
        return [
            DramCoord(coord.rank, coord.bank, row, 0)
            for row in (coord.row - 1, coord.row + 1)
            if 0 <= row < self._rows_per_bank
        ]
