"""PARA: probabilistic adjacent row activation (Kim et al. [24]).

"When an activation command is sent to a row, a random number generator is
used to decide if [an] adjacent row has to be refreshed.  Since requests
to rows that are being hammered will be encountered very frequently, there
is a high probability that it will trigger a refresh" (Section 5.2.2).

With probability ``p`` per activation, both neighbours of the activated
row are refreshed.  A minimal attack of N activations survives with
probability (1-p)^N — negligible for p=0.001 and N in the hundreds of
thousands.  PARA requires a modified memory controller, which is why it
"can not be deployed on existing systems"; here it registers as a
controller activation observer.
"""

from __future__ import annotations

import random

from ..dram import DramCoord
from ..sim.machine import Machine
from .base import Defense


class Para(Defense):
    """Probabilistic neighbour refresh in the memory controller."""

    def __init__(self, probability: float = 0.001, seed: int = 0xBA5E) -> None:
        if not 0 < probability <= 1:
            raise ValueError("probability must be in (0, 1]")
        self.probability = probability
        self.name = f"para-p{probability:g}"
        self._rng = random.Random(seed)
        self.triggered = 0
        self._rows_per_bank = 0

    def install(self, machine: Machine) -> None:
        self._rows_per_bank = machine.memory.mapping.config.rows_per_bank
        machine.memory.controller.add_observer(self)

    def uninstall(self, machine: Machine) -> None:
        machine.memory.controller.remove_observer(self)

    # -- ActivationObserver ------------------------------------------------------

    def on_activation(self, coord: DramCoord, time_cycles: int) -> list[DramCoord]:
        del time_cycles
        if self._rng.random() >= self.probability:
            return []
        self.triggered += 1
        neighbors = []
        for delta in (-1, 1):
            row = coord.row + delta
            if 0 <= row < self._rows_per_bank:
                neighbors.append(DramCoord(coord.rank, coord.bank, row, 0))
        return neighbors
