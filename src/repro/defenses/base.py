"""Common defense interface.

A defense either reconfigures the machine before it runs (refresh-rate
changes, instruction bans) or hooks the memory controller's activation
stream (PARA, TRR, ARMOR).  ``install`` wires it up; ``describe`` feeds
the comparison benches.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..sim.machine import Machine


class Defense(ABC):
    """One rowhammer mitigation bound to a machine."""

    name: str = "abstract"

    @abstractmethod
    def install(self, machine: Machine) -> None:
        """Attach the defense to the machine (before running traffic)."""

    def uninstall(self, machine: Machine) -> None:  # noqa: B027 - optional
        """Detach, if supported."""

    def describe(self) -> str:
        return self.name
