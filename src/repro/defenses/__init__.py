"""Baseline and comparison defenses (paper Sections 1.2 and 5.2).

Deployed mitigations the paper breaks:

- :func:`~repro.defenses.double_refresh.apply_refresh_scale` — BIOS
  updates doubling the DRAM refresh rate;
- CLFLUSH restriction — modelled by ``clflush_allowed=False`` on the
  machine (:class:`~repro.defenses.clflush_ban.ClflushBan` documents it);
- pagemap restriction — ``pagemap_restricted=True``.

Proposed hardware defenses implemented for comparison benches:

- :class:`~repro.defenses.para.Para` — probabilistic adjacent row
  activation (Kim et al. [24]);
- :class:`~repro.defenses.trr.TargetedRowRefresh` — counter-based TRR as
  in LPDDR4/DDR4 [19, 21];
- :class:`~repro.defenses.armor.Armor` — hot-row buffering [25];
- :class:`~repro.defenses.ecc.EccScrubber` — SECDED ECC scrubbing [14].
"""

from .base import Defense
from .clflush_ban import ClflushBan
from .double_refresh import DoubleRefresh, apply_refresh_scale
from .para import Para
from .trr import TargetedRowRefresh
from .armor import Armor
from .ecc import EccScrubber, EccReport

__all__ = [
    "Armor",
    "ClflushBan",
    "Defense",
    "DoubleRefresh",
    "EccReport",
    "EccScrubber",
    "Para",
    "TargetedRowRefresh",
    "apply_refresh_scale",
]
