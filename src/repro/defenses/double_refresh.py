"""Refresh-rate scaling: the deployed BIOS mitigation (Section 2.1).

"A number of vendors published BIOS updates that double the rate at which
DRAM refreshes its data" — halving both the retention window an attacker
can exploit *and* tREFI, which doubles the time the device spends blocked
on refresh commands (the Figure 3 "Double Refresh" overhead).

Because retiming rebuilds the DRAM device, the scale must be chosen at
machine construction: use :func:`apply_refresh_scale` or build the machine
with ``DramTimings().scaled_refresh(factor)`` (see
:func:`repro.presets.paper_machine`'s ``refresh_scale``).
"""

from __future__ import annotations

from ..sim.machine import Machine
from .base import Defense


def apply_refresh_scale(machine: Machine, factor: float) -> None:
    """Retime an *unused* machine's DRAM for a ``factor``-times refresh
    rate (2.0 = the deployed double-refresh mitigation)."""
    controller = machine.memory.controller
    controller.set_timings(controller.config.timings.scaled_refresh(factor))


class DoubleRefresh(Defense):
    """Refresh-rate scaling as a :class:`Defense` (default factor 2)."""

    def __init__(self, factor: float = 2.0) -> None:
        self.factor = factor
        self.name = f"refresh-x{factor:g}"

    def install(self, machine: Machine) -> None:
        apply_refresh_scale(machine, self.factor)
