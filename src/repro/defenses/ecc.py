"""ECC scrubbing (paper Sections 1.2 and 5.2.2).

"An emerging defense ... is that increasing ECC scrub rates could be a
rowhammer protection mechanism.  But prior work shows multiple bit-flips
per word when executing rowhammer attacks, making this approach of
questionable value."

Model: SECDED ECC at 64-bit word granularity.  A periodic scrubber walks
the flip log; a word with exactly one flipped bit is corrected, a word
with two or more is an uncorrectable (detected-but-fatal) error — the
machine-check/denial-of-service outcome Section 5.2.2 warns about.  The
report lets the ablation bench show ECC's protection eroding as attacks
push rows past their first flip threshold.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..sim.machine import Machine
from .base import Defense


@dataclass
class EccReport:
    """Outcome of scrubbing the accumulated flips."""

    corrected_words: int
    uncorrectable_words: int
    clean: bool

    @property
    def protected(self) -> bool:
        """True if ECC fully repaired the damage (no multi-bit words)."""
        return self.uncorrectable_words == 0


class EccScrubber(Defense):
    """SECDED scrubbing over the simulated module's flip log."""

    WORD_BITS = 64

    def __init__(self) -> None:
        self.name = "ecc-secded"
        self._machine: Machine | None = None

    def install(self, machine: Machine) -> None:
        self._machine = machine

    def scrub(self) -> EccReport:
        """Classify every flipped word as correctable or uncorrectable."""
        if self._machine is None:
            raise RuntimeError("install the scrubber before scrubbing")
        flips = self._machine.memory.device.flips()
        words: Counter[tuple[int, int]] = Counter()
        for flip in flips:
            words[(flip.row_id, flip.bit_offset // self.WORD_BITS)] += 1
        corrected = sum(1 for count in words.values() if count == 1)
        uncorrectable = sum(1 for count in words.values() if count >= 2)
        return EccReport(
            corrected_words=corrected,
            uncorrectable_words=uncorrectable,
            clean=not words,
        )
