"""CLFLUSH restriction: the NaCl sandbox mitigation (Section 1.2).

"Google recently updated the Chrome Native Client sandbox ... to prevent
the loading of any code containing the CLFLUSH instruction."  On the
simulated machine, any CLFLUSH raises
:class:`~repro.errors.ClflushRestrictedError` — which stops the
CLFLUSH-based attacks cold while leaving the CLFLUSH-free attack entirely
unaffected (the point of Section 2.2).
"""

from __future__ import annotations

from ..sim.machine import Machine
from .base import Defense


class ClflushBan(Defense):
    """Disallow the CLFLUSH instruction machine-wide."""

    name = "clflush-ban"

    def install(self, machine: Machine) -> None:
        machine.memory.clflush_allowed = False

    def uninstall(self, machine: Machine) -> None:
        machine.memory.clflush_allowed = True
