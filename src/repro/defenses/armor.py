"""ARMOR: a run-time memory hot-row detector (paper citation [25]).

"Project Armor introduces an extra buffer that will cache data from rows
with repeated activation commands.  By servicing requests to hammered rows
from the extra buffer, Armor prevents rows from being accessed
repeatedly" (Section 5.2.2).

Model: the controller tracks per-row activation counts within a window;
rows crossing ``hot_threshold`` enter a small fully associative hot-row
buffer.  Accesses to buffered rows are *absorbed* — served from the
buffer at row-hit latency, with no activation and therefore no neighbour
disturbance.  Armor registers as both a controller
:class:`~repro.dram.controller.RowFilter` (absorption) and an
:class:`~repro.dram.controller.ActivationObserver` (counting).
"""

from __future__ import annotations

from ..dram import DramCoord
from ..sim.machine import Machine
from .base import Defense


class Armor(Defense):
    """Hot-row buffering in front of the DRAM array."""

    def __init__(self, hot_threshold: int = 2_000, buffer_rows: int = 8,
                 window_ms: float = 64.0) -> None:
        if hot_threshold <= 0 or buffer_rows <= 0:
            raise ValueError("threshold and buffer size must be positive")
        self.hot_threshold = hot_threshold
        self.buffer_rows = buffer_rows
        self.window_ms = window_ms
        self.name = f"armor-h{hot_threshold}"
        self.absorbed = 0
        self._window_cycles = 0
        self._counts: dict[tuple[int, int, int], list[int]] = {}
        self._buffer: dict[tuple[int, int, int], int] = {}  # row -> insert time

    def install(self, machine: Machine) -> None:
        self._window_cycles = machine.clock.cycles_from_ms(self.window_ms)
        controller = machine.memory.controller
        controller.add_row_filter(self)
        controller.add_observer(self)

    def uninstall(self, machine: Machine) -> None:
        controller = machine.memory.controller
        controller.remove_row_filter(self)
        controller.remove_observer(self)

    # -- RowFilter: absorption ------------------------------------------------------

    def absorbs(self, coord: DramCoord, time_cycles: int) -> bool:
        del time_cycles
        if (coord.rank, coord.bank, coord.row) in self._buffer:
            self.absorbed += 1
            return True
        return False

    # -- ActivationObserver: hot-row tracking ------------------------------------------

    def on_activation(self, coord: DramCoord, time_cycles: int) -> list[DramCoord]:
        key = (coord.rank, coord.bank, coord.row)
        window = time_cycles // self._window_cycles if self._window_cycles else 0
        entry = self._counts.setdefault(key, [0, window])
        if entry[1] != window:
            entry[0], entry[1] = 0, window
        entry[0] += 1
        if entry[0] >= self.hot_threshold:
            if len(self._buffer) >= self.buffer_rows:
                # Write back and drop the oldest buffered row.
                oldest = min(self._buffer, key=self._buffer.get)
                del self._buffer[oldest]
            self._buffer[key] = time_cycles
            entry[0] = 0
        return []
