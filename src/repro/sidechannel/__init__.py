"""Cache side channels built on the CLFLUSH-free eviction primitive.

Section 2.2 closes with: "the technique used in the CLFLUSH-free
rowhammering attack can be used in other attacks that need to flush the
cache at specific addresses.  For example the Flush+Reload cache
side-channel attack relies on the CLFLUSH instruction.  Our CLFLUSH-free
cache flushing method can extend this attack to situations where the
CLFLUSH instruction is not available (e.g., JavaScript)."

:class:`~repro.sidechannel.evict_reload.EvictReloadSpy` implements that
Evict+Reload channel on the simulated machine.
"""

from .evict_reload import EvictReloadSpy, SharedSecretVictim

__all__ = ["EvictReloadSpy", "SharedSecretVictim"]
