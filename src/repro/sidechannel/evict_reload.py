"""Evict+Reload: Flush+Reload without CLFLUSH (paper Section 2.2).

Setting: spy and victim share a read-only page (a shared library).  The
classic Flush+Reload spy CLFLUSHes a probe line, lets the victim run, and
times a reload — fast means the victim touched the line.  Where CLFLUSH
is unavailable, the spy evicts the probe line through an eviction set
steered exactly like the rowhammer attack's, then reloads and times.

The simulated victim leaks one secret bit per round by touching (or not
touching) the probe line — the access pattern of a table-lookup cipher or
a branchy parser, reduced to its essence.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..attacks.eviction import build_eviction_set
from ..sim.machine import Machine
from ..sim.ops import load
from ..units import MB


class SharedSecretVictim:
    """The victim process: touches the shared probe line iff the current
    secret bit is 1."""

    def __init__(self, machine: Machine, probe_vaddr: int, secret_bits: list[int]):
        self.machine = machine
        self.probe_vaddr = probe_vaddr
        self.secret_bits = secret_bits
        self._position = 0

    def step(self) -> None:
        """Process one secret bit (one victim scheduling quantum)."""
        bit = self.secret_bits[self._position % len(self.secret_bits)]
        self._position += 1
        if bit:
            self.machine.execute(load(self.probe_vaddr))

    @property
    def bits_emitted(self) -> int:
        return self._position


@dataclass
class SpyObservation:
    """One Evict+Reload round."""

    reload_cycles: int
    inferred_bit: int


class EvictReloadSpy:
    """The spy process: evict, yield to the victim, reload, time."""

    def __init__(
        self,
        machine: Machine,
        probe_vaddr: int,
        pool_base: int | None = None,
        pool_bytes: int = 8 * MB,
        sweep_rounds: int = 2,
    ) -> None:
        self.machine = machine
        self.probe_vaddr = probe_vaddr
        memsys = machine.memory
        if pool_base is None:
            pool_base = memsys.vm.mmap(pool_bytes)
        self.eviction_set = build_eviction_set(
            memsys, probe_vaddr, pool_base, pool_bytes
        )
        self.sweep_rounds = sweep_rounds
        #: reloads at or above this latency mean "victim did not touch it".
        self.threshold_cycles = memsys.hierarchy.llc.config.latency_cycles + 1
        self.observations: list[SpyObservation] = []

    def evict(self) -> None:
        """Drive the probe line out of the hierarchy (no CLFLUSH)."""
        for _ in range(self.sweep_rounds):
            for vaddr in self.eviction_set:
                self.machine.execute(load(vaddr))

    def probe(self) -> SpyObservation:
        """Reload the probe line and classify the latency."""
        record = self.machine.execute(load(self.probe_vaddr))
        inferred = 1 if record.latency_cycles < self.threshold_cycles else 0
        observation = SpyObservation(
            reload_cycles=record.latency_cycles, inferred_bit=inferred
        )
        self.observations.append(observation)
        return observation

    def spy_on(self, victim: SharedSecretVictim, rounds: int) -> list[int]:
        """Run ``rounds`` Evict+Reload cycles against the victim.

        Returns the inferred bit string.
        """
        inferred = []
        for _ in range(rounds):
            self.evict()
            victim.step()
            inferred.append(self.probe().inferred_bit)
        return inferred


def recover_secret(machine: Machine, secret_bits: list[int]) -> tuple[list[int], float]:
    """End-to-end demo helper: share a page, run the channel, score it.

    Returns (inferred bits, accuracy).
    """
    memsys = machine.memory
    shared_page = memsys.vm.mmap(4096)
    probe = shared_page + 256  # some line within the shared library page
    victim = SharedSecretVictim(machine, probe, secret_bits)
    spy = EvictReloadSpy(machine, probe)
    inferred = spy.spy_on(victim, rounds=len(secret_bits))
    correct = sum(a == b for a, b in zip(inferred, secret_bits))
    return inferred, correct / len(secret_bits)
