"""ANVIL: the paper's software-based rowhammer detector and protector.

Two-stage design (paper Section 3, Figure 2):

- **Stage 1** monitors the LLC miss rate over windows of ``tc``; only if
  the rate could sustain a rowhammer attack does the detector pay for
  sampling.
- **Stage 2** samples LLC-missing loads/stores with the PEBS facilities
  for ``ts``, resolves sampled virtual addresses to DRAM rows, and flags
  rows with high access locality, confirmed by bank locality.
- **Protection** reads the rows adjacent to each flagged aggressor,
  refreshing the potential victims.

Install with::

    from repro.core import AnvilModule, AnvilConfig
    anvil = AnvilModule(machine, AnvilConfig.baseline())
    anvil.install()
"""

from .config import AnvilConfig
from .sampler import DetectedAggressor, LocalityAnalysis, analyze_row_samples
from .detector import AnvilDetector
from .refresher import SelectiveRefresher
from .stats import AnvilStats, Detection
from .anvil import AnvilModule

__all__ = [
    "AnvilConfig",
    "AnvilDetector",
    "AnvilModule",
    "AnvilStats",
    "DetectedAggressor",
    "Detection",
    "LocalityAnalysis",
    "SelectiveRefresher",
    "analyze_row_samples",
]
