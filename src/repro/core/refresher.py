"""Selective refresh of potential victim rows (paper Section 3.2).

"When the detector identifies potential rowhammering activity, it
identifies the potential victim DRAM rows.  Victim rows are adjacent to
(preceding and following) identified aggressor rows.  To protect the
victim rows we refresh them by reading a word from them."

The refresher issues the reads through the memory controller's kernel
path and charges their latency to the machine as detector overhead —
which is why even false-positive detections are "innocuous in that they
incur only a small number of extra DRAM read operations".
"""

from __future__ import annotations

from ..dram import DramCoord
from ..sim.machine import Machine
from .config import AnvilConfig
from .sampler import DetectedAggressor, RowKey


class SelectiveRefresher:
    """Reads the neighbours of detected aggressor rows."""

    def __init__(self, machine: Machine, config: AnvilConfig) -> None:
        self.machine = machine
        self.config = config

    def victims_of(self, aggressors: list[DetectedAggressor]) -> list[RowKey]:
        """Potential victim rows: within ``victim_radius`` of any
        aggressor, deduplicated, excluding the aggressors themselves
        (they are refreshed by the attack's own activations)."""
        aggressor_keys = {a.row_key for a in aggressors}
        rows_per_bank = self.machine.memory.mapping.config.rows_per_bank
        victims: list[RowKey] = []
        seen: set[RowKey] = set()
        for aggressor in aggressors:
            rank, bank, row = aggressor.row_key
            for delta in range(-self.config.victim_radius, self.config.victim_radius + 1):
                if delta == 0:
                    continue
                victim_row = row + delta
                if not 0 <= victim_row < rows_per_bank:
                    continue
                key = (rank, bank, victim_row)
                if key in seen or key in aggressor_keys:
                    continue
                seen.add(key)
                victims.append(key)
        return victims

    def refresh(self, victims: list[RowKey]) -> int:
        """Read one word from each victim row; returns rows refreshed.

        The read latency is charged to the machine as overhead, modelling
        the kernel thread performing the reads inline.
        """
        machine = self.machine
        controller = machine.memory.controller
        for rank, bank, row in victims:
            coord = DramCoord(rank=rank, bank=bank, row=row, col=0)
            latency = controller.refresh_row(coord, machine.cycles)
            machine.consume(latency, overhead=True)
        return len(victims)
