"""ANVIL run statistics: detections, refreshes, and overhead accounting."""

from __future__ import annotations

from dataclasses import dataclass, field

from .sampler import DetectedAggressor, RowKey


@dataclass(frozen=True)
class Detection:
    """One stage-2 window that concluded an attack was in progress."""

    time_cycles: int
    aggressors: tuple[DetectedAggressor, ...]
    refreshed_rows: tuple[RowKey, ...]


@dataclass
class AnvilStats:
    """Counters accumulated while the module is installed."""

    installed_at_cycles: int = 0
    stage1_windows: int = 0
    stage1_triggers: int = 0
    stage2_windows: int = 0
    samples_collected: int = 0
    untranslatable_samples: int = 0
    detections: list[Detection] = field(default_factory=list)
    selective_refreshes: int = 0
    refresh_times_cycles: list[int] = field(default_factory=list)
    overhead_cycles: int = 0

    @property
    def detection_count(self) -> int:
        return len(self.detections)

    def first_detection_cycles(self) -> int | None:
        """Cycles from install to the first detection, or None."""
        if not self.detections:
            return None
        return self.detections[0].time_cycles - self.installed_at_cycles

    def refreshes_per_interval(self, interval_cycles: int, total_cycles: int) -> float:
        """Average selective refreshes per ``interval_cycles`` (e.g. per
        64 ms refresh period, Table 3's metric)."""
        if total_cycles <= 0:
            return 0.0
        return self.selective_refreshes * interval_cycles / total_cycles

    def refreshes_per_second(self, total_cycles: int, freq_hz: float) -> float:
        """Average selective refreshes per second (Table 4/5's metric)."""
        seconds = total_cycles / freq_hz
        return self.selective_refreshes / seconds if seconds > 0 else 0.0
