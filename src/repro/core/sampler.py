"""Stage-2 sample analysis: DRAM row locality and bank locality.

Implements the decision rule of Section 3.3: "sampled DRAM row accesses
are sorted and the sample distribution is analyzed to identify high DRAM
row locality.  DRAM row locality is determined by considering the number
of samples, the number of last-level cache misses for the sampling
duration and the required last-level cache miss rate for a successful
rowhammer attack.  For each row that has high DRAM locality, a check is
made to see if there are other row access samples from the same DRAM
bank."

The analysis is pure (samples in, aggressors out) so that both the
cycle-level detector and the fast epoch model share it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .config import AnvilConfig

#: A sampled row: (rank, bank, row).
RowKey = tuple[int, int, int]


@dataclass(frozen=True)
class DetectedAggressor:
    """One row flagged as a rowhammer aggressor."""

    row_key: RowKey
    sample_count: int
    estimated_accesses: float
    bank_other_samples: int

    @property
    def bank_key(self) -> tuple[int, int]:
        return self.row_key[:2]


@dataclass
class LocalityAnalysis:
    """Full result of one stage-2 analysis."""

    aggressors: list[DetectedAggressor] = field(default_factory=list)
    total_samples: int = 0
    window_misses: int = 0
    hot_rows_rejected_by_bank_check: int = 0

    @property
    def attack_detected(self) -> bool:
        return bool(self.aggressors)


def analyze_row_samples(
    rows: list[RowKey],
    window_misses: int,
    config: AnvilConfig,
) -> LocalityAnalysis:
    """Analyze one window of sampled DRAM row accesses.

    ``rows`` holds the DRAM coordinates of each sample (already resolved
    from virtual addresses); ``window_misses`` is the LLC miss count over
    the same window, used to scale sample shares into estimated access
    counts.
    """
    analysis = LocalityAnalysis(total_samples=len(rows), window_misses=window_misses)
    if len(rows) < config.min_samples or window_misses <= 0:
        return analysis

    row_counts = Counter(rows)
    bank_counts: Counter[tuple[int, int]] = Counter()
    for key, count in row_counts.items():
        bank_counts[key[:2]] += count

    total = len(rows)
    hot_cutoff = config.hot_row_accesses
    for key, count in sorted(row_counts.items(), key=lambda kv: (-kv[1], kv[0])):
        if count < config.min_row_samples:
            break  # sorted by count: nothing below has enough samples
        estimated = count / total * window_misses
        if estimated < hot_cutoff:
            break  # sorted by count: nothing below can be hot
        bank_other = bank_counts[key[:2]] - count
        if config.bank_locality_check and (
            bank_other < config.bank_other_fraction * count
        ):
            # High locality but no same-bank companions: the row buffer
            # would absorb these accesses, so this is thrashing, not
            # hammering (Section 3.1).
            analysis.hot_rows_rejected_by_bank_check += 1
            continue
        analysis.aggressors.append(
            DetectedAggressor(
                row_key=key,
                sample_count=count,
                estimated_accesses=estimated,
                bank_other_samples=bank_other,
            )
        )
    return analysis
