"""The two-stage detection state machine (paper Figure 2, Section 3.3).

Stage 1 ("miss-rate gate"): read the LLC miss counter over ``tc``; if the
window's misses reach ``LLC_MISS_THRESHOLD``, an attack is *possible* and
stage 2 arms.  Stage 2 ("locality check"): PEBS-sample LLC-missing memory
operations for ``ts``, resolve the samples to DRAM rows, run the locality
analysis, and protect any identified victims.  Either way the detector
then returns to stage 1.

Facility selection (Section 3.3): if retired load misses are more than
90% of all LLC misses in the stage-1 window, only loads are sampled; below
10%, only stores; otherwise both.
"""

from __future__ import annotations

from ..errors import TranslationError
from ..pmu import Event, SamplerConfig
from ..sim.machine import Machine
from .config import AnvilConfig
from .refresher import SelectiveRefresher
from .sampler import RowKey, analyze_row_samples
from .stats import AnvilStats, Detection


class AnvilDetector:
    """Timer-driven detector; drive via :class:`repro.core.AnvilModule`."""

    def __init__(self, machine: Machine, config: AnvilConfig, stats: AnvilStats):
        self.machine = machine
        self.config = config
        self.stats = stats
        self._running = False
        self._tc_cycles = machine.clock.cycles_from_ms(config.tc_ms)
        self._ts_cycles = machine.clock.cycles_from_ms(config.ts_ms)
        self._miss_counter = machine.pmu.counter(Event.LONGEST_LAT_CACHE_MISS)
        self._load_miss_counter = machine.pmu.counter(
            Event.MEM_LOAD_UOPS_MISC_RETIRED_LLC_MISS
        )
        self._refresher = SelectiveRefresher(machine, config)
        self._window_start_misses = 0
        self._window_start_load_misses = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._running = True
        self._begin_stage1(self.machine)

    def stop(self) -> None:
        self._running = False
        self.machine.pmi_cost_cycles = 0
        self.machine.pmu.disable_sampling()

    # -- stage 1 ----------------------------------------------------------------

    def _begin_stage1(self, machine: Machine) -> None:
        if not self._running:
            return
        self._window_start_misses = self._miss_counter.read()
        self._window_start_load_misses = self._load_miss_counter.read()
        machine.schedule_in(self._tc_cycles, self._end_stage1)

    def _end_stage1(self, machine: Machine) -> None:
        if not self._running:
            return
        machine.consume(self.config.stage1_cost_cycles, overhead=True)
        self.stats.stage1_windows += 1
        misses = self._miss_counter.read() - self._window_start_misses
        if misses >= self.config.llc_miss_threshold:
            self.stats.stage1_triggers += 1
            self._begin_stage2(machine)
        else:
            self._begin_stage1(machine)

    # -- stage 2 ----------------------------------------------------------------

    def _facility_choice(self) -> tuple[bool, bool]:
        """(sample_loads, sample_stores) from the stage-1 miss mix."""
        misses = self._miss_counter.read() - self._window_start_misses
        load_misses = self._load_miss_counter.read() - self._window_start_load_misses
        if misses <= 0:
            return True, True
        load_fraction = load_misses / misses
        if load_fraction > self.config.load_only_fraction:
            return True, False
        if load_fraction < self.config.store_only_fraction:
            return False, True
        return True, True

    def _begin_stage2(self, machine: Machine) -> None:
        sample_loads, sample_stores = self._facility_choice()
        machine.pmu.configure_sampler(
            SamplerConfig(
                rate_hz=self.config.sampling_rate_hz,
                latency_threshold_cycles=self.config.latency_threshold_cycles,
                sample_loads=sample_loads,
                sample_stores=sample_stores,
                seed=7 + self.stats.stage2_windows,
                # System-wide sampling: all cores' memory ops compete
                # fairly for PEBS slots.
                arm_skip_probability=0.5,
            )
        )
        machine.pmu.enable_sampling(machine.cycles)
        machine.pmi_cost_cycles = self.config.pmi_cost_cycles
        machine.consume(self.config.stage2_setup_cost_cycles, overhead=True)
        self._window_start_misses = self._miss_counter.read()
        machine.schedule_in(self._ts_cycles, self._end_stage2)

    def _end_stage2(self, machine: Machine) -> None:
        if not self._running:
            return
        machine.pmi_cost_cycles = 0
        machine.pmu.disable_sampling()
        machine.consume(self.config.stage2_setup_cost_cycles, overhead=True)
        self.stats.stage2_windows += 1
        window_misses = self._miss_counter.read() - self._window_start_misses

        samples = machine.pmu.drain_samples()
        self.stats.samples_collected += len(samples)
        rows: list[RowKey] = []
        memsys = machine.memory
        for sample in samples:
            try:
                coord = memsys.row_of_vaddr(sample.vaddr)
            except TranslationError:
                self.stats.untranslatable_samples += 1
                continue
            rows.append((coord.rank, coord.bank, coord.row))

        analysis = analyze_row_samples(rows, window_misses, self.config)
        if analysis.attack_detected:
            victims = self._refresher.victims_of(analysis.aggressors)
            refreshed = self._refresher.refresh(victims)
            self.stats.selective_refreshes += refreshed
            self.stats.refresh_times_cycles.extend([machine.cycles] * refreshed)
            self.stats.detections.append(
                Detection(
                    time_cycles=machine.cycles,
                    aggressors=tuple(analysis.aggressors),
                    refreshed_rows=tuple(victims),
                )
            )
        self._begin_stage1(machine)
