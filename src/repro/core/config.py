"""ANVIL configuration (paper Table 2 and Section 4.5).

The three named configurations evaluated in the paper:

=============  ===================  =====  =====  ======================
Configuration  LLC_MISS_THRESHOLD   tc     ts     Designed against
=============  ===================  =====  =====  ======================
baseline       20K / 6 ms           6 ms   6 ms   220K-access attacks
light          10K / 6 ms           6 ms   6 ms   110K accesses spread
                                                  over a full 64 ms
heavy          20K / 2 ms           2 ms   2 ms   110K accesses in 7.5 ms
=============  ===================  =====  =====  ======================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class AnvilConfig:
    """All detector parameters.

    The stage-2 "high locality" rule follows Section 3.3: a row is an
    aggressor candidate if its estimated access count over the sampling
    window (its sample share times the window's LLC miss count) reaches a
    safety fraction of the access rate a successful attack needs
    (``assumed_flip_accesses`` per ``assumed_retention_ms``, scaled to
    ``ts``).
    """

    # -- stage 1 -------------------------------------------------------------
    llc_miss_threshold: int = 20_000
    tc_ms: float = 6.0

    # -- stage 2 -------------------------------------------------------------
    ts_ms: float = 6.0
    sampling_rate_hz: float = 5000.0
    latency_threshold_cycles: int = 40
    #: facility selection (Section 3.3): >90% load misses -> sample loads
    #: only; <10% -> stores only; otherwise both.
    load_only_fraction: float = 0.9
    store_only_fraction: float = 0.1
    min_samples: int = 4

    # -- locality analysis ------------------------------------------------------
    #: calibration of the weakest-cell attack (measured by templating).
    assumed_flip_accesses: int = 220_000
    assumed_retention_ms: float = 64.0
    #: safety factor: flag rows at this fraction of the hammer rate.
    hot_row_fraction: float = 0.5
    #: a row additionally needs this many samples before it can be
    #: flagged — "considering the number of samples" (Section 3.3): one or
    #: two coinciding samples out of ~30 are statistically meaningless on
    #: a high-miss-rate workload.
    min_row_samples: int = 3
    #: bank-locality confirmation: other same-bank rows must hold at least
    #: this fraction of the hot row's samples (Section 3.1's filter
    #: against row-buffer-friendly thrashing patterns).
    bank_locality_check: bool = True
    bank_other_fraction: float = 0.5

    # -- protection ----------------------------------------------------------------
    victim_radius: int = 1

    # -- overhead model (cycles) ------------------------------------------------------
    #: PMI + PEBS record drain + task_struct resolution per sample
    #: (~11.5 us at 2.6 GHz — the dominant detector cost, which is why
    #: "sampling of addresses in the second stage of the detection phase
    #: contributes to almost all of the performance overhead", Sec. 4.3).
    pmi_cost_cycles: int = 30_000
    #: stage-1 window bookkeeping (timer + counter reads).
    stage1_cost_cycles: int = 4_000
    #: programming the PEBS facilities when stage 2 starts/stops.
    stage2_setup_cost_cycles: int = 8_000

    def __post_init__(self) -> None:
        if self.llc_miss_threshold <= 0:
            raise ConfigError("llc_miss_threshold must be positive")
        if self.tc_ms <= 0 or self.ts_ms <= 0:
            raise ConfigError("window durations must be positive")
        if not 0 < self.hot_row_fraction <= 1:
            raise ConfigError("hot_row_fraction must be in (0, 1]")
        if not 0 <= self.store_only_fraction < self.load_only_fraction <= 1:
            raise ConfigError("facility-selection fractions out of order")
        if self.victim_radius < 1:
            raise ConfigError("victim_radius must be at least 1")

    # -- derived quantities ---------------------------------------------------------

    @property
    def min_hammer_accesses_per_window(self) -> float:
        """Row accesses per ``ts`` window a minimal attack must sustain."""
        return self.assumed_flip_accesses * self.ts_ms / self.assumed_retention_ms

    @property
    def hot_row_accesses(self) -> float:
        """Estimated per-window accesses at which a row is flagged."""
        return self.hot_row_fraction * self.min_hammer_accesses_per_window

    # -- named configurations ----------------------------------------------------------

    @classmethod
    def baseline(cls) -> "AnvilConfig":
        """Table 2: threshold 20K, tc = ts = 6 ms."""
        return cls()

    @classmethod
    def light(cls) -> "AnvilConfig":
        """Section 4.5 ANVIL-light: 110K-access attacks spread across a
        full refresh period; threshold halved to 10K."""
        return cls(
            llc_miss_threshold=10_000,
            tc_ms=6.0,
            ts_ms=6.0,
            assumed_flip_accesses=110_000,
        )

    @classmethod
    def heavy(cls) -> "AnvilConfig":
        """Section 4.5 ANVIL-heavy: 110K-access attacks compressed into
        7.5 ms; windows shrink to 2 ms, threshold unchanged."""
        return cls(
            llc_miss_threshold=20_000,
            tc_ms=2.0,
            ts_ms=2.0,
            assumed_flip_accesses=110_000,
        )
