"""The ANVIL "kernel module": installation facade and reporting.

Mirrors the artifact's lifecycle: load the module (``install``), let it
run its detection loop off timers and PMU interrupts while any workload
executes, then read its statistics (``stats``/``report``) or unload it
(``uninstall``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.machine import Machine
from .config import AnvilConfig
from .detector import AnvilDetector
from .stats import AnvilStats


@dataclass
class AnvilReport:
    """Human-oriented summary of a protected run."""

    config_name: str
    elapsed_ms: float
    detections: int
    first_detection_ms: float | None
    selective_refreshes: int
    refreshes_per_64ms: float
    refreshes_per_second: float
    stage1_windows: int
    stage1_trigger_fraction: float
    samples_collected: int
    overhead_cycles: int


class AnvilModule:
    """ANVIL bound to one machine."""

    def __init__(
        self,
        machine: Machine,
        config: AnvilConfig | None = None,
        name: str = "ANVIL-baseline",
    ) -> None:
        self.machine = machine
        self.config = config or AnvilConfig.baseline()
        self.name = name
        self.stats = AnvilStats()
        self.detector = AnvilDetector(machine, self.config, self.stats)
        self.installed = False

    def install(self) -> None:
        """Start the detection loop at the machine's current time."""
        if self.installed:
            return
        self.stats.installed_at_cycles = self.machine.cycles
        self.detector.start()
        self.installed = True

    def uninstall(self) -> None:
        if not self.installed:
            return
        self.detector.stop()
        self.installed = False

    # -- reporting ----------------------------------------------------------------

    def first_detection_ms(self) -> float | None:
        cycles = self.stats.first_detection_cycles()
        if cycles is None:
            return None
        return self.machine.clock.ms_from_cycles(cycles)

    def report(self) -> AnvilReport:
        clock = self.machine.clock
        elapsed = self.machine.cycles - self.stats.installed_at_cycles
        per_64ms = self.stats.refreshes_per_interval(
            clock.cycles_from_ms(64.0), elapsed
        )
        triggers = (
            self.stats.stage1_triggers / self.stats.stage1_windows
            if self.stats.stage1_windows
            else 0.0
        )
        return AnvilReport(
            config_name=self.name,
            elapsed_ms=clock.ms_from_cycles(elapsed),
            detections=self.stats.detection_count,
            first_detection_ms=self.first_detection_ms(),
            selective_refreshes=self.stats.selective_refreshes,
            refreshes_per_64ms=per_64ms,
            refreshes_per_second=self.stats.refreshes_per_second(
                elapsed, clock.freq_hz
            ),
            stage1_windows=self.stats.stage1_windows,
            stage1_trigger_fraction=triggers,
            samples_collected=self.stats.samples_collected,
            overhead_cycles=self.machine.overhead_cycles,
        )
