"""The rowhammer disturbance model.

Physics being modelled (paper Section 1.1): "Repeated accesses to one row
(the aggressor) within a single refresh cycle (e.g., 100's of thousands of
accesses) speeds up the discharge of bit cells in adjacent rows (victim
rows). This causes bit-flips in the victim rows most sensitive to
hammering."

Model: every *activation* (row-buffer fill; row-buffer hits do not count)
of row ``r`` deposits ``neighbor_weights[d-1]`` disturbance units on each
row ``r +- d``.  A victim row's accumulated units reset whenever the row is
itself activated (a read restores the charge — the basis of ANVIL's
selective refresh) and at each of its auto-refresh epochs.  When a victim's
units cross its per-row threshold, bits flip.

Per-row thresholds are deterministic functions of (seed, row id): a
``strong_fraction`` of rows never flip; the rest are spread between
``threshold_min`` and ``threshold_min * (1 + spread)``, so the module has a
tail of weak rows an attacker would find by templating.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import DisturbanceConfig


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: a cheap, well-distributed 64-bit hash."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


@dataclass(frozen=True)
class BitFlip:
    """One disturbance-induced bit flip."""

    row_id: int  # dense per-module row index
    bit_offset: int  # bit position within the row (0 .. row_bits-1)
    time_cycles: int
    units_at_flip: float


class CellPopulation:
    """Deterministic per-row weak-cell thresholds and flip positions."""

    def __init__(self, config: DisturbanceConfig, row_bits: int) -> None:
        self.config = config
        self.row_bits = row_bits  # bits per row (row_bytes * 8)
        self._threshold_cache: dict[int, float] = {}

    def threshold_for(self, row_id: int) -> float:
        """Units needed to flip the first bit in ``row_id``.

        Returns ``inf`` for rows whose cells are too strong to flip.
        """
        cached = self._threshold_cache.get(row_id)
        if cached is not None:
            return cached
        h = _mix64(self.config.seed * 0x10001 + row_id)
        u_strong = (h & 0xFFFFFFFF) / 0x100000000
        if u_strong < self.config.strong_fraction:
            threshold = float("inf")
        else:
            u = (h >> 32) / 0x100000000
            threshold = self.config.threshold_min * (1.0 + self.config.spread * u)
        self._threshold_cache[row_id] = threshold
        return threshold

    def flip_bit_position(self, row_id: int, flip_index: int) -> int:
        """The ``flip_index``-th bit of ``row_id`` to flip (deterministic)."""
        h = _mix64(self.config.seed * 0x20003 + row_id * 131 + flip_index)
        return h % self.row_bits

    def flip_threshold(self, row_id: int, flip_index: int) -> float:
        """Units at which the ``flip_index``-th bit of the row flips.

        The first bit flips at the row threshold; each further bit needs
        ``extra_flip_step`` (15% by default) more units — modelling the
        paper's observation (Section 1.2) of "multiple bit-flips per word"
        under sustained hammering.
        """
        base = self.threshold_for(row_id)
        return base * (1.0 + self.config.extra_flip_step * flip_index)

    def weakest_rows(self, row_ids: list[int] | range, count: int = 1) -> list[int]:
        """The ``count`` rows with the lowest flip thresholds among
        ``row_ids`` (ties broken by row id) — what an attacker's
        templating scan would discover."""
        scored = sorted(
            (self.threshold_for(r), r) for r in row_ids
        )
        return [r for t, r in scored[:count] if t != float("inf")]


class DisturbanceTracker:
    """Accumulates disturbance units per victim row within refresh epochs.

    The tracker is lazy: a row's accumulator is only reconciled against the
    auto-refresh schedule when the row is next disturbed, which keeps the
    per-activation cost O(blast radius).
    """

    def __init__(self, cells: CellPopulation, config: DisturbanceConfig) -> None:
        self.cells = cells
        self.config = config
        # row_id -> [units, epoch, flips_done]
        self._state: dict[int, list] = {}
        self.flips: list[BitFlip] = []
        self._flip_bits: dict[int, set[int]] = {}  # row_id -> flipped bit offsets
        self.total_units_deposited = 0.0

    # -- epoch bookkeeping ----------------------------------------------------

    def units(self, row_id: int, epoch: int) -> float:
        """Current accumulated units for ``row_id`` in ``epoch``."""
        entry = self._state.get(row_id)
        if entry is None or entry[1] != epoch:
            return 0.0
        return entry[0]

    # -- events ----------------------------------------------------------------

    def on_refresh(self, row_id: int, epoch: int) -> None:
        """The row was activated/refreshed: its charge is restored."""
        entry = self._state.get(row_id)
        if entry is None:
            self._state[row_id] = [0.0, epoch, 0]
        else:
            entry[0] = 0.0
            entry[1] = epoch

    def disturb(
        self, row_id: int, units: float, epoch: int, time_cycles: int
    ) -> tuple[BitFlip, ...] | list[BitFlip]:
        """Deposit ``units`` on ``row_id``; return any new bit flips.

        The hot no-flip path (almost every deposit) is a single threshold
        compare against the row's first-bit threshold and returns a shared
        empty tuple; the flip machinery only runs once that is crossed.
        """
        entry = self._state.get(row_id)
        if entry is None:
            entry = [units, epoch, 0]
            self._state[row_id] = entry
        elif entry[1] != epoch:
            entry[0] = units
            entry[1] = epoch
        else:
            entry[0] += units
        self.total_units_deposited += units
        flips_done = entry[2]
        if flips_done >= self.config.max_flips_per_row or entry[0] < (
            self.cells.threshold_for(row_id)
        ):
            # Every flip threshold is at least the first-bit threshold, so
            # no further bit can flip yet.
            return ()
        return self.emit_flips(row_id, entry, time_cycles)

    def emit_flips(
        self, row_id: int, entry: list, time_cycles: int
    ) -> list[BitFlip]:
        """Materialise every bit whose threshold ``entry``'s units now
        cross.  Shared by :meth:`disturb` and the fast-path activation in
        :meth:`repro.dram.device.DramDevice.access_miss_fast`; callers
        have already checked the first-bit threshold."""
        flips_done = entry[2]
        new_flips: list[BitFlip] = []
        while flips_done < self.config.max_flips_per_row:
            needed = self.cells.flip_threshold(row_id, flips_done)
            if entry[0] < needed:
                break
            bit = self.cells.flip_bit_position(row_id, flips_done)
            flip = BitFlip(
                row_id=row_id,
                bit_offset=bit,
                time_cycles=time_cycles,
                units_at_flip=entry[0],
            )
            new_flips.append(flip)
            self.flips.append(flip)
            self._flip_bits.setdefault(row_id, set()).add(bit)
            flips_done += 1
        entry[2] = flips_done
        return new_flips

    # -- queries ----------------------------------------------------------------

    def flipped_bits(self, row_id: int) -> set[int]:
        """Bit offsets flipped so far in ``row_id``."""
        return self._flip_bits.get(row_id, set())

    def flip_count(self) -> int:
        return len(self.flips)

    def rows_with_flips(self) -> list[int]:
        return sorted(self._flip_bits)
