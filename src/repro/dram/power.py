"""DRAM refresh power and throughput cost model (paper Section 2.1).

"Increasing the refresh rate comes at the cost of increased power and
reduced DRAM throughput — as refresh commands compete with
software-requested memory accesses.  Going from a 64 ms refresh period to
the 15 ms required to protect our DRAM requires over a 4x increase in
refresh power and throughput overhead."

The model uses the standard Micron power-calculation method reduced to
the terms refresh scaling changes: a refresh command draws a burst
current (IDD5 class) for tRFC every tREFI; background and access power
are unchanged by refresh scaling and enter only the totals.  All numbers
default to a 4 Gb DDR3-1600 part at 1.5 V.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .config import DramTimings


@dataclass(frozen=True)
class DramPowerConfig:
    """Electrical parameters (per rank, 4 Gb DDR3-1600-class defaults)."""

    vdd: float = 1.5
    #: refresh burst current minus background (IDD5B - IDD3N), amps.
    idd5_delta: float = 0.160
    #: background current, precharge standby (IDD2N), amps.
    idd_background: float = 0.045
    #: incremental energy per row activate+precharge pair, joules.
    activate_energy_j: float = 18e-9
    #: incremental energy per column read/write burst, joules.
    access_energy_j: float = 5e-9

    def __post_init__(self) -> None:
        if min(self.vdd, self.idd5_delta, self.idd_background) <= 0:
            raise ConfigError("electrical parameters must be positive")


@dataclass(frozen=True)
class PowerBreakdown:
    """Average power (watts) and throughput cost for one configuration."""

    refresh_w: float
    background_w: float
    activate_w: float
    access_w: float
    #: fraction of device time unavailable to demand accesses.
    throughput_loss: float

    @property
    def total_w(self) -> float:
        return self.refresh_w + self.background_w + self.activate_w + self.access_w


class DramPowerModel:
    """Average-power estimates from timing parameters and activity rates."""

    def __init__(self, power: DramPowerConfig | None = None) -> None:
        self.power = power or DramPowerConfig()

    def refresh_power_w(self, timings: DramTimings) -> float:
        """Average refresh power: burst current x duty cycle.

        Scales inversely with tREFI, which is exactly how doubling the
        refresh rate doubles refresh power.
        """
        duty = timings.trfc_ns / timings.trefi_ns
        return self.power.vdd * self.power.idd5_delta * duty

    def breakdown(
        self,
        timings: DramTimings,
        activations_per_s: float = 0.0,
        accesses_per_s: float = 0.0,
    ) -> PowerBreakdown:
        """Full average-power breakdown under a given activity level."""
        if activations_per_s < 0 or accesses_per_s < 0:
            raise ConfigError("activity rates must be non-negative")
        return PowerBreakdown(
            refresh_w=self.refresh_power_w(timings),
            background_w=self.power.vdd * self.power.idd_background,
            activate_w=self.power.activate_energy_j * activations_per_s,
            access_w=self.power.access_energy_j * accesses_per_s,
            throughput_loss=timings.trfc_ns / timings.trefi_ns,
        )

    def refresh_scaling_cost(
        self, base: DramTimings, factor: float
    ) -> tuple[float, float]:
        """(refresh-power multiplier, added throughput loss) of scaling
        the refresh rate by ``factor`` — the Section 2.1 argument."""
        scaled = base.scaled_refresh(factor)
        power_multiplier = self.refresh_power_w(scaled) / self.refresh_power_w(base)
        throughput_delta = (
            scaled.trfc_ns / scaled.trefi_ns - base.trfc_ns / base.trefi_ns
        )
        return power_multiplier, throughput_delta

    def selective_refresh_power_w(self, refreshes_per_s: float) -> float:
        """Average power of ANVIL's selective refreshes: one activation
        per refreshed row.  At Table 3 rates (hundreds per second at
        most) this is nanowatts-to-microwatts — the quantitative form of
        'false positives ... incur only a small number of extra DRAM read
        operations'."""
        if refreshes_per_s < 0:
            raise ConfigError("refresh rate must be non-negative")
        return self.power.activate_energy_j * refreshes_per_s
