"""Auto-refresh scheduling and its performance cost.

Two aspects of refresh matter to the paper:

1. **Retention epochs.**  Each row is refreshed once per retention period
   (64 ms for DDR3, 32 ms under the doubled-refresh mitigation).  Rows are
   refreshed in a staggered round-robin, so row ``r``'s refresh instants
   are offset by a per-row phase.  A victim row's disturbance accumulator
   resets at each of its refresh instants — the defender's budget is
   "units an attacker can deposit within one epoch".

2. **Blocking cost.**  A refresh command occupies the device for tRFC out
   of every tREFI, during which demand accesses stall.  Doubling the
   refresh rate doubles this lost time, which is why the paper's Figure 3
   shows memory-intensive workloads (mcf) losing several percent to the
   double-refresh mitigation.
"""

from __future__ import annotations

from ..units import Clock
from .config import DramTimings


class RefreshEngine:
    """Derives per-row refresh epochs and refresh-blocking delays."""

    def __init__(self, timings: DramTimings, clock: Clock, total_rows: int) -> None:
        self.timings = timings
        self.clock = clock
        self.total_rows = total_rows
        self.retention_cycles = timings.retention_cycles(clock)
        self.trefi_cycles = max(1, timings.trefi_cycles(clock))
        self.trfc_cycles = timings.trfc_cycles(clock)
        # phase() is a pure function of the row id and is evaluated three
        # times per activation (aggressor + both neighbours); memoise it.
        self._phase_cache: dict[int, int] = {}

    def phase(self, row_id: int) -> int:
        """Cycle offset of ``row_id``'s refresh within the retention period."""
        phase = self._phase_cache.get(row_id)
        if phase is None:
            phase = (row_id * self.retention_cycles) // self.total_rows
            self._phase_cache[row_id] = phase
        return phase

    def epoch(self, row_id: int, time_cycles: int) -> int:
        """Index of the retention epoch ``row_id`` is in at ``time_cycles``.

        The accumulator-reset boundary between epochs is the row's refresh
        instant.  Times before the row's first refresh are epoch 0.
        """
        phase = self._phase_cache.get(row_id)
        if phase is None:
            phase = (row_id * self.retention_cycles) // self.total_rows
            self._phase_cache[row_id] = phase
        shifted = time_cycles - phase
        if shifted < 0:
            return 0
        return 1 + shifted // self.retention_cycles

    def next_refresh(self, row_id: int, time_cycles: int) -> int:
        """Cycle of the next auto-refresh of ``row_id`` after ``time_cycles``."""
        phase = self.phase(row_id)
        if time_cycles < phase:
            return phase
        periods = (time_cycles - phase) // self.retention_cycles + 1
        return phase + periods * self.retention_cycles

    def blocking_delay(self, time_cycles: int) -> int:
        """Extra cycles a demand access arriving at ``time_cycles`` waits
        because a refresh command is in progress.

        Deterministic model: a refresh command starts at every multiple of
        tREFI and holds the device for tRFC.  Expected cost per access is
        ``tRFC^2 / (2 * tREFI)`` for uniformly arriving traffic, which
        scales linearly with refresh rate — the doubled-refresh penalty.
        """
        pos = time_cycles % self.trefi_cycles
        if pos < self.trfc_cycles:
            return self.trfc_cycles - pos
        return 0

    def duty_fraction(self) -> float:
        """Fraction of time the device is blocked refreshing."""
        return self.trfc_cycles / self.trefi_cycles
