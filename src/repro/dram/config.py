"""DRAM geometry, timing, and disturbance configuration.

Defaults model the paper's test module: a 4 GB DDR3 DIMM (2 ranks x 8
banks x 32768 rows x 8 KB rows) behind a single channel, with a 64 ms
retention period and a refresh command every 7.8 us (paper Section 1.1,
citing the JEDEC DDR3 specification).

Disturbance calibration (see DESIGN.md): one activation of a row adds one
"disturbance unit" to each physically adjacent row.  The weakest row of the
simulated test module flips its first bit after 220K units inside a single
retention window — the paper's Table 1 double-sided minimum.  A
single-sided attack spends half of its accesses on a row-buffer-toggling
dummy row, so its total-access minimum is about twice that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..units import GB, Clock, is_power_of_two


@dataclass(frozen=True)
class DramTimings:
    """DRAM timing parameters in nanoseconds (DDR3-1600-class)."""

    tcas_ns: float = 13.75  # column access (row-buffer hit)
    trcd_ns: float = 13.75  # activate -> column access
    trp_ns: float = 13.75  # precharge
    trfc_ns: float = 350.0  # refresh command duration (4 Gb parts)
    trefi_ns: float = 7800.0  # refresh command interval
    retention_ms: float = 64.0  # per-row refresh period

    def __post_init__(self) -> None:
        for name in ("tcas_ns", "trcd_ns", "trp_ns", "trfc_ns", "trefi_ns"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.retention_ms <= 0:
            raise ConfigError("retention_ms must be positive")
        if self.trfc_ns >= self.trefi_ns:
            raise ConfigError("tRFC must be smaller than tREFI")

    def scaled_refresh(self, factor: float) -> "DramTimings":
        """Return timings with the refresh rate multiplied by ``factor``.

        ``factor=2`` models the deployed "double refresh" mitigation:
        retention drops 64 ms -> 32 ms and refresh commands arrive twice as
        often (tREFI halves), doubling the refresh-blocking overhead.
        """
        if factor <= 0:
            raise ConfigError("refresh scale factor must be positive")
        return DramTimings(
            tcas_ns=self.tcas_ns,
            trcd_ns=self.trcd_ns,
            trp_ns=self.trp_ns,
            trfc_ns=self.trfc_ns,
            trefi_ns=self.trefi_ns / factor,
            retention_ms=self.retention_ms / factor,
        )

    # -- cycle conversions ---------------------------------------------------

    def row_hit_cycles(self, clock: Clock) -> int:
        """Row-buffer hit: column access only."""
        return clock.cycles_from_ns(self.tcas_ns)

    def row_closed_cycles(self, clock: Clock) -> int:
        """Bank precharged: activate + column access."""
        return clock.cycles_from_ns(self.trcd_ns + self.tcas_ns)

    def row_conflict_cycles(self, clock: Clock) -> int:
        """Different row open: precharge + activate + column access."""
        return clock.cycles_from_ns(self.trp_ns + self.trcd_ns + self.tcas_ns)

    def retention_cycles(self, clock: Clock) -> int:
        return clock.cycles_from_ms(self.retention_ms)

    def trefi_cycles(self, clock: Clock) -> int:
        return clock.cycles_from_ns(self.trefi_ns)

    def trfc_cycles(self, clock: Clock) -> int:
        return clock.cycles_from_ns(self.trfc_ns)


@dataclass(frozen=True)
class DisturbanceConfig:
    """Parameters of the rowhammer cross-talk model.

    ``threshold_min`` is the disturbance-unit count at which the weakest
    row in the module flips its first bit; other rows' thresholds are drawn
    deterministically from ``threshold_min * (1 + spread * u)`` where ``u``
    is a per-row uniform variate, and a ``strong_fraction`` of rows never
    flip (their cells are below the crosstalk sensitivity floor).

    ``neighbor_weights[d-1]`` is the number of units an activation deposits
    on a victim ``d`` rows away; the default models a blast radius of one
    row, matching the paper's victim model ("rows that are directly above
    and below each potential aggressor row").
    """

    threshold_min: int = 220_000
    spread: float = 1.5
    strong_fraction: float = 0.4
    neighbor_weights: tuple[float, ...] = (1.0,)
    extra_flip_step: float = 0.15  # each +15% units past threshold flips another bit
    max_flips_per_row: int = 8
    seed: int = 0x5EED

    def __post_init__(self) -> None:
        if self.threshold_min <= 0:
            raise ConfigError("threshold_min must be positive")
        if not 0 <= self.strong_fraction < 1:
            raise ConfigError("strong_fraction must be in [0, 1)")
        if self.spread < 0:
            raise ConfigError("spread must be non-negative")
        if not self.neighbor_weights or any(w <= 0 for w in self.neighbor_weights):
            raise ConfigError("neighbor_weights must be non-empty and positive")
        if self.extra_flip_step <= 0 or self.max_flips_per_row <= 0:
            raise ConfigError("flip accumulation parameters must be positive")

    @property
    def blast_radius(self) -> int:
        return len(self.neighbor_weights)


@dataclass(frozen=True)
class DramConfig:
    """Geometry plus timing plus disturbance model for one module."""

    ranks: int = 2
    banks_per_rank: int = 8
    rows_per_bank: int = 32_768
    row_bytes: int = 8_192
    timings: DramTimings = field(default_factory=DramTimings)
    disturbance: DisturbanceConfig = field(default_factory=DisturbanceConfig)
    xor_bank_hash: bool = False

    def __post_init__(self) -> None:
        for name in ("ranks", "banks_per_rank", "rows_per_bank", "row_bytes"):
            if not is_power_of_two(getattr(self, name)):
                raise ConfigError(f"{name} must be a power of two")

    @property
    def total_banks(self) -> int:
        return self.ranks * self.banks_per_rank

    @property
    def total_rows(self) -> int:
        return self.total_banks * self.rows_per_bank

    @property
    def capacity_bytes(self) -> int:
        return self.total_rows * self.row_bytes

    def with_timings(self, timings: DramTimings) -> "DramConfig":
        return DramConfig(
            ranks=self.ranks,
            banks_per_rank=self.banks_per_rank,
            rows_per_bank=self.rows_per_bank,
            row_bytes=self.row_bytes,
            timings=timings,
            disturbance=self.disturbance,
            xor_bank_hash=self.xor_bank_hash,
        )

    def with_disturbance(self, disturbance: DisturbanceConfig) -> "DramConfig":
        return DramConfig(
            ranks=self.ranks,
            banks_per_rank=self.banks_per_rank,
            rows_per_bank=self.rows_per_bank,
            row_bytes=self.row_bytes,
            timings=self.timings,
            disturbance=disturbance,
            xor_bank_hash=self.xor_bank_hash,
        )


def ddr3_4gb(**overrides) -> DramConfig:
    """The paper's test module: 4 GB DDR3 with default timings.

    Keyword overrides are forwarded to :class:`DramConfig`.
    """
    config = DramConfig(**overrides)
    if config.capacity_bytes != 4 * GB:
        raise ConfigError(
            f"geometry yields {config.capacity_bytes} bytes, expected 4 GB; "
            "use DramConfig directly for other capacities"
        )
    return config
