"""The memory controller: the single entry point from the cache hierarchy
to DRAM.

Responsibilities:

- translate physical addresses through the reverse-engineered
  :class:`~repro.dram.mapping.AddressMapping`;
- charge refresh-blocking delays (a refresh command holds the device for
  tRFC out of every tREFI);
- host **activation observers** — controller-level defenses such as PARA
  and counter-based TRR register here and may request neighbour refreshes
  on any activation;
- expose :meth:`refresh_row` used by ANVIL's selective-refresh protection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol

from ..units import Clock
from .config import DramConfig
from .device import DramDevice, RowAccess
from .mapping import DramCoord


class ActivationObserver(Protocol):
    """Controller-level defense hook (PARA, TRR...)."""

    def on_activation(self, coord: DramCoord, time_cycles: int) -> Iterable[DramCoord]:
        """Called on every row activation.  Returns rows the controller
        should refresh in response (may be empty)."""
        ...


class RowFilter(Protocol):
    """A defense that can serve accesses without touching the array
    (ARMOR's hot-row buffer)."""

    def absorbs(self, coord: DramCoord, time_cycles: int) -> bool:
        """True if this access is served by the defense's buffer: the row
        is neither activated nor its neighbours disturbed."""
        ...


@dataclass(slots=True)
class DramAccess:
    """Controller-level outcome of a DRAM access."""

    coord: DramCoord
    row_hit: bool
    activated: bool
    latency_cycles: int
    blocked_cycles: int
    new_flip_count: int


@dataclass
class ControllerStats:
    accesses: int = 0
    total_latency_cycles: int = 0
    blocked_cycles: int = 0
    observer_refreshes: int = 0
    selective_refreshes: int = 0


class MemoryController:
    """Schedules demand accesses and defense refreshes onto the device."""

    def __init__(self, config: DramConfig | None = None, clock: Clock | None = None):
        self.clock = clock or Clock()
        self.device = DramDevice(config, self.clock)
        self.mapping = self.device.mapping
        self.config = self.device.config
        self.stats = ControllerStats()
        self._observers: list[ActivationObserver] = []
        self._row_filters: list[RowFilter] = []

    def add_observer(self, observer: ActivationObserver) -> None:
        """Register a controller-level defense."""
        self._observers.append(observer)

    def remove_observer(self, observer: ActivationObserver) -> None:
        self._observers.remove(observer)

    def add_row_filter(self, row_filter: RowFilter) -> None:
        """Register a buffer-style defense that can absorb accesses."""
        self._row_filters.append(row_filter)

    def remove_row_filter(self, row_filter: RowFilter) -> None:
        self._row_filters.remove(row_filter)

    # -- demand path -------------------------------------------------------------

    def access(self, paddr: int, time_cycles: int, is_store: bool = False) -> DramAccess:
        """One demand access that missed the whole cache hierarchy."""
        del is_store  # loads and stores cost the same at the device
        blocked = self.device.refresh_engine.blocking_delay(time_cycles)
        coord = self.mapping.decode(paddr)
        for row_filter in self._row_filters:
            if row_filter.absorbs(coord, time_cycles + blocked):
                # Served from the defense's buffer: fast, no activation,
                # no disturbance.
                latency = self.device.config.timings.row_hit_cycles(self.clock)
                self.stats.accesses += 1
                self.stats.total_latency_cycles += latency
                return DramAccess(
                    coord=coord,
                    row_hit=True,
                    activated=False,
                    latency_cycles=latency,
                    blocked_cycles=0,
                    new_flip_count=0,
                )
        outcome: RowAccess = self.device.access(coord, time_cycles + blocked)
        if outcome.activated and self._observers:
            self._run_observers(coord, time_cycles + blocked)
        self.stats.accesses += 1
        latency = outcome.latency_cycles + blocked
        self.stats.total_latency_cycles += latency
        self.stats.blocked_cycles += blocked
        return DramAccess(
            coord=coord,
            row_hit=outcome.row_hit,
            activated=outcome.activated,
            latency_cycles=latency,
            blocked_cycles=blocked,
            new_flip_count=len(outcome.new_flips),
        )

    def _run_observers(self, coord: DramCoord, time_cycles: int) -> None:
        for observer in self._observers:
            for victim in observer.on_activation(coord, time_cycles):
                # Defense refreshes run in controller slack; they restore
                # charge but are not charged to the demand access.
                self.device.refresh_row(victim, time_cycles)
                self.stats.observer_refreshes += 1

    # -- protection path ------------------------------------------------------------

    def refresh_row(self, coord: DramCoord, time_cycles: int) -> int:
        """Refresh one row by reading it (ANVIL Section 3.2: "Reading from
        a row opens that row which has the effect of refreshing cells in
        the row").  Returns the access latency in cycles."""
        latency = self.device.refresh_row(coord, time_cycles)
        self.stats.selective_refreshes += 1
        return latency

    def refresh_neighbors(self, coord: DramCoord, time_cycles: int, radius: int = 1) -> int:
        """Refresh the rows adjacent to ``coord`` (the potential victims of
        an aggressor).  Returns total latency."""
        total = 0
        for victim in self.mapping.neighbors(coord, radius):
            total += self.refresh_row(victim, time_cycles)
        return total

    # -- convenience ------------------------------------------------------------------

    def flip_count(self) -> int:
        return self.device.flip_count()

    def set_timings(self, timings) -> None:
        """Swap in new timing parameters (refresh-rate defenses).

        Must be called before any accesses are simulated.
        """
        if self.stats.accesses:
            raise RuntimeError("cannot retime a controller that has run traffic")
        new_config = self.config.with_timings(timings)
        self.__init__(new_config, self.clock)  # rebuild device cleanly
