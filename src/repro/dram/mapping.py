"""Physical-address <-> DRAM coordinate mapping.

ANVIL "was pre-configured using a reverse engineered physical address to
DRAM row and bank mapping scheme" and assumes "sequentially numbered rows
are physically adjacent" (paper Section 3.3).  This module *is* that
scheme for the simulated controller: low bits address the column within a
row, then bank, then rank, then row — a standard open-page-friendly layout
for a single-channel controller.

Layout for the default 4 GB module (64 B cache lines):

    bit 0 ........ 12 | 13 .. 15 | 16   | 17 ............ 31
    column (8 KB row) | bank (8) | rank | row (32768/bank)

An optional XOR bank hash (``row_low ^ bank``) models controllers that
permute banks to spread row-conflict traffic.
"""

from __future__ import annotations

from typing import NamedTuple

from ..errors import AddressError
from ..units import log2_exact
from .config import DramConfig


class DramCoord(NamedTuple):
    """A decoded DRAM location."""

    rank: int
    bank: int
    row: int
    col: int

    @property
    def bank_key(self) -> tuple[int, int]:
        """Hashable (rank, bank) pair identifying a physical bank."""
        return (self.rank, self.bank)


class AddressMapping:
    """Bidirectional physical-address/DRAM-coordinate translation."""

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self._col_bits = log2_exact(config.row_bytes)
        self._bank_bits = log2_exact(config.banks_per_rank)
        self._rank_bits = log2_exact(config.ranks)
        self._row_bits = log2_exact(config.rows_per_bank)
        self._bank_shift = self._col_bits
        self._rank_shift = self._bank_shift + self._bank_bits
        self._row_shift = self._rank_shift + self._rank_bits
        self.capacity = config.capacity_bytes

    # -- decode ---------------------------------------------------------------

    def decode(self, paddr: int) -> DramCoord:
        """Translate a physical address to (rank, bank, row, col)."""
        if not 0 <= paddr < self.capacity:
            raise AddressError(
                f"physical address {paddr:#x} outside module ({self.capacity:#x})"
            )
        col = paddr & (self.config.row_bytes - 1)
        bank = (paddr >> self._bank_shift) & (self.config.banks_per_rank - 1)
        rank = (paddr >> self._rank_shift) & (self.config.ranks - 1)
        row = (paddr >> self._row_shift) & (self.config.rows_per_bank - 1)
        if self.config.xor_bank_hash:
            bank ^= row & (self.config.banks_per_rank - 1)
        return DramCoord(rank=rank, bank=bank, row=row, col=col)

    # -- encode ---------------------------------------------------------------

    def encode(self, coord: DramCoord) -> int:
        """Translate DRAM coordinates back to a physical address."""
        rank, bank, row, col = coord
        if not 0 <= row < self.config.rows_per_bank:
            raise AddressError(f"row {row} out of range")
        if not 0 <= bank < self.config.banks_per_rank:
            raise AddressError(f"bank {bank} out of range")
        if not 0 <= rank < self.config.ranks:
            raise AddressError(f"rank {rank} out of range")
        if not 0 <= col < self.config.row_bytes:
            raise AddressError(f"column {col} out of range")
        if self.config.xor_bank_hash:
            bank ^= row & (self.config.banks_per_rank - 1)
        return (
            (row << self._row_shift)
            | (rank << self._rank_shift)
            | (bank << self._bank_shift)
            | col
        )

    # -- convenience ----------------------------------------------------------

    def row_of(self, paddr: int) -> int:
        return self.decode(paddr).row

    def same_bank(self, paddr_a: int, paddr_b: int) -> bool:
        a, b = self.decode(paddr_a), self.decode(paddr_b)
        return a.bank_key == b.bank_key

    def neighbors(self, coord: DramCoord, radius: int = 1) -> list[DramCoord]:
        """Rows within ``radius`` of ``coord`` in the same bank, in
        physical-adjacency order (assuming sequential rows are adjacent)."""
        rows = []
        for delta in range(-radius, radius + 1):
            if delta == 0:
                continue
            row = coord.row + delta
            if 0 <= row < self.config.rows_per_bank:
                rows.append(
                    DramCoord(rank=coord.rank, bank=coord.bank, row=row, col=0)
                )
        return rows

    def address_in_row(self, rank: int, bank: int, row: int, col: int = 0) -> int:
        """A physical address inside the given row (column ``col``)."""
        return self.encode(DramCoord(rank=rank, bank=bank, row=row, col=col))

    def global_row_id(self, coord: DramCoord) -> int:
        """Dense per-module row index used by the disturbance tracker."""
        bank_index = coord.rank * self.config.banks_per_rank + coord.bank
        return bank_index * self.config.rows_per_bank + coord.row
