"""The DRAM device: banks, row buffers, cells, and stored data.

The device models exactly what rowhammer manipulates:

- per-bank **row buffers** (open-page policy): an access to the open row is
  a row hit and does *not* activate — which is why "a rowhammer attack
  involves repeatedly accessing at least two rows within the same bank —
  otherwise the row buffer would prevent the rowhammering" (Section 3.1);
- **activations** deposit disturbance units on neighbouring rows and
  restore the activated row's own charge;
- **data** is stored sparsely (64-bit words); reads see any bit flips that
  occurred since the word was last written.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AddressError
from ..units import Clock
from .config import DramConfig
from .disturbance import BitFlip, CellPopulation, DisturbanceTracker
from .mapping import AddressMapping, DramCoord
from .refresh import RefreshEngine

#: Attacker-friendly default contents: all ones, so flips are 1 -> 0.
DEFAULT_FILL_WORD = 0xFFFFFFFFFFFFFFFF


@dataclass
class DeviceStats:
    """Aggregate activity counters."""

    accesses: int = 0
    row_hits: int = 0
    activations: int = 0
    refreshes_issued: int = 0  # explicit row refreshes (selective/TRR/PARA)
    activations_per_bank: dict = field(default_factory=dict)


@dataclass(slots=True)
class RowAccess:
    """Outcome of one device access."""

    coord: DramCoord
    row_hit: bool
    activated: bool
    latency_cycles: int
    new_flips: tuple[BitFlip, ...] = ()


class DramDevice:
    """One DRAM module: geometry, banks, cells, disturbance state, data."""

    def __init__(self, config: DramConfig | None = None, clock: Clock | None = None):
        self.config = config or DramConfig()
        self.clock = clock or Clock()
        self.mapping = AddressMapping(self.config)
        self.cells = CellPopulation(
            self.config.disturbance, row_bits=self.config.row_bytes * 8
        )
        self.tracker = DisturbanceTracker(self.cells, self.config.disturbance)
        self.refresh_engine = RefreshEngine(
            self.config.timings, self.clock, self.config.total_rows
        )
        self.stats = DeviceStats()
        # Open row per bank, indexed by dense bank id; None = precharged.
        self._open_rows: list[int | None] = [None] * self.config.total_banks
        # Sparse data: word-aligned paddr -> (value, row flip count at write).
        self._words: dict[int, tuple[int, int]] = {}
        self._row_flips: dict[int, list[BitFlip]] = {}
        self._timings_cycles = (
            self.config.timings.row_hit_cycles(self.clock),
            self.config.timings.row_closed_cycles(self.clock),
            self.config.timings.row_conflict_cycles(self.clock),
        )
        self._banks_per_rank = self.config.banks_per_rank
        self._rows_per_bank = self.config.rows_per_bank

    # -- identifiers -----------------------------------------------------------

    def bank_id(self, coord: DramCoord) -> int:
        return coord.rank * self._banks_per_rank + coord.bank

    def row_id(self, coord: DramCoord) -> int:
        return self.bank_id(coord) * self.config.rows_per_bank + coord.row

    def coord_of_row_id(self, row_id: int) -> DramCoord:
        bank_index, row = divmod(row_id, self.config.rows_per_bank)
        rank, bank = divmod(bank_index, self.config.banks_per_rank)
        return DramCoord(rank=rank, bank=bank, row=row, col=0)

    # -- the access path ---------------------------------------------------------

    def access(self, coord: DramCoord, time_cycles: int) -> RowAccess:
        """Perform a column access, activating the row if needed."""
        bank = self.bank_id(coord)
        open_row = self._open_rows[bank]
        hit_cyc, closed_cyc, conflict_cyc = self._timings_cycles
        if open_row == coord.row:
            self.stats.accesses += 1
            self.stats.row_hits += 1
            return RowAccess(
                coord=coord, row_hit=True, activated=False, latency_cycles=hit_cyc
            )
        latency = closed_cyc if open_row is None else conflict_cyc
        self._open_rows[bank] = coord.row
        flips = self._activate(coord, time_cycles)
        self.stats.accesses += 1
        self.stats.activations += 1
        per_bank = self.stats.activations_per_bank
        per_bank[bank] = per_bank.get(bank, 0) + 1
        return RowAccess(
            coord=coord,
            row_hit=False,
            activated=True,
            latency_cycles=latency,
            new_flips=tuple(flips),
        )

    def access_miss_fast(
        self, coord: DramCoord, bank: int, time_cycles: int
    ) -> tuple[int, int]:
        """The row-buffer-miss arm of :meth:`access` with *caller-deferred
        statistics* and no per-access allocations.

        Returns ``(latency_cycles, new_flip_count)``.  Used only by the
        fast-path engine (:mod:`repro.sim.fastpath`), which has already
        ruled out a row hit and takes over the ``accesses`` /
        ``activations`` / per-bank stats bookkeeping; the disturbance
        arithmetic below is the same statement sequence as
        :meth:`_activate` + :meth:`~repro.dram.disturbance.DisturbanceTracker.disturb`
        (same float accumulation order, same flip machinery via
        ``emit_flips``), so device state stays bit-identical to the
        reference path.  In the steady state it allocates nothing: no
        :class:`RowAccess`, no flip list, no per-victim method calls.
        """
        open_row = self._open_rows[bank]
        latency = self._timings_cycles[1] if open_row is None else self._timings_cycles[2]
        row = coord.row
        self._open_rows[bank] = row

        engine = self.refresh_engine
        retention = engine.retention_cycles
        total_rows = engine.total_rows
        phase_cache = engine._phase_cache
        rows_per_bank = self._rows_per_bank
        row_id = bank * rows_per_bank + row
        tracker = self.tracker
        state = tracker._state

        # Aggressor restore (tracker.on_refresh with the epoch inlined).
        phase = phase_cache.get(row_id)
        if phase is None:
            phase = (row_id * retention) // total_rows
            phase_cache[row_id] = phase
        shifted = time_cycles - phase
        epoch = 0 if shifted < 0 else 1 + shifted // retention
        entry = state.get(row_id)
        if entry is None:
            state[row_id] = [0.0, epoch, 0]
        else:
            entry[0] = 0.0
            entry[1] = epoch

        # Neighbour disturbance (tracker.disturb inlined per victim).
        disturbance = self.config.disturbance
        max_flips = disturbance.max_flips_per_row
        threshold_get = self.cells._threshold_cache.get
        flips_n = 0
        distance = 0
        for weight in disturbance.neighbor_weights:
            distance += 1
            for delta in (-distance, distance):
                victim_row = row + delta
                if not 0 <= victim_row < rows_per_bank:
                    continue
                victim_id = row_id + delta
                phase = phase_cache.get(victim_id)
                if phase is None:
                    phase = (victim_id * retention) // total_rows
                    phase_cache[victim_id] = phase
                shifted = time_cycles - phase
                vepoch = 0 if shifted < 0 else 1 + shifted // retention
                entry = state.get(victim_id)
                if entry is None:
                    entry = [weight, vepoch, 0]
                    state[victim_id] = entry
                elif entry[1] != vepoch:
                    entry[0] = weight
                    entry[1] = vepoch
                else:
                    entry[0] += weight
                tracker.total_units_deposited += weight
                if entry[2] < max_flips:
                    threshold = threshold_get(victim_id)
                    if threshold is None:
                        threshold = self.cells.threshold_for(victim_id)
                    if entry[0] >= threshold:
                        flips = tracker.emit_flips(victim_id, entry, time_cycles)
                        if flips:
                            row_flips = self._row_flips
                            bucket = row_flips.get(victim_id)
                            if bucket is None:
                                row_flips[victim_id] = list(flips)
                            else:
                                bucket.extend(flips)
                            flips_n += len(flips)
        return latency, flips_n

    def replay_activation(self, row_id: int, row: int, time_cycles: int) -> None:
        """Disturbance effects of one activation at an exact timestamp,
        without touching row buffers, latency, or device stats.

        Used by the turbo engine (:mod:`repro.sim.turbo`) to replay the
        activations of an analytically skipped workload lap: the open-row
        state is a verified fixed point across the lap and the aggregate
        stats advance from recorded deltas, so only the disturbance side
        (aggressor restore + neighbour deposits + flip emission) needs to
        execute.  The statement sequence below mirrors
        :meth:`access_miss_fast` exactly — same float accumulation order,
        same epoch arithmetic, same flip machinery — so skipped and
        interpreted laps leave bit-identical disturbance state and flips.
        """
        engine = self.refresh_engine
        retention = engine.retention_cycles
        total_rows = engine.total_rows
        phase_cache = engine._phase_cache
        rows_per_bank = self._rows_per_bank
        tracker = self.tracker
        state = tracker._state

        # Aggressor restore (tracker.on_refresh with the epoch inlined).
        phase = phase_cache.get(row_id)
        if phase is None:
            phase = (row_id * retention) // total_rows
            phase_cache[row_id] = phase
        shifted = time_cycles - phase
        epoch = 0 if shifted < 0 else 1 + shifted // retention
        entry = state.get(row_id)
        if entry is None:
            state[row_id] = [0.0, epoch, 0]
        else:
            entry[0] = 0.0
            entry[1] = epoch

        # Neighbour disturbance (tracker.disturb inlined per victim).
        disturbance = self.config.disturbance
        max_flips = disturbance.max_flips_per_row
        threshold_get = self.cells._threshold_cache.get
        distance = 0
        for weight in disturbance.neighbor_weights:
            distance += 1
            for delta in (-distance, distance):
                victim_row = row + delta
                if not 0 <= victim_row < rows_per_bank:
                    continue
                victim_id = row_id + delta
                phase = phase_cache.get(victim_id)
                if phase is None:
                    phase = (victim_id * retention) // total_rows
                    phase_cache[victim_id] = phase
                shifted = time_cycles - phase
                vepoch = 0 if shifted < 0 else 1 + shifted // retention
                entry = state.get(victim_id)
                if entry is None:
                    entry = [weight, vepoch, 0]
                    state[victim_id] = entry
                elif entry[1] != vepoch:
                    entry[0] = weight
                    entry[1] = vepoch
                else:
                    entry[0] += weight
                tracker.total_units_deposited += weight
                if entry[2] < max_flips:
                    threshold = threshold_get(victim_id)
                    if threshold is None:
                        threshold = self.cells.threshold_for(victim_id)
                    if entry[0] >= threshold:
                        flips = tracker.emit_flips(victim_id, entry, time_cycles)
                        if flips:
                            row_flips = self._row_flips
                            bucket = row_flips.get(victim_id)
                            if bucket is None:
                                row_flips[victim_id] = list(flips)
                            else:
                                bucket.extend(flips)

    def replay_activations(self, row_ids, rows, times) -> None:
        """Batched :meth:`replay_activation` over a whole skipped batch.

        Semantically identical — same statement order per activation,
        same float accumulation order, same dict insertion orders, so
        disturbance state and flips stay bit-for-bit equal to replaying
        one activation at a time — but the per-activation overhead is
        amortised across the batch:

        - every device/tracker attribute is hoisted into a local once
          per batch instead of once per activation;
        - the neighbour fanout (bounds-checked ``(victim_id, weight)``
          pairs) is computed once per distinct aggressor row, not per
          activation — the hammer loop reactivates the same two rows
          hundreds of thousands of times;
        - the retention-epoch division is memoised per row with its
          validity window ``[lo, hi)``: consecutive activations of a row
          almost always land in the same epoch, so the ``//`` runs only
          on a window crossing;
        - the deposit check compares against the victim's *next-flip*
          threshold (``flip_threshold(row, flips_done)``) instead of its
          first-bit threshold, memoised until a flip is emitted — which
          skips the no-op ``emit_flips`` calls the scalar path makes once
          a row has flipped but not yet reached its next, higher
          threshold.  ``emit_flips`` below the next-flip threshold
          mutates nothing, so the elision is observationally identical.

        ``times`` must be non-decreasing *per row* in replay order (the
        turbo engine's schedules are globally non-decreasing), which the
        epoch memo's two-sided window check also tolerates violating —
        it recomputes whenever ``t`` leaves the cached window.
        """
        engine = self.refresh_engine
        retention = engine.retention_cycles
        total_rows = engine.total_rows
        phase_cache = engine._phase_cache
        rows_per_bank = self._rows_per_bank
        tracker = self.tracker
        state = tracker._state
        disturbance = self.config.disturbance
        max_flips = disturbance.max_flips_per_row
        neighbor_weights = disturbance.neighbor_weights
        flip_threshold = self.cells.flip_threshold
        emit_flips = tracker.emit_flips
        row_flips = self._row_flips
        state_get = state.get
        units = tracker.total_units_deposited
        epochs: dict[int, list[int]] = {}
        fanout: dict[int, tuple[tuple[int, float], ...]] = {}
        next_thr: dict[int, float] = {}
        inf = float("inf")

        for row_id, row, time_cycles in zip(row_ids, rows, times):
            # Aggressor restore (epoch via the memoised window).
            memo = epochs.get(row_id)
            if memo is not None and memo[1] <= time_cycles < memo[2]:
                epoch = memo[0]
            else:
                phase = phase_cache.get(row_id)
                if phase is None:
                    phase = (row_id * retention) // total_rows
                    phase_cache[row_id] = phase
                shifted = time_cycles - phase
                if shifted < 0:
                    epoch = 0
                    memo = [0, 0, phase]
                else:
                    epoch = 1 + shifted // retention
                    lo = phase + (epoch - 1) * retention
                    memo = [epoch, lo, lo + retention]
                epochs[row_id] = memo
            entry = state_get(row_id)
            if entry is None:
                state[row_id] = [0.0, epoch, 0]
            else:
                entry[0] = 0.0
                entry[1] = epoch

            # Neighbour disturbance over the cached fanout.
            victims = fanout.get(row_id)
            if victims is None:
                pairs = []
                distance = 0
                for weight in neighbor_weights:
                    distance += 1
                    for delta in (-distance, distance):
                        if 0 <= row + delta < rows_per_bank:
                            pairs.append((row_id + delta, weight))
                victims = tuple(pairs)
                fanout[row_id] = victims
            for victim_id, weight in victims:
                memo = epochs.get(victim_id)
                if memo is not None and memo[1] <= time_cycles < memo[2]:
                    vepoch = memo[0]
                else:
                    phase = phase_cache.get(victim_id)
                    if phase is None:
                        phase = (victim_id * retention) // total_rows
                        phase_cache[victim_id] = phase
                    shifted = time_cycles - phase
                    if shifted < 0:
                        vepoch = 0
                        memo = [0, 0, phase]
                    else:
                        vepoch = 1 + shifted // retention
                        lo = phase + (vepoch - 1) * retention
                        memo = [vepoch, lo, lo + retention]
                    epochs[victim_id] = memo
                entry = state_get(victim_id)
                if entry is None:
                    entry = [weight, vepoch, 0]
                    state[victim_id] = entry
                elif entry[1] != vepoch:
                    entry[0] = weight
                    entry[1] = vepoch
                else:
                    entry[0] += weight
                units += weight
                threshold = next_thr.get(victim_id)
                if threshold is None:
                    threshold = (flip_threshold(victim_id, entry[2])
                                 if entry[2] < max_flips else inf)
                    next_thr[victim_id] = threshold
                if entry[0] >= threshold:
                    flips = emit_flips(victim_id, entry, time_cycles)
                    next_thr[victim_id] = (
                        flip_threshold(victim_id, entry[2])
                        if entry[2] < max_flips else inf)
                    if flips:
                        bucket = row_flips.get(victim_id)
                        if bucket is None:
                            row_flips[victim_id] = list(flips)
                        else:
                            bucket.extend(flips)
        # Accumulated in replay order starting from the tracker's current
        # value, so the float result is bit-identical to per-victim ``+=``.
        tracker.total_units_deposited = units

    def _activate(self, coord: DramCoord, time_cycles: int) -> list[BitFlip]:
        """Row activation: restore this row, disturb its neighbours."""
        engine = self.refresh_engine
        epoch = engine.epoch
        disturb = self.tracker.disturb
        row_id = self.row_id(coord)
        self.tracker.on_refresh(row_id, epoch(row_id, time_cycles))
        new_flips: list[BitFlip] = []
        row = coord.row
        rows_per_bank = self._rows_per_bank
        for distance, weight in enumerate(
            self.config.disturbance.neighbor_weights, start=1
        ):
            for delta in (-distance, distance):
                victim_row = row + delta
                if not 0 <= victim_row < rows_per_bank:
                    continue
                victim_id = row_id + delta
                flips = disturb(
                    victim_id, weight, epoch(victim_id, time_cycles), time_cycles
                )
                if flips:
                    for flip in flips:
                        self._row_flips.setdefault(victim_id, []).append(flip)
                    new_flips.extend(flips)
        return new_flips

    def refresh_row(self, coord: DramCoord, time_cycles: int) -> int:
        """Explicitly refresh one row via a read (ANVIL's selective refresh,
        TRR, PARA).  Returns the latency of the underlying access."""
        outcome = self.access(coord, time_cycles)
        # access() already restored the row if it activated; if the row was
        # open, its charge is in the row buffer and is restored on closure,
        # so clear the accumulator explicitly.
        if outcome.row_hit:
            row_id = self.row_id(coord)
            self.tracker.on_refresh(
                row_id, self.refresh_engine.epoch(row_id, time_cycles)
            )
        self.stats.refreshes_issued += 1
        return outcome.latency_cycles

    def open_row(self, rank: int, bank: int) -> int | None:
        """The currently open row in a bank (diagnostics/tests)."""
        return self._open_rows[rank * self.config.banks_per_rank + bank]

    # -- data ---------------------------------------------------------------------

    @staticmethod
    def _word_addr(paddr: int) -> int:
        return paddr & ~0x7

    def write_word(self, paddr: int, value: int) -> None:
        """Store a 64-bit word; rewriting a word heals prior flips in it."""
        if not 0 <= value < 1 << 64:
            raise AddressError("write_word takes a 64-bit value")
        word = self._word_addr(paddr)
        row_id = self.row_id(self.mapping.decode(word))
        seen = len(self._row_flips.get(row_id, ()))
        self._words[word] = (value, seen)

    def read_word(self, paddr: int) -> int:
        """Read a 64-bit word, applying flips newer than the last write."""
        word = self._word_addr(paddr)
        coord = self.mapping.decode(word)
        row_id = self.row_id(coord)
        stored = self._words.get(word)
        if stored is None:
            value, seen = DEFAULT_FILL_WORD, 0
        else:
            value, seen = stored
        flips = self._row_flips.get(row_id)
        if not flips:
            return value
        word_bit_base = coord.col * 8
        for flip in flips[seen:]:
            offset = flip.bit_offset - word_bit_base
            if 0 <= offset < 64:
                value ^= 1 << offset
        return value

    # -- flip queries ----------------------------------------------------------------

    def flips(self) -> list[BitFlip]:
        return list(self.tracker.flips)

    def flips_in_row(self, coord: DramCoord) -> list[BitFlip]:
        return list(self._row_flips.get(self.row_id(coord), ()))

    def flip_count(self) -> int:
        return self.tracker.flip_count()

    def weakest_rows_in_bank(self, rank: int, bank: int, count: int = 1) -> list[int]:
        """Row numbers (within the bank) with the lowest flip thresholds —
        what an attacker's templating pass would target."""
        base = (rank * self.config.banks_per_rank + bank) * self.config.rows_per_bank
        # Skip the bank-edge rows so both neighbours exist.
        ids = range(base + 1, base + self.config.rows_per_bank - 1)
        weakest = self.cells.weakest_rows(ids, count)
        return [row_id - base for row_id in weakest]

    def row_threshold(self, coord: DramCoord) -> float:
        """Disturbance units needed to flip the first bit of this row."""
        return self.cells.threshold_for(self.row_id(coord))
