"""DRAM substrate: geometry, address mapping, banks with row buffers,
auto-refresh, the rowhammer disturbance model, and the memory controller.

The paper's experiments run against a 4 GB DDR3 module on a Sandy Bridge
laptop.  :func:`repro.dram.config.ddr3_4gb` builds the equivalent simulated
module; :class:`repro.dram.controller.MemoryController` is the only entry
point the rest of the system uses.
"""

from .config import DisturbanceConfig, DramConfig, DramTimings, ddr3_4gb
from .mapping import AddressMapping, DramCoord
from .device import DramDevice, BitFlip
from .controller import DramAccess, MemoryController, ActivationObserver
from .power import DramPowerConfig, DramPowerModel, PowerBreakdown
from .refresh import RefreshEngine

__all__ = [
    "ActivationObserver",
    "AddressMapping",
    "BitFlip",
    "DisturbanceConfig",
    "DramAccess",
    "DramConfig",
    "DramCoord",
    "DramDevice",
    "DramPowerConfig",
    "DramPowerModel",
    "PowerBreakdown",
    "DramTimings",
    "MemoryController",
    "RefreshEngine",
    "ddr3_4gb",
]
