"""Unit helpers: sizes, times, and cycle conversion.

The whole simulator keeps time in integer *CPU cycles*.  Converting to and
from wall-clock units requires a frequency, so the conversion helpers live
in :class:`Clock`, which every :class:`repro.sim.machine.Machine` owns.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ConfigError

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


@dataclass(frozen=True)
class Clock:
    """Converts between cycles and wall-clock time at a fixed frequency.

    The paper's test machine is an Intel i5-2540M at a nominal 2.6 GHz
    (Section 2.2), which is the default here.
    """

    freq_hz: float = 2.6e9

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise ConfigError(f"frequency must be positive, got {self.freq_hz}")

    def cycles_from_ns(self, ns: float) -> int:
        return int(round(ns * self.freq_hz / NS_PER_S))

    def cycles_from_us(self, us: float) -> int:
        return self.cycles_from_ns(us * 1_000)

    def cycles_from_ms(self, ms: float) -> int:
        return self.cycles_from_ns(ms * NS_PER_MS)

    def cycles_from_s(self, s: float) -> int:
        return self.cycles_from_ns(s * NS_PER_S)

    def ns_from_cycles(self, cycles: int) -> float:
        return cycles * NS_PER_S / self.freq_hz

    def us_from_cycles(self, cycles: int) -> float:
        return self.ns_from_cycles(cycles) / 1_000

    def ms_from_cycles(self, cycles: int) -> float:
        return self.ns_from_cycles(cycles) / NS_PER_MS

    def s_from_cycles(self, cycles: int) -> float:
        return self.ns_from_cycles(cycles) / NS_PER_S


def is_power_of_two(n: int) -> bool:
    """True if ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2_exact(n: int) -> int:
    """Return log2(n) for an exact power of two, else raise ConfigError."""
    if not is_power_of_two(n):
        raise ConfigError(f"{n} is not a power of two")
    return n.bit_length() - 1
