"""The inclusive three-level cache hierarchy.

Key behaviours the attacks and ANVIL rely on:

- **Inclusive LLC** (paper Section 2.2): "it is enough to evict a word from
  the last-level cache to bypass the whole cache hierarchy", so an LLC
  eviction back-invalidates the same line from L1 and L2.
- **CLFLUSH** removes a line from every level.
- Latencies are *cumulative load-to-use* values per serving level (L1 hit
  4, L2 hit 12, LLC hit 29 cycles by default), matching the Intel manual
  numbers the paper quotes; an LLC miss costs the LLC lookup plus a small
  controller overhead here, and the memory system adds the DRAM device
  time on top.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cache import Cache
from .config import HierarchyConfig

#: Symbolic names for where an access was served from.
L1, L2, L3, DRAM = "L1", "L2", "L3", "DRAM"


@dataclass(slots=True)
class HierarchyResult:
    """Outcome of one load/store walking the hierarchy.

    ``latency_cycles`` covers the cache portion only; if ``llc_miss`` the
    memory system adds DRAM latency on top.

    Cache-hit results are interned per level (hits dominate most op
    streams, and allocating a record per hit is pure overhead): treat
    instances returned by :meth:`CacheHierarchy.access` as read-only.
    """

    level: str
    latency_cycles: int
    llc_miss: bool
    llc_evicted_line: int | None = None


class CacheHierarchy:
    """L1 → L2 → inclusive LLC, physically indexed throughout."""

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config or HierarchyConfig()
        self.l1 = Cache(self.config.l1)
        self.l2 = Cache(self.config.l2)
        self.llc = Cache(self.config.llc)
        #: (L1, L2, L3) hit latencies and the cache-side cost of an LLC
        #: miss, precomputed for the fast-path execution engine.
        self.hit_latencies = (
            self.config.l1.latency_cycles,
            self.config.l2.latency_cycles,
            self.config.llc.latency_cycles,
        )
        self.miss_latency = (
            self.config.llc.latency_cycles + self.config.miss_overhead_cycles
        )
        # Interned hit results: the allocation-free cache-hit path.
        self._hit_results = (
            HierarchyResult(level=L1, latency_cycles=self.hit_latencies[0], llc_miss=False),
            HierarchyResult(level=L2, latency_cycles=self.hit_latencies[1], llc_miss=False),
            HierarchyResult(level=L3, latency_cycles=self.hit_latencies[2], llc_miss=False),
        )

    def access(self, paddr: int, is_store: bool = False) -> HierarchyResult:
        """Perform a load or store at physical address ``paddr``.

        Stores are treated as write-allocate, so residency behaviour is
        identical to loads; ``is_store`` is kept in the signature because
        the PMU facade distinguishes load and store events.
        """
        del is_store  # residency behaviour is identical
        hit, _ = self.l1.access_fill(paddr)
        if hit:
            return self._hit_results[0]

        # The L1 miss already installed the line there (write-allocate);
        # the same applies at each level below.
        hit, _ = self.l2.access_fill(paddr)
        if hit:
            return self._hit_results[1]

        hit, evicted_line = self.llc.access_fill(paddr)
        if hit:
            return self._hit_results[2]

        # LLC miss: enforce inclusion on the LLC eviction.
        if evicted_line is not None:
            self.l2.invalidate_line(evicted_line)
            self.l1.invalidate_line(evicted_line)
        return HierarchyResult(
            level=DRAM,
            latency_cycles=self.miss_latency,
            llc_miss=True,
            llc_evicted_line=evicted_line,
        )

    def clflush(self, paddr: int) -> int:
        """Flush the line at ``paddr`` from all levels.

        Returns the instruction cost in cycles.  Whether CLFLUSH is
        *permitted* is the memory system's concern (sandbox policy).
        """
        self.l1.invalidate(paddr)
        self.l2.invalidate(paddr)
        self.llc.invalidate(paddr)
        return self.config.clflush_cycles

    def is_cached(self, paddr: int) -> bool:
        """True if the line is resident anywhere in the hierarchy."""
        return self.llc.probe(paddr) or self.l2.probe(paddr) or self.l1.probe(paddr)

    def flush_all(self) -> None:
        """Empty all levels (cold-start an experiment)."""
        self.l1.flush_all()
        self.l2.flush_all()
        self.llc.flush_all()
