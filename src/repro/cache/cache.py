"""A single set-associative, physically indexed cache level.

The cache tracks tags only — data movement is modelled elsewhere (the DRAM
device holds contents).  Lines are identified by their *line address*
(physical address >> line_bits).  The cache is write-allocate,
write-back-agnostic: stores and loads are treated identically for residency
purposes, which is all that cache-timing attacks and the PMU observe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import CacheConfig
from .replacement import ReplacementPolicy, make_policy
from .slicing import slice_of


@dataclass
class CacheStats:
    """Running hit/miss/eviction counters for one cache level."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class _CacheSet:
    """One set: parallel arrays of tags plus a replacement-policy instance."""

    __slots__ = ("tags", "policy", "lookup")

    def __init__(self, ways: int, policy: ReplacementPolicy) -> None:
        self.tags: list[int | None] = [None] * ways
        self.policy = policy
        self.lookup: dict[int, int] = {}  # tag -> way


@dataclass
class FillResult:
    """Outcome of installing a line: the evicted line address, if any."""

    evicted_line: int | None = None


#: Interned :meth:`Cache.access_fill` outcomes.  Hits and clean fills are by
#: far the common cases; returning shared tuples keeps the hot access path
#: allocation-free (only an eviction builds a fresh result tuple).
_HIT: tuple[bool, int | None] = (True, None)
_MISS_CLEAN: tuple[bool, int | None] = (False, None)


class Cache:
    """A set-associative cache level, possibly sliced (for the LLC)."""

    #: Upper bound on the slice-index memo.  Address-sweeping workloads
    #: touch an unbounded set of distinct lines; without a cap the memo
    #: grows without limit.  When full it is simply cleared — entries are
    #: pure functions of the line address, so dropping them only costs a
    #: recomputation.
    INDEX_MEMO_MAX = 1 << 16

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        self._line_bits = config.line_bits
        self._set_mask = config.sets_per_slice - 1
        self._n_slices = config.slices
        # Slice hashing is the expensive part of indexing; memoise the
        # global set index per line address (sliced caches only).
        self._index_memo: dict[int, int] = {}
        self._sets: list[_CacheSet] = [
            _CacheSet(
                config.ways,
                make_policy(config.policy, config.ways, seed=config.policy_seed + i),
            )
            for i in range(config.sets_per_slice * config.slices)
        ]

    # -- address arithmetic -------------------------------------------------

    def line_addr(self, paddr: int) -> int:
        return paddr >> self._line_bits

    def set_index(self, paddr: int) -> int:
        """Global set index (slice-local index + slice offset)."""
        line = paddr >> self._line_bits
        if self._n_slices == 1:
            return line & self._set_mask
        index = self._index_memo.get(line)
        if index is None:
            s = slice_of(paddr, self._n_slices)
            index = s * (self._set_mask + 1) + (line & self._set_mask)
            if len(self._index_memo) >= self.INDEX_MEMO_MAX:
                self._index_memo.clear()
            self._index_memo[line] = index
        return index

    def slice_index(self, paddr: int) -> int:
        return slice_of(paddr, self._n_slices)

    def same_set(self, paddr_a: int, paddr_b: int) -> bool:
        """True if the two physical addresses contend for the same set
        (including the slice hash)."""
        return self.set_index(paddr_a) == self.set_index(paddr_b)

    # -- core operations ----------------------------------------------------

    def probe(self, paddr: int) -> bool:
        """Non-destructive residency check (no replacement-state update)."""
        cset = self._sets[self.set_index(paddr)]
        return self.line_addr(paddr) in cset.lookup

    def access(self, paddr: int) -> bool:
        """Look up ``paddr``; on a hit update replacement state and return
        True.  On a miss return False *without* filling — the hierarchy
        decides when and where to fill."""
        cset = self._sets[self.set_index(paddr)]
        way = cset.lookup.get(self.line_addr(paddr))
        if way is not None:
            cset.policy.on_hit(way)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def fill(self, paddr: int) -> FillResult:
        """Install the line for ``paddr``, evicting if the set is full.

        Returns the evicted *line address* (if any) so inclusive
        hierarchies can back-invalidate inner levels.
        """
        cset = self._sets[self.set_index(paddr)]
        line = self.line_addr(paddr)
        if line in cset.lookup:
            # Already present (e.g. racing fill): treat as a touch.
            cset.policy.on_hit(cset.lookup[line])
            return FillResult()
        if len(cset.lookup) < len(cset.tags):
            # Prefer an invalid way.
            for way, tag in enumerate(cset.tags):
                if tag is None:
                    cset.tags[way] = line
                    cset.lookup[line] = way
                    cset.policy.on_fill(way)
                    return FillResult()
        way = cset.policy.victim()
        evicted = cset.tags[way]
        if evicted is not None:
            del cset.lookup[evicted]
            self.stats.evictions += 1
        cset.tags[way] = line
        cset.lookup[line] = way
        cset.policy.on_fill(way)
        return FillResult(evicted_line=evicted)

    def access_fill(self, paddr: int) -> tuple[bool, int | None]:
        """Fused lookup-and-fill for the hierarchy's hot path.

        Returns ``(hit, evicted_line)``: on a hit, replacement state is
        updated and nothing is filled; on a miss, the line is installed
        (write-allocate) and the evicted line address (if any) returned.
        Equivalent to ``access()`` followed by ``fill()`` but with a
        single set lookup.
        """
        cset = self._sets[self.set_index(paddr)]
        line = paddr >> self._line_bits
        lookup = cset.lookup
        way = lookup.get(line)
        if way is not None:
            cset.policy.on_hit(way)
            self.stats.hits += 1
            return _HIT
        self.stats.misses += 1
        tags = cset.tags
        if len(lookup) < len(tags):
            way = tags.index(None)
            tags[way] = line
            lookup[line] = way
            cset.policy.on_fill(way)
            return _MISS_CLEAN
        way = cset.policy.victim()
        evicted = tags[way]
        del lookup[evicted]
        self.stats.evictions += 1
        tags[way] = line
        lookup[line] = way
        cset.policy.on_fill(way)
        return False, evicted

    def invalidate(self, paddr: int) -> bool:
        """Remove the line for ``paddr`` if present.  Returns True if it
        was resident (CLFLUSH, back-invalidation)."""
        cset = self._sets[self.set_index(paddr)]
        line = self.line_addr(paddr)
        way = cset.lookup.pop(line, None)
        if way is None:
            return False
        cset.tags[way] = None
        cset.policy.on_invalidate(way)
        self.stats.invalidations += 1
        return True

    def invalidate_line(self, line: int) -> bool:
        """Invalidate by line address (used for back-invalidation)."""
        return self.invalidate(line << self._line_bits)

    def flush_all(self) -> None:
        """Drop every line (used between experiment phases)."""
        config = self.config
        self._index_memo.clear()
        self._sets = [
            _CacheSet(
                config.ways,
                make_policy(config.policy, config.ways, seed=config.policy_seed + i),
            )
            for i in range(config.sets_per_slice * config.slices)
        ]

    def resident_lines(self) -> list[int]:
        """All line addresses currently cached (diagnostics/tests)."""
        return [tag for cset in self._sets for tag in cset.tags if tag is not None]
