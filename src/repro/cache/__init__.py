"""Cache substrate: replacement policies, set-associative caches, and the
three-level Sandy Bridge-class hierarchy used by the attacks and by ANVIL.

Public entry points:

- :func:`repro.cache.replacement.make_policy` — construct a replacement
  policy by name (``"lru"``, ``"bit-plru"``, ``"nru"``, ``"tree-plru"``,
  ``"random"``, ``"srrip"``).
- :class:`repro.cache.cache.Cache` — one set-associative cache level.
- :class:`repro.cache.hierarchy.CacheHierarchy` — inclusive L1/L2/LLC stack
  with CLFLUSH support and slice-hashed LLC.
"""

from .config import CacheConfig, HierarchyConfig
from .cache import Cache
from .hierarchy import CacheHierarchy, HierarchyResult
from .replacement import (
    BitPlru,
    Nru,
    RandomReplacement,
    ReplacementPolicy,
    Srrip,
    TreePlru,
    TrueLru,
    make_policy,
)

__all__ = [
    "BitPlru",
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "HierarchyConfig",
    "HierarchyResult",
    "Nru",
    "RandomReplacement",
    "ReplacementPolicy",
    "Srrip",
    "TreePlru",
    "TrueLru",
    "make_policy",
]
