"""Cache replacement policies.

The CLFLUSH-free rowhammer attack (paper Section 2.2) works by steering the
last-level cache's replacement state so that exactly the aggressor address
(plus one sacrificial conflict address) misses on every loop iteration.  The
paper reverse-engineers Sandy Bridge and finds it favours *Bit-PLRU*, "which
is similar to the Not Recently Used (NRU) replacement policy".  We implement
Bit-PLRU plus several alternatives so the replacement-policy probe
(:mod:`repro.attacks.policy_probe`) has a candidate library to correlate
against, exactly as the authors "built different cache replacement policy
simulators".

All policies share a tiny interface driven by the owning cache set:

- ``on_hit(way)`` — the line in ``way`` was accessed and hit.
- ``on_fill(way)`` — a new line was just installed into ``way``.
- ``victim()`` — choose the way to evict (all ways valid).
- ``on_invalidate(way)`` — the line was removed (CLFLUSH / back-invalidate).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from ..errors import ConfigError


class ReplacementPolicy(ABC):
    """Replacement state for a single cache set."""

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise ConfigError(f"ways must be positive, got {ways}")
        self.ways = ways

    @abstractmethod
    def on_hit(self, way: int) -> None:
        """Record a hit on ``way``."""

    @abstractmethod
    def on_fill(self, way: int) -> None:
        """Record installation of a new line into ``way``."""

    @abstractmethod
    def victim(self) -> int:
        """Return the way index to evict from a full set."""

    def on_invalidate(self, way: int) -> None:  # noqa: B027 - optional hook
        """Record invalidation of ``way`` (default: no state change)."""

    def reset(self) -> None:
        """Restore the just-constructed state (used by the policy probe)."""
        self.__init__(self.ways)  # type: ignore[misc]

    def state_key(self) -> tuple | None:
        """A hashable canonical form of the replacement state, or None when
        the policy cannot be snapshotted.

        Two policy instances with equal keys make identical decisions for
        any future access sequence — the property the turbo engine
        (:mod:`repro.sim.turbo`) relies on to prove a workload lap is a
        fixed point.  Canonical means behaviour-preserving relabellings
        compare equal (e.g. true-LRU stamps vs. their rank order).
        """
        return None


class TrueLru(ReplacementPolicy):
    """Textbook least-recently-used.

    Implemented with monotonic touch stamps: O(1) on access, O(ways) only
    on victim selection (i.e. on evictions).
    """

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        # Stamp order encodes recency; -1 marks invalidated ways, which
        # are preferred victims.
        self._stamps = list(range(ways))
        self._clock = ways

    def on_hit(self, way: int) -> None:
        self._stamps[way] = self._clock
        self._clock += 1

    def on_fill(self, way: int) -> None:
        self._stamps[way] = self._clock
        self._clock += 1

    def victim(self) -> int:
        stamps = self._stamps
        return stamps.index(min(stamps))

    def on_invalidate(self, way: int) -> None:
        # An invalidated way becomes the preferred victim.
        self._stamps[way] = -1

    def state_key(self) -> tuple:
        # Only the recency *order* matters (victim() takes the minimum,
        # hits move a way to the top), so canonicalise stamps to their
        # rank; -1 (invalidated) ways stay -1 — ties among them are
        # symmetric because victim() breaks them by way index, which the
        # surrounding tag tuple pins down.
        order = sorted(s for s in self._stamps if s >= 0)
        rank = {stamp: i for i, stamp in enumerate(order)}
        return tuple(-1 if s < 0 else rank[s] for s in self._stamps)


class BitPlru(ReplacementPolicy):
    """Bit-PLRU as described in the paper (Section 2.2):

    "each cache line in a set has a single MRU bit.  Every time a cache line
    is accessed, its MRU bit is set.  The least-recently used cache line is
    the line with the lowest index whose MRU bit is cleared.  When the last
    MRU bit is set, the other MRU bits in the set are cleared."
    """

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self.mru = [False] * ways

    def _mark(self, way: int) -> None:
        self.mru[way] = True
        if all(self.mru):
            # Clear every other bit, keep only the just-accessed line MRU.
            self.mru = [False] * self.ways
            self.mru[way] = True

    def on_hit(self, way: int) -> None:
        self._mark(way)

    def on_fill(self, way: int) -> None:
        self._mark(way)

    def victim(self) -> int:
        for way, bit in enumerate(self.mru):
            if not bit:
                return way
        # Unreachable: _mark() never leaves all bits set.
        return 0

    def on_invalidate(self, way: int) -> None:
        self.mru[way] = False

    def state_key(self) -> tuple:
        return tuple(self.mru)


class Nru(ReplacementPolicy):
    """Not-Recently-Used: like Bit-PLRU, but eviction scans from a rotating
    pointer instead of always from way 0, and the accessed line's bit is the
    only one kept on saturation."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self.ref = [False] * ways
        self._hand = 0

    def _mark(self, way: int) -> None:
        self.ref[way] = True
        if all(self.ref):
            self.ref = [False] * self.ways
            self.ref[way] = True

    def on_hit(self, way: int) -> None:
        self._mark(way)

    def on_fill(self, way: int) -> None:
        self._mark(way)

    def victim(self) -> int:
        for offset in range(self.ways):
            way = (self._hand + offset) % self.ways
            if not self.ref[way]:
                self._hand = (way + 1) % self.ways
                return way
        return self._hand

    def on_invalidate(self, way: int) -> None:
        self.ref[way] = False

    def state_key(self) -> tuple:
        return (tuple(self.ref), self._hand)


class TreePlru(ReplacementPolicy):
    """Binary-tree pseudo-LRU (requires a power-of-two way count)."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        if ways & (ways - 1):
            raise ConfigError(f"tree-plru requires power-of-two ways, got {ways}")
        # Internal nodes of a complete binary tree, 1-indexed like a heap.
        self._bits = [False] * ways  # nodes 1 .. ways-1 used

    def _touch(self, way: int) -> None:
        # Walk from root to leaf, pointing each node away from the path.
        node = 1
        span = self.ways
        lo = 0
        while span > 1:
            span //= 2
            go_right = way >= lo + span
            self._bits[node] = not go_right  # point to the *other* side
            node = 2 * node + (1 if go_right else 0)
            if go_right:
                lo += span

    def on_hit(self, way: int) -> None:
        self._touch(way)

    def on_fill(self, way: int) -> None:
        self._touch(way)

    def victim(self) -> int:
        node = 1
        span = self.ways
        lo = 0
        while span > 1:
            span //= 2
            go_right = self._bits[node]
            node = 2 * node + (1 if go_right else 0)
            if go_right:
                lo += span
        return lo

    def state_key(self) -> tuple:
        return tuple(self._bits)


class RandomReplacement(ReplacementPolicy):
    """Uniform random victim selection with a seeded, per-set stream."""

    def __init__(self, ways: int, seed: int = 0) -> None:
        super().__init__(ways)
        self._seed = seed
        self._rng = random.Random(seed)

    def on_hit(self, way: int) -> None:
        pass

    def on_fill(self, way: int) -> None:
        pass

    def victim(self) -> int:
        return self._rng.randrange(self.ways)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def state_key(self) -> tuple:
        # The RNG state is part of the decision state; it is exact and
        # hashable, so a set with no evictions between two snapshots
        # still compares equal (the stream only advances on victim()).
        return self._rng.getstate()


class Srrip(ReplacementPolicy):
    """Static re-reference interval prediction (Jaleel et al., ISCA'10),
    the paper's citation [20] for modern replacement; 2-bit RRPV."""

    MAX_RRPV = 3
    INSERT_RRPV = 2

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self.rrpv = [self.MAX_RRPV] * ways

    def on_hit(self, way: int) -> None:
        self.rrpv[way] = 0

    def on_fill(self, way: int) -> None:
        self.rrpv[way] = self.INSERT_RRPV

    def victim(self) -> int:
        while True:
            for way, value in enumerate(self.rrpv):
                if value == self.MAX_RRPV:
                    return way
            self.rrpv = [value + 1 for value in self.rrpv]

    def on_invalidate(self, way: int) -> None:
        self.rrpv[way] = self.MAX_RRPV

    def state_key(self) -> tuple:
        return tuple(self.rrpv)


_POLICIES = {
    "lru": TrueLru,
    "bit-plru": BitPlru,
    "nru": Nru,
    "tree-plru": TreePlru,
    "random": RandomReplacement,
    "srrip": Srrip,
}


def policy_names() -> list[str]:
    """Names accepted by :func:`make_policy`."""
    return sorted(_POLICIES)


def make_policy(name: str, ways: int, seed: int = 0) -> ReplacementPolicy:
    """Construct a replacement policy by name.

    ``seed`` only affects stochastic policies (currently ``"random"``).
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown replacement policy {name!r}; choose from {policy_names()}"
        ) from None
    if cls is RandomReplacement:
        return cls(ways, seed=seed)
    return cls(ways)
