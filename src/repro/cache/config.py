"""Configuration dataclasses for the cache hierarchy.

Defaults model the paper's test machine, an Intel i5-2540M (Sandy Bridge):
32 KB 8-way L1D, 256 KB 8-way L2, and a 3 MB 12-way inclusive LLC split
into two slices (one per core).  The paper (Section 2.2) reports that bits
6..16 of the physical address select the LLC set and that Sandy Bridge
favours Bit-PLRU replacement in the LLC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..units import KB, MB, is_power_of_two, log2_exact


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level.

    ``latency_cycles`` is the *total* load-to-use latency of a hit served
    by this level (Intel optimization-manual convention: L1 4, L2 12,
    LLC 26..31 cycles) — not an additive per-level increment.
    """

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 64
    latency_cycles: int = 4
    policy: str = "lru"
    slices: int = 1
    policy_seed: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.slices <= 0:
            raise ConfigError(f"{self.name}: sizes/ways/slices must be positive")
        if not is_power_of_two(self.line_bytes):
            raise ConfigError(f"{self.name}: line size must be a power of two")
        if self.size_bytes % (self.ways * self.line_bytes * self.slices):
            raise ConfigError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*line*slices"
            )
        if not is_power_of_two(self.sets_per_slice):
            raise ConfigError(f"{self.name}: set count must be a power of two")

    @property
    def sets_per_slice(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes * self.slices)

    @property
    def line_bits(self) -> int:
        return log2_exact(self.line_bytes)

    @property
    def set_bits(self) -> int:
        return log2_exact(self.sets_per_slice)


def sandy_bridge_l1() -> CacheConfig:
    """32 KB, 8-way, 4-cycle L1 data cache."""
    return CacheConfig(name="L1", size_bytes=32 * KB, ways=8, latency_cycles=4)


def sandy_bridge_l2() -> CacheConfig:
    """256 KB, 8-way, 12-cycle private L2."""
    return CacheConfig(name="L2", size_bytes=256 * KB, ways=8, latency_cycles=12)


def sandy_bridge_llc() -> CacheConfig:
    """3 MB, 12-way, 2-slice inclusive LLC with Bit-PLRU replacement.

    29 cycles is the midpoint of the 26..31-cycle LLC access range the
    paper quotes from the Intel optimization manual [16].
    """
    return CacheConfig(
        name="L3",
        size_bytes=3 * MB,
        ways=12,
        latency_cycles=29,
        policy="bit-plru",
        slices=2,
    )


@dataclass(frozen=True)
class HierarchyConfig:
    """The full three-level hierarchy plus instruction-cost constants."""

    l1: CacheConfig = field(default_factory=sandy_bridge_l1)
    l2: CacheConfig = field(default_factory=sandy_bridge_l2)
    llc: CacheConfig = field(default_factory=sandy_bridge_llc)
    clflush_cycles: int = 24
    mfence_cycles: int = 30
    #: Controller/queueing cycles added to every LLC miss on top of the
    #: LLC lookup and the DRAM device time (calibrates the ~150-cycle
    #: DRAM access the paper quotes in Section 2.2).
    miss_overhead_cycles: int = 10

    def __post_init__(self) -> None:
        if self.l1.line_bytes != self.l2.line_bytes != self.llc.line_bytes:
            raise ConfigError("all cache levels must share a line size")
        if self.clflush_cycles < 0 or self.mfence_cycles < 0:
            raise ConfigError("instruction costs must be non-negative")
        if self.miss_overhead_cycles < 0:
            raise ConfigError("miss overhead must be non-negative")

    @property
    def line_bytes(self) -> int:
        return self.llc.line_bytes
