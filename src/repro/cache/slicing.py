"""LLC slice hashing.

Sandy Bridge LLCs are "organized into slices, with one slice per processor
core" (paper Section 2.2, citing the Intel optimization manual).  The slice
is selected by an undocumented hash of the physical address; Hund et al.
(paper citation [12]) recovered XOR-of-address-bits hash functions for
similar parts.  We implement that family: slice bit *i* is the XOR-parity
of a published bit mask applied to the physical address.

Two addresses conflict in the LLC only if they agree on both the set index
bits *and* the slice hash — exactly the constraint the eviction-set builder
(:mod:`repro.attacks.eviction`) must satisfy.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..units import is_power_of_two

# XOR masks in the style of the reverse-engineered Intel hashes
# (Hund et al., S&P 2013; Maurice et al., RAID 2015).  Mask i gives slice
# address bit i as the parity of (paddr & mask).
_SLICE_BIT_MASKS = (
    0x1B5F575440,
    0x2EB5FAA880,
    0x3CCCC93100,
)


def slice_of(paddr: int, n_slices: int) -> int:
    """Return the LLC slice index for a physical address.

    Raises :class:`ConfigError` unless ``n_slices`` is a power of two no
    greater than ``2 ** len(_SLICE_BIT_MASKS)``.
    """
    if n_slices == 1:
        return 0
    if not is_power_of_two(n_slices):
        raise ConfigError(f"slice count must be a power of two, got {n_slices}")
    bits = n_slices.bit_length() - 1
    if bits > len(_SLICE_BIT_MASKS):
        raise ConfigError(f"at most {2 ** len(_SLICE_BIT_MASKS)} slices supported")
    result = 0
    for i in range(bits):
        parity = (paddr & _SLICE_BIT_MASKS[i]).bit_count() & 1
        result |= parity << i
    return result
