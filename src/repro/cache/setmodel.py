"""Standalone single-set cache model.

The paper's authors reverse-engineered Sandy Bridge's replacement policy by
correlating hardware miss counters "with results from different cache
replacement policy simulators that we built" (Section 2.2).  This class is
that simulator: one cache set driven by a symbolic address stream,
returning the hit/miss outcome of every access.  It is also used to plan
and verify the CLFLUSH-free attack's eviction pattern.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from .replacement import ReplacementPolicy, make_policy


class SetModel:
    """One ``ways``-associative cache set under a chosen policy."""

    def __init__(self, policy: str | ReplacementPolicy, ways: int, seed: int = 0):
        if isinstance(policy, str):
            self.policy = make_policy(policy, ways, seed=seed)
        else:
            self.policy = policy
        self.ways = ways
        self.tags: list[Hashable | None] = [None] * ways
        self._lookup: dict[Hashable, int] = {}

    def access(self, tag: Hashable) -> bool:
        """Access ``tag``; returns True on hit (filling on miss)."""
        way = self._lookup.get(tag)
        if way is not None:
            self.policy.on_hit(way)
            return True
        way = next((w for w, t in enumerate(self.tags) if t is None), None)
        if way is None:
            way = self.policy.victim()
            del self._lookup[self.tags[way]]
        self.tags[way] = tag
        self._lookup[tag] = way
        self.policy.on_fill(way)
        return False

    def run(self, stream: Iterable[Hashable]) -> list[bool]:
        """Hit/miss outcome for each access in ``stream``."""
        return [self.access(tag) for tag in stream]

    def contains(self, tag: Hashable) -> bool:
        return tag in self._lookup


def steady_state_misses(
    policy: str,
    ways: int,
    pattern: Sequence[Hashable],
    iterations: int = 40,
    stable_tail: int = 8,
    seed: int = 0,
) -> tuple[Hashable, ...] | None:
    """Repeat ``pattern`` and return the per-iteration missing tags once
    the miss set is periodic with period one, or None if it never settles.

    This is the planning primitive behind the CLFLUSH-free attack: a good
    pattern settles to exactly the aggressor plus one sacrificial conflict
    address missing per iteration.
    """
    model = SetModel(policy, ways, seed=seed)
    per_iteration: list[tuple[Hashable, ...]] = []
    for _ in range(iterations):
        misses = tuple(tag for tag in pattern if not model.access(tag))
        per_iteration.append(misses)
    tail = per_iteration[-stable_tail:]
    if all(t == tail[0] for t in tail):
        return tail[0]
    return None
