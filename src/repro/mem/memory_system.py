"""The unified memory system: V->P translation, caches, DRAM.

This is the surface the simulated machine executes loads and stores
against.  Each access:

1. translates the virtual address (simple page-table walk; translation
   *cost* is folded into the per-level latencies, but results are memoised
   in a software TLB on :class:`~repro.mem.virtual.VirtualMemory`, which
   the fast-path engine queries directly);
2. walks the inclusive cache hierarchy;
3. on an LLC miss, performs the DRAM access through the memory controller
   (which applies refresh blocking and runs defense observers);
4. reports a :class:`MemoryAccess` record consumed by the PMU and by
   statistics.

The system also enforces machine-wide policy switches used by the
experiments: whether CLFLUSH is permitted (sandbox mitigation) and whether
``/proc/pagemap`` is restricted (kernel mitigation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..cache import CacheHierarchy, HierarchyConfig
from ..dram import DramConfig, DramCoord, MemoryController
from ..errors import ClflushRestrictedError
from ..units import Clock
from .pagemap import Pagemap
from .virtual import VirtualMemory, VmConfig


@dataclass(frozen=True)
class MemorySystemConfig:
    """Top-level memory-system wiring."""

    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    page_placement: str = "scrambled"
    vm_seed: int = 42
    clflush_allowed: bool = True
    pagemap_restricted: bool = False


@dataclass(slots=True)
class MemoryAccess:
    """Everything observable about one load or store."""

    vaddr: int
    paddr: int
    is_store: bool
    level: str  # "L1" / "L2" / "L3" / "DRAM"
    latency_cycles: int
    llc_miss: bool
    coord: DramCoord | None = None  # set when the access reached DRAM
    activated: bool = False
    new_flip_count: int = 0


Listener = Callable[[MemoryAccess], None]


class MemorySystem:
    """Caches + controller + virtual memory, with access listeners."""

    def __init__(self, config: MemorySystemConfig | None = None, clock: Clock | None = None):
        self.config = config or MemorySystemConfig()
        self.clock = clock or Clock()
        self.hierarchy = CacheHierarchy(self.config.hierarchy)
        self.controller = MemoryController(self.config.dram, self.clock)
        capacity = self.controller.config.capacity_bytes
        self.vm = VirtualMemory(
            VmConfig(
                phys_bytes=capacity,
                placement=self.config.page_placement,
                seed=self.config.vm_seed,
                # Keep the kernel-reserved region proportionate on the
                # small modules used in tests.
                reserved_low_bytes=min(1 << 24, capacity // 8),
            )
        )
        self.pagemap = Pagemap(self.vm, restricted=self.config.pagemap_restricted)
        self.clflush_allowed = self.config.clflush_allowed
        self._listeners: list[Listener] = []
        # The VM object is permanent; bind its translate once so the
        # per-access path skips two attribute loads.
        self._translate = self.vm.translate

    @property
    def mapping(self):
        return self.controller.mapping

    @property
    def device(self):
        return self.controller.device

    def add_listener(self, listener: Listener) -> None:
        """Register a callback invoked with every :class:`MemoryAccess`."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Listener) -> None:
        self._listeners.remove(listener)

    # -- the timed access path ----------------------------------------------------

    def access(self, vaddr: int, time_cycles: int, is_store: bool = False) -> MemoryAccess:
        """Execute one load or store; returns the full access record."""
        paddr = self._translate(vaddr)
        return self.access_phys(paddr, time_cycles, is_store=is_store, vaddr=vaddr)

    def access_phys(
        self, paddr: int, time_cycles: int, is_store: bool = False, vaddr: int | None = None
    ) -> MemoryAccess:
        """Access by physical address (kernel-mode path, used by ANVIL's
        selective refresh reads and by physically addressed tests)."""
        result = self.hierarchy.access(paddr, is_store)
        if result.llc_miss:
            dram = self.controller.access(paddr, time_cycles + result.latency_cycles, is_store)
            record = MemoryAccess(
                vaddr=vaddr if vaddr is not None else paddr,
                paddr=paddr,
                is_store=is_store,
                level="DRAM",
                latency_cycles=result.latency_cycles + dram.latency_cycles,
                llc_miss=True,
                coord=dram.coord,
                activated=dram.activated,
                new_flip_count=dram.new_flip_count,
            )
        else:
            record = MemoryAccess(
                vaddr=vaddr if vaddr is not None else paddr,
                paddr=paddr,
                is_store=is_store,
                level=result.level,
                latency_cycles=result.latency_cycles,
                llc_miss=False,
            )
        for listener in self._listeners:
            listener(record)
        return record

    def clflush(self, vaddr: int, time_cycles: int) -> int:
        """Flush one line from all cache levels; returns instruction cost.

        Raises :class:`ClflushRestrictedError` when the machine disallows
        CLFLUSH (the NaCl-style mitigation the paper's CLFLUSH-free attack
        side-steps).
        """
        del time_cycles  # flush has no DRAM-side timing interaction here
        if not self.clflush_allowed:
            raise ClflushRestrictedError("CLFLUSH is disallowed on this machine")
        paddr = self._translate(vaddr)
        return self.hierarchy.clflush(paddr)

    # -- untimed architectural data access ------------------------------------------

    def write_word(self, vaddr: int, value: int) -> None:
        self.controller.device.write_word(self.vm.translate(vaddr), value)

    def read_word(self, vaddr: int) -> int:
        return self.controller.device.read_word(self.vm.translate(vaddr))

    # -- convenience -------------------------------------------------------------------

    def row_of_vaddr(self, vaddr: int) -> DramCoord:
        """DRAM coordinates of a virtual address (via real translation,
        the kernel-side path ANVIL uses after sampling)."""
        return self.mapping.decode(self.vm.translate(vaddr))

    def flip_count(self) -> int:
        return self.controller.flip_count()
