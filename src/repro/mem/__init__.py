"""Memory system: virtual memory, the ``/proc/pagemap`` emulation used by
the attacks, and the unified virtual-address access path (TLB-free model:
translate -> caches -> controller -> DRAM)."""

from .virtual import VirtualMemory, VmConfig
from .pagemap import Pagemap
from .memory_system import MemoryAccess, MemorySystem, MemorySystemConfig

__all__ = [
    "MemoryAccess",
    "MemorySystem",
    "MemorySystemConfig",
    "Pagemap",
    "VirtualMemory",
    "VmConfig",
]
