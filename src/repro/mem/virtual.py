"""Simulated virtual memory: page allocation and address translation.

The CLFLUSH-free attack needs physical addresses to build LLC eviction sets
and to find aggressor rows; it obtains them "using the Linux /proc/pagemap
utility to convert virtual addresses to physical addresses" (Section 2.3).
This module provides the page tables that utility reads.

Physical pages are handed out by a configurable strategy:

- ``"sequential"`` — pages are physically contiguous (fresh boot, THP);
- ``"scrambled"`` — a deterministic pseudo-random permutation of frames
  (a fragmented machine), which is what makes pagemap *necessary* for the
  attacker.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import AllocationError, ConfigError, TranslationError
from ..units import is_power_of_two

PAGE_SIZE = 4096


@dataclass(frozen=True)
class VmConfig:
    """Virtual-memory layout parameters."""

    phys_bytes: int
    page_bytes: int = PAGE_SIZE
    placement: str = "scrambled"  # or "sequential"
    seed: int = 42
    #: Physical frames below this address are reserved (kernel, firmware),
    #: keeping user allocations away from row 0 edge cases.
    reserved_low_bytes: int = 1 << 24

    def __post_init__(self) -> None:
        if not is_power_of_two(self.page_bytes):
            raise ConfigError("page size must be a power of two")
        if self.phys_bytes % self.page_bytes:
            raise ConfigError("physical size must be page aligned")
        if self.placement not in ("sequential", "scrambled"):
            raise ConfigError(f"unknown placement {self.placement!r}")
        if self.reserved_low_bytes % self.page_bytes:
            raise ConfigError("reserved region must be page aligned")
        if self.reserved_low_bytes >= self.phys_bytes:
            raise ConfigError("reserved region covers all of memory")


class VirtualMemory:
    """Page tables plus a simple bump allocator for virtual space."""

    #: Base of the simulated user heap.
    VBASE = 0x7F00_0000_0000

    def __init__(self, config: VmConfig) -> None:
        self.config = config
        self._page_bits = config.page_bytes.bit_length() - 1
        self._offset_mask = config.page_bytes - 1
        first_frame = config.reserved_low_bytes >> self._page_bits
        total_frames = config.phys_bytes >> self._page_bits
        frames = list(range(first_frame, total_frames))
        if config.placement == "scrambled":
            random.Random(config.seed).shuffle(frames)
        else:
            frames.reverse()  # consumed from the end: keep ascending order
        self._free_frames = frames
        self._page_table: dict[int, int] = {}  # vpn -> pfn
        # Software TLB: vpn -> pre-shifted frame base (pfn << page_bits),
        # filled lazily by translate() and invalidated on remap.  The hit
        # path is one dict lookup plus an OR, which is what the simulated
        # machine's fast-path execution engine keys on.
        self._tlb: dict[int, int] = {}
        self._next_vaddr = self.VBASE

    # -- allocation -----------------------------------------------------------

    def mmap(self, length: int, physically_contiguous: bool = False) -> int:
        """Allocate ``length`` bytes of virtual memory; returns the base
        virtual address.

        ``physically_contiguous=True`` models a transparent-huge-page or
        boot-time allocation where consecutive virtual pages land on
        consecutive physical frames (useful for controlled experiments and
        for the paper's assumption that attackers can reach specific rows).
        """
        if length <= 0:
            raise AllocationError("length must be positive")
        pages = -(-length // self.config.page_bytes)
        if pages > len(self._free_frames):
            raise AllocationError(
                f"out of physical frames ({pages} needed, "
                f"{len(self._free_frames)} free)"
            )
        base = self._next_vaddr
        self._next_vaddr += pages * self.config.page_bytes
        if physically_contiguous:
            frames = self._take_contiguous(pages)
        else:
            frames = [self._free_frames.pop() for _ in range(pages)]
        vpn0 = base >> self._page_bits
        for i, pfn in enumerate(frames):
            self._page_table[vpn0 + i] = pfn
        return base

    def _take_contiguous(self, pages: int) -> list[int]:
        """Find a run of ``pages`` consecutive free frames."""
        available = sorted(self._free_frames)
        run_start = 0
        for i in range(1, len(available) + 1):
            if i == len(available) or available[i] != available[i - 1] + 1:
                if i - run_start >= pages:
                    chosen = available[run_start : run_start + pages]
                    chosen_set = set(chosen)
                    self._free_frames = [
                        f for f in self._free_frames if f not in chosen_set
                    ]
                    return chosen
                run_start = i
        raise AllocationError(f"no physically contiguous run of {pages} pages")

    def map_fixed(self, vaddr: int, paddr: int) -> None:
        """Map a specific virtual page onto a specific physical frame
        (privileged; used by test fixtures and the ANVIL kernel module)."""
        if vaddr % self.config.page_bytes or paddr % self.config.page_bytes:
            raise AllocationError("map_fixed requires page-aligned addresses")
        pfn = paddr >> self._page_bits
        if pfn in self._free_frames:
            self._free_frames.remove(pfn)
        vpn = vaddr >> self._page_bits
        self._page_table[vpn] = pfn
        # The page may have been translated before: drop any stale TLB entry.
        self._tlb.pop(vpn, None)

    # -- translation -----------------------------------------------------------

    def translate(self, vaddr: int) -> int:
        """Virtual -> physical, raising :class:`TranslationError` if unmapped.

        Translations are memoised in a software TLB (``_tlb``), so the hit
        path is a single dict lookup; the page-table walk only runs the
        first time a page is touched (or again after :meth:`map_fixed`
        remaps it, which invalidates the entry).
        """
        vpn = vaddr >> self._page_bits
        frame = self._tlb.get(vpn)
        if frame is None:
            pfn = self._page_table.get(vpn)
            if pfn is None:
                raise TranslationError(f"no mapping for virtual address {vaddr:#x}")
            frame = pfn << self._page_bits
            self._tlb[vpn] = frame
        return frame | (vaddr & self._offset_mask)

    def invalidate_tlb(self) -> None:
        """Drop every memoised translation (full TLB shootdown)."""
        self._tlb.clear()

    def is_mapped(self, vaddr: int) -> bool:
        return (vaddr >> self._page_bits) in self._page_table

    @property
    def mapped_pages(self) -> int:
        return len(self._page_table)

    @property
    def free_pages(self) -> int:
        return len(self._free_frames)
