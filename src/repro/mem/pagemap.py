"""Emulation of the Linux ``/proc/self/pagemap`` interface.

Attacks use pagemap to learn physical addresses (Section 2.3).  After the
rowhammer disclosures, "the Linux kernel was updated to disallow the use of
the pagemap interface from the user space" (Section 5.2.1); the
``restricted`` flag models that hardening, and :class:`Pagemap` raises
:class:`~repro.errors.PagemapRestrictedError` for unprivileged readers so
experiments can study attacks with and without the mitigation.
"""

from __future__ import annotations

from ..errors import PagemapRestrictedError
from .virtual import VirtualMemory


class Pagemap:
    """Read-only view of the page tables, gated like the real interface."""

    def __init__(self, vm: VirtualMemory, restricted: bool = False) -> None:
        self._vm = vm
        self.restricted = restricted
        self.reads = 0

    def virt_to_phys(self, vaddr: int, privileged: bool = False) -> int:
        """Translate like reading the pagemap entry for ``vaddr``.

        Raises :class:`PagemapRestrictedError` if the interface is
        restricted and the caller is not privileged, and
        :class:`~repro.errors.TranslationError` if the page is unmapped.
        """
        if self.restricted and not privileged:
            raise PagemapRestrictedError(
                "/proc/self/pagemap requires CAP_SYS_ADMIN on this kernel"
            )
        self.reads += 1
        return self._vm.translate(vaddr)

    def page_frame_number(self, vaddr: int, privileged: bool = False) -> int:
        """The PFN field of the pagemap entry."""
        paddr = self.virt_to_phys(vaddr, privileged)
        return paddr >> (self._vm.config.page_bytes.bit_length() - 1)
