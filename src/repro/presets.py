"""Ready-made machine configurations.

- :func:`paper_machine` — the paper's testbed: 2.6 GHz Sandy Bridge-class
  core, 3 MB 12-way Bit-PLRU LLC, 4 GB DDR3 module whose weakest row flips
  at 220K disturbance units (Table 1 calibration).
- :func:`small_machine` — a scaled-down module (64 MB, low flip threshold)
  with the *same* cache hierarchy and mechanisms, for fast tests and
  examples.  Rowhammer dynamics are identical, just quicker to simulate.
"""

from __future__ import annotations

from .dram import DisturbanceConfig, DramConfig, DramTimings, ddr3_4gb
from .mem import MemorySystemConfig
from .sim import Machine, MachineConfig
from .units import Clock


def paper_machine(
    clflush_allowed: bool = True,
    pagemap_restricted: bool = False,
    refresh_scale: float = 1.0,
    threshold_min: int = 220_000,
    seed: int = 0,
) -> Machine:
    """The i5-2540M + 4 GB DDR3 testbed of the paper.

    ``refresh_scale=2`` applies the doubled-refresh BIOS mitigation
    (32 ms retention).
    """
    timings = DramTimings().scaled_refresh(refresh_scale)
    dram = ddr3_4gb().with_timings(timings).with_disturbance(
        DisturbanceConfig(threshold_min=threshold_min, seed=seed or 0x5EED)
    )
    memory = MemorySystemConfig(
        dram=dram,
        clflush_allowed=clflush_allowed,
        pagemap_restricted=pagemap_restricted,
        vm_seed=42 + seed,
    )
    return Machine(MachineConfig(clock=Clock(), memory=memory))


def small_machine(
    threshold_min: int = 4_000,
    clflush_allowed: bool = True,
    pagemap_restricted: bool = False,
    refresh_scale: float = 1.0,
    retention_ms: float | None = None,
    seed: int = 0,
    placement: str = "scrambled",
    max_flips_per_row: int = 8,
) -> Machine:
    """A 64 MB module (1 rank x 4 banks x 2048 rows) with a low flip
    threshold, for fast unit/integration tests.

    ``max_flips_per_row`` can be raised for exploit studies: heavily
    hammered rows on real modules exhibit dozens of flippable cells.
    """
    timings = DramTimings()
    if retention_ms is not None:
        timings = DramTimings(retention_ms=retention_ms)
    timings = timings.scaled_refresh(refresh_scale)
    dram = DramConfig(
        ranks=1,
        banks_per_rank=4,
        rows_per_bank=2048,
        row_bytes=8192,
        timings=timings,
        disturbance=DisturbanceConfig(
            threshold_min=threshold_min,
            seed=seed or 0x5EED,
            max_flips_per_row=max_flips_per_row,
        ),
    )
    memory = MemorySystemConfig(
        dram=dram,
        clflush_allowed=clflush_allowed,
        pagemap_restricted=pagemap_restricted,
        vm_seed=42 + seed,
        page_placement=placement,
    )
    return Machine(MachineConfig(clock=Clock(), memory=memory))
