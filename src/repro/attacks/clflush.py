"""CLFLUSH-based rowhammer attacks (paper Section 2.1, Figure 1a).

Both attacks flush the aggressor lines after each access "thereby ensuring
the next access goes directly to the DRAM".  The double-sided variant
hammers the two rows adjacent to a victim; the single-sided variant
hammers one aggressor plus a far "dummy" row in the same bank, whose only
role is to close the aggressor's row buffer.

Per-iteration compute overheads are calibration constants representing the
attack loop's non-memory work on the paper's 2.6 GHz testbed (address
arithmetic and branches for the double-sided loop; random row selection
and fencing for the original single-sided test program, which is why
Table 1 shows it hammering markedly slower per access).
"""

from __future__ import annotations

from ..dram import DramCoord
from ..sim.machine import Machine
from ..sim.ops import Op, clflush, compute, load, mfence, store
from .base import RowhammerAttack
from .targeting import RowResolver


class DoubleSidedClflushAttack(RowhammerAttack):
    """Figure 1(a): load both aggressors, CLFLUSH both, repeat.

    ``store_based=True`` hammers with stores instead of loads — residency
    and disturbance behaviour are identical, but the PMU sees store misses,
    exercising ANVIL's Precise Store facility selection (Section 3.3).
    """

    name = "double-sided-clflush"
    accesses_per_unit = 1.0  # every counted access disturbs the victim

    def __init__(self, loop_overhead_cycles: int = 36, store_based: bool = False,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.loop_overhead_cycles = loop_overhead_cycles
        self.store_based = store_based
        if store_based:
            self.name = "double-sided-clflush-stores"
        self._a0 = 0
        self._a1 = 0

    def _build(self, machine: Machine) -> None:
        memsys = machine.memory
        base = memsys.vm.mmap(self.buffer_bytes)
        resolver = RowResolver(memsys)
        resolver.scan_buffer(base, self.buffer_bytes)
        score = resolver.templating_oracle() if self.use_templating_oracle else None
        triple = resolver.choose_triple(score)
        self._a0 = triple.aggressor_low_vaddr
        self._a1 = triple.aggressor_high_vaddr
        rank, bank = triple.bank_key
        self._aggressors = [
            DramCoord(rank, bank, triple.victim_row - 1, 0),
            DramCoord(rank, bank, triple.victim_row + 1, 0),
        ]
        self._victims = [DramCoord(rank, bank, triple.victim_row, 0)]

    def iteration_ops(self) -> list[Op]:
        op = store if self.store_based else load
        return [
            op(self._a0),
            op(self._a1),
            clflush(self._a0),
            clflush(self._a1),
            compute(self.loop_overhead_cycles),
        ]


class SingleSidedClflushAttack(RowhammerAttack):
    """Classic single-sided hammering in the style of the original
    rowhammer-test program (paper citation [2]).

    Only the aggressor is adjacent to the victim; the dummy row is far
    away and merely forces the bank's row buffer closed, so half of the
    counted DRAM row accesses contribute no disturbance to the victim —
    hence Table 1's roughly doubled access count relative to double-sided.
    """

    name = "single-sided-clflush"
    accesses_per_unit = 2.0  # dummy-row accesses count but do not disturb

    def __init__(
        self, loop_overhead_cycles: int = 290, dummy_distance_rows: int = 64, **kwargs
    ) -> None:
        super().__init__(**kwargs)
        self.loop_overhead_cycles = loop_overhead_cycles
        self.dummy_distance_rows = dummy_distance_rows
        self._aggressor = 0
        self._dummy = 0

    def _build(self, machine: Machine) -> None:
        memsys = machine.memory
        base = memsys.vm.mmap(self.buffer_bytes)
        resolver = RowResolver(memsys)
        resolver.scan_buffer(base, self.buffer_bytes)
        score = resolver.templating_oracle() if self.use_templating_oracle else None
        triple = resolver.choose_triple(score)
        self._aggressor = triple.aggressor_low_vaddr
        self._dummy = resolver.far_row_vaddr(
            triple.bank_key, triple.victim_row, self.dummy_distance_rows
        )
        rank, bank = triple.bank_key
        aggressor_row = triple.victim_row - 1
        self._aggressors = [DramCoord(rank, bank, aggressor_row, 0)]
        # Both neighbours of the aggressor are potential victims; the
        # chosen weak row is the one Table 1's threshold refers to.
        self._victims = [
            DramCoord(rank, bank, aggressor_row - 1, 0),
            DramCoord(rank, bank, triple.victim_row, 0),
        ]

    def iteration_ops(self) -> list[Op]:
        return [
            load(self._aggressor),
            load(self._dummy),
            clflush(self._aggressor),
            clflush(self._dummy),
            mfence(),
            compute(self.loop_overhead_cycles),
        ]
