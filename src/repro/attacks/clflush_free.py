"""The CLFLUSH-free double-sided rowhammer attack (Section 2.2, Figure 1b).

This is the paper's headline attack: no cache-flush instruction, so it
works inside sandboxes that ban CLFLUSH.  Instead of flushing, it evicts
the aggressor lines by steering the LLC's Bit-PLRU replacement state with
a carefully ordered eviction-set access pattern, so that each iteration
misses on exactly the aggressor plus one sacrificial conflict address per
set.

The two aggressors live in different LLC sets (Set X and Set Y); their
patterns are interleaved as paired loads, since the sets are independent
and the loads overlap in the out-of-order window — this is what makes the
paper's 338 ns/iteration (~190K hammer pairs per 64 ms refresh period)
achievable.

Preparation follows Section 2.3: translate the attack buffer with
``/proc/pagemap``, pick aggressor rows adjacent to a weak victim, and
collect 12 conflicting addresses (same LLC set index and slice hash) per
aggressor.
"""

from __future__ import annotations

from ..dram import DramCoord
from ..sim.machine import Machine
from ..sim.ops import Op, compute, pair_load
from .base import RowhammerAttack
from .eviction import build_eviction_set
from .patterns import AGGRESSOR, efficient_bit_plru_pattern
from .targeting import RowResolver


class ClflushFreeAttack(RowhammerAttack):
    """Double-sided rowhammer via Bit-PLRU eviction-set steering."""

    name = "double-sided-clflush-free"
    accesses_per_unit = 1.0  # Table 1 counts aggressor-row accesses

    def __init__(
        self,
        pattern: list[int] | None = None,
        loop_overhead_cycles: int = 0,
        privileged_pagemap: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.pattern = pattern
        self.loop_overhead_cycles = loop_overhead_cycles
        self.privileged_pagemap = privileged_pagemap
        self._set_x: list[int] = []  # [A0] eviction set addresses
        self._set_y: list[int] = []
        self._a0 = 0
        self._a1 = 0

    def _build(self, machine: Machine) -> None:
        memsys = machine.memory
        ways = memsys.hierarchy.llc.config.ways
        if self.pattern is None:
            self.pattern = efficient_bit_plru_pattern(ways)
        base = memsys.vm.mmap(self.buffer_bytes)
        resolver = RowResolver(memsys, privileged=self.privileged_pagemap)
        resolver.scan_buffer(base, self.buffer_bytes)
        score = resolver.templating_oracle() if self.use_templating_oracle else None
        triple = resolver.choose_triple(score)
        self._a0 = triple.aggressor_low_vaddr
        self._a1 = triple.aggressor_high_vaddr
        self._set_x = build_eviction_set(
            memsys, self._a0, base, self.buffer_bytes, size=ways,
            privileged=self.privileged_pagemap,
        )
        self._set_y = build_eviction_set(
            memsys, self._a1, base, self.buffer_bytes, size=ways,
            privileged=self.privileged_pagemap,
        )
        rank, bank = triple.bank_key
        self._aggressors = [
            DramCoord(rank, bank, triple.victim_row - 1, 0),
            DramCoord(rank, bank, triple.victim_row + 1, 0),
        ]
        self._victims = [DramCoord(rank, bank, triple.victim_row, 0)]

    def _resolve(self, symbol: int, aggressor: int, eset: list[int]) -> int:
        return aggressor if symbol == AGGRESSOR else eset[symbol]

    def iteration_ops(self) -> list[Op]:
        ops: list[Op] = [
            pair_load(
                self._resolve(symbol, self._a0, self._set_x),
                self._resolve(symbol, self._a1, self._set_y),
            )
            for symbol in self.pattern
        ]
        if self.loop_overhead_cycles:
            ops.append(compute(self.loop_overhead_cycles))
        return ops

    @property
    def eviction_sets(self) -> tuple[list[int], list[int]]:
        """The two eviction sets (diagnostics and the Figure 1 example)."""
        return list(self._set_x), list(self._set_y)
