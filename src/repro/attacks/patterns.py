"""Eviction-pattern planning for the CLFLUSH-free attack.

The attack needs "an efficient memory access pattern that has a high
probability of misses on the aggressor address" (Section 2.2): every
iteration must evict and re-miss the aggressor while hitting on nearly all
of the conflict addresses, because "creating extraneous memory accesses
dramatically decreases the rate of rowhammering".

Patterns are symbolic: index ``-1`` denotes the aggressor ``A`` and index
``i >= 0`` denotes conflict address ``X_{i+1}``.  The canonical pattern for
a 12-way Bit-PLRU LLC is

    A, X1..X10, X11, X1..X10, X12

whose steady state misses exactly ``{A, X11}`` per iteration — the miss
pair the paper reports ("only two addresses (A0(row0,setx) and X11(setx))
missing for each iteration").  With 21 LLC hits at 29 cycles and 2 misses
at ~150, an iteration costs ~880 cycles, matching the paper's estimate.

:func:`search_pattern` re-derives such patterns from scratch against any
policy — the same simulator-guided search the authors describe.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..cache.setmodel import steady_state_misses
from ..errors import EvictionSetError

#: Symbolic aggressor marker in pattern index lists.
AGGRESSOR = -1


def efficient_bit_plru_pattern(ways: int = 12) -> list[int]:
    """The efficient pattern for a ``ways``-way Bit-PLRU set.

    Derived (and verified in the test suite) for the 12-way Sandy Bridge
    LLC: ``A, X1..X(w-2), X(w-1), X1..X(w-2), Xw``.  The eviction set must
    contain ``ways`` conflict addresses.
    """
    body = list(range(ways - 2))  # X1 .. X10
    return [AGGRESSOR] + body + [ways - 2] + body + [ways - 1]


def pattern_miss_profile(
    pattern: Sequence[int],
    policy: str = "bit-plru",
    ways: int = 12,
    iterations: int = 40,
) -> tuple[int, ...] | None:
    """Steady-state missing pattern entries per iteration, or None if the
    pattern never reaches a period-one steady state.

    Returns the missing symbols (``AGGRESSOR`` or conflict indices).
    """
    return steady_state_misses(policy, ways, list(pattern), iterations=iterations)


def pattern_cost_cycles(
    pattern: Sequence[int],
    misses_per_iteration: int,
    hit_cycles: int = 29,
    miss_cycles: int = 146,
) -> int:
    """Estimated cycles per iteration for one set (the paper's §2.2
    arithmetic: hits at LLC latency, misses at DRAM latency)."""
    hits = len(pattern) - misses_per_iteration
    return hits * hit_cycles + misses_per_iteration * miss_cycles


def search_pattern(
    policy: str = "bit-plru",
    ways: int = 12,
    trials: int = 50_000,
    seed: int = 0,
    max_len: int = 24,
    hit_cycles: int = 29,
    miss_cycles: int = 146,
) -> list[int]:
    """Search for the cheapest pattern whose steady state misses the
    aggressor every iteration (randomized, seeded, deterministic).

    Raises :class:`EvictionSetError` if no valid pattern is found — e.g.
    under true LRU, where any aggressor-missing pattern thrashes.
    """
    rng = random.Random(seed)
    best_cost = None
    best: list[int] | None = None
    # Seed the search with the known-good structured family.
    structured = [efficient_bit_plru_pattern(ways)] if ways >= 4 else []
    for trial in range(trials + len(structured)):
        if trial < len(structured):
            pattern = structured[trial]
        else:
            length = rng.randint(ways - 1, max_len)
            pattern = [AGGRESSOR] + [rng.randrange(ways) for _ in range(length)]
        misses = pattern_miss_profile(pattern, policy, ways)
        if not misses or AGGRESSOR not in misses:
            continue
        cost = pattern_cost_cycles(pattern, len(misses), hit_cycles, miss_cycles)
        if best_cost is None or cost < best_cost:
            best_cost, best = cost, list(pattern)
    if best is None:
        raise EvictionSetError(
            f"no aggressor-evicting pattern found for policy {policy!r}"
        )
    return best
