"""Rowhammer attacks (paper Section 2).

Three attacks, matching Table 1:

- :class:`~repro.attacks.clflush.SingleSidedClflushAttack` — hammer one
  aggressor row (plus a row-buffer-toggling dummy), flushing with CLFLUSH;
- :class:`~repro.attacks.clflush.DoubleSidedClflushAttack` — hammer both
  rows adjacent to a victim, flushing with CLFLUSH;
- :class:`~repro.attacks.clflush_free.ClflushFreeAttack` — the paper's
  novel double-sided attack that evicts the aggressors by steering the
  LLC's Bit-PLRU replacement state instead of flushing.

Support machinery: row targeting via ``/proc/pagemap``
(:mod:`~repro.attacks.targeting`), eviction-set construction
(:mod:`~repro.attacks.eviction`), eviction-pattern planning
(:mod:`~repro.attacks.patterns`), and the replacement-policy
reverse-engineering probe (:mod:`~repro.attacks.policy_probe`).
"""

from .base import AttackResult, RowhammerAttack
from .blind import BlindPairHammerAttack
from .clflush import DoubleSidedClflushAttack, SingleSidedClflushAttack
from .clflush_free import ClflushFreeAttack
from .eviction import build_eviction_set, verify_eviction_set
from .patterns import efficient_bit_plru_pattern, pattern_miss_profile, search_pattern
from .policy_probe import ProbeResult, identify_replacement_policy
from .targeting import HammerTriple, RowResolver

__all__ = [
    "AttackResult",
    "BlindPairHammerAttack",
    "ClflushFreeAttack",
    "DoubleSidedClflushAttack",
    "HammerTriple",
    "ProbeResult",
    "RowResolver",
    "RowhammerAttack",
    "SingleSidedClflushAttack",
    "build_eviction_set",
    "efficient_bit_plru_pattern",
    "identify_replacement_policy",
    "pattern_miss_profile",
    "search_pattern",
    "verify_eviction_set",
]
