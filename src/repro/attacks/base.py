"""Attack framework: preparation, execution, and result reporting.

Every attack follows the Table 1 protocol: prepare (allocate a buffer,
resolve rows, build eviction state), then emit an infinite stream of
operations the simulated machine executes until the first bit flip or a
time budget expires.  :class:`AttackResult` carries the two quantities
Table 1 reports — the minimum number of DRAM row accesses to induce a
flip, and the time to the first flip — plus diagnostics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterator

from ..dram import DramCoord
from ..sim.machine import Machine
from ..sim.ops import Op
from ..units import MB


@dataclass
class AttackResult:
    """Outcome of one attack run."""

    name: str
    elapsed_ms: float
    iterations: int
    total_dram_accesses: int
    flips: int
    time_to_first_flip_ms: float | None = None
    #: Row accesses until the first flip, using the paper's counting
    #: convention for each attack (see ``accesses_per_unit``).
    min_row_accesses: int | None = None
    ns_per_iteration: float | None = None
    llc_misses: int = 0
    details: dict = field(default_factory=dict)

    @property
    def flipped(self) -> bool:
        return self.flips > 0


class RowhammerAttack(ABC):
    """Base class for the three Table 1 attacks."""

    #: Human-readable attack name (Table 1 row label).
    name: str = "abstract"

    #: Table 1 counts "DRAM row accesses"; one disturbance unit on the
    #: victim corresponds to this many counted accesses (2 for the
    #: single-sided attack, whose dummy-row accesses count but do not
    #: disturb the victim).
    accesses_per_unit: float = 1.0

    def __init__(
        self,
        buffer_bytes: int = 256 * MB,
        seed: int = 0,
        use_templating_oracle: bool = True,
    ) -> None:
        self.buffer_bytes = buffer_bytes
        self.seed = seed
        self.use_templating_oracle = use_templating_oracle
        self.prepared = False
        self.iterations_emitted = 0
        self._aggressors: list[DramCoord] = []
        self._victims: list[DramCoord] = []

    # -- to implement -----------------------------------------------------------

    @abstractmethod
    def _build(self, machine: Machine) -> None:
        """Resolve target rows and construct per-attack state."""

    @abstractmethod
    def iteration_ops(self) -> list[Op]:
        """The operations of one steady-state hammer iteration."""

    # -- common machinery ----------------------------------------------------------

    def prepare(self, machine: Machine) -> None:
        """Allocate the attack buffer and build targeting state."""
        if self.prepared:
            return
        self._build(machine)
        self.prepared = True

    @property
    def aggressor_coords(self) -> list[DramCoord]:
        return list(self._aggressors)

    @property
    def victim_coords(self) -> list[DramCoord]:
        return list(self._victims)

    def ops(self) -> Iterator[Op]:
        """Infinite hammer stream (``prepare`` must have run)."""
        if not self.prepared:
            raise RuntimeError("call prepare(machine) before ops()")
        iteration = self.iteration_ops()
        while True:
            self.iterations_emitted += 1
            yield from iteration

    def run(
        self,
        machine: Machine,
        max_ms: float = 200.0,
        stop_on_flip: bool = True,
        check_every: int = 64,
    ) -> AttackResult:
        """Hammer until the first bit flip (if ``stop_on_flip``) or until
        ``max_ms`` of machine time elapses."""
        self.prepare(machine)
        clock = machine.clock
        device = machine.memory.device
        start_cycles = machine.cycles
        start_flip_idx = len(device.tracker.flips)
        start_iterations = self.iterations_emitted

        until = None
        if stop_on_flip:
            until = lambda m: len(device.tracker.flips) > start_flip_idx  # noqa: E731

        run = machine.run(
            self.ops(),
            max_cycles=clock.cycles_from_ms(max_ms),
            until=until,
            check_every=check_every,
        )

        iterations = self.iterations_emitted - start_iterations
        elapsed_cycles = machine.cycles - start_cycles
        new_flips = device.tracker.flips[start_flip_idx:]
        result = AttackResult(
            name=self.name,
            elapsed_ms=clock.ms_from_cycles(elapsed_cycles),
            iterations=iterations,
            total_dram_accesses=run.dram_accesses,
            flips=len(new_flips),
            llc_misses=run.llc_misses,
            ns_per_iteration=(
                clock.ns_from_cycles(elapsed_cycles) / iterations if iterations else None
            ),
        )
        if new_flips:
            first = new_flips[0]
            result.time_to_first_flip_ms = clock.ms_from_cycles(
                first.time_cycles - start_cycles
            )
            result.min_row_accesses = int(
                round(first.units_at_flip * self.accesses_per_unit)
            )
            result.details["first_flip_row_id"] = first.row_id
            result.details["first_flip_bit"] = first.bit_offset
        return result
