"""Replacement-policy reverse engineering (paper Section 2.2).

"We did this by generating a high miss-rate pattern that cyclically
accesses the 13 addresses in the eviction set, and using performance
counters (particularly the last-level cache miss counter) to determine
whether each access was a cache hit or a cache miss.  Then we correlate
the performance counter results with results from different cache
replacement policy simulators that we built."

:func:`identify_replacement_policy` runs exactly that experiment against a
simulated machine: drive a probe sequence through the real hierarchy,
classify each access via the LLC miss counter delta, replay the same
symbolic sequence through every candidate :class:`~repro.cache.setmodel
.SetModel`, and rank candidates by agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.replacement import policy_names
from ..cache.setmodel import SetModel
from ..errors import ConfigError
from ..pmu import Event
from ..sim.machine import Machine
from ..sim.ops import load


@dataclass(frozen=True)
class ProbeResult:
    """Ranked correlation of candidate policies with observed misses."""

    scores: dict[str, float]  # policy name -> agreement fraction
    best: str
    observed_miss_fraction: float
    accesses: int

    def ranking(self) -> list[tuple[str, float]]:
        return sorted(self.scores.items(), key=lambda kv: -kv[1])


def probe_sequence(n_addresses: int, rounds: int) -> list[int]:
    """The paper's probe: cyclic sweeps over the eviction set."""
    return list(range(n_addresses)) * rounds


def identify_replacement_policy(
    machine: Machine,
    addresses: list[int],
    rounds: int = 40,
    warmup_rounds: int = 4,
    candidates: list[str] | None = None,
) -> ProbeResult:
    """Identify the LLC replacement policy behind ``machine``.

    ``addresses`` must be an eviction set plus the target — i.e. more
    same-set addresses than the LLC has ways (13 for a 12-way cache) so
    the cyclic sweep forces evictions whose pattern fingerprints the
    policy.
    """
    if candidates is None:
        candidates = policy_names()
    ways = machine.memory.hierarchy.llc.config.ways
    if len(addresses) <= ways:
        raise ConfigError(
            f"need more than {ways} same-set addresses to force evictions, "
            f"got {len(addresses)}"
        )
    sequence = probe_sequence(len(addresses), rounds)
    skip = warmup_rounds * len(addresses)

    # -- observe the real machine through the miss counter --------------------
    counter = machine.pmu.counter(Event.LONGEST_LAT_CACHE_MISS)
    observed: list[bool] = []
    for index in sequence:
        before = counter.read()
        machine.execute(load(addresses[index]))
        observed.append(counter.read() > before)
    observed_tail = observed[skip:]

    # -- replay through each candidate policy simulator ------------------------
    scores: dict[str, float] = {}
    for name in candidates:
        try:
            model = SetModel(name, ways)
        except ConfigError:
            continue  # e.g. tree-plru with non-power-of-two ways
        predicted = [not model.access(index) for index in sequence][skip:]
        agree = sum(o == p for o, p in zip(observed_tail, predicted))
        scores[name] = agree / len(observed_tail)

    best = max(scores, key=lambda n: scores[n])
    return ProbeResult(
        scores=scores,
        best=best,
        observed_miss_fraction=sum(observed_tail) / len(observed_tail),
        accesses=len(sequence),
    )
