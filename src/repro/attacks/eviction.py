"""LLC eviction-set construction (paper Section 2.2).

"We create an eviction set by first picking the aggressor address and then
using its physical address to find 12 more addresses with matching cache
set mappings ... Conflicting addresses will have the same cache slice and
cache set bits."

Two builders are provided:

- :func:`build_eviction_set` — the paper's pagemap-based method: scan an
  owned buffer for physical addresses that collide with the target in both
  set index and slice hash;
- :func:`find_eviction_set_by_timing` — a timing-only fallback (greedy
  group testing) for machines where pagemap is restricted, demonstrating
  that the kernel mitigation alone does not stop the attack.

:func:`verify_eviction_set` confirms a candidate set works by measuring
the target's reload latency after touching the set.
"""

from __future__ import annotations

import random

from ..errors import EvictionSetError
from ..mem import MemorySystem
from ..sim.machine import Machine
from ..sim.ops import load


def conflict_candidates(
    memsys: MemorySystem,
    target_vaddr: int,
    pool_base: int,
    pool_len: int,
    privileged: bool = False,
) -> list[int]:
    """All addresses in the pool that collide with ``target_vaddr`` in the
    LLC (same set index and slice hash), found via pagemap."""
    llc = memsys.hierarchy.llc
    page = memsys.vm.config.page_bytes
    pagemap = memsys.pagemap
    target_paddr = pagemap.virt_to_phys(target_vaddr, privileged=privileged)
    # Matching bits below the page boundary means matching page offset.
    line = llc.config.line_bytes
    offset_in_page = target_paddr & (page - 1) & ~(line - 1)
    matches = []
    for page_base in range(pool_base, pool_base + pool_len, page):
        vaddr = page_base + offset_in_page
        paddr = pagemap.virt_to_phys(vaddr, privileged=privileged)
        if paddr == target_paddr:
            continue
        if llc.same_set(paddr, target_paddr):
            matches.append(vaddr)
    return matches


def build_eviction_set(
    memsys: MemorySystem,
    target_vaddr: int,
    pool_base: int,
    pool_len: int,
    size: int | None = None,
    privileged: bool = False,
) -> list[int]:
    """Build an eviction set of ``size`` conflicting addresses for the
    target (default: LLC associativity, 12 on Sandy Bridge).

    Raises :class:`EvictionSetError` if the pool does not contain enough
    colliding pages.
    """
    size = size if size is not None else memsys.hierarchy.llc.config.ways
    matches = conflict_candidates(
        memsys, target_vaddr, pool_base, pool_len, privileged=privileged
    )
    if len(matches) < size:
        raise EvictionSetError(
            f"pool yields only {len(matches)} conflicting addresses, "
            f"need {size}; allocate a larger pool"
        )
    return matches[:size]


def verify_eviction_set(
    machine: Machine, target_vaddr: int, eviction_set: list[int], rounds: int = 2
) -> bool:
    """True if accessing the eviction set evicts the target from the LLC.

    Measured the way an attacker would: load the target, sweep the set
    ``rounds`` times, then check whether the target's physical line left
    the hierarchy.
    """
    machine.execute(load(target_vaddr))
    for _ in range(rounds):
        for vaddr in eviction_set:
            machine.execute(load(vaddr))
    paddr = machine.memory.vm.translate(target_vaddr)
    return not machine.memory.hierarchy.is_cached(paddr)


def find_eviction_set_by_timing(
    machine: Machine,
    target_vaddr: int,
    pool_base: int,
    pool_len: int,
    size: int | None = None,
    miss_threshold_cycles: int | None = None,
    seed: int = 0,
    max_candidates: int = 4096,
    sweep_rounds: int = 2,
) -> list[int]:
    """Eviction-set construction without pagemap (timing side channel).

    Group-testing reduction: start from all pool pages sharing the
    target's page offset (a superset that evicts if any subset does),
    confirm it evicts by timing a target reload, then repeatedly split the
    working set into ``size + 1`` groups and drop any group whose removal
    still leaves the target evicted.  This is the technique the paper
    alludes to for "attacks that rely on side-channel information to make
    inferences about the physical memory layout" (Section 5.2.1).
    """
    memsys = machine.memory
    llc = memsys.hierarchy.llc
    size = size if size is not None else llc.config.ways
    if miss_threshold_cycles is None:
        miss_threshold_cycles = llc.config.latency_cycles + 1
    page = memsys.vm.config.page_bytes
    line = llc.config.line_bytes
    offset = target_vaddr & (page - 1) & ~(line - 1)

    def evicts(candidates: list[int]) -> bool:
        # Real attackers cleanse residual cache state between trials with
        # a large sweep over scratch memory; simulate that cheaply with a
        # full flush so each trial starts from a clean hierarchy.
        memsys.hierarchy.flush_all()
        machine.execute(load(target_vaddr))
        for _ in range(sweep_rounds):
            for vaddr in candidates:
                machine.execute(load(vaddr))
        record = machine.execute(load(target_vaddr))
        return record.latency_cycles >= miss_threshold_cycles

    candidates = [
        base + offset
        for base in range(pool_base, pool_base + pool_len, page)
        if base + offset != target_vaddr
    ]
    rng = random.Random(seed)
    rng.shuffle(candidates)
    working = candidates[:max_candidates]
    if not evicts(working):
        raise EvictionSetError(
            "candidate pool does not evict the target; enlarge the pool"
        )

    stalled = False
    while len(working) > size and not stalled:
        n_groups = min(size + 1, len(working) - size + 1)
        group_len = -(-len(working) // n_groups)
        stalled = True
        for start in range(0, len(working), group_len):
            trial = working[:start] + working[start + group_len :]
            if len(trial) >= size and evicts(trial):
                working = trial
                stalled = False
                break
    if len(working) > 4 * size:
        raise EvictionSetError(
            f"timing reduction stalled at {len(working)} addresses (target {size})"
        )
    # Final pass: drop single leftovers that are not needed.
    index = 0
    while len(working) > size and index < len(working):
        trial = working[:index] + working[index + 1 :]
        if evicts(trial):
            working = trial
        else:
            index += 1
    if len(working) > size or not evicts(working):
        raise EvictionSetError(
            f"timing reduction stalled at {len(working)} addresses (target {size})"
        )
    return working
