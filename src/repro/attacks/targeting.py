"""Row targeting: mapping owned memory onto DRAM rows.

The attacks follow the real-world recipe (paper Section 2.3): allocate a
large buffer, use ``/proc/pagemap`` to translate its pages to physical
addresses, decode those through the (reverse-engineered) DRAM mapping, and
pick aggressor/victim rows from the rows the buffer happens to own.

Victim selection: real attackers "template" a module by hammering many
candidate triples and keeping the ones that flip fastest.  The resolver
supports both that interface (an arbitrary scoring callable) and a
convenience oracle backed by the simulated cell population, which stands
in for a prior templating campaign without simulating hours of scanning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..dram import DramCoord
from ..errors import EvictionSetError
from ..mem import MemorySystem


@dataclass(frozen=True)
class HammerTriple:
    """A double-sided hammer target: victim row and both aggressors.

    All virtual addresses lie inside attacker-owned memory.
    """

    bank_key: tuple[int, int]  # (rank, bank)
    victim_row: int
    victim_vaddr: int
    aggressor_low_vaddr: int  # row victim_row - 1
    aggressor_high_vaddr: int  # row victim_row + 1


class RowResolver:
    """Resolves attacker-owned virtual pages to DRAM rows."""

    def __init__(self, memsys: MemorySystem, privileged: bool = False) -> None:
        self.memsys = memsys
        self.privileged = privileged
        #: (rank, bank, row) -> first owned vaddr in that row
        self.rows: dict[tuple[int, int, int], int] = {}

    def scan_buffer(self, base_vaddr: int, length: int) -> int:
        """Translate every page of ``[base, base+length)`` and index it by
        DRAM row.  Returns the number of distinct rows discovered.

        Raises :class:`~repro.errors.PagemapRestrictedError` when the
        pagemap mitigation is active and the caller is unprivileged.
        """
        page = self.memsys.vm.config.page_bytes
        pagemap = self.memsys.pagemap
        mapping = self.memsys.mapping
        for vaddr in range(base_vaddr, base_vaddr + length, page):
            paddr = pagemap.virt_to_phys(vaddr, privileged=self.privileged)
            coord = mapping.decode(paddr)
            key = (coord.rank, coord.bank, coord.row)
            self.rows.setdefault(key, vaddr)
        return len(self.rows)

    # -- queries -------------------------------------------------------------

    def vaddr_in_row(self, rank: int, bank: int, row: int) -> int | None:
        """An owned virtual address inside the given row, if any."""
        return self.rows.get((rank, bank, row))

    def owned_triples(self) -> list[HammerTriple]:
        """All (victim-1, victim, victim+1) row triples fully owned by the
        attacker, grouped per bank."""
        triples = []
        for (rank, bank, row), victim_vaddr in self.rows.items():
            low = self.rows.get((rank, bank, row - 1))
            high = self.rows.get((rank, bank, row + 1))
            if low is not None and high is not None:
                triples.append(
                    HammerTriple(
                        bank_key=(rank, bank),
                        victim_row=row,
                        victim_vaddr=victim_vaddr,
                        aggressor_low_vaddr=low,
                        aggressor_high_vaddr=high,
                    )
                )
        return triples

    def choose_triple(
        self, score: Callable[[HammerTriple], float] | None = None
    ) -> HammerTriple:
        """Pick the hammer target.

        ``score`` maps a triple to a figure of merit (lower is better);
        by default the first triple in bank order is used.  Pass
        :meth:`templating_oracle` to model a completed templating scan.
        """
        triples = self.owned_triples()
        if not triples:
            raise EvictionSetError(
                "no fully owned aggressor/victim row triple; allocate a "
                "larger buffer"
            )
        if score is None:
            return min(
                triples, key=lambda t: (t.bank_key, t.victim_row)
            )
        return min(triples, key=score)

    def templating_oracle(self) -> Callable[[HammerTriple], float]:
        """A scoring callable that ranks triples by the victim row's flip
        threshold — the outcome a real attacker obtains by templating the
        module (hammering every candidate and timing the first flip)."""
        device = self.memsys.device
        mapping = self.memsys.mapping

        def score(triple: HammerTriple) -> float:
            rank, bank = triple.bank_key
            coord = DramCoord(rank=rank, bank=bank, row=triple.victim_row, col=0)
            return device.row_threshold(coord)

        del mapping  # decode not needed: coordinates are explicit
        return score

    def far_row_vaddr(self, bank_key: tuple[int, int], away_from: int, min_distance: int = 64) -> int:
        """An owned address in the same bank at least ``min_distance`` rows
        from ``away_from`` — the dummy row a single-sided attack uses to
        force the row buffer closed."""
        rank, bank = bank_key
        for (r, b, row), vaddr in self.rows.items():
            if (r, b) == (rank, bank) and abs(row - away_from) >= min_distance:
                return vaddr
        raise EvictionSetError("no owned far row in the target bank")
