"""Blind rowhammering: no pagemap, no templating (paper Section 5.2.1).

After the pagemap interface was restricted, the paper observes that
"certain attacks such as the NaCl sandbox escape attack can be
implemented by repeatedly picking two random addresses without having any
knowledge of the physical address mapping".  This attack does exactly
that: it rotates through random address pairs, hammering each pair
CLFLUSH-free for a slice of time.  A pair whose addresses share a bank
hammers the rows adjacent to both addresses (single-sided disturbance on
each); with B banks, roughly one pair in B lands in the same bank, so
persistence substitutes for knowledge.

Eviction sets are built with pagemap when it is available, and recovered
purely from reload timing (:func:`~repro.attacks.eviction
.find_eviction_set_by_timing`) when the kernel mitigation is active —
either way the hammering loop itself never needs a physical address.
"""

from __future__ import annotations

import random

from ..errors import PagemapRestrictedError
from ..sim.machine import Machine
from ..sim.ops import Op, compute, pair_load
from .base import RowhammerAttack
from .eviction import build_eviction_set, find_eviction_set_by_timing
from .patterns import AGGRESSOR, efficient_bit_plru_pattern


class BlindPairHammerAttack(RowhammerAttack):
    """Hammer randomly chosen address pairs, rotating periodically."""

    name = "blind-pair-hammer"
    accesses_per_unit = 1.0

    def __init__(
        self,
        pairs: int = 8,
        pair_ms: float = 2.0,
        pattern: list[int] | None = None,
        timing_pool_pages: int = 2048,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.pairs = pairs
        self.pair_ms = pair_ms
        self.pattern = pattern
        self.timing_pool_pages = timing_pool_pages
        self._machine: Machine | None = None
        self._targets: list[tuple[int, list[int], int, list[int]]] = []
        self._slice_iterations = 0

    # -- preparation -------------------------------------------------------------

    def _eviction_set(self, machine: Machine, target: int, base: int) -> list[int]:
        memsys = machine.memory
        try:
            return build_eviction_set(memsys, target, base, self.buffer_bytes)
        except PagemapRestrictedError:
            return find_eviction_set_by_timing(
                machine, target, base, self.buffer_bytes,
                max_candidates=self.timing_pool_pages,
                seed=self.seed ^ target,
            )

    def _build(self, machine: Machine) -> None:
        self._machine = machine
        memsys = machine.memory
        base = memsys.vm.mmap(self.buffer_bytes)
        rng = random.Random(self.seed ^ 0xB11D)
        page = memsys.vm.config.page_bytes
        n_pages = self.buffer_bytes // page
        ways = memsys.hierarchy.llc.config.ways
        if self.pattern is None:
            self.pattern = efficient_bit_plru_pattern(ways)
        for _ in range(self.pairs):
            va = base + rng.randrange(n_pages) * page
            vb = base + rng.randrange(n_pages) * page
            if va == vb:
                continue
            self._targets.append(
                (va, self._eviction_set(machine, va, base),
                 vb, self._eviction_set(machine, vb, base))
            )
        # Iterations to spend on each pair before rotating: pair_ms at the
        # nominal ~880-cycle iteration.
        cycles = machine.clock.cycles_from_ms(self.pair_ms)
        self._slice_iterations = max(1, cycles // 900)

    # -- hammering ----------------------------------------------------------------

    def _pair_iteration(self, target) -> list[Op]:
        va, set_x, vb, set_y = target
        return [
            pair_load(
                va if symbol == AGGRESSOR else set_x[symbol],
                vb if symbol == AGGRESSOR else set_y[symbol],
            )
            for symbol in self.pattern
        ]

    def iteration_ops(self) -> list[Op]:
        """One full rotation: every pair hammered for its time slice."""
        ops: list[Op] = []
        for target in self._targets:
            iteration = self._pair_iteration(target)
            for _ in range(self._slice_iterations):
                ops.extend(iteration)
            ops.append(compute(200))  # pair switch: new pointers, warmup
        return ops

    def pair_count(self) -> int:
        return len(self._targets)

    def same_bank_pairs(self) -> int:
        """Ground-truth diagnostic: how many chosen pairs share a bank."""
        if self._machine is None:
            return 0
        memsys = self._machine.memory
        count = 0
        for va, _, vb, _ in self._targets:
            a = memsys.row_of_vaddr(va)
            b = memsys.row_of_vaddr(vb)
            if a.bank_key == b.bank_key and a.row != b.row:
                count += 1
        return count
