"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration dataclass was constructed with invalid values."""


class AddressError(ReproError):
    """An address was out of range or misaligned for the operation."""


class TranslationError(AddressError):
    """A virtual address has no mapping in the simulated page tables."""


class AllocationError(ReproError):
    """The simulated virtual memory system could not satisfy an allocation."""


class PagemapRestrictedError(ReproError):
    """The simulated ``/proc/pagemap`` interface is restricted (post-2015
    kernel hardening) and the caller lacks privilege to read it."""


class ClflushRestrictedError(ReproError):
    """The CLFLUSH instruction has been disallowed on this machine
    (NaCl-style sandbox mitigation)."""


class PmuError(ReproError):
    """Invalid PMU programming (unknown event, bad sample period, ...)."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent state."""


class EvictionSetError(ReproError):
    """An eviction set could not be constructed for a target address."""


class SweepError(ReproError):
    """One or more sweep cells failed under the ``strict`` failure policy.

    ``failures`` holds the structured :class:`~repro.runner.JobResult`
    error records (``ok=False``) of every cell that exhausted its
    attempts; the surviving results are in ``results`` so a strict
    caller can still inspect (or salvage) the partial sweep.
    """

    def __init__(self, failures, results=None):
        self.failures = list(failures)
        self.results = list(results) if results is not None else []
        keys = ", ".join(r.key for r in self.failures[:5])
        if len(self.failures) > 5:
            keys += ", ..."
        super().__init__(
            f"{len(self.failures)} sweep cell(s) failed after retries: {keys}"
        )


class CacheCorruptionError(ReproError):
    """A result-cache entry failed its integrity check (bad magic, torn
    payload, or checksum mismatch)."""


class SnapshotError(ReproError):
    """A machine snapshot blob failed its integrity check (bad magic,
    truncated header, checksum mismatch, or unpicklable payload)."""


class SnapshotUnsupportedError(SnapshotError):
    """The value cannot be snapshotted deterministically — e.g. a cache
    replacement policy reports no canonical state (``state_key() is
    None``) or the object graph holds unpicklable state.  Callers fall
    back to cold execution instead of failing the cell."""
