"""Detector edge cases and failure injection."""

from __future__ import annotations

from repro.core import AnvilConfig, AnvilModule
from repro.core.detector import AnvilDetector
from repro.core.stats import AnvilStats
from repro.pmu import Event
from repro.presets import small_machine
from repro.sim import compute, load
from repro.units import MB


def scaled_config(**kwargs) -> AnvilConfig:
    defaults = dict(
        llc_miss_threshold=3_300, tc_ms=1.0, ts_ms=1.0,
        sampling_rate_hz=50_000, assumed_flip_accesses=30_000,
    )
    defaults.update(kwargs)
    return AnvilConfig(**defaults)


def test_untranslatable_samples_are_counted_not_fatal(attack_machine):
    """Samples whose page was unmapped between sampling and analysis are
    skipped and counted (real ANVIL faces exited processes)."""
    machine = attack_machine
    anvil = AnvilModule(machine, scaled_config())
    anvil.install()
    base = machine.memory.vm.mmap(32 * MB)
    # Drive misses so stage 2 runs, but feed the PMU some accesses whose
    # vaddrs will not translate during analysis: inject synthetic records.
    from repro.mem import MemoryAccess

    counter = [0]

    def stream():
        while True:
            counter[0] += 1
            yield load(base + (counter[0] * 64) % (32 * MB))
            # Give the phantom first claim on the next sampling slot by
            # advancing time before offering it.
            yield compute(200)
            record = MemoryAccess(
                vaddr=0xDEAD0000_0000 + counter[0] * 4096,
                paddr=0, is_store=False, level="DRAM",
                latency_cycles=150, llc_miss=True,
            )
            machine.pmu.on_access(record, machine.cycles)

    machine.run(stream(), max_cycles=machine.clock.cycles_from_ms(8))
    assert anvil.stats.stage2_windows > 0
    assert anvil.stats.untranslatable_samples > 0


def test_detector_stop_mid_stage2(attack_machine):
    """Stopping while stage 2 is armed must disable sampling and PMI cost."""
    machine = attack_machine
    stats = AnvilStats()
    detector = AnvilDetector(machine, scaled_config(), stats)
    detector.start()
    base = machine.memory.vm.mmap(32 * MB)
    counter = [0]

    def stream():
        while True:
            counter[0] += 1
            yield load(base + (counter[0] * 64) % (32 * MB))

    # Run just past the first stage-1 window so stage 2 arms.
    machine.run(stream(), max_cycles=machine.clock.cycles_from_ms(1.5))
    assert machine.pmi_cost_cycles > 0  # stage 2 active
    detector.stop()
    assert machine.pmi_cost_cycles == 0
    # Pending window timers become no-ops.
    machine.run(stream(), max_cycles=machine.clock.cycles_from_ms(2))
    assert stats.stage2_windows == 0  # the armed window never completed


def test_double_install_uninstall_idempotent(machine):
    anvil = AnvilModule(machine, scaled_config())
    anvil.install()
    anvil.install()
    machine.run([compute(1000)] * 5)
    anvil.uninstall()
    anvil.uninstall()
    assert not anvil.installed


def test_idle_machine_overhead_is_tiny(machine):
    """Stage-1 bookkeeping alone: far below 0.1% on an idle machine."""
    anvil = AnvilModule(machine, scaled_config())
    anvil.install()

    def stream():
        while True:
            yield compute(1000)

    machine.run(stream(), max_cycles=machine.clock.cycles_from_ms(50))
    assert machine.overhead_cycles / machine.cycles < 0.005


def test_stage1_counts_stores_toward_threshold(attack_machine):
    """The stage-1 gate uses LONGEST_LAT_CACHE_MISS, which includes store
    misses — a store-heavy attack cannot slip under the gate."""
    machine = attack_machine
    anvil = AnvilModule(machine, scaled_config())
    anvil.install()
    base = machine.memory.vm.mmap(32 * MB)
    from repro.sim import store

    counter = [0]

    def stream():
        while True:
            counter[0] += 1
            yield store(base + (counter[0] * 64) % (32 * MB))

    machine.run(stream(), max_cycles=machine.clock.cycles_from_ms(5))
    assert anvil.stats.stage1_triggers > 0
    assert machine.pmu.read(Event.MEM_STORE_UOPS_RETIRED_LLC_MISS) > 0


def test_detection_time_includes_refresh_work(attack_machine, fast_anvil_config):
    """The Detection timestamp is taken *after* the selective refreshes,
    matching Table 3's 'includes the time to identify and selectively
    refresh potential victim rows'."""
    from repro.attacks import DoubleSidedClflushAttack

    machine = attack_machine
    anvil = AnvilModule(machine, fast_anvil_config)
    anvil.install()
    attack = DoubleSidedClflushAttack(buffer_bytes=16 * MB)
    attack.run(machine, max_ms=5, stop_on_flip=False)
    detection = anvil.stats.detections[0]
    assert detection.refreshed_rows
    first_refresh_time = anvil.stats.refresh_times_cycles[0]
    assert detection.time_cycles >= first_refresh_time
