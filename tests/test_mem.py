"""Virtual memory, pagemap, and memory-system tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    AllocationError,
    ClflushRestrictedError,
    PagemapRestrictedError,
    TranslationError,
)
from repro.mem import VirtualMemory, VmConfig
from repro.presets import small_machine
from repro.units import MB


def make_vm(placement="scrambled", phys=64 * MB) -> VirtualMemory:
    return VirtualMemory(VmConfig(phys_bytes=phys, placement=placement,
                                  reserved_low_bytes=1 * MB))


# -- virtual memory ---------------------------------------------------------------


def test_mmap_returns_distinct_regions():
    vm = make_vm()
    a = vm.mmap(1 * MB)
    b = vm.mmap(1 * MB)
    assert abs(a - b) >= 1 * MB


def test_translate_unmapped_raises():
    vm = make_vm()
    with pytest.raises(TranslationError):
        vm.translate(0x1234)


def test_translation_stable():
    vm = make_vm()
    base = vm.mmap(64 * 1024)
    assert vm.translate(base + 5000) == vm.translate(base + 5000)


def test_offset_within_page_preserved():
    vm = make_vm()
    base = vm.mmap(8192)
    paddr = vm.translate(base + 123)
    assert paddr % 4096 == (base + 123) % 4096


def test_sequential_placement_is_contiguous():
    vm = make_vm(placement="sequential")
    base = vm.mmap(64 * 1024)
    first = vm.translate(base)
    for i in range(16):
        assert vm.translate(base + i * 4096) == first + i * 4096


def test_scrambled_placement_is_not_contiguous():
    vm = make_vm(placement="scrambled")
    base = vm.mmap(256 * 1024)
    deltas = {
        vm.translate(base + (i + 1) * 4096) - vm.translate(base + i * 4096)
        for i in range(32)
    }
    assert deltas != {4096}


def test_physically_contiguous_allocation():
    vm = make_vm(placement="scrambled")
    base = vm.mmap(128 * 1024, physically_contiguous=True)
    first = vm.translate(base)
    for i in range(32):
        assert vm.translate(base + i * 4096) == first + i * 4096


def test_out_of_memory():
    vm = make_vm(phys=2 * MB)
    with pytest.raises(AllocationError):
        vm.mmap(64 * MB)


def test_reserved_low_frames_not_allocated():
    vm = make_vm()
    base = vm.mmap(4 * MB)
    for i in range(0, 4 * MB, 4096):
        assert vm.translate(base + i) >= 1 * MB


def test_map_fixed():
    vm = make_vm()
    vm.map_fixed(0x10000000, 2 * MB)
    assert vm.translate(0x10000000 + 17) == 2 * MB + 17


def test_free_pages_decrease():
    vm = make_vm()
    before = vm.free_pages
    vm.mmap(1 * MB)
    assert vm.free_pages == before - 256


@settings(max_examples=40, deadline=None)
@given(offsets=st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1),
                        min_size=1, max_size=20))
def test_distinct_pages_get_distinct_frames(offsets):
    vm = make_vm()
    base = vm.mmap(1 * MB)
    frames = {vm.translate(base + off) // 4096 for off in offsets}
    pages = {(base + off) // 4096 for off in offsets}
    assert len(frames) == len(pages)


# -- pagemap ----------------------------------------------------------------------


def test_pagemap_translates(machine):
    base = machine.memory.vm.mmap(8192)
    assert machine.memory.pagemap.virt_to_phys(base) == machine.memory.vm.translate(base)


def test_pagemap_restricted_raises():
    machine = small_machine(pagemap_restricted=True)
    base = machine.memory.vm.mmap(8192)
    with pytest.raises(PagemapRestrictedError):
        machine.memory.pagemap.virt_to_phys(base)


def test_pagemap_restricted_allows_privileged():
    machine = small_machine(pagemap_restricted=True)
    base = machine.memory.vm.mmap(8192)
    assert machine.memory.pagemap.virt_to_phys(base, privileged=True) >= 0


# -- memory system ------------------------------------------------------------------


def test_access_path_levels(machine):
    base = machine.memory.vm.mmap(8192)
    first = machine.memory.access(base, 100_000)
    second = machine.memory.access(base, 200_000)
    assert first.level == "DRAM" and first.llc_miss
    assert second.level == "L1" and not second.llc_miss
    assert first.coord is not None and second.coord is None


def test_clflush_banned_machine():
    machine = small_machine(clflush_allowed=False)
    base = machine.memory.vm.mmap(8192)
    machine.memory.access(base, 0)
    with pytest.raises(ClflushRestrictedError):
        machine.memory.clflush(base, 100)


def test_listener_sees_accesses(machine):
    seen = []
    machine.memory.add_listener(seen.append)
    base = machine.memory.vm.mmap(8192)
    machine.memory.access(base, 0, is_store=True)
    assert len(seen) == 1 and seen[0].is_store


def test_word_io_via_virtual_addresses(machine):
    base = machine.memory.vm.mmap(8192)
    machine.memory.write_word(base + 8, 42)
    assert machine.memory.read_word(base + 8) == 42


def test_row_of_vaddr_matches_manual_decode(machine):
    base = machine.memory.vm.mmap(8192)
    coord = machine.memory.row_of_vaddr(base)
    paddr = machine.memory.vm.translate(base)
    assert coord == machine.memory.mapping.decode(paddr)
