"""Row-targeting tests: buffer scanning, triples, dummy rows."""

from __future__ import annotations

import pytest

from repro.attacks.targeting import RowResolver
from repro.errors import EvictionSetError, PagemapRestrictedError
from repro.presets import small_machine
from repro.units import MB


@pytest.fixture
def resolver(machine):
    base = machine.memory.vm.mmap(16 * MB)
    r = RowResolver(machine.memory)
    r.scan_buffer(base, 16 * MB)
    return machine, r


def test_scan_finds_rows(resolver):
    machine, r = resolver
    assert len(r.rows) > 100


def test_row_entries_translate_back(resolver):
    machine, r = resolver
    for (rank, bank, row), vaddr in list(r.rows.items())[:50]:
        coord = machine.memory.row_of_vaddr(vaddr)
        assert (coord.rank, coord.bank, coord.row) == (rank, bank, row)


def test_owned_triples_are_adjacent(resolver):
    machine, r = resolver
    triples = r.owned_triples()
    assert triples
    for t in triples[:20]:
        low = machine.memory.row_of_vaddr(t.aggressor_low_vaddr)
        high = machine.memory.row_of_vaddr(t.aggressor_high_vaddr)
        victim = machine.memory.row_of_vaddr(t.victim_vaddr)
        assert low.row == victim.row - 1
        assert high.row == victim.row + 1
        assert low.bank_key == victim.bank_key == high.bank_key


def test_choose_triple_deterministic_without_score(resolver):
    _, r = resolver
    assert r.choose_triple() == r.choose_triple()


def test_templating_oracle_prefers_weakest(resolver):
    machine, r = resolver
    score = r.templating_oracle()
    chosen = r.choose_triple(score)
    thresholds = [score(t) for t in r.owned_triples()]
    assert score(chosen) == min(thresholds)


def test_far_row_vaddr_distance(resolver):
    machine, r = resolver
    triple = r.choose_triple()
    dummy = r.far_row_vaddr(triple.bank_key, triple.victim_row, min_distance=64)
    coord = machine.memory.row_of_vaddr(dummy)
    assert coord.bank_key == tuple(triple.bank_key)
    assert abs(coord.row - triple.victim_row) >= 64


def test_no_triples_raises():
    machine = small_machine()
    base = machine.memory.vm.mmap(64 * 1024)  # 16 pages: no triples likely
    r = RowResolver(machine.memory)
    r.scan_buffer(base, 64 * 1024)
    if not r.owned_triples():
        with pytest.raises(EvictionSetError):
            r.choose_triple()


def test_restricted_pagemap_blocks_scan():
    machine = small_machine(pagemap_restricted=True)
    base = machine.memory.vm.mmap(1 * MB)
    r = RowResolver(machine.memory)
    with pytest.raises(PagemapRestrictedError):
        r.scan_buffer(base, 1 * MB)
