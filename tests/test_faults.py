"""repro.runner fault tolerance — deterministic injection, retry/timeout
recovery, failure policies, checkpoint/resume, cache integrity.

Fault specs ride inside worker payloads and fire *inside* the executing
process, so every recovery path here exercises the real machinery:
``crash`` hard-exits a pool worker (``BrokenProcessPool`` mid-sweep),
``hang`` sleeps past the per-cell deadline, ``error`` raises, and
``corrupt`` garbles the freshly written cache entry.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import SweepError
from repro.runner import (
    Fault,
    FaultInjector,
    FaultPlan,
    InjectedCrashError,
    Job,
    ResultCache,
    RetryPolicy,
    SweepJournal,
    SweepRunner,
    permanent_cells,
    sweep_id,
)


def grid_cell(a: int, b: str, seed: int) -> tuple:
    """A cheap deterministic cell: value is a pure function of (params, seed)."""
    return (a, b, seed, random.Random(seed).random())


def make_grid(n: int) -> list[Job]:
    return [Job.of(grid_cell, key=f"c/{i}", a=i, b="p") for i in range(n)]


def clean_reference(cells: list[Job], root_seed: int) -> dict:
    runner = SweepRunner(jobs=1, root_seed=root_seed)
    return {r.key: r for r in runner.run(cells)}


FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.001)


# -- plans are data, deterministically -----------------------------------------


def test_fault_plan_random_is_seed_deterministic():
    a = FaultPlan.random(7, 32, crashes=2, errors=1, hangs=1, corruptions=1)
    b = FaultPlan.random(7, 32, crashes=2, errors=1, hangs=1, corruptions=1)
    c = FaultPlan.random(8, 32, crashes=2, errors=1, hangs=1, corruptions=1)
    assert a == b
    assert a != c
    assert len(a.faults) == 5
    assert len(set(a.cells())) == 5  # sampled without replacement


def test_fault_plan_rejects_bad_shapes():
    with pytest.raises(ValueError):
        Fault("meteor", 0)
    with pytest.raises(ValueError):
        Fault("error", 0, attempts=())
    with pytest.raises(ValueError):
        FaultPlan.random(0, 3, crashes=2, errors=2)


def test_fault_fires_on_selected_attempts_only():
    transient = Fault("error", 0, attempts=(1, 2))
    permanent = Fault("error", 1, attempts=None)
    assert transient.fires_on(1) and transient.fires_on(2)
    assert not transient.fires_on(3)
    assert all(permanent.fires_on(a) for a in (1, 2, 3, 99))


def test_permanent_cells_names_manifest_exactly():
    plan = FaultPlan.of(
        Fault("error", 2, attempts=None),
        Fault("crash", 4, attempts=(1,)),
        Fault("corrupt", 5),
    )
    keys = [f"c/{i}" for i in range(8)]
    assert permanent_cells(plan, keys, max_attempts=3) == ["c/2"]


def test_injector_spec_matches_by_key_too():
    plan = FaultPlan.of(Fault("error", "c/3", attempts=(2,)))
    injector = FaultInjector(plan)
    assert injector.spec_for(3, "c/3", 1) is None
    assert injector.spec_for(3, "c/3", 2) is not None
    assert injector.tripped == [("c/3", "error", 2)]


# -- retry / policy semantics (serial: no process pool involved) ----------------


def test_transient_error_recovers_via_retry():
    cells = make_grid(6)
    plan = FaultPlan.of(Fault("error", 2, attempts=(1,)))
    runner = SweepRunner(jobs=1, root_seed=9, retry=FAST_RETRY, fault_plan=plan)
    results = runner.run(cells)
    assert all(r.ok for r in results)
    assert {r.key: r for r in results} == clean_reference(cells, 9)
    assert runner.last_stats["retries"] == 1
    recovered = results[2]
    assert recovered.attempts == 2


def test_permanent_error_strict_raises_sweep_error():
    cells = make_grid(6)
    plan = FaultPlan.of(Fault("error", 4, attempts=None))
    runner = SweepRunner(jobs=1, root_seed=9, retry=FAST_RETRY, fault_plan=plan)
    with pytest.raises(SweepError) as excinfo:
        runner.run(cells)
    assert [r.key for r in excinfo.value.failures] == ["c/4"]
    assert len(excinfo.value.results) == len(cells)
    # The failure is a structured record, not a lost exception.
    (failure,) = excinfo.value.failures
    assert not failure.ok
    assert failure.error_type == "InjectedFaultError"
    assert failure.attempts == 3


def test_permanent_error_degrade_returns_manifest():
    cells = make_grid(6)
    plan = FaultPlan.of(Fault("error", 4, attempts=None))
    runner = SweepRunner(jobs=1, root_seed=9, policy="degrade",
                         retry=FAST_RETRY, fault_plan=plan)
    results = runner.run(cells)
    assert len(results) == len(cells)
    assert runner.last_stats["failed"] == ["c/4"]
    assert [r.key for r in runner.last_failures] == ["c/4"]
    clean = clean_reference(cells, 9)
    assert all(r == clean[r.key] for r in results if r.ok)


def test_crash_fault_in_process_raises_instead_of_exiting():
    # Serial execution must never os._exit the parent interpreter.
    cells = make_grid(3)
    plan = FaultPlan.of(Fault("crash", 1, attempts=None))
    runner = SweepRunner(jobs=1, root_seed=9, policy="degrade",
                         retry=FAST_RETRY, fault_plan=plan)
    results = runner.run(cells)
    assert results[1].error_type == InjectedCrashError.__name__


def test_backoff_schedule_is_exponential_and_capped():
    policy = RetryPolicy(max_attempts=5, backoff_base_s=0.1, backoff_cap_s=0.3)
    assert policy.backoff_s(0) == 0.0
    assert policy.backoff_s(1) == pytest.approx(0.1)
    assert policy.backoff_s(2) == pytest.approx(0.2)
    assert policy.backoff_s(3) == pytest.approx(0.3)  # capped
    assert policy.backoff_s(9) == pytest.approx(0.3)


def test_backoff_jitter_is_keyed_deterministic_and_bounded():
    policy = RetryPolicy(max_attempts=5, backoff_base_s=0.1,
                         backoff_cap_s=0.8, jitter=0.5)
    # Same (key, failure count) -> the same delay, every time.
    assert policy.backoff_s(2, "c/1") == policy.backoff_s(2, "c/1")
    # The spread stays within +-jitter/2 of the exact exponential.
    for failures, base in ((1, 0.1), (2, 0.2), (3, 0.4)):
        for key in (f"c/{i}" for i in range(32)):
            delay = policy.backoff_s(failures, key)
            assert base * 0.75 <= delay <= base * 1.25
    # Sibling cells that failed together spread out, not retry in lockstep.
    delays = {policy.backoff_s(1, f"c/{i}") for i in range(32)}
    assert len(delays) > 16
    # No key (or jitter=0) -> the exact legacy schedule.
    assert policy.backoff_s(2) == pytest.approx(0.2)
    flat = RetryPolicy(backoff_base_s=0.1, jitter=0.0)
    assert flat.backoff_s(1, "c/1") == pytest.approx(0.1)
    with pytest.raises(Exception):
        RetryPolicy(jitter=1.5)


def test_freeze_fault_in_process_raises_like_a_failure():
    # Outside a fleet connection there is nothing to mute: a freeze
    # surfaces as an ordinary injected failure and retries recover it.
    from repro.runner import InjectedFreezeError

    cells = make_grid(3)
    plan = FaultPlan.of(Fault("freeze", 1, attempts=None))
    runner = SweepRunner(jobs=1, root_seed=9, policy="degrade",
                         retry=FAST_RETRY, fault_plan=plan)
    results = runner.run(cells)
    assert results[1].error_type == InjectedFreezeError.__name__
    assert results[0].ok and results[2].ok


# -- pool recovery: crashes, hangs/timeouts, mid-sweep BrokenProcessPool --------


def test_worker_crash_mid_sweep_recovers_on_fresh_pool():
    cells = make_grid(10)
    plan = FaultPlan.of(Fault("crash", 3, attempts=(1,)))
    runner = SweepRunner(jobs=2, root_seed=11, retry=FAST_RETRY,
                         fault_plan=plan)
    results = runner.run(cells)
    assert all(r.ok for r in results)
    assert {r.key: r for r in results} == clean_reference(cells, 11)
    stats = runner.last_stats
    if stats["mode"] == "parallel":  # sandboxes without fork degrade serially
        assert stats["pool_breaks"] >= 1
        assert stats["retries"] >= 1


def test_hang_fault_trips_timeout_and_recovers():
    cells = make_grid(8)
    plan = FaultPlan.of(Fault("hang", 5, attempts=(1,), hang_s=1.0))
    runner = SweepRunner(
        jobs=2, root_seed=13,
        retry=RetryPolicy(max_attempts=3, backoff_base_s=0.001, timeout_s=0.2),
        fault_plan=plan,
    )
    results = runner.run(cells)
    assert all(r.ok for r in results)
    assert {r.key: r for r in results} == clean_reference(cells, 13)
    if runner.last_stats["mode"] == "parallel":
        assert runner.last_stats["timeouts"] >= 1


def test_acceptance_crash_error_hang_in_32_cell_sweep():
    """The ISSUE acceptance scenario: >=1 crash, >=1 permanent exception,
    >=1 hang/timeout in a >=32-cell sweep under ``degrade`` — the sweep
    completes, the manifest lists exactly the permanent cells, and every
    survivor is bit-identical to a clean serial run."""
    cells = make_grid(36)
    clean = clean_reference(cells, 5)
    plan = FaultPlan.of(
        Fault("crash", 3, attempts=(1,)),
        Fault("error", 10, attempts=None),
        Fault("hang", 17, attempts=(1,), hang_s=1.0),
    )
    runner = SweepRunner(
        jobs=2, root_seed=5, policy="degrade",
        retry=RetryPolicy(max_attempts=3, backoff_base_s=0.01, timeout_s=0.3),
        fault_plan=plan,
    )
    results = runner.run(cells)
    assert len(results) == len(cells)
    assert runner.last_stats["failed"] == permanent_cells(
        plan, [j.key for j in cells], runner.retry.max_attempts
    ) == ["c/10"]
    survivors = [r for r in results if r.ok]
    assert len(survivors) == len(cells) - 1
    assert all(r == clean[r.key] for r in survivors)
    if runner.last_stats["mode"] == "parallel":
        assert runner.last_stats["pool_breaks"] >= 1
        assert runner.last_stats["timeouts"] >= 1


# -- checkpoint / resume --------------------------------------------------------


def test_resume_recomputes_only_unfinished_cells(tmp_path):
    cells = make_grid(8)
    journal_path = tmp_path / "sweep.journal"
    plan = FaultPlan.of(Fault("error", 5, attempts=None))
    first = SweepRunner(jobs=1, root_seed=2, policy="degrade",
                        retry=FAST_RETRY, checkpoint=journal_path,
                        fault_plan=plan)
    first.run(cells)
    assert journal_path.exists()  # failures remain -> journal kept

    resumed = SweepRunner(jobs=1, root_seed=2, policy="degrade",
                          checkpoint=journal_path)
    results = resumed.run(cells)
    assert resumed.last_stats["journal_hits"] == 7
    assert resumed.last_stats["executed"] == 1  # only the failed cell
    assert all(r.ok for r in results)
    assert {r.key: r for r in results} == clean_reference(cells, 2)
    assert not journal_path.exists()  # clean completion removes it


def test_journal_ignores_foreign_sweep(tmp_path):
    journal_path = tmp_path / "sweep.journal"
    cells_a = make_grid(4)
    SweepRunner(jobs=1, root_seed=2, policy="degrade", retry=FAST_RETRY,
                checkpoint=journal_path,
                fault_plan=FaultPlan.of(Fault("error", 0, attempts=None))
                ).run(cells_a)
    assert journal_path.exists()

    # A different grid under the same path must not replay foreign cells.
    cells_b = [Job.of(grid_cell, key=f"other/{i}", a=i, b="q")
               for i in range(4)]
    other = SweepRunner(jobs=1, root_seed=2, checkpoint=journal_path)
    other.run(cells_b)
    assert other.last_stats["journal_hits"] == 0
    assert other.last_stats["executed"] == 4


def test_journal_survives_torn_final_line(tmp_path):
    journal_path = tmp_path / "sweep.journal"
    cells = make_grid(5)
    SweepRunner(jobs=1, root_seed=3, policy="degrade", retry=FAST_RETRY,
                checkpoint=journal_path,
                fault_plan=FaultPlan.of(Fault("error", 4, attempts=None))
                ).run(cells)
    # Simulate a writer killed mid-append: torn, newline-less JSON tail.
    with journal_path.open("a", encoding="utf-8") as fh:
        fh.write('{"key": "c/999", "seed": 1, "value": "truncat')

    resumed = SweepRunner(jobs=1, root_seed=3, checkpoint=journal_path)
    results = resumed.run(cells)
    assert resumed.last_stats["journal_hits"] == 4
    assert resumed.last_stats["executed"] == 1
    assert {r.key: r for r in results} == clean_reference(cells, 3)


def test_sweep_journal_roundtrip_unit(tmp_path):
    from repro.runner import JobResult

    journal = SweepJournal(tmp_path / "j.jsonl")
    jid = sweep_id(1, ["a", "b"], "fp")
    journal.open_for(jid)
    assert journal.record(JobResult(key="a", value={"x": 1}, seed=7))
    # Unpicklable values are skipped, not fatal: the cell just recomputes.
    assert not journal.record(JobResult(key="b", value=lambda: 1, seed=8))
    journal.close()
    done = journal.load(jid)
    assert set(done) == {"a"}
    assert done["a"].value == {"x": 1}
    assert done["a"].seed == 7
    assert done["a"].resumed
    assert journal.load(sweep_id(2, ["a", "b"], "fp")) == {}


# -- injected cache corruption --------------------------------------------------


def test_corrupt_fault_garbles_entry_then_scrub_recovers(tmp_path):
    cells = make_grid(6)
    cache = ResultCache(tmp_path / "cache")
    plan = FaultPlan.of(Fault("corrupt", 2))
    writer = SweepRunner(jobs=1, root_seed=4, cache=cache, fault_plan=plan)
    writer.run(cells)

    # The corrupted entry is detected (checksum), quarantined, recomputed.
    warm_cache = ResultCache(tmp_path / "cache")
    warm = SweepRunner(jobs=1, root_seed=4, cache=warm_cache)
    results = warm.run(cells)
    assert warm.last_stats["cache_hits"] == 5
    assert warm.last_stats["executed"] == 1
    assert warm_cache.corrupt == 1
    assert warm_cache.quarantined == 1
    assert {r.key: r for r in results} == clean_reference(cells, 4)

    # The recompute re-stored a good entry: fully warm now, scrub is clean.
    third = SweepRunner(jobs=1, root_seed=4, cache=ResultCache(tmp_path / "cache"))
    third.run(cells)
    assert third.last_stats["executed"] == 0
    report = ResultCache(tmp_path / "cache").verify()
    assert report["corrupt"] == []
    assert report["ok"] == report["checked"] == 6
