"""ANVIL configuration tests (Table 2 and Section 4.5 presets)."""

from __future__ import annotations

import pytest

from repro.core import AnvilConfig
from repro.errors import ConfigError


def test_baseline_matches_table2():
    config = AnvilConfig.baseline()
    assert config.llc_miss_threshold == 20_000
    assert config.tc_ms == 6.0
    assert config.ts_ms == 6.0
    assert config.sampling_rate_hz == 5000.0


def test_light_halves_threshold():
    config = AnvilConfig.light()
    assert config.llc_miss_threshold == 10_000
    assert config.tc_ms == 6.0
    assert config.assumed_flip_accesses == 110_000


def test_heavy_shrinks_windows():
    config = AnvilConfig.heavy()
    assert config.tc_ms == 2.0
    assert config.ts_ms == 2.0
    assert config.llc_miss_threshold == 20_000


def test_min_hammer_rate_derivation():
    """Section 4.2: 220K accesses per 64 ms refresh period means at least
    ~20.6K within any 6 ms window — the basis of the 20K threshold."""
    config = AnvilConfig.baseline()
    assert 20_000 <= config.min_hammer_accesses_per_window <= 21_000
    assert config.hot_row_accesses == pytest.approx(
        0.5 * config.min_hammer_accesses_per_window
    )


def test_validation_rejects_bad_values():
    with pytest.raises(ConfigError):
        AnvilConfig(llc_miss_threshold=0)
    with pytest.raises(ConfigError):
        AnvilConfig(tc_ms=-1)
    with pytest.raises(ConfigError):
        AnvilConfig(hot_row_fraction=0)
    with pytest.raises(ConfigError):
        AnvilConfig(victim_radius=0)
    with pytest.raises(ConfigError):
        AnvilConfig(load_only_fraction=0.1, store_only_fraction=0.9)


def test_config_frozen():
    config = AnvilConfig.baseline()
    with pytest.raises(AttributeError):
        config.tc_ms = 1.0  # type: ignore[misc]
