"""Units, presets, and public-API surface tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.errors import ConfigError
from repro.presets import paper_machine, small_machine
from repro.units import GB, KB, MB, Clock, is_power_of_two, log2_exact


# -- units --------------------------------------------------------------------------


def test_size_constants():
    assert KB == 1024 and MB == 1024 ** 2 and GB == 1024 ** 3


def test_clock_defaults_to_paper_frequency():
    assert Clock().freq_hz == 2.6e9


def test_clock_conversions():
    clock = Clock(freq_hz=1e9)
    assert clock.cycles_from_ns(100) == 100
    assert clock.cycles_from_ms(1) == 1_000_000
    assert clock.ms_from_cycles(2_000_000) == 2.0
    assert clock.cycles_from_us(1) == 1000
    assert clock.s_from_cycles(1e9) == 1.0


def test_clock_rejects_nonpositive():
    with pytest.raises(ConfigError):
        Clock(freq_hz=0)


@settings(max_examples=50, deadline=None)
@given(ms=st.floats(min_value=0.001, max_value=10_000))
def test_clock_roundtrip(ms):
    clock = Clock()
    # cycles_from_ms rounds to an integer cycle, so the roundtrip can be
    # off by up to half a cycle in absolute terms.
    assert clock.ms_from_cycles(clock.cycles_from_ms(ms)) == pytest.approx(
        ms, rel=1e-6, abs=0.5 * 1e3 / clock.freq_hz
    )


def test_power_of_two_helpers():
    assert is_power_of_two(1) and is_power_of_two(4096)
    assert not is_power_of_two(0) and not is_power_of_two(12)
    assert log2_exact(4096) == 12
    with pytest.raises(ConfigError):
        log2_exact(12)


# -- presets ------------------------------------------------------------------------


def test_small_machine_geometry():
    machine = small_machine()
    assert machine.memory.controller.config.capacity_bytes == 64 * MB
    assert machine.memory.hierarchy.llc.config.ways == 12


def test_paper_machine_geometry():
    machine = paper_machine()
    config = machine.memory.controller.config
    assert config.capacity_bytes == 4 * GB
    assert config.disturbance.threshold_min == 220_000
    assert config.timings.retention_ms == 64.0


def test_paper_machine_refresh_scale():
    machine = paper_machine(refresh_scale=2.0)
    assert machine.memory.controller.config.timings.retention_ms == 32.0


def test_machines_independent():
    a = small_machine(seed=1)
    b = small_machine(seed=2)
    base_a = a.memory.vm.mmap(8192)
    base_b = b.memory.vm.mmap(8192)
    # Different VM seeds scramble pages differently.
    assert a.memory.vm.translate(base_a) != b.memory.vm.translate(base_b)


def test_small_machine_retention_override():
    machine = small_machine(retention_ms=16.0)
    assert machine.memory.controller.config.timings.retention_ms == 16.0


# -- public API -----------------------------------------------------------------------


def test_package_exports():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__ == "1.0.0"


def test_quickstart_surface():
    """The README quickstart's names all resolve."""
    from repro import (  # noqa: F401
        AnvilConfig,
        AnvilModule,
        ClflushFreeAttack,
        DoubleSidedClflushAttack,
        Machine,
        SingleSidedClflushAttack,
        paper_machine,
        small_machine,
    )
