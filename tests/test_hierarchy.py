"""Cache-hierarchy tests: inclusion, CLFLUSH, cumulative latencies."""

from __future__ import annotations

from repro.cache import CacheConfig, CacheHierarchy, HierarchyConfig
from repro.units import KB


def tiny_hierarchy() -> CacheHierarchy:
    """A miniature inclusive hierarchy with the real shape."""
    return CacheHierarchy(
        HierarchyConfig(
            l1=CacheConfig(name="L1", size_bytes=1 * KB, ways=2, latency_cycles=4),
            l2=CacheConfig(name="L2", size_bytes=2 * KB, ways=2, latency_cycles=12),
            llc=CacheConfig(
                name="L3", size_bytes=8 * KB, ways=4, latency_cycles=29,
                policy="bit-plru",
            ),
        )
    )


def test_first_access_misses_to_dram():
    h = tiny_hierarchy()
    result = h.access(0x1000)
    assert result.level == "DRAM"
    assert result.llc_miss


def test_second_access_hits_l1_with_l1_latency():
    h = tiny_hierarchy()
    h.access(0x1000)
    result = h.access(0x1000)
    assert result.level == "L1"
    assert result.latency_cycles == 4


def test_llc_hit_uses_total_llc_latency():
    h = tiny_hierarchy()
    h.access(0x0)
    # Evict from L1/L2 (2-way) with two conflicting lines, keeping LLC copy.
    l1_sets = h.l1.config.sets_per_slice
    for i in (1, 2):
        h.access(i * l1_sets * 64)
    result = h.access(0x0)
    assert result.level in ("L2", "L3")
    if result.level == "L3":
        assert result.latency_cycles == 29


def test_miss_latency_includes_overhead():
    h = tiny_hierarchy()
    result = h.access(0x2000)
    assert result.latency_cycles == 29 + h.config.miss_overhead_cycles


def test_clflush_removes_from_all_levels():
    h = tiny_hierarchy()
    h.access(0x1000)
    assert h.is_cached(0x1000)
    cost = h.clflush(0x1000)
    assert cost == h.config.clflush_cycles
    assert not h.is_cached(0x1000)
    assert h.access(0x1000).level == "DRAM"


def test_inclusive_llc_eviction_back_invalidates():
    """When a line leaves the LLC it must leave L1/L2 too — the property
    that makes the CLFLUSH-free attack possible (Section 2.2)."""
    h = tiny_hierarchy()
    llc = h.llc
    target = 0x0
    h.access(target)
    # Access enough same-LLC-set lines to evict the target from the LLC.
    llc_set_stride = llc.config.sets_per_slice * 64
    conflicts = [target + (i + 1) * llc_set_stride for i in range(8)]
    for addr in conflicts:
        h.access(addr)
    assert not llc.probe(target)
    assert not h.l1.probe(target) and not h.l2.probe(target)


def test_fill_propagates_to_all_levels():
    h = tiny_hierarchy()
    h.access(0x3000)
    assert h.l1.probe(0x3000)
    assert h.l2.probe(0x3000)
    assert h.llc.probe(0x3000)


def test_flush_all_cold_restart():
    h = tiny_hierarchy()
    h.access(0x40)
    h.flush_all()
    assert h.access(0x40).level == "DRAM"


def test_default_config_is_sandy_bridge():
    h = CacheHierarchy()
    assert h.llc.config.ways == 12
    assert h.llc.config.policy == "bit-plru"
    assert h.llc.config.slices == 2
    assert h.l1.config.size_bytes == 32 * KB
