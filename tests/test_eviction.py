"""Eviction-set construction tests."""

from __future__ import annotations

import pytest

from repro.attacks.eviction import (
    build_eviction_set,
    conflict_candidates,
    find_eviction_set_by_timing,
    verify_eviction_set,
)
from repro.errors import EvictionSetError, PagemapRestrictedError
from repro.presets import small_machine
from repro.sim import load
from repro.units import MB


@pytest.fixture
def pool(machine):
    base = machine.memory.vm.mmap(8 * MB)
    target = base + 64
    return machine, base, target


def test_conflict_candidates_share_set(pool):
    machine, base, target = pool
    memsys = machine.memory
    candidates = conflict_candidates(memsys, target, base, 8 * MB)
    assert len(candidates) >= 12
    target_paddr = memsys.vm.translate(target)
    llc = memsys.hierarchy.llc
    for vaddr in candidates:
        assert llc.same_set(memsys.vm.translate(vaddr), target_paddr)
        assert vaddr != target


def test_build_eviction_set_default_size(pool):
    machine, base, target = pool
    eset = build_eviction_set(machine.memory, target, base, 8 * MB)
    assert len(eset) == machine.memory.hierarchy.llc.config.ways


def test_build_eviction_set_pool_too_small(pool):
    machine, base, target = pool
    with pytest.raises(EvictionSetError):
        build_eviction_set(machine.memory, target, base, 64 * 1024)


def test_eviction_set_actually_evicts(pool):
    machine, base, target = pool
    eset = build_eviction_set(machine.memory, target, base, 8 * MB)
    assert verify_eviction_set(machine, target, eset)


def test_non_conflicting_addresses_do_not_evict(pool):
    machine, base, target = pool
    # 12 arbitrary other pages: land in other sets, target survives.
    others = [base + (i + 100) * 4096 for i in range(12)]
    paddr = machine.memory.vm.translate(target)
    llc = machine.memory.hierarchy.llc
    others = [v for v in others if not llc.same_set(machine.memory.vm.translate(v), paddr)]
    assert not verify_eviction_set(machine, target, others)


def test_pagemap_restriction_blocks_builder():
    machine = small_machine(pagemap_restricted=True)
    base = machine.memory.vm.mmap(1 * MB)
    with pytest.raises(PagemapRestrictedError):
        build_eviction_set(machine.memory, base, base, 1 * MB)


def test_pagemap_restriction_privileged_override():
    machine = small_machine(pagemap_restricted=True)
    base = machine.memory.vm.mmap(8 * MB)
    eset = build_eviction_set(machine.memory, base + 64, base, 8 * MB, privileged=True)
    assert len(eset) == 12


def test_timing_based_eviction_set_without_pagemap():
    """The side-channel fallback of Section 5.2.1: pagemap restricted,
    eviction set recovered purely from reload timing."""
    machine = small_machine(pagemap_restricted=True)
    base = machine.memory.vm.mmap(8 * MB)
    target = base + 64
    eset = find_eviction_set_by_timing(
        machine, target, base, 8 * MB, max_candidates=2048
    )
    assert len(eset) == machine.memory.hierarchy.llc.config.ways
    # The recovered set must evict the target.
    machine.execute(load(target))
    for vaddr in eset:
        machine.execute(load(vaddr))
    record = machine.execute(load(target))
    assert record.level == "DRAM"
