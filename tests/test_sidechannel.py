"""Evict+Reload side-channel tests (paper Section 2.2's closing remark)."""

from __future__ import annotations

import random

from repro.presets import small_machine
from repro.sidechannel import EvictReloadSpy, SharedSecretVictim
from repro.sidechannel.evict_reload import recover_secret
from repro.sim import load


def test_spy_evicts_probe_line(machine):
    probe = machine.memory.vm.mmap(4096) + 64
    spy = EvictReloadSpy(machine, probe)
    machine.execute(load(probe))
    assert machine.memory.hierarchy.is_cached(machine.memory.vm.translate(probe))
    spy.evict()
    assert not machine.memory.hierarchy.is_cached(machine.memory.vm.translate(probe))


def test_reload_latency_distinguishes_touched(machine):
    probe = machine.memory.vm.mmap(4096) + 64
    spy = EvictReloadSpy(machine, probe)
    # Victim touched the line: fast reload.
    spy.evict()
    machine.execute(load(probe))
    touched = spy.probe()
    # Victim did not touch it: slow reload.
    spy.evict()
    untouched = spy.probe()
    assert touched.inferred_bit == 1
    assert untouched.inferred_bit == 0
    assert untouched.reload_cycles > touched.reload_cycles


def test_full_secret_recovery():
    machine = small_machine()
    secret = [random.Random(5).randrange(2) for _ in range(64)]
    inferred, accuracy = recover_secret(machine, secret)
    assert accuracy == 1.0
    assert inferred == secret


def test_channel_works_with_clflush_banned():
    """The whole point: the channel needs no CLFLUSH."""
    machine = small_machine(clflush_allowed=False)
    secret = [1, 0, 1, 1, 0, 0, 1, 0] * 4
    _, accuracy = recover_secret(machine, secret)
    assert accuracy == 1.0


def test_victim_emits_bits_in_order(machine):
    probe = machine.memory.vm.mmap(4096)
    victim = SharedSecretVictim(machine, probe, [1, 0, 1])
    for _ in range(5):
        victim.step()
    assert victim.bits_emitted == 5
