"""Triple-engine equivalence: ``Machine.run_turbo`` vs ``run_fast`` vs ``run``.

The analytic fast-forward tier (:mod:`repro.sim.turbo`) promises bit-for-bit
identity with the reference interpreter while skipping whole workload
periods.  These tests drive triplet machines — one per engine — through the
same workloads and compare everything observable (same snapshot as the
fastpath suite: RunResult, PMU counters, sampler state, per-level cache
statistics and residency, controller/device statistics, open rows, flips).

Cells are chosen to exercise every engine regime:

* cache-resident stream → model converges, laps are *skipped* wholesale;
* pointer chase under ANVIL → stage-1 timers carve decision-point islands
  that run exactly, with model revalidation in between;
* CLFLUSH hammer loop → DRAM activations and bit flips happen *inside
  skipped laps* via disturbance replay;
* fallback paths (no steady program, ``until`` predicates, store traffic,
  access hooks, oversized programs) → clean delegation to the fast path.

Both kernel backends (numpy / stdlib) are exercised via ``REPRO_ACCEL``.
"""

from __future__ import annotations

from itertools import islice

import pytest

from tests.test_fastpath_equivalence import (
    build_machine,
    result_tuple,
    state_snapshot,
)

from repro.sim import turbo
from repro.sim.kernels import accel_signature
from repro.workloads import (
    HammerWorkload,
    PointerChaseWorkload,
    RandomAccessWorkload,
    StreamWorkload,
)

KB = 1024
MB = 1024 * KB

ENGINES = ("run", "run_fast", "run_turbo")


def run_triplet(make_workload, *, anvil=False, threshold_min=None,
                max_cycles, hook=None):
    """Run the same workload through all three engines on twin machines;
    return ({engine: (result_tuple, snapshot)}, turbo_stats)."""
    outcomes = {}
    turbo_stats = None
    for engine in ENGINES:
        machine = build_machine(anvil=anvil, threshold_min=threshold_min)
        if hook is not None:
            hook(machine)
        workload = make_workload()
        workload.prepare(machine)
        if engine == "run_turbo":
            result = machine.run_turbo(workload, max_cycles=max_cycles)
            turbo_stats = machine.turbo_stats
        else:
            result = getattr(machine, engine)(
                workload.ops(), max_cycles=max_cycles
            )
        outcomes[engine] = (result_tuple(result), state_snapshot(machine))
    return outcomes, turbo_stats


def assert_equivalent(outcomes):
    assert outcomes["run_fast"] == outcomes["run"]
    assert outcomes["run_turbo"] == outcomes["run"]


# -- skipping regimes -----------------------------------------------------------


def test_stream_skips_laps_bit_identically():
    outcomes, stats = run_triplet(
        lambda: StreamWorkload(buffer_bytes=512 * KB, stride=64, seed=1),
        max_cycles=20_000_000,
    )
    assert stats.engaged
    assert stats.laps_skipped > 0
    assert stats.ops_skipped > stats.ops_interpreted
    assert stats.accel == accel_signature()
    assert_equivalent(outcomes)


def test_pointer_chase_under_anvil_islands():
    """Stage-1 timers land inside laps: the engine must interleave exact
    'island' laps with skipping and revalidate the model afterwards."""
    outcomes, stats = run_triplet(
        lambda: PointerChaseWorkload(working_set_bytes=128 * KB, seed=3),
        anvil=True,
        max_cycles=20_000_000,
    )
    assert stats.engaged
    assert stats.laps_skipped > 0
    assert stats.laps_exact > 0  # decision-point islands ran exactly
    assert_equivalent(outcomes)


def test_hammer_flips_inside_skipped_laps():
    """Disturbance replay: activations recorded in the model must flip
    bits at the exact cycles interpretation would have."""
    outcomes, stats = run_triplet(
        lambda: HammerWorkload(aggressors=2, think_cycles=120, seed=5),
        threshold_min=20_000,
        max_cycles=30_000_000,
    )
    assert stats.engaged
    assert stats.laps_skipped > 0
    assert outcomes["run"][0][8] > 0  # new_flips in the reference run
    assert_equivalent(outcomes)


def test_hammer_under_anvil_with_sampling():
    """PEBS sampling shrinks the horizon to ~52K-cycle windows; selective
    refresh callbacks perturb state and force model rebuilds."""
    outcomes, stats = run_triplet(
        lambda: HammerWorkload(aggressors=2, think_cycles=120, seed=5),
        anvil=True,
        threshold_min=20_000,
        max_cycles=20_000_000,
    )
    assert stats.engaged
    assert stats.laps_skipped > 0
    assert_equivalent(outcomes)


# -- fallback paths --------------------------------------------------------------


def test_random_workload_falls_back():
    """No steady period → clean delegation to the fast path."""
    outcomes, stats = run_triplet(
        lambda: RandomAccessWorkload(working_set_bytes=1 * MB, seed=2),
        max_cycles=2_000_000,
    )
    assert not stats.engaged
    assert stats.disengage_reason == "no steady program"
    assert stats.laps_skipped == 0
    assert_equivalent(outcomes)


def test_store_fraction_falls_back():
    outcomes, stats = run_triplet(
        lambda: StreamWorkload(buffer_bytes=256 * KB, stride=64,
                               store_fraction=0.25, seed=4),
        max_cycles=2_000_000,
    )
    assert not stats.engaged
    assert stats.disengage_reason == "no steady program"
    assert_equivalent(outcomes)


def test_until_predicate_falls_back():
    machine = build_machine()
    workload = StreamWorkload(buffer_bytes=256 * KB, stride=64, seed=6)
    workload.prepare(machine)
    result = machine.run_turbo(
        workload,
        max_cycles=2_000_000,
        until=lambda m: m.cycles > 500_000,
    )
    assert not machine.turbo_stats.engaged
    assert machine.turbo_stats.disengage_reason == "until predicate"
    assert result.stopped_by == "until"


def test_oversized_program_falls_back(monkeypatch):
    monkeypatch.setattr(turbo, "MAX_PROGRAM_OPS", 4)
    machine = build_machine()
    workload = HammerWorkload(aggressors=2, think_cycles=120, seed=5)
    workload.prepare(machine)
    machine.run_turbo(workload, max_cycles=1_000_000)
    assert not machine.turbo_stats.engaged
    assert machine.turbo_stats.disengage_reason == "program too large"


def test_access_hook_blocks_skipping():
    """Hooks observe every access, so no lap may be skipped — but the
    engine must still be bit-identical (everything runs exactly)."""
    seen = []

    def hook(machine):
        machine.add_access_hook(lambda op, rec: seen.append(1))

    outcomes, stats = run_triplet(
        lambda: HammerWorkload(aggressors=2, think_cycles=120, seed=5),
        threshold_min=30_000,
        max_cycles=1_000_000,
        hook=hook,
    )
    assert stats.engaged  # engagement is decided before hooks are checked
    assert stats.laps_skipped == 0
    assert_equivalent(outcomes)


# -- program fidelity ------------------------------------------------------------


@pytest.mark.parametrize(
    "make_workload",
    [
        lambda: StreamWorkload(buffer_bytes=64 * KB, stride=64, seed=7),
        lambda: StreamWorkload(buffer_bytes=64 * KB, stride=192, seed=7),
        lambda: PointerChaseWorkload(working_set_bytes=32 * KB, seed=8),
        lambda: HammerWorkload(aggressors=3, think_cycles=50, seed=9),
    ],
)
def test_steady_program_matches_ops_stream(make_workload):
    """The declared program, cycled, must reproduce ops() verbatim — the
    contract the whole fast-forward tier rests on."""
    machine = build_machine()
    workload = make_workload()
    workload.prepare(machine)
    program = workload.steady_program()
    assert program is not None
    assert len(program) > 0
    stream = list(islice(workload.ops(), 2 * len(program)))
    assert stream == program.ops * 2


# -- kernel backends -------------------------------------------------------------


@pytest.mark.parametrize("accel", ["0", "1"])
def test_backends_agree(monkeypatch, accel):
    """numpy and stdlib kernels must produce identical machines."""
    monkeypatch.setenv("REPRO_ACCEL", accel)
    outcomes, stats = run_triplet(
        lambda: HammerWorkload(aggressors=2, think_cycles=120, seed=5),
        threshold_min=20_000,
        max_cycles=5_000_000,
    )
    assert stats.engaged
    assert stats.laps_skipped > 0
    if accel == "0":
        assert stats.accel == "stdlib"
    assert_equivalent(outcomes)
