"""repro.runner — deterministic seeding, caching, and pool fallback.

The cells used here are module-level functions: runner jobs name their
callable by ``module:qualname`` spec so process-pool workers can import
them (lambdas and locals are rejected at Job construction).
"""

from __future__ import annotations

import os
import random
import warnings

import pytest

import repro.runner.backends.process as process_backend
import repro.runner.runner as runner_module
from repro.runner import (
    Job,
    JobResult,
    ResultCache,
    SweepRunner,
    canonical_repr,
    default_jobs,
    derive_seed,
    stable_hash,
)


def grid_cell(a: int, b: str, seed: int) -> tuple:
    """A cheap deterministic cell: value is a pure function of (params, seed)."""
    return (a, b, seed, random.Random(seed).random())


def seedless_cell(a: int) -> int:
    return a * 2


# -- seeding -----------------------------------------------------------------


def test_derive_seed_deterministic_and_bounded():
    assert derive_seed(7, "x") == derive_seed(7, "x")
    assert derive_seed(7, "x") != derive_seed(7, "y")
    assert derive_seed(7, "x") != derive_seed(8, "x")
    for key in ("a", "b", "sweep/mcf"):
        assert 0 <= derive_seed(0, key) < 2**32


def test_canonical_repr_is_order_insensitive_for_dicts():
    assert canonical_repr({"b": 1, "a": 2}) == canonical_repr({"a": 2, "b": 1})
    assert stable_hash({"b": 1, "a": 2}) == stable_hash({"a": 2, "b": 1})


def test_canonical_repr_rejects_default_object_repr():
    class Opaque:
        pass

    with pytest.raises(TypeError):
        canonical_repr(Opaque())


# -- jobs --------------------------------------------------------------------


def test_job_of_sorts_params_and_rejects_lambdas():
    j1 = Job.of(grid_cell, key="k", a=1, b="x")
    j2 = Job.of(grid_cell, key="k", b="x", a=1)
    assert j1.params == j2.params == (("a", 1), ("b", "x"))
    with pytest.raises(ValueError):
        Job.of(lambda: None, key="bad")


def test_job_auto_key_is_stable():
    j1 = Job.of(grid_cell, a=1, b="x")
    j2 = Job.of(grid_cell, a=1, b="x")
    j3 = Job.of(grid_cell, a=2, b="x")
    assert j1.key == j2.key != j3.key


def make_grid(n: int = 6) -> list[Job]:
    return [
        Job.of(grid_cell, key=f"grid/{a}/{b}", a=a, b=b)
        for a in range(n)
        for b in ("p", "q")
    ]


# -- determinism across worker counts ---------------------------------------


def test_parallel_results_identical_to_serial():
    cells = make_grid()
    serial = SweepRunner(jobs=1, root_seed=3).run(cells)
    parallel = SweepRunner(jobs=3, root_seed=3).run(cells)
    chunked = SweepRunner(jobs=2, root_seed=3, chunk_size=1).run(cells)
    assert serial == parallel == chunked
    # Seeds derive from (root_seed, key), never from worker identity.
    assert [r.seed for r in serial] == [
        derive_seed(3, job.key) for job in cells
    ]
    # A different root seed is a different experiment.
    assert SweepRunner(jobs=1, root_seed=4).run(cells) != serial


def test_explicit_job_seed_overrides_derivation():
    job = Job.of(grid_cell, key="k", seed=123, a=0, b="p")
    (result,) = SweepRunner(jobs=1, root_seed=99).run([job])
    assert result.seed == 123
    assert result.value == grid_cell(0, "p", 123)


def test_pass_seed_false_for_seedless_cells():
    job = Job.of(seedless_cell, key="k", pass_seed=False, a=21)
    assert SweepRunner(jobs=1).values([job]) == [42]


def test_duplicate_keys_rejected():
    cells = [Job.of(grid_cell, key="same", a=a, b="p") for a in (1, 2)]
    with pytest.raises(ValueError, match="duplicate"):
        SweepRunner(jobs=1).run(cells)


def test_default_jobs_reads_env(monkeypatch):
    monkeypatch.setenv(runner_module.JOBS_ENV, "5")
    assert SweepRunner().jobs == 5
    monkeypatch.setenv(runner_module.JOBS_ENV, "")
    assert SweepRunner().jobs == 1


def test_default_jobs_negative_clamps_to_serial_with_warning(monkeypatch):
    monkeypatch.setenv(runner_module.JOBS_ENV, "-3")
    monkeypatch.setattr(runner_module, "_warned_negative_jobs", False)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert default_jobs() == 1
    assert any("clamping to serial" in str(w.message) for w in caught)
    # The warning fires once; the clamp always holds (no ValueError from
    # ProcessPoolExecutor(max_workers=-3)).
    with warnings.catch_warnings(record=True) as again:
        warnings.simplefilter("always")
        assert SweepRunner().jobs == 1
    assert not again


# -- result cache ------------------------------------------------------------


def test_cache_hits_warm_run(tmp_path):
    cells = make_grid()
    runner = SweepRunner(jobs=1, root_seed=3, cache=tmp_path / "c")
    cold = runner.run(cells)
    assert runner.last_stats["executed"] == len(cells)
    assert runner.last_stats["cache_hits"] == 0

    warm_runner = SweepRunner(jobs=1, root_seed=3, cache=tmp_path / "c")
    warm = warm_runner.run(cells)
    assert warm_runner.last_stats["executed"] == 0
    assert warm_runner.last_stats["cache_hits"] == len(cells)
    assert all(r.cached for r in warm)
    # JobResult equality ignores the cached/duration bookkeeping fields.
    assert warm == cold


def test_cache_invalidates_on_param_or_seed_change(tmp_path):
    cache = ResultCache(tmp_path / "c")
    runner = SweepRunner(jobs=1, root_seed=3, cache=cache)
    runner.run([Job.of(grid_cell, key="k", a=1, b="p")])

    changed_param = SweepRunner(jobs=1, root_seed=3, cache=cache)
    changed_param.run([Job.of(grid_cell, key="k", a=2, b="p")])
    assert changed_param.last_stats["executed"] == 1

    changed_seed = SweepRunner(jobs=1, root_seed=8, cache=cache)
    changed_seed.run([Job.of(grid_cell, key="k", a=1, b="p")])
    assert changed_seed.last_stats["executed"] == 1

    unchanged = SweepRunner(jobs=1, root_seed=3, cache=cache)
    unchanged.run([Job.of(grid_cell, key="k", a=1, b="p")])
    assert unchanged.last_stats["executed"] == 0


def test_cache_mixed_hit_miss_preserves_order(tmp_path):
    cache = ResultCache(tmp_path / "c")
    first_half = make_grid()[:4]
    SweepRunner(jobs=1, root_seed=3, cache=cache).run(first_half)

    cells = make_grid()
    runner = SweepRunner(jobs=1, root_seed=3, cache=cache)
    results = runner.run(cells)
    assert runner.last_stats["cache_hits"] == 4
    assert runner.last_stats["executed"] == len(cells) - 4
    assert [r.key for r in results] == [job.key for job in cells]
    assert results == SweepRunner(jobs=1, root_seed=3).run(cells)


def test_cache_corrupt_entry_quarantined_not_rereads(tmp_path):
    cache = ResultCache(tmp_path / "c")
    job = Job.of(grid_cell, key="k", a=1, b="p")
    SweepRunner(jobs=1, root_seed=3, cache=cache).run([job])
    (entry,) = (tmp_path / "c").glob("*.pkl")
    entry.write_bytes(b"torn garbage, not a cache entry")

    warm_cache = ResultCache(tmp_path / "c")
    warm = SweepRunner(jobs=1, root_seed=3, cache=warm_cache)
    results = warm.run([job])
    assert warm.last_stats["executed"] == 1  # degraded to a miss...
    assert warm_cache.corrupt == 1
    # ...and the bad file left the lookup path on first detection.
    assert results == SweepRunner(jobs=1, root_seed=3).run([job])
    quarantined = list((tmp_path / "c" / "quarantine").glob("*.pkl"))
    assert [p.name for p in quarantined] == [entry.name]

    # The re-store healed the entry: the next run is a pure cache hit.
    healed = SweepRunner(jobs=1, root_seed=3, cache=ResultCache(tmp_path / "c"))
    healed.run([job])
    assert healed.last_stats["executed"] == 0


def test_cache_verify_scrub(tmp_path):
    cache = ResultCache(tmp_path / "c")
    cells = make_grid()[:4]
    SweepRunner(jobs=1, root_seed=3, cache=cache).run(cells)
    entries = sorted((tmp_path / "c").glob("*.pkl"))
    entries[0].write_bytes(b"\x00bitrot\x00")

    report = ResultCache(tmp_path / "c").verify()
    assert report["checked"] == 4
    assert report["ok"] == 3
    assert report["corrupt"] == [entries[0].stem]
    assert report["quarantined"] == 1
    # Scrub is idempotent: quarantined entries are out of the directory.
    assert ResultCache(tmp_path / "c").verify()["checked"] == 3


def test_cache_clear(tmp_path):
    cache = ResultCache(tmp_path / "c")
    runner = SweepRunner(jobs=1, cache=cache)
    runner.run(make_grid())
    assert cache.clear() > 0
    rerun = SweepRunner(jobs=1, cache=cache)
    rerun.run(make_grid())
    assert rerun.last_stats["executed"] == len(make_grid())


# -- serial fallback ---------------------------------------------------------


class _ExplodingPool:
    def __init__(self, *args, **kwargs):
        raise OSError("no processes in this sandbox")


def test_pool_failure_falls_back_to_serial(monkeypatch):
    monkeypatch.setattr(process_backend, "ProcessPoolExecutor", _ExplodingPool)
    cells = make_grid()
    runner = SweepRunner(jobs=4, root_seed=3)
    results = runner.run(cells)
    assert runner.last_stats["mode"] == "serial-fallback"
    assert results == SweepRunner(jobs=1, root_seed=3).run(cells)


def test_unpicklable_result_falls_back_to_serial():
    # A lambda *result* cannot cross the process boundary; the job itself
    # is importable.  The pool raises PicklingError and the runner retries
    # serially, where no pickling happens.
    cells = [
        Job.of(unpicklable_cell, key=f"u/{tag}", pass_seed=False, tag=tag)
        for tag in ("t0", "t1", "t2", "t3")
    ]
    runner = SweepRunner(jobs=2, root_seed=0)
    results = runner.run(cells)
    assert runner.last_stats["mode"] == "serial-fallback"
    assert [r.value()() for r in results] == ["t0", "t1", "t2", "t3"]


def unpicklable_cell(tag: str):
    return lambda: (lambda: tag)


class _AlwaysBrokenPool:
    """A pool whose every submit reports a dead worker — the repeated
    mid-sweep ``BrokenProcessPool`` shape (e.g. cgroup OOM-killing each
    fresh worker)."""

    def __init__(self, *args, **kwargs):
        pass

    def submit(self, fn, *args, **kwargs):
        from concurrent.futures.process import BrokenProcessPool

        raise BrokenProcessPool("worker died before the task ran")

    def shutdown(self, wait=True, cancel_futures=False):
        pass


def test_persistent_broken_pool_degrades_to_serial(monkeypatch):
    monkeypatch.setattr(process_backend, "ProcessPoolExecutor", _AlwaysBrokenPool)
    cells = make_grid()
    runner = SweepRunner(jobs=4, root_seed=3)
    results = runner.run(cells)
    assert runner.last_stats["mode"] == "serial-fallback"
    assert runner.last_stats["pool_breaks"] > 0
    assert results == SweepRunner(jobs=1, root_seed=3).run(cells)


def interruptible_cell(a: int, flag_path: str, seed: int) -> tuple:
    if a == 2 and os.path.exists(flag_path):
        raise KeyboardInterrupt
    return (a, seed)


def test_keyboard_interrupt_flushes_checkpoint_for_resume(tmp_path):
    flag = tmp_path / "interrupt-now"
    flag.touch()
    cells = [
        Job.of(interruptible_cell, key=f"k/{i}", a=i, flag_path=str(flag))
        for i in range(6)
    ]
    journal = tmp_path / "sweep.journal"
    runner = SweepRunner(jobs=1, root_seed=1, checkpoint=journal)
    with pytest.raises(KeyboardInterrupt):
        runner.run(cells)
    assert journal.exists()  # completed cells were flushed before the abort

    flag.unlink()  # "restart": the interrupt condition is gone
    resumed = SweepRunner(jobs=1, root_seed=1, checkpoint=journal)
    results = resumed.run(cells)
    assert resumed.last_stats["journal_hits"] == 2  # cells 0 and 1
    assert resumed.last_stats["executed"] == 4
    assert [r.key for r in results] == [job.key for job in cells]
    assert results == SweepRunner(jobs=1, root_seed=1).run(cells)
    assert not journal.exists()


def test_jobresult_equality_ignores_bookkeeping():
    a = JobResult(key="k", value=1, seed=2, cached=True, duration_s=0.5)
    b = JobResult(key="k", value=1, seed=2, cached=False, duration_s=9.9,
                  attempts=3, resumed=True)
    assert a == b
    # ...but a failure never equals a success.
    failed = JobResult(key="k", value=None, seed=2, ok=False,
                       error="boom", error_type="RuntimeError")
    assert failed != JobResult(key="k", value=None, seed=2)


# -- code fingerprint staleness ----------------------------------------------


def test_file_fingerprint_tracks_edits(tmp_path):
    from repro.runner.cache import _file_fingerprint, invalidate_fingerprints

    target = tmp_path / "cell_mod.py"
    target.write_text("X = 1\n")
    first = _file_fingerprint(str(target))
    # Unchanged file: the memo serves the same digest.
    assert _file_fingerprint(str(target)) == first

    # An edit must produce a fresh digest even in the same process (the
    # memo self-invalidates on the stat signature, not on process start).
    os.utime(target, ns=(1, 1))  # force a distinct mtime regardless of clock
    target.write_text("X = 2\n")
    second = _file_fingerprint(str(target))
    assert second != first

    # Reverting the content reverts the digest (content-addressed).
    target.write_text("X = 1\n")
    os.utime(target, ns=(2, 2))
    assert _file_fingerprint(str(target)) == first
    invalidate_fingerprints(str(target))
    assert _file_fingerprint(str(target)) == first


def test_tree_fingerprint_tracks_edits(tmp_path):
    from repro.runner.cache import _tree_fingerprint, invalidate_fingerprints

    root = tmp_path / "pkg"
    (root / "sub").mkdir(parents=True)
    (root / "a.py").write_text("A = 1\n")
    (root / "sub" / "b.py").write_text("B = 1\n")
    first = _tree_fingerprint(root)
    assert _tree_fingerprint(root) == first

    # Editing any file in the tree changes the digest...
    (root / "sub" / "b.py").write_text("B = 2\n")
    os.utime(root / "sub" / "b.py", ns=(1, 1))
    second = _tree_fingerprint(root)
    assert second != first
    # ...and so does adding a new one (the signature covers membership).
    (root / "c.py").write_text("C = 1\n")
    assert _tree_fingerprint(root) not in (first, second)

    invalidate_fingerprints()  # the big hammer clears every memo entry
    from repro.runner.cache import _fingerprints
    assert str(root) not in _fingerprints


def test_code_fingerprint_reflects_extra_module_edit(tmp_path):
    from repro.runner import code_fingerprint

    extra = tmp_path / "extra_cell.py"
    extra.write_text("def cell():\n    return 1\n")
    first = code_fingerprint(str(extra))
    assert code_fingerprint(str(extra)) == first

    extra.write_text("def cell():\n    return 2\n")
    os.utime(extra, ns=(1, 1))
    assert code_fingerprint(str(extra)) != first
