"""repro.runner — deterministic seeding, caching, and pool fallback.

The cells used here are module-level functions: runner jobs name their
callable by ``module:qualname`` spec so process-pool workers can import
them (lambdas and locals are rejected at Job construction).
"""

from __future__ import annotations

import random

import pytest

import repro.runner.runner as runner_module
from repro.runner import (
    Job,
    JobResult,
    ResultCache,
    SweepRunner,
    canonical_repr,
    derive_seed,
    stable_hash,
)


def grid_cell(a: int, b: str, seed: int) -> tuple:
    """A cheap deterministic cell: value is a pure function of (params, seed)."""
    return (a, b, seed, random.Random(seed).random())


def seedless_cell(a: int) -> int:
    return a * 2


# -- seeding -----------------------------------------------------------------


def test_derive_seed_deterministic_and_bounded():
    assert derive_seed(7, "x") == derive_seed(7, "x")
    assert derive_seed(7, "x") != derive_seed(7, "y")
    assert derive_seed(7, "x") != derive_seed(8, "x")
    for key in ("a", "b", "sweep/mcf"):
        assert 0 <= derive_seed(0, key) < 2**32


def test_canonical_repr_is_order_insensitive_for_dicts():
    assert canonical_repr({"b": 1, "a": 2}) == canonical_repr({"a": 2, "b": 1})
    assert stable_hash({"b": 1, "a": 2}) == stable_hash({"a": 2, "b": 1})


def test_canonical_repr_rejects_default_object_repr():
    class Opaque:
        pass

    with pytest.raises(TypeError):
        canonical_repr(Opaque())


# -- jobs --------------------------------------------------------------------


def test_job_of_sorts_params_and_rejects_lambdas():
    j1 = Job.of(grid_cell, key="k", a=1, b="x")
    j2 = Job.of(grid_cell, key="k", b="x", a=1)
    assert j1.params == j2.params == (("a", 1), ("b", "x"))
    with pytest.raises(ValueError):
        Job.of(lambda: None, key="bad")


def test_job_auto_key_is_stable():
    j1 = Job.of(grid_cell, a=1, b="x")
    j2 = Job.of(grid_cell, a=1, b="x")
    j3 = Job.of(grid_cell, a=2, b="x")
    assert j1.key == j2.key != j3.key


def make_grid(n: int = 6) -> list[Job]:
    return [
        Job.of(grid_cell, key=f"grid/{a}/{b}", a=a, b=b)
        for a in range(n)
        for b in ("p", "q")
    ]


# -- determinism across worker counts ---------------------------------------


def test_parallel_results_identical_to_serial():
    cells = make_grid()
    serial = SweepRunner(jobs=1, root_seed=3).run(cells)
    parallel = SweepRunner(jobs=3, root_seed=3).run(cells)
    chunked = SweepRunner(jobs=2, root_seed=3, chunk_size=1).run(cells)
    assert serial == parallel == chunked
    # Seeds derive from (root_seed, key), never from worker identity.
    assert [r.seed for r in serial] == [
        derive_seed(3, job.key) for job in cells
    ]
    # A different root seed is a different experiment.
    assert SweepRunner(jobs=1, root_seed=4).run(cells) != serial


def test_explicit_job_seed_overrides_derivation():
    job = Job.of(grid_cell, key="k", seed=123, a=0, b="p")
    (result,) = SweepRunner(jobs=1, root_seed=99).run([job])
    assert result.seed == 123
    assert result.value == grid_cell(0, "p", 123)


def test_pass_seed_false_for_seedless_cells():
    job = Job.of(seedless_cell, key="k", pass_seed=False, a=21)
    assert SweepRunner(jobs=1).values([job]) == [42]


def test_duplicate_keys_rejected():
    cells = [Job.of(grid_cell, key="same", a=a, b="p") for a in (1, 2)]
    with pytest.raises(ValueError, match="duplicate"):
        SweepRunner(jobs=1).run(cells)


def test_default_jobs_reads_env(monkeypatch):
    monkeypatch.setenv(runner_module.JOBS_ENV, "5")
    assert SweepRunner().jobs == 5
    monkeypatch.setenv(runner_module.JOBS_ENV, "")
    assert SweepRunner().jobs == 1


# -- result cache ------------------------------------------------------------


def test_cache_hits_warm_run(tmp_path):
    cells = make_grid()
    runner = SweepRunner(jobs=1, root_seed=3, cache=tmp_path / "c")
    cold = runner.run(cells)
    assert runner.last_stats["executed"] == len(cells)
    assert runner.last_stats["cache_hits"] == 0

    warm_runner = SweepRunner(jobs=1, root_seed=3, cache=tmp_path / "c")
    warm = warm_runner.run(cells)
    assert warm_runner.last_stats["executed"] == 0
    assert warm_runner.last_stats["cache_hits"] == len(cells)
    assert all(r.cached for r in warm)
    # JobResult equality ignores the cached/duration bookkeeping fields.
    assert warm == cold


def test_cache_invalidates_on_param_or_seed_change(tmp_path):
    cache = ResultCache(tmp_path / "c")
    runner = SweepRunner(jobs=1, root_seed=3, cache=cache)
    runner.run([Job.of(grid_cell, key="k", a=1, b="p")])

    changed_param = SweepRunner(jobs=1, root_seed=3, cache=cache)
    changed_param.run([Job.of(grid_cell, key="k", a=2, b="p")])
    assert changed_param.last_stats["executed"] == 1

    changed_seed = SweepRunner(jobs=1, root_seed=8, cache=cache)
    changed_seed.run([Job.of(grid_cell, key="k", a=1, b="p")])
    assert changed_seed.last_stats["executed"] == 1

    unchanged = SweepRunner(jobs=1, root_seed=3, cache=cache)
    unchanged.run([Job.of(grid_cell, key="k", a=1, b="p")])
    assert unchanged.last_stats["executed"] == 0


def test_cache_mixed_hit_miss_preserves_order(tmp_path):
    cache = ResultCache(tmp_path / "c")
    first_half = make_grid()[:4]
    SweepRunner(jobs=1, root_seed=3, cache=cache).run(first_half)

    cells = make_grid()
    runner = SweepRunner(jobs=1, root_seed=3, cache=cache)
    results = runner.run(cells)
    assert runner.last_stats["cache_hits"] == 4
    assert runner.last_stats["executed"] == len(cells) - 4
    assert [r.key for r in results] == [job.key for job in cells]
    assert results == SweepRunner(jobs=1, root_seed=3).run(cells)


def test_cache_clear(tmp_path):
    cache = ResultCache(tmp_path / "c")
    runner = SweepRunner(jobs=1, cache=cache)
    runner.run(make_grid())
    assert cache.clear() > 0
    rerun = SweepRunner(jobs=1, cache=cache)
    rerun.run(make_grid())
    assert rerun.last_stats["executed"] == len(make_grid())


# -- serial fallback ---------------------------------------------------------


class _ExplodingPool:
    def __init__(self, *args, **kwargs):
        raise OSError("no processes in this sandbox")


def test_pool_failure_falls_back_to_serial(monkeypatch):
    monkeypatch.setattr(runner_module, "ProcessPoolExecutor", _ExplodingPool)
    cells = make_grid()
    runner = SweepRunner(jobs=4, root_seed=3)
    results = runner.run(cells)
    assert runner.last_stats["mode"] == "serial-fallback"
    assert results == SweepRunner(jobs=1, root_seed=3).run(cells)


def test_unpicklable_result_falls_back_to_serial():
    # A lambda *result* cannot cross the process boundary; the job itself
    # is importable.  The pool raises PicklingError and the runner retries
    # serially, where no pickling happens.
    cells = [
        Job.of(unpicklable_cell, key=f"u/{tag}", pass_seed=False, tag=tag)
        for tag in ("t0", "t1", "t2", "t3")
    ]
    runner = SweepRunner(jobs=2, root_seed=0)
    results = runner.run(cells)
    assert runner.last_stats["mode"] == "serial-fallback"
    assert [r.value()() for r in results] == ["t0", "t1", "t2", "t3"]


def unpicklable_cell(tag: str):
    return lambda: (lambda: tag)


def test_jobresult_equality_ignores_bookkeeping():
    a = JobResult(key="k", value=1, seed=2, cached=True, duration_s=0.5)
    b = JobResult(key="k", value=1, seed=2, cached=False, duration_s=9.9)
    assert a == b
