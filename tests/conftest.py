"""Shared fixtures: small, fast machines with the full mechanism set."""

from __future__ import annotations

import pytest

from repro.core import AnvilConfig
from repro.presets import small_machine


@pytest.fixture
def machine():
    """A 64 MB-module machine with default (scrambled) page placement."""
    return small_machine()


@pytest.fixture
def seq_machine():
    """Same, but with sequential page placement for address-exact tests."""
    return small_machine(placement="sequential")


@pytest.fixture
def fast_anvil_config():
    """ANVIL scaled to the small machine: 1 ms windows, matching threshold.

    The small machine's weak rows flip at ~30K units; the config's assumed
    attack calibration matches, exactly as the paper's Table 2 parameters
    match its Table 1 measurement.
    """
    return AnvilConfig(
        llc_miss_threshold=3_300,
        tc_ms=1.0,
        ts_ms=1.0,
        sampling_rate_hz=50_000,
        assumed_flip_accesses=30_000,
    )


@pytest.fixture
def attack_machine():
    """Small machine with a 30K-unit flip threshold (pairs with
    ``fast_anvil_config``)."""
    return small_machine(threshold_min=30_000)
