"""Worker supervision: seeded restart backoff, same-address restart with
mid-sweep re-admission, and restart-budget retirement.

The subprocess tests spawn real ``python -m repro worker serve``
children through :class:`WorkerSupervisor`; environments that cannot
fork/exec skip them instead of failing.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.runner import (
    Job,
    RetryPolicy,
    SweepRunner,
    WorkerSupervisor,
)

ROOT_SEED = 17
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.001)


def pool_cell(a: int, seed: int) -> tuple:
    return (a, seed, random.Random(seed).random())


def make_grid(n: int) -> list[Job]:
    return [Job.of(pool_cell, key=f"c/{i}", a=i) for i in range(n)]


def clean_reference(cells):
    return {r.key: r for r in SweepRunner(jobs=1, root_seed=ROOT_SEED).run(cells)}


def start_supervisor(**kwargs) -> WorkerSupervisor:
    supervisor = WorkerSupervisor(**kwargs)
    try:
        supervisor.start()
    except OSError as exc:
        supervisor.stop()
        pytest.skip(f"cannot spawn worker subprocess here: {exc}")
    return supervisor


def wait_for(predicate, supervisor, timeout_s: float = 30.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        supervisor.poll()
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError("supervisor did not reach expected state in time")


# -- restart backoff (pure unit, no subprocesses) -------------------------------


def test_restart_backoff_is_seeded_exponential_and_capped():
    sup = WorkerSupervisor(workers=1, backoff_base_s=0.25, backoff_cap_s=4.0,
                           seed=7)
    assert sup.restart_backoff_s(0, 0) == 0.0

    # Same (seed, slot, restart) → same delay, every time and on a
    # fresh supervisor: the restart schedule is replayable.
    twin = WorkerSupervisor(workers=1, backoff_base_s=0.25, backoff_cap_s=4.0,
                            seed=7)
    schedule = [sup.restart_backoff_s(0, n) for n in range(1, 9)]
    assert schedule == [twin.restart_backoff_s(0, n) for n in range(1, 9)]

    # Jitter stays within [0.5x, 1.5x) of the exact exponential, and the
    # cap bounds the exponential itself.
    for n, delay in enumerate(schedule, start=1):
        exact = min(4.0, 0.25 * 2 ** (n - 1))
        assert 0.5 * exact <= delay < 1.5 * exact
    assert max(schedule) < 1.5 * 4.0

    # Sibling slots that died together do not restart in lockstep, and a
    # different seed yields a different schedule.
    first = [sup.restart_backoff_s(slot, 1) for slot in range(8)]
    assert len(set(first)) > 4
    other = WorkerSupervisor(workers=1, backoff_base_s=0.25, backoff_cap_s=4.0,
                             seed=8)
    assert [other.restart_backoff_s(0, n) for n in range(1, 9)] != schedule


def test_supervisor_rejects_bad_config():
    with pytest.raises(ValueError):
        WorkerSupervisor(workers=0)
    with pytest.raises(ValueError):
        WorkerSupervisor(max_restarts=-1)


# -- real subprocess supervision ------------------------------------------------


def test_killed_worker_restarts_on_same_address_and_serves_sweeps():
    sup = start_supervisor(workers=1, backoff_base_s=0.05, max_restarts=3,
                           spawn_timeout_s=30.0)
    try:
        [address] = sup.addresses()
        slot = sup.slots()[0]
        first_pid = slot.pids[0]

        slot.proc.kill()
        wait_for(lambda: sup.alive() == 1 and sup.restarts_total == 1, sup)

        slot = sup.slots()[0]
        assert slot.address == address  # the replacement re-bound the port
        assert slot.pids[0] == first_pid and len(slot.pids) == 2
        assert slot.pids[1] != first_pid
        assert slot.last_exit not in (None, 0)
        assert [e for e, *_ in sup.events].count("spawn") == 2
        assert any(e == "restart" for e, *_ in sup.events)

        # The restarted worker is a fully functional fleet member: a
        # sweep against its (unchanged) address is bit-identical to
        # serial.
        cells = make_grid(6)
        runner = SweepRunner(jobs=1, root_seed=ROOT_SEED, backend="tcp",
                             workers=[address], policy="degrade",
                             retry=FAST_RETRY)
        results = {r.key: r for r in runner.run(cells)}
        assert results == clean_reference(cells)
        assert runner.last_stats["failures"] == 0
    finally:
        sup.stop()
    assert sup.alive() == 0


def test_crash_looping_worker_is_retired_and_sweep_survives():
    sup = start_supervisor(workers=2, backoff_base_s=0.02, max_restarts=1,
                           spawn_timeout_s=30.0)
    try:
        addresses = sup.addresses()
        victim = sup.slots()[0]

        # First death consumes the whole budget (max_restarts=1)...
        victim.proc.kill()
        wait_for(lambda: sup.restarts_total == 1, sup)
        # ...so the second death retires the slot instead of respawning.
        sup.slots()[0].proc.kill()
        wait_for(lambda: sup.retired_total == 1, sup)

        victim = sup.slots()[0]
        assert victim.retired and victim.proc is None
        assert any(e == "retire" and i == 0 for e, i, _ in sup.events)
        # Retired means retired: further polls never resurrect it.
        for _ in range(5):
            sup.poll()
        assert sup.alive() == 1 and sup.restarts_total == 1

        # The fleet shrank but the sweep does not care: the runner loses
        # the dead address and completes bit-identically on the survivor.
        cells = make_grid(6)
        runner = SweepRunner(jobs=2, root_seed=ROOT_SEED, backend="tcp",
                             workers=addresses, policy="degrade",
                             retry=FAST_RETRY)
        results = {r.key: r for r in runner.run(cells)}
        assert results == clean_reference(cells)
        assert runner.last_stats["failures"] == 0
    finally:
        sup.stop()
