"""Epoch-model, background-mix, and analysis-helper tests."""

from __future__ import annotations

import pytest

from repro.analysis import format_figure_series, format_table, geomean, percent
from repro.analysis.metrics import normalized_times_summary
from repro.core import AnvilConfig
from repro.dram.config import DramTimings
from repro.sim.epoch import (
    EpochModel,
    double_refresh_normalized_time,
    refresh_duty,
)
from repro.workloads import BackgroundMix, spec_profile
from repro.workloads.background import interleave


# -- epoch model --------------------------------------------------------------------


def test_epoch_model_deterministic():
    model = EpochModel(spec_profile("bzip2"), AnvilConfig.baseline(), seed=5)
    a = model.run(10.0)
    b = EpochModel(spec_profile("bzip2"), AnvilConfig.baseline(), seed=5).run(10.0)
    assert a.superfluous_refreshes == b.superfluous_refreshes
    assert a.overhead_cycles == b.overhead_cycles


def test_epoch_model_seed_sensitivity():
    a = EpochModel(spec_profile("bzip2"), seed=1).run(10.0)
    b = EpochModel(spec_profile("bzip2"), seed=2).run(10.0)
    assert (a.stage1_triggers, a.superfluous_refreshes) != (
        b.stage1_triggers, b.superfluous_refreshes,
    ) or a.stage1_triggers > 0


def test_heavy_group_always_triggers():
    result = EpochModel(spec_profile("mcf"), AnvilConfig.baseline()).run(10.0)
    assert result.trigger_fraction > 0.9


def test_light_group_rarely_triggers():
    result = EpochModel(spec_profile("hmmer"), AnvilConfig.baseline()).run(10.0)
    assert result.trigger_fraction < 0.05
    assert result.superfluous_refreshes == 0


def test_overhead_tracks_trigger_fraction():
    heavy = EpochModel(spec_profile("mcf"), AnvilConfig.baseline()).run(10.0)
    light = EpochModel(spec_profile("hmmer"), AnvilConfig.baseline()).run(10.0)
    assert heavy.overhead_fraction > 5 * light.overhead_fraction


def test_overhead_within_paper_regime():
    """Worst-case ANVIL slowdown in the paper is 3.18%; average ~1.17%."""
    results = [
        EpochModel(spec_profile(n), AnvilConfig.baseline()).run(10.0)
        for n in ("mcf", "libquantum", "hmmer", "gobmk")
    ]
    for result in results:
        assert result.normalized_time < 1.045
    assert results[0].normalized_time > 1.01  # mcf pays for sampling


def test_light_config_raises_fp_rate():
    base = EpochModel(spec_profile("gcc"), AnvilConfig.baseline(), seed=3).run(60.0)
    light = EpochModel(
        spec_profile("gcc"), AnvilConfig.light(), config_name="ANVIL-light", seed=3
    ).run(60.0)
    assert light.fp_refreshes_per_sec >= base.fp_refreshes_per_sec


def test_refresh_penalty_applied_only_when_scaled():
    base = EpochModel(spec_profile("mcf"), refresh_factor=1.0).run(5.0)
    doubled = EpochModel(spec_profile("mcf"), refresh_factor=2.0).run(5.0)
    assert base.dram_refresh_penalty == 0.0
    assert doubled.dram_refresh_penalty > 0.0


def test_refresh_duty_math():
    base = DramTimings()
    assert refresh_duty(base) == pytest.approx(350 / 7800)
    assert refresh_duty(base.scaled_refresh(2)) == pytest.approx(2 * 350 / 7800)


def test_double_refresh_normalized_time_orders_by_dram_boundedness():
    assert double_refresh_normalized_time(spec_profile("mcf")) > \
        double_refresh_normalized_time(spec_profile("hmmer"))


# -- background mix -------------------------------------------------------------------


def test_interleave_merges_streams():
    a = iter([("C", 1)] * 100)
    b = iter([("C", 2)] * 100)
    stream = interleave([a, b], [0.5, 0.5], seed=1)
    merged = [next(stream) for _ in range(50)]
    assert {op[1] for op in merged} == {1, 2}


def test_background_mix_injects_misses(attack_machine):
    from repro.pmu import Event
    from repro.sim import compute

    mix = BackgroundMix(scale=0.2, seed=4)
    mix.attach(attack_machine)
    attack_machine.run(
        iter(lambda: compute(1000), None),
        max_cycles=attack_machine.clock.cycles_from_ms(5),
    )
    mix.detach()
    assert mix.injected_ops > 0
    assert attack_machine.pmu.read(Event.LONGEST_LAT_CACHE_MISS) > 1000


def test_background_mix_does_not_consume_foreground_time(attack_machine):
    from repro.sim import compute

    mix = BackgroundMix(scale=0.2, seed=4)
    mix.attach(attack_machine)
    start = attack_machine.cycles
    budget = attack_machine.clock.cycles_from_ms(2)
    attack_machine.run(iter(lambda: compute(500), None), max_cycles=budget)
    elapsed = attack_machine.cycles - start
    # Injection adds no cycles beyond the compute stream itself.
    assert elapsed <= budget + 1000


# -- analysis helpers -------------------------------------------------------------------


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


def test_percent():
    assert percent(0.0117) == "1.17%"


def test_normalized_times_summary():
    summary = normalized_times_summary({"a": 1.01, "b": 1.03})
    assert summary["peak_slowdown"] == pytest.approx(0.03)
    assert summary["average_slowdown"] == pytest.approx(0.02)


def test_format_table_alignment():
    text = format_table(["name", "value"], [["mcf", 1], ["libquantum", 22]])
    lines = text.splitlines()
    assert lines[0].startswith("+")
    assert "libquantum" in text
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # every row equally wide


def test_format_figure_series_with_bars():
    text = format_figure_series(
        "Figure 3", {"ANVIL": {"mcf": 1.02, "hmmer": 1.00}},
        bar_scale=(1.0, 1.06),
    )
    assert "Figure 3" in text and "mcf" in text and "#" in text
