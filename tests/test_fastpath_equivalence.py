"""Property-style equivalence: ``Machine.run_fast`` vs ``Machine.run``.

The fast path (:mod:`repro.sim.fastpath`) promises bit-for-bit identity
with the reference interpreter.  These tests drive twin machines — one per
path — through the same op streams and compare everything observable:
the :class:`RunResult`, the final clock and overhead, every PMU counter,
sampler state, per-level cache statistics and residency, controller and
device statistics, open-row state, and bit flips.

Streams are seeded random blends of every op kind, plus the hammer kernel
(which reaches DRAM, activates rows, and flips bits), with and without
ANVIL armed (timers + PEBS sampling + selective refresh), plus the
stop-condition and TLB-remap corners.
"""

from __future__ import annotations

import random

import pytest

from repro.cache.cache import Cache
from repro.core import AnvilConfig
from repro.core.anvil import AnvilModule
from repro.dram.mapping import DramCoord
from repro.pmu import Event
from repro.presets import small_machine
from repro.sim.ops import CLFLUSH, COMPUTE, LOAD, MFENCE, PAIR_LOAD, STORE

PAGE = 4096


def random_ops(seed: int, n: int, pages: int = 32) -> list:
    rng = random.Random(seed)
    ops = []
    for _ in range(n):
        r = rng.random()
        addr = rng.randrange(pages) * PAGE + rng.randrange(64) * 64
        if r < 0.45:
            ops.append((LOAD, addr))
        elif r < 0.6:
            ops.append((STORE, addr))
        elif r < 0.7:
            ops.append((CLFLUSH, addr))
        elif r < 0.78:
            other = rng.randrange(pages) * PAGE + rng.randrange(64) * 64
            ops.append((PAIR_LOAD, (addr, other)))
        elif r < 0.88:
            ops.append((COMPUTE, rng.randrange(1, 30)))
        else:
            ops.append((MFENCE, None))
    return ops


def hammer_ops(machine, n: int) -> list:
    """LOAD A / LOAD B / CLFLUSH A / CLFLUSH B in one bank (aggressors)."""
    vaddrs = (0x10000, 0x20000)
    for vaddr, row in zip(vaddrs, (1, 5)):
        coord = DramCoord(rank=0, bank=0, row=row, col=0)
        paddr = machine.memory.controller.mapping.encode(coord)
        machine.memory.vm.map_fixed(vaddr, paddr & ~(PAGE - 1))
    va, vb = vaddrs
    ops = []
    for _ in range(n // 4):
        ops += [(LOAD, va), (LOAD, vb), (CLFLUSH, va), (CLFLUSH, vb)]
    return ops


def result_tuple(result):
    return (
        result.start_cycles, result.end_cycles, result.ops_executed,
        result.loads, result.stores, result.clflushes, result.dram_accesses,
        result.llc_misses, result.new_flips, result.overhead_cycles,
        result.stopped_by, result.extra,
    )


def state_snapshot(machine) -> dict:
    hierarchy = machine.memory.hierarchy
    controller = machine.memory.controller
    device = controller.device
    sampler = machine.pmu.sampler
    return {
        "cycles": machine.cycles,
        "overhead": machine.overhead_cycles,
        "counters": {e.name: machine.pmu.counter(e).read() for e in Event},
        "samples": None if sampler is None else sampler.total_samples,
        "caches": [
            (c.stats.hits, c.stats.misses, c.stats.evictions,
             c.stats.invalidations, c.resident_lines())
            for c in (hierarchy.l1, hierarchy.l2, hierarchy.llc)
        ],
        "controller": (controller.stats.accesses,
                       controller.stats.total_latency_cycles,
                       controller.stats.blocked_cycles),
        "device": (device.stats.accesses, device.stats.row_hits,
                   device.stats.activations, device.stats.refreshes_issued,
                   dict(device.stats.activations_per_bank)),
        "open_rows": list(device._open_rows),
        "flips": machine.memory.flip_count(),
    }


def build_machine(anvil: bool = False, threshold_min: int | None = None):
    kwargs = {} if threshold_min is None else {"threshold_min": threshold_min}
    machine = small_machine(**kwargs)
    if anvil:
        AnvilModule(
            machine,
            AnvilConfig(
                llc_miss_threshold=3_300,
                tc_ms=1.0,
                ts_ms=1.0,
                sampling_rate_hz=50_000,
                assumed_flip_accesses=30_000,
            ),
        ).install()
    return machine


def run_twins(build_ops, *, anvil=False, threshold_min=None, map_pages=0,
              max_cycles=None, until_misses=None, check_every=64):
    """Run the same stream through both paths; return (results, snapshots)."""
    outcomes = []
    for fast in (False, True):
        machine = build_machine(anvil=anvil, threshold_min=threshold_min)
        for p in range(map_pages):
            machine.memory.vm.map_fixed(p * PAGE, p * PAGE)
        ops = build_ops(machine) if callable(build_ops) else build_ops
        until = None
        if until_misses is not None:
            counter = machine.pmu.counter(Event.LONGEST_LAT_CACHE_MISS)
            until = lambda m, c=counter: c.read() >= until_misses
        runner = machine.run_fast if fast else machine.run
        result = runner(ops, max_cycles=max_cycles, until=until,
                        check_every=check_every)
        outcomes.append((result_tuple(result), state_snapshot(machine)))
    return outcomes


def assert_equivalent(outcomes):
    (slow_result, slow_state), (fast_result, fast_state) = outcomes
    assert fast_result == slow_result
    assert fast_state == slow_state


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_stream_equivalent(seed):
    assert_equivalent(run_twins(random_ops(seed, 4000), map_pages=32))


@pytest.mark.parametrize("seed", [0, 1])
def test_random_stream_equivalent_with_anvil(seed):
    assert_equivalent(
        run_twins(random_ops(seed, 4000), anvil=True, map_pages=32)
    )


def test_max_cycles_stop_equivalent():
    outcomes = run_twins(random_ops(7, 4000), map_pages=32, max_cycles=90_000)
    assert outcomes[0][0][-2] == "max_cycles"  # stopped_by
    assert_equivalent(outcomes)


@pytest.mark.parametrize("check_every", [64, 7])
def test_until_predicate_equivalent(check_every):
    outcomes = run_twins(
        random_ops(8, 4000), map_pages=32,
        until_misses=150, check_every=check_every,
    )
    assert outcomes[0][0][-2] == "until"
    assert_equivalent(outcomes)


def test_hammer_with_flips_equivalent():
    outcomes = run_twins(
        lambda m: hammer_ops(m, 60_000), threshold_min=2_000
    )
    assert outcomes[0][0][8] > 0  # new_flips: the disturbance model fired
    assert_equivalent(outcomes)


def test_hammer_under_anvil_equivalent():
    outcomes = run_twins(
        lambda m: hammer_ops(m, 60_000), anvil=True, threshold_min=30_000
    )
    assert outcomes[0][0][9] > 0  # overhead_cycles: sampling engaged
    assert_equivalent(outcomes)


def test_tlb_remap_equivalent():
    """map_fixed over a live mapping must invalidate the fast path's TLB."""

    def build(machine):
        coord_a = DramCoord(rank=0, bank=0, row=3, col=0)
        coord_b = DramCoord(rank=0, bank=1, row=9, col=0)
        pa = machine.memory.controller.mapping.encode(coord_a) & ~(PAGE - 1)
        pb = machine.memory.controller.mapping.encode(coord_b) & ~(PAGE - 1)
        machine.memory.vm.map_fixed(0x40000, pa)
        warm = [(LOAD, 0x40000), (LOAD, 0x40040), (CLFLUSH, 0x40000)] * 50

        def remap(m, pb=pb):
            m.memory.vm.map_fixed(0x40000, pb)

        machine.schedule_at(machine.cycles + 20_000, remap)
        return warm * 10

    assert_equivalent(run_twins(build))


def test_index_memo_stays_bounded():
    machine = small_machine()
    llc = machine.memory.hierarchy.llc
    for i in range(Cache.INDEX_MEMO_MAX + 500):
        llc.set_index(i << 6)
    assert len(llc._index_memo) <= Cache.INDEX_MEMO_MAX


def test_flush_all_mid_run_equivalent():
    """A timer that flushes the hierarchy forces the fast path to rebind
    the per-level set lists and drop the index memo."""

    def build(machine):
        def flush(m):
            m.memory.hierarchy.flush_all()

        machine.schedule_at(machine.cycles + 50_000, flush)
        return random_ops(11, 3000)

    assert_equivalent(run_twins(build, map_pages=32))
