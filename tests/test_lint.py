"""The determinism/equivalence lint suite (``repro.analysis.lint``).

Fixture files under ``tests/fixtures/lint/`` carry one violation family
each; tests assert golden finding codes, noqa suppression, baseline
round-trips, CLI exit codes, and — most importantly — that the linter
passes clean on the repo's own sources (the self-gate CI relies on) and
*fails* when a phantom observable is added to the real ``Machine.run``
without being mirrored in the turbo engine.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis.lint import (
    Baseline,
    LintConfig,
    load_baseline,
    run_lint,
    save_baseline,
)
from repro.analysis.lint.baseline import BaselineError
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"
SIM_DIR = REPO_ROOT / "src" / "repro" / "sim"


def codes(findings):
    return sorted({f.code for f in findings})


# ---------------------------------------------------------------- DET


def test_det_banned_calls_golden():
    config = LintConfig(rules=("DET",), det_all=True)
    result = run_lint([FIXTURES / "det_violation.py"], config=config)
    assert not result.ok
    assert codes(result.blocking) == [
        "DET001", "DET002", "DET003", "DET004", "DET005",
    ]
    # Findings carry clickable locations and fix hints.
    for finding in result.blocking:
        assert finding.line > 0
        assert finding.hint
        assert finding.path.endswith("det_violation.py")


def test_det_noqa_suppresses_every_finding():
    config = LintConfig(rules=("DET",), det_all=True)
    result = run_lint([FIXTURES / "det_noqa.py"], config=config)
    assert result.ok
    assert result.blocking == []
    assert result.suppressed == 5


def test_det_noqa_wrong_family_does_not_suppress(tmp_path):
    target = tmp_path / "wrong_family.py"
    target.write_text("import time\nSTAMP = time.time()  # repro: noqa[KER]\n")
    config = LintConfig(rules=("DET",), det_all=True)
    result = run_lint([target], config=config)
    assert codes(result.blocking) == ["DET003"]


def test_det_core_order_hazards_golden():
    config = LintConfig(rules=("DET",), det_all=True)
    result = run_lint([FIXTURES / "det_core_violation.py"], config=config)
    assert codes(result.blocking) == ["DET006", "DET007", "DET008"]
    # The sorted()-laundered forms in the same file stay clean.
    assert len(result.blocking) == 3


def test_det_scope_excludes_unreachable_modules(tmp_path):
    # Without det_all, a file outside any package (no dotted module name,
    # hence unreachable from the det_roots import graph) is not scoped.
    result = run_lint([FIXTURES / "det_violation.py"],
                      config=LintConfig(rules=("DET",)))
    assert result.ok


# ---------------------------------------------------------------- KER / ERR


def test_ker_fixture_golden():
    config = LintConfig(rules=("KER",), ker_suffixes=("ker_violation.py",))
    result = run_lint([FIXTURES / "ker_violation.py"], config=config)
    assert codes(result.blocking) == ["KER001", "KER002", "KER003"]


def test_err_fixture_flags_only_swallowed():
    config = LintConfig(rules=("ERR",))
    result = run_lint([FIXTURES / "err_violation.py", FIXTURES / "err_ok.py"],
                      config=config)
    assert codes(result.blocking) == ["ERR001"]
    assert len(result.blocking) == 2  # pass + continue swallow handlers
    assert all(f.path.endswith("err_violation.py") for f in result.blocking)


# ---------------------------------------------------------------- EQV


EQV_FIXTURE_CONFIG = LintConfig(
    rules=("EQV",),
    eqv_source=("sim/machine.py", "Machine", "run"),
    eqv_mirrors=("sim/fastpath.py", "sim/turbo.py"),
)


def test_eqv_fixture_missing_observable():
    result = run_lint([FIXTURES / "eqv_bad"], config=EQV_FIXTURE_CONFIG)
    assert codes(result.blocking) == ["EQV001"]
    (finding,) = result.blocking
    assert finding.path.endswith("turbo.py")
    assert "phantom_counter" in finding.message


def _copy_sim_tree(tmp_path: Path) -> Path:
    tree = tmp_path / "sim"
    tree.mkdir()
    for name in ("machine.py", "fastpath.py", "turbo.py"):
        shutil.copy(SIM_DIR / name, tree / name)
    return tree


def test_eqv_real_engines_are_clean(tmp_path):
    tree = _copy_sim_tree(tmp_path)
    result = run_lint([tree], config=EQV_FIXTURE_CONFIG)
    assert result.ok, [f.message for f in result.blocking]


def test_eqv_catches_phantom_counter_in_real_machine(tmp_path):
    # The acceptance demo: add an observable to the *real* Machine.run
    # that neither fast engine mirrors — the rule must flag both mirrors.
    tree = _copy_sim_tree(tmp_path)
    machine = tree / "machine.py"
    text = machine.read_text()
    anchor = "        result.end_cycles = self.cycles\n"
    assert anchor in text, "machine.py run() epilogue moved; update the test"
    machine.write_text(text.replace(
        anchor, anchor + "        result.phantom_counter = 1\n", 1,
    ))
    result = run_lint([tree], config=EQV_FIXTURE_CONFIG)
    assert codes(result.blocking) == ["EQV001"]
    assert sorted(f.path.rsplit("/", 1)[-1] for f in result.blocking) == [
        "fastpath.py", "turbo.py",
    ]
    assert all("phantom_counter" in f.message for f in result.blocking)


# ---------------------------------------------------------------- baseline


def test_baseline_round_trip(tmp_path):
    config = LintConfig(rules=("ERR",))
    first = run_lint([FIXTURES / "err_violation.py"], config=config)
    assert len(first.blocking) == 2

    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, first.blocking)
    baseline = load_baseline(baseline_path)
    assert len(baseline.entries) == 2

    second = run_lint([FIXTURES / "err_violation.py"], config=config,
                      baseline=baseline)
    assert second.ok
    assert len(second.baselined) == 2
    assert second.stale_baseline == []


def test_baseline_reports_stale_entries(tmp_path):
    config = LintConfig(rules=("ERR",))
    target = tmp_path / "fixed.py"
    target.write_text(
        "def f(fn):\n"
        "    try:\n"
        "        return fn()\n"
        "    except Exception:\n"
        "        pass\n"
    )
    first = run_lint([target], config=config)
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, first.blocking)

    # Fix the violation: the baseline entry must surface as stale debt.
    target.write_text(
        "def f(fn):\n"
        "    try:\n"
        "        return fn()\n"
        "    except OSError:\n"
        "        pass\n"
    )
    second = run_lint([target], config=config,
                      baseline=load_baseline(baseline_path))
    assert second.ok
    assert len(second.stale_baseline) == 1


def test_baseline_fingerprint_survives_line_drift(tmp_path):
    # Fingerprints hash the line *text*, not its number: inserting lines
    # above a baselined finding must not resurrect it.
    config = LintConfig(rules=("ERR",))
    target = tmp_path / "drift.py"
    body = (
        "def f(fn):\n"
        "    try:\n"
        "        return fn()\n"
        "    except Exception:\n"
        "        pass\n"
    )
    target.write_text(body)
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, run_lint([target], config=config).blocking)

    target.write_text("# a new header comment\nX = 1\n\n\n" + body)
    drifted = run_lint([target], config=config,
                       baseline=load_baseline(baseline_path))
    assert drifted.ok
    assert len(drifted.baselined) == 1


def test_malformed_baseline_raises(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{\"version\": 99}")
    with pytest.raises(BaselineError):
        load_baseline(bad)


def test_committed_baseline_is_valid_and_empty():
    baseline = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
    assert baseline.entries == []


# ---------------------------------------------------------------- engine


def test_parse_error_is_blocking(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    result = run_lint([bad], config=LintConfig(rules=("ERR",)))
    assert codes(result.blocking) == ["PARSE001"]


def test_unknown_rule_family_raises():
    with pytest.raises(ValueError, match="unknown lint rule"):
        run_lint([FIXTURES / "err_ok.py"], config=LintConfig(rules=("NOPE",)))


def test_repo_sources_are_clean():
    # The self-gate CI enforces: the repo's own sources lint clean with
    # the default configuration and no baseline debt.
    result = run_lint([REPO_ROOT / "src" / "repro", REPO_ROOT / "benchmarks"],
                      base=REPO_ROOT)
    assert result.ok, "\n".join(
        f"{f.path}:{f.line} {f.code} {f.message}" for f in result.blocking
    )
    # The DET closure actually reaches the serialization/transport stack.
    for module in ("repro.runner.seeding", "repro.runner.backends.wire",
                   "repro.sim.machine"):
        assert module in result.det_scope


def test_empty_baseline_split_blocks_everything():
    config = LintConfig(rules=("ERR",))
    result = run_lint([FIXTURES / "err_violation.py"], config=config,
                      baseline=Baseline())
    assert len(result.blocking) == 2
    assert result.baselined == []


# ---------------------------------------------------------------- CLI


def test_cli_exit_codes_per_fixture():
    base = ["lint", "--no-baseline", "--det-all"]
    assert main(base + ["--rules", "DET",
                        str(FIXTURES / "det_violation.py")]) == 1
    assert main(base + ["--rules", "DET",
                        str(FIXTURES / "det_noqa.py")]) == 0
    assert main(base + ["--rules", "KER",
                        str(FIXTURES / "ker_violation.py")]) == 1
    assert main(base + ["--rules", "ERR",
                        str(FIXTURES / "err_violation.py")]) == 1
    assert main(base + ["--rules", "ERR",
                        str(FIXTURES / "err_ok.py")]) == 0


def test_cli_unknown_rule_exits_2():
    assert main(["lint", "--no-baseline", "--rules", "BOGUS",
                 str(FIXTURES / "err_ok.py")]) == 2


def test_cli_json_report(capsys):
    code = main(["lint", "--no-baseline", "--det-all", "--format", "json",
                 "--rules", "DET", str(FIXTURES / "det_violation.py")])
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["summary"]["blocking"] == 5
    assert {f["code"] for f in report["findings"]} == {
        "DET001", "DET002", "DET003", "DET004", "DET005",
    }


def test_cli_repo_self_gate(monkeypatch):
    # Exactly what the CI lint job runs, from the repo root.
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint"]) == 0


def test_cli_write_baseline_round_trip(tmp_path, capsys):
    baseline_path = tmp_path / "baseline.json"
    fixture = str(FIXTURES / "err_violation.py")
    assert main(["lint", "--rules", "ERR", "--baseline", str(baseline_path),
                 "--write-baseline", fixture]) == 0
    capsys.readouterr()
    # With the written baseline the same findings no longer block.
    assert main(["lint", "--rules", "ERR", "--baseline", str(baseline_path),
                 fixture]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out
