"""ANVIL stage-2 locality-analysis tests (pure function)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AnvilConfig, analyze_row_samples


def cfg(**kwargs) -> AnvilConfig:
    defaults = dict(
        llc_miss_threshold=20_000,
        assumed_flip_accesses=220_000,
        min_row_samples=3,
    )
    defaults.update(kwargs)
    return AnvilConfig(**defaults)


def samples(counts: dict[tuple[int, int, int], int]) -> list[tuple[int, int, int]]:
    rows = []
    for key, n in counts.items():
        rows.extend([key] * n)
    return rows


# -- positive detection --------------------------------------------------------------


def test_double_sided_attack_pattern_detected():
    """Two same-bank rows sharing ~all samples at attack-level miss rate."""
    rows = samples({(0, 0, 100): 15, (0, 0, 102): 15})
    analysis = analyze_row_samples(rows, window_misses=90_000, config=cfg())
    assert analysis.attack_detected
    keys = {a.row_key for a in analysis.aggressors}
    assert keys == {(0, 0, 100), (0, 0, 102)}


def test_estimated_accesses_scale_with_misses():
    rows = samples({(0, 0, 100): 15, (0, 0, 102): 15})
    analysis = analyze_row_samples(rows, window_misses=90_000, config=cfg())
    for aggressor in analysis.aggressors:
        assert aggressor.estimated_accesses == 0.5 * 90_000


def test_diluted_attack_still_detected_with_background():
    """Heavy load: attack rows hold only ~25% of samples each, but the
    higher total miss count keeps the estimated access rate at attack
    levels — the self-normalising property of Section 3.3's rule."""
    rows = samples({
        (0, 0, 100): 8, (0, 0, 102): 8,
        (0, 3, 900): 2, (1, 2, 50): 2, (0, 5, 123): 2,
        (1, 1, 777): 2, (0, 7, 321): 2, (1, 4, 11): 2, (0, 2, 44): 2,
    })
    analysis = analyze_row_samples(rows, window_misses=160_000, config=cfg())
    keys = {a.row_key for a in analysis.aggressors}
    assert (0, 0, 100) in keys and (0, 0, 102) in keys


# -- negative cases ---------------------------------------------------------------------


def test_low_miss_window_not_flagged():
    """Same concentration, but a miss rate too low to hammer."""
    rows = samples({(0, 0, 100): 15, (0, 0, 102): 15})
    analysis = analyze_row_samples(rows, window_misses=2_000, config=cfg())
    assert not analysis.attack_detected


def test_scattered_samples_not_flagged():
    rows = [(0, i % 8, 1000 + i * 37) for i in range(30)]
    analysis = analyze_row_samples(rows, window_misses=160_000, config=cfg())
    assert not analysis.attack_detected


def test_single_hot_row_rejected_by_bank_check():
    """A hot row with no same-bank companions is row-buffer-served
    thrashing, not hammering (Section 3.1)."""
    rows = samples({(0, 0, 100): 16})
    rows += [(0, bank, 5000 + i) for i, bank in enumerate([1, 2, 3, 4, 5, 6, 7] * 2)]
    analysis = analyze_row_samples(rows, window_misses=90_000, config=cfg())
    assert not analysis.attack_detected
    assert analysis.hot_rows_rejected_by_bank_check == 1


def test_bank_check_can_be_disabled():
    rows = samples({(0, 0, 100): 16})
    rows += [(0, bank, 5000 + i) for i, bank in enumerate([1, 2, 3, 4, 5, 6, 7] * 2)]
    analysis = analyze_row_samples(
        rows, window_misses=90_000, config=cfg(bank_locality_check=False)
    )
    assert analysis.attack_detected


def test_min_samples_guard():
    analysis = analyze_row_samples(
        [(0, 0, 1), (0, 0, 2)], window_misses=100_000, config=cfg(min_samples=4)
    )
    assert not analysis.attack_detected
    assert analysis.total_samples == 2


def test_min_row_samples_guard():
    """Two coinciding samples out of 30 cannot flag a row."""
    rows = samples({(0, 0, 100): 2})
    rows += [(0, 1 + (i % 7), 9000 + i * 13) for i in range(28)]
    analysis = analyze_row_samples(rows, window_misses=200_000, config=cfg())
    assert not analysis.attack_detected


def test_empty_samples():
    analysis = analyze_row_samples([], window_misses=50_000, config=cfg())
    assert not analysis.attack_detected


def test_zero_misses():
    rows = samples({(0, 0, 100): 30})
    analysis = analyze_row_samples(rows, window_misses=0, config=cfg())
    assert not analysis.attack_detected


# -- properties ------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 50)),
        min_size=0, max_size=40,
    ),
    misses=st.integers(min_value=0, max_value=300_000),
)
def test_aggressors_always_meet_all_criteria(data, misses):
    config = cfg()
    rows = [(0, bank, row) for bank, row in data]
    analysis = analyze_row_samples(rows, misses, config)
    from collections import Counter

    counts = Counter(rows)
    for aggressor in analysis.aggressors:
        count = counts[aggressor.row_key]
        assert count >= config.min_row_samples
        assert count == aggressor.sample_count
        estimated = count / len(rows) * misses
        assert estimated >= config.hot_row_accesses
        assert aggressor.bank_other_samples >= config.bank_other_fraction * count


@settings(max_examples=40, deadline=None)
@given(
    data=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 10)),
                  min_size=1, max_size=30),
    misses=st.integers(min_value=0, max_value=300_000),
)
def test_analysis_is_deterministic(data, misses):
    rows = [(0, bank, row) for bank, row in data]
    a = analyze_row_samples(rows, misses, cfg())
    b = analyze_row_samples(list(rows), misses, cfg())
    assert [x.row_key for x in a.aggressors] == [x.row_key for x in b.aggressors]
