"""Replacement-policy unit and property tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.replacement import (
    BitPlru,
    Nru,
    RandomReplacement,
    Srrip,
    TreePlru,
    TrueLru,
    make_policy,
    policy_names,
)
from repro.errors import ConfigError

ALL_POLICIES = policy_names()


# -- construction ------------------------------------------------------------------


def test_policy_names_lists_all():
    assert set(ALL_POLICIES) == {
        "lru", "bit-plru", "nru", "tree-plru", "random", "srrip"
    }


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_make_policy_constructs(name):
    ways = 8  # power of two: valid for every policy
    policy = make_policy(name, ways)
    assert policy.ways == ways


def test_make_policy_unknown_name():
    with pytest.raises(ConfigError):
        make_policy("clock", 8)


def test_tree_plru_requires_power_of_two():
    with pytest.raises(ConfigError):
        TreePlru(12)


def test_zero_ways_rejected():
    with pytest.raises(ConfigError):
        TrueLru(0)


# -- true LRU -------------------------------------------------------------------


def test_lru_evicts_least_recently_used():
    lru = TrueLru(4)
    for way in range(4):
        lru.on_fill(way)
    lru.on_hit(0)  # order now: 1, 2, 3, 0
    assert lru.victim() == 1


def test_lru_invalidate_becomes_preferred_victim():
    lru = TrueLru(4)
    for way in range(4):
        lru.on_fill(way)
    lru.on_invalidate(3)
    assert lru.victim() == 3


# -- Bit-PLRU ---------------------------------------------------------------------


def test_bit_plru_sets_mru_on_access():
    plru = BitPlru(4)
    plru.on_fill(2)
    assert plru.mru == [False, False, True, False]


def test_bit_plru_victim_is_lowest_clear_index():
    plru = BitPlru(4)
    plru.on_fill(0)
    plru.on_fill(2)
    assert plru.victim() == 1


def test_bit_plru_saturation_clears_others():
    """Paper: 'When the last MRU bit is set, the other MRU bits in the set
    are cleared.'"""
    plru = BitPlru(4)
    for way in range(4):
        plru.on_fill(way)
    assert plru.mru == [False, False, False, True]
    assert plru.victim() == 0


def test_bit_plru_invalidate_clears_bit():
    plru = BitPlru(4)
    plru.on_fill(0)
    plru.on_invalidate(0)
    assert plru.victim() == 0


# -- NRU ---------------------------------------------------------------------------


def test_nru_hand_advances():
    nru = Nru(4)
    nru.on_fill(0)
    first = nru.victim()
    assert first == 1  # hand started at 0, way 0 is referenced
    second = nru.victim()
    assert second == 2  # hand moved past the previous victim


def test_nru_saturation_keeps_last_accessed():
    nru = Nru(4)
    for way in range(4):
        nru.on_fill(way)
    assert nru.ref == [False, False, False, True]


# -- Tree-PLRU ------------------------------------------------------------------------


def test_tree_plru_victim_valid_and_changes():
    tree = TreePlru(8)
    v1 = tree.victim()
    tree.on_fill(v1)
    v2 = tree.victim()
    assert v1 != v2
    assert 0 <= v2 < 8


def test_tree_plru_points_away_from_touched_leaf():
    tree = TreePlru(4)
    tree.on_hit(3)
    assert tree.victim() != 3


# -- SRRIP -----------------------------------------------------------------------------


def test_srrip_hit_promotes_to_zero():
    srrip = Srrip(4)
    srrip.on_fill(1)
    srrip.on_hit(1)
    assert srrip.rrpv[1] == 0


def test_srrip_victim_prefers_max_rrpv():
    srrip = Srrip(4)
    for way in range(4):
        srrip.on_fill(way)
    srrip.on_hit(0)
    victim = srrip.victim()
    assert victim != 0


def test_srrip_ages_when_no_max():
    srrip = Srrip(2)
    srrip.on_fill(0)
    srrip.on_fill(1)
    srrip.on_hit(0)
    srrip.on_hit(1)
    assert srrip.victim() in (0, 1)  # aging loop terminated


# -- random -----------------------------------------------------------------------------


def test_random_is_seeded_deterministic():
    a = RandomReplacement(8, seed=3)
    b = RandomReplacement(8, seed=3)
    assert [a.victim() for _ in range(20)] == [b.victim() for _ in range(20)]


def test_random_reset_restores_stream():
    a = RandomReplacement(8, seed=3)
    first = [a.victim() for _ in range(10)]
    a.reset()
    assert [a.victim() for _ in range(10)] == first


# -- properties shared by every policy ------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(ALL_POLICIES),
    ways_exp=st.integers(min_value=1, max_value=4),
    events=st.lists(st.tuples(st.sampled_from(["hit", "fill", "inv"]),
                              st.integers(min_value=0, max_value=15)),
                    max_size=60),
)
def test_victim_always_in_range(name, ways_exp, events):
    ways = 2 ** ways_exp
    policy = make_policy(name, ways)
    for kind, raw_way in events:
        way = raw_way % ways
        if kind == "hit":
            policy.on_hit(way)
        elif kind == "fill":
            policy.on_fill(way)
        else:
            policy.on_invalidate(way)
        assert 0 <= policy.victim() < ways


@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(["lru", "bit-plru", "nru", "tree-plru", "srrip"]),
    ways_exp=st.integers(min_value=2, max_value=4),
    touched=st.integers(min_value=0, max_value=15),
)
def test_just_touched_way_is_not_victim(name, ways_exp, touched):
    """For every deterministic policy, the way touched last (below
    saturation) must not be the immediate victim."""
    ways = 2 ** ways_exp
    policy = make_policy(name, ways)
    policy.on_fill(touched % ways)
    assert policy.victim() != touched % ways
