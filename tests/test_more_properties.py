"""Cross-component property tests and remaining coverage.

Highlights: the standalone :class:`SetModel` (used to plan attacks) must
agree access-for-access with the real cache on same-set streams — the
property the Section 2.2 reverse-engineering methodology depends on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import Cache, CacheConfig
from repro.cache.setmodel import SetModel
from repro.core.stats import AnvilStats, Detection
from repro.dram.controller import MemoryController
from repro.dram.config import DramConfig
from repro.pmu import PebsSampler, SamplerConfig
from repro.sim.trace import format_op, parse_op
from repro.units import Clock


# -- SetModel <-> Cache agreement -----------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    policy=st.sampled_from(["lru", "bit-plru", "nru", "srrip"]),
    stream=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=120),
)
def test_setmodel_agrees_with_real_cache(policy, stream):
    """Driving one set of a real cache and the standalone model with the
    same same-set address stream yields identical hit/miss sequences."""
    ways = 4
    cache = Cache(CacheConfig(name="T", size_bytes=ways * 8 * 64, ways=ways,
                              policy=policy))
    model = SetModel(policy, ways)
    set_stride = cache.config.sets_per_slice * 64
    for tag in stream:
        paddr = tag * set_stride  # all map to set 0
        cache_hit, _ = cache.access_fill(paddr)
        model_hit = model.access(tag)
        assert cache_hit == model_hit


# -- trace property ---------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    kind=st.sampled_from(["L", "S", "F", "M", "C", "P"]),
    a=st.integers(min_value=0, max_value=(1 << 48) - 1),
    b=st.integers(min_value=0, max_value=(1 << 48) - 1),
)
def test_trace_roundtrip_property(kind, a, b):
    if kind == "M":
        op = ("M", 0)
    elif kind == "C":
        op = ("C", a % 1_000_000)
    elif kind == "P":
        op = ("P", (a, b))
    else:
        op = (kind, a)
    assert parse_op(format_op(op)) == op


# -- PEBS pacing property ------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(rate=st.sampled_from([1000.0, 5000.0, 20000.0]))
def test_pebs_rate_respected_under_saturation(rate):
    """Offering an eligible op every cycle must yield ~rate samples/s."""
    from repro.mem import MemoryAccess

    sampler = PebsSampler(SamplerConfig(rate_hz=rate), freq_hz=2.6e9)
    sampler.enable(0)
    second = 2_600_000  # simulate 1 ms
    taken = 0
    for t in range(0, second, 100):
        access = MemoryAccess(vaddr=t, paddr=t, is_store=False, level="DRAM",
                              latency_cycles=150, llc_miss=True)
        if sampler.offer(access, t) is not None:
            taken += 1
    expected = rate / 1000  # samples per ms
    assert 0.4 * expected <= taken <= 2.0 * expected


# -- AnvilStats arithmetic ------------------------------------------------------------------


def make_detection(t):
    return Detection(time_cycles=t, aggressors=(), refreshed_rows=())


def test_stats_first_detection_relative_to_install():
    stats = AnvilStats(installed_at_cycles=1000)
    assert stats.first_detection_cycles() is None
    stats.detections.append(make_detection(6000))
    stats.detections.append(make_detection(9000))
    assert stats.first_detection_cycles() == 5000


def test_stats_refresh_rates():
    stats = AnvilStats()
    stats.selective_refreshes = 10
    # 10 refreshes over 2 intervals -> 5 per interval.
    assert stats.refreshes_per_interval(100, 200) == 5.0
    # 10 refreshes over 2 seconds at 1 Hz-cycle clock.
    assert stats.refreshes_per_second(2, 1.0) == 5.0
    assert stats.refreshes_per_interval(100, 0) == 0.0


# -- controller row-filter API ----------------------------------------------------------------


class AbsorbEverything:
    def __init__(self):
        self.count = 0

    def absorbs(self, coord, time_cycles):
        self.count += 1
        return True


def test_row_filter_prevents_all_disturbance():
    ctrl = MemoryController(
        DramConfig(ranks=1, banks_per_rank=4, rows_per_bank=2048, row_bytes=8192),
        Clock(),
    )
    filt = AbsorbEverything()
    ctrl.add_row_filter(filt)
    for i in range(100):
        out = ctrl.access(i * 8192 * 4, 20_000 + i * 200)
        assert not out.activated and out.row_hit
    assert ctrl.device.stats.activations == 0
    assert filt.count == 100
    ctrl.remove_row_filter(filt)
    assert ctrl.access(0, 100_000).activated


# -- epoch result arithmetic -----------------------------------------------------------------


def test_epoch_result_properties():
    from repro.sim.epoch import EpochResult

    result = EpochResult(
        benchmark="x", config_name="c", horizon_s=10.0,
        stage1_windows=100, stage1_triggers=40, stage2_windows=40,
        false_detections=2, superfluous_refreshes=4,
        overhead_cycles=1_000, total_cycles=100_000,
        dram_refresh_penalty=0.005,
    )
    assert result.trigger_fraction == 0.4
    assert result.fp_refreshes_per_sec == 0.4
    assert result.overhead_fraction == 0.01
    assert result.normalized_time == pytest.approx(1.015)


def test_epoch_result_zero_division_guards():
    from repro.sim.epoch import EpochResult

    result = EpochResult(
        benchmark="x", config_name="c", horizon_s=1.0,
        stage1_windows=0, stage1_triggers=0, stage2_windows=0,
        false_detections=0, superfluous_refreshes=0,
        overhead_cycles=0, total_cycles=0, dram_refresh_penalty=0.0,
    )
    assert result.trigger_fraction == 0.0
    assert result.overhead_fraction == 0.0


# -- attack result arithmetic ---------------------------------------------------------------


def test_attack_result_flipped_property():
    from repro.attacks import AttackResult

    clean = AttackResult(name="x", elapsed_ms=1.0, iterations=10,
                         total_dram_accesses=20, flips=0)
    dirty = AttackResult(name="x", elapsed_ms=1.0, iterations=10,
                         total_dram_accesses=20, flips=2)
    assert not clean.flipped and dirty.flipped
