"""Extension-feature tests: store-based hammering, blind pair hammering,
wider blast radius with radius-N protection (paper Sections 3.2/5.2.1:
"our approach easily extends to N adjacent rows")."""

from __future__ import annotations

import pytest

from repro.attacks import BlindPairHammerAttack, DoubleSidedClflushAttack
from repro.core import AnvilConfig, AnvilModule
from repro.dram import DisturbanceConfig, DramConfig, DramTimings
from repro.mem import MemorySystemConfig
from repro.presets import small_machine
from repro.sim import Machine, MachineConfig
from repro.units import MB


# -- store-based hammering -----------------------------------------------------------


def test_store_hammer_flips():
    machine = small_machine(threshold_min=4_000)
    attack = DoubleSidedClflushAttack(buffer_bytes=16 * MB, store_based=True)
    result = attack.run(machine, max_ms=20)
    assert result.flipped
    assert result.name == "double-sided-clflush-stores"


def test_anvil_stops_store_hammer_via_precise_store_facility():
    machine = small_machine(threshold_min=30_000)
    config = AnvilConfig(
        llc_miss_threshold=3_300, tc_ms=1.0, ts_ms=1.0,
        sampling_rate_hz=50_000, assumed_flip_accesses=30_000,
    )
    anvil = AnvilModule(machine, config)
    anvil.install()
    attack = DoubleSidedClflushAttack(buffer_bytes=16 * MB, store_based=True)
    result = attack.run(machine, max_ms=15, stop_on_flip=False)
    assert result.flips == 0
    assert anvil.stats.detection_count > 0
    sampler = machine.pmu.sampler
    assert sampler is not None and sampler.config.sample_stores


# -- blind pair hammering ----------------------------------------------------------------


def test_blind_attack_finds_same_bank_pairs():
    machine = small_machine(threshold_min=2_000)
    attack = BlindPairHammerAttack(buffer_bytes=16 * MB, pairs=12, seed=3)
    attack.prepare(machine)
    assert attack.pair_count() >= 8
    # With 4 banks, ~1/4 of random pairs share a bank.
    assert attack.same_bank_pairs() >= 1


def test_blind_attack_flips_without_pagemap_knowledge():
    """Rotating random pairs eventually hammers a same-bank pair long
    enough to flip a neighbour — no physical addresses needed for
    targeting (Section 5.2.1)."""
    machine = small_machine(threshold_min=1_500)
    attack = BlindPairHammerAttack(
        buffer_bytes=16 * MB, pairs=8, pair_ms=1.5, seed=3
    )
    result = attack.run(machine, max_ms=30, check_every=8)
    assert result.flipped


# -- blast radius 2 ----------------------------------------------------------------------


def radius2_machine(threshold_min=20_000) -> Machine:
    """A module whose crosstalk reaches two rows (denser future DRAM)."""
    dram = DramConfig(
        ranks=1, banks_per_rank=4, rows_per_bank=2048, row_bytes=8192,
        timings=DramTimings(),
        disturbance=DisturbanceConfig(
            threshold_min=threshold_min,
            neighbor_weights=(1.0, 0.4),
        ),
    )
    return Machine(MachineConfig(memory=MemorySystemConfig(dram=dram)))


def test_radius2_disturbance_reaches_distance_two():
    machine = radius2_machine(threshold_min=2_000)
    attack = DoubleSidedClflushAttack(buffer_bytes=16 * MB)
    attack.run(machine, max_ms=30, stop_on_flip=False)
    victim_rows = {
        machine.memory.device.coord_of_row_id(f.row_id).row
        for f in machine.memory.device.tracker.flips
    }
    aggressors = {c.row for c in attack.aggressor_coords}
    assert any(
        min(abs(row - a) for a in aggressors) == 2 for row in victim_rows
    ), f"expected a distance-2 victim, got {victim_rows} vs {aggressors}"


def test_radius1_anvil_misses_distance2_victims():
    """Failure injection: ANVIL configured for radius-1 victims cannot
    protect a module with radius-2 crosstalk."""
    machine = radius2_machine(threshold_min=25_000)
    config = AnvilConfig(
        llc_miss_threshold=3_300, tc_ms=1.0, ts_ms=1.0,
        sampling_rate_hz=50_000, assumed_flip_accesses=25_000,
        victim_radius=1,
    )
    anvil = AnvilModule(machine, config)
    anvil.install()
    attack = DoubleSidedClflushAttack(buffer_bytes=16 * MB)
    result = attack.run(machine, max_ms=40, stop_on_flip=False)
    assert anvil.stats.detection_count > 0
    assert result.flips > 0, "radius-1 protection should leak distance-2 flips"
    aggressors = {c.row for c in attack.aggressor_coords}
    leak_rows = {
        machine.memory.device.coord_of_row_id(f.row_id).row
        for f in machine.memory.device.tracker.flips
    }
    assert all(min(abs(r - a) for a in aggressors) == 2 for r in leak_rows)


def test_radius2_anvil_protects_distance2_victims():
    machine = radius2_machine(threshold_min=25_000)
    config = AnvilConfig(
        llc_miss_threshold=3_300, tc_ms=1.0, ts_ms=1.0,
        sampling_rate_hz=50_000, assumed_flip_accesses=25_000,
        victim_radius=2,
    )
    anvil = AnvilModule(machine, config)
    anvil.install()
    attack = DoubleSidedClflushAttack(buffer_bytes=16 * MB)
    result = attack.run(machine, max_ms=40, stop_on_flip=False)
    assert anvil.stats.detection_count > 0
    assert result.flips == 0


def test_neighbor_weights_validation():
    with pytest.raises(Exception):
        DisturbanceConfig(neighbor_weights=())
    with pytest.raises(Exception):
        DisturbanceConfig(neighbor_weights=(1.0, -0.5))
