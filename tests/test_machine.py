"""Machine tests: op execution, timers, pairing, run control."""

from __future__ import annotations

import pytest

from repro.pmu import Event
from repro.sim import clflush, compute, load, mfence, pair_load, store


def mapped(machine, length=8192):
    return machine.memory.vm.mmap(length)


def test_load_advances_time(machine):
    base = mapped(machine)
    before = machine.cycles
    record = machine.execute(load(base))
    assert machine.cycles == before + record.latency_cycles


def test_compute_advances_exactly(machine):
    before = machine.cycles
    machine.execute(compute(123))
    assert machine.cycles == before + 123


def test_mfence_cost(machine):
    before = machine.cycles
    machine.execute(mfence())
    assert machine.cycles - before == machine.memory.config.hierarchy.mfence_cycles


def test_clflush_then_reload_misses(machine):
    base = mapped(machine)
    machine.execute(load(base))
    machine.execute(clflush(base))
    assert machine.execute(load(base)).level == "DRAM"


def test_store_counts_in_pmu(machine):
    base = mapped(machine)
    machine.execute(store(base))
    assert machine.pmu.read(Event.MEM_UOPS_RETIRED_ALL_STORES) == 1


def test_pair_load_charges_max_latency(machine):
    a = mapped(machine)
    b = mapped(machine)
    machine.execute(load(a))  # a now cached
    before = machine.cycles
    rec_pair = machine.execute(pair_load(a, b))
    elapsed = machine.cycles - before
    latencies = sorted(r.latency_cycles for r in rec_pair)
    assert elapsed == latencies[-1]
    assert elapsed < sum(latencies)


def test_pair_load_updates_pmu_for_both(machine):
    a, b = mapped(machine), mapped(machine)
    machine.execute(pair_load(a, b))
    assert machine.pmu.read(Event.MEM_UOPS_RETIRED_ALL_LOADS) == 2


def test_unknown_op_rejected(machine):
    with pytest.raises(ValueError):
        machine.execute(("Z", 0))


# -- timers -----------------------------------------------------------------------


def test_timer_fires_at_deadline(machine):
    fired = []
    machine.schedule_in(100, lambda m: fired.append(m.cycles))
    machine.execute(compute(99))
    assert fired == []
    machine.execute(compute(1))
    assert fired == [100]


def test_timers_fire_in_order(machine):
    order = []
    machine.schedule_in(200, lambda m: order.append("late"))
    machine.schedule_in(100, lambda m: order.append("early"))
    machine.execute(compute(500))
    assert order == ["early", "late"]


def test_timer_can_reschedule_itself(machine):
    ticks = []

    def tick(m):
        ticks.append(m.cycles)
        if len(ticks) < 3:
            m.schedule_in(100, tick)

    machine.schedule_in(100, tick)
    for _ in range(5):
        machine.execute(compute(100))
    assert len(ticks) == 3


def test_cancel_timers(machine):
    fired = []
    machine.schedule_in(10, lambda m: fired.append(1))
    machine.cancel_timers()
    machine.execute(compute(100))
    assert fired == []


def test_schedule_in_ms(machine):
    fired = []
    machine.schedule_in_ms(0.001, lambda m: fired.append(m.cycles))
    machine.execute(compute(machine.clock.cycles_from_ms(0.002)))
    assert fired


# -- run loop -----------------------------------------------------------------------


def test_run_exhausts_finite_stream(machine):
    base = mapped(machine)
    result = machine.run([load(base), load(base), compute(5)])
    assert result.ops_executed == 3
    assert result.loads == 2
    assert result.stopped_by == "exhausted"


def test_run_stops_at_max_cycles(machine):
    def forever():
        while True:
            yield compute(1000)

    result = machine.run(forever(), max_cycles=50_000)
    assert result.stopped_by == "max_cycles"
    assert result.cycles >= 50_000


def test_run_until_condition(machine):
    def forever():
        while True:
            yield compute(10)

    result = machine.run(forever(), until=lambda m: m.cycles >= 1000, check_every=1)
    assert result.stopped_by == "until"


def test_run_counts_misses_and_dram(machine):
    base = mapped(machine, 64 * 1024)
    ops = [load(base + i * 64) for i in range(100)]
    result = machine.run(ops)
    assert result.llc_misses == 100
    assert result.dram_accesses == 100


def test_overhead_accounting(machine):
    machine.consume(500, overhead=True)
    machine.consume(500, overhead=False)
    assert machine.overhead_cycles == 500


def test_access_hooks(machine):
    base = mapped(machine)
    seen = []
    hook = lambda record, t: seen.append((record.level, t))  # noqa: E731
    machine.add_access_hook(hook)
    machine.execute(load(base))
    machine.remove_access_hook(hook)
    machine.execute(load(base))
    assert len(seen) == 1
