"""Disturbance-model tests: thresholds, accumulation, epochs, flips."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.config import DisturbanceConfig
from repro.dram.disturbance import CellPopulation, DisturbanceTracker

ROW_BITS = 8192 * 8


def make_pair(threshold_min=1000, strong_fraction=0.0, spread=1.5, seed=1):
    config = DisturbanceConfig(
        threshold_min=threshold_min,
        strong_fraction=strong_fraction,
        spread=spread,
        seed=seed,
    )
    cells = CellPopulation(config, ROW_BITS)
    return cells, DisturbanceTracker(cells, config)


# -- cell population -------------------------------------------------------------


def test_thresholds_deterministic():
    cells_a, _ = make_pair(seed=7)
    cells_b, _ = make_pair(seed=7)
    for row in range(100):
        assert cells_a.threshold_for(row) == cells_b.threshold_for(row)


def test_thresholds_at_least_minimum():
    cells, _ = make_pair(threshold_min=5000)
    assert all(cells.threshold_for(r) >= 5000 for r in range(500))


def test_thresholds_bounded_by_spread():
    cells, _ = make_pair(threshold_min=1000, spread=0.5)
    assert all(cells.threshold_for(r) <= 1500.0001 for r in range(500))


def test_strong_rows_never_flip():
    config = DisturbanceConfig(threshold_min=1000, strong_fraction=0.999)
    cells = CellPopulation(config, ROW_BITS)
    strong = sum(cells.threshold_for(r) == float("inf") for r in range(200))
    assert strong >= 198


def test_strong_fraction_approximate():
    config = DisturbanceConfig(threshold_min=1000, strong_fraction=0.5)
    cells = CellPopulation(config, ROW_BITS)
    strong = sum(cells.threshold_for(r) == float("inf") for r in range(2000))
    assert 800 < strong < 1200


def test_weakest_rows_sorted_by_threshold():
    cells, _ = make_pair()
    weakest = cells.weakest_rows(range(1000), count=5)
    thresholds = [cells.threshold_for(r) for r in weakest]
    assert thresholds == sorted(thresholds)
    assert min(cells.threshold_for(r) for r in range(1000)) == thresholds[0]


def test_flip_positions_within_row():
    cells, _ = make_pair()
    for i in range(8):
        assert 0 <= cells.flip_bit_position(42, i) < ROW_BITS


def test_flip_threshold_increases_per_bit():
    cells, _ = make_pair()
    t0 = cells.flip_threshold(10, 0)
    t1 = cells.flip_threshold(10, 1)
    assert t1 > t0


# -- tracker ---------------------------------------------------------------------


def test_disturb_accumulates():
    _, tracker = make_pair(threshold_min=1000)
    tracker.disturb(5, 10.0, epoch=0, time_cycles=0)
    tracker.disturb(5, 15.0, epoch=0, time_cycles=1)
    assert tracker.units(5, 0) == 25.0


def test_epoch_change_resets_units():
    _, tracker = make_pair(threshold_min=1000)
    tracker.disturb(5, 999.0, epoch=0, time_cycles=0)
    tracker.disturb(5, 1.0, epoch=1, time_cycles=100)
    assert tracker.units(5, 1) == 1.0
    assert tracker.flip_count() == 0


def test_refresh_resets_units():
    _, tracker = make_pair(threshold_min=1000)
    tracker.disturb(5, 999.0, epoch=0, time_cycles=0)
    tracker.on_refresh(5, epoch=0)
    assert tracker.units(5, 0) == 0.0


def test_flip_at_threshold():
    cells, tracker = make_pair(threshold_min=1000, spread=0.0)
    flips = tracker.disturb(5, 1000.0, epoch=0, time_cycles=77)
    assert len(flips) == 1
    assert flips[0].row_id == 5
    assert flips[0].time_cycles == 77
    assert tracker.flipped_bits(5)


def test_no_flip_below_threshold():
    _, tracker = make_pair(threshold_min=1000, spread=0.0)
    # The no-flip fast path returns a shared empty tuple; only emptiness
    # is contractual.
    assert not tracker.disturb(5, 999.9, epoch=0, time_cycles=0)
    assert tracker.flip_count() == 0


def test_multiple_flips_with_more_units():
    """Sustained hammering flips additional bits (the multi-flip behaviour
    that defeats SECDED ECC, Section 1.2)."""
    _, tracker = make_pair(threshold_min=1000, spread=0.0)
    flips = tracker.disturb(5, 1300.0, epoch=0, time_cycles=0)
    assert len(flips) == 3  # thresholds at 1000, 1150, 1300


def test_flips_capped_at_max():
    config = DisturbanceConfig(threshold_min=100, spread=0.0, strong_fraction=0.0,
                               max_flips_per_row=2)
    cells = CellPopulation(config, ROW_BITS)
    tracker = DisturbanceTracker(cells, config)
    flips = tracker.disturb(3, 1e9, epoch=0, time_cycles=0)
    assert len(flips) == 2


def test_same_bit_not_flipped_twice():
    _, tracker = make_pair(threshold_min=100, spread=0.0)
    tracker.disturb(9, 1e4, epoch=0, time_cycles=0)
    bits = [f.bit_offset for f in tracker.flips]
    assert len(bits) == len(set(bits)) or len(bits) <= 8


def test_rows_with_flips():
    _, tracker = make_pair(threshold_min=10, spread=0.0)
    tracker.disturb(2, 100, epoch=0, time_cycles=0)
    tracker.disturb(7, 100, epoch=0, time_cycles=0)
    assert tracker.rows_with_flips() == [2, 7]


@settings(max_examples=50, deadline=None)
@given(
    deposits=st.lists(
        st.tuples(st.integers(min_value=0, max_value=20),
                  st.floats(min_value=0.1, max_value=500.0)),
        max_size=50,
    )
)
def test_units_never_negative_and_flips_monotonic(deposits):
    _, tracker = make_pair(threshold_min=800)
    seen_flips = 0
    for row, units in deposits:
        tracker.disturb(row, units, epoch=0, time_cycles=0)
        assert tracker.units(row, 0) >= 0
        assert tracker.flip_count() >= seen_flips
        seen_flips = tracker.flip_count()
