"""DRAM power-model tests (Section 2.1's cost argument)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import DramPowerConfig, DramPowerModel
from repro.dram.config import DramTimings
from repro.errors import ConfigError


def test_refresh_power_positive():
    model = DramPowerModel()
    assert model.refresh_power_w(DramTimings()) > 0


def test_doubling_refresh_doubles_refresh_power():
    model = DramPowerModel()
    base = DramTimings()
    multiplier, _ = model.refresh_scaling_cost(base, 2.0)
    assert multiplier == pytest.approx(2.0)


def test_paper_4x_claim():
    """Section 2.1: protecting the test module needs a ~15 ms refresh
    period — 'over a 4x increase in refresh power and throughput
    overhead' relative to 64 ms."""
    model = DramPowerModel()
    base = DramTimings()
    multiplier, throughput_delta = model.refresh_scaling_cost(base, 64.0 / 15.0)
    assert multiplier > 4.0
    assert throughput_delta > 3.0 * (base.trfc_ns / base.trefi_ns)


def test_breakdown_totals():
    model = DramPowerModel()
    breakdown = model.breakdown(DramTimings(), activations_per_s=1e6,
                                accesses_per_s=1e7)
    assert breakdown.total_w == pytest.approx(
        breakdown.refresh_w + breakdown.background_w
        + breakdown.activate_w + breakdown.access_w
    )
    assert breakdown.activate_w == pytest.approx(18e-9 * 1e6)


def test_anvil_selective_refresh_power_negligible():
    """Even at Table 3's worst refresh rate (hundreds/s during an active
    attack), ANVIL's selective refreshes cost under a microwatt-to-
    milliwatt — vs ~11 mW of baseline auto-refresh."""
    model = DramPowerModel()
    anvil_w = model.selective_refresh_power_w(500)
    auto_w = model.refresh_power_w(DramTimings())
    assert anvil_w < auto_w / 1000


def test_validation():
    with pytest.raises(ConfigError):
        DramPowerConfig(vdd=0)
    model = DramPowerModel()
    with pytest.raises(ConfigError):
        model.breakdown(DramTimings(), activations_per_s=-1)
    with pytest.raises(ConfigError):
        model.selective_refresh_power_w(-1)


@settings(max_examples=30, deadline=None)
@given(factor=st.floats(min_value=1.0, max_value=20.0))
def test_refresh_power_scales_linearly(factor):
    model = DramPowerModel()
    multiplier, delta = model.refresh_scaling_cost(DramTimings(), factor)
    assert multiplier == pytest.approx(factor, rel=1e-9)
    assert delta >= 0
