"""Workload generator tests."""

from __future__ import annotations

import itertools

import pytest

from repro.pmu import Event
from repro.sim import COMPUTE, LOAD, STORE
from repro.workloads import (
    MixedWorkload,
    PointerChaseWorkload,
    RandomAccessWorkload,
    SPEC2006_INT,
    SpecWorkload,
    StreamWorkload,
    ThrashWorkload,
    spec_profile,
)
from repro.workloads.spec import window_misses
from repro.units import MB


def run_ops(machine, workload, n_ops):
    workload.prepare(machine)
    machine.run(itertools.islice(workload.ops(), n_ops))


def miss_rate(machine):
    loads = machine.pmu.read(Event.MEM_UOPS_RETIRED_ALL_LOADS)
    stores = machine.pmu.read(Event.MEM_UOPS_RETIRED_ALL_STORES)
    misses = machine.pmu.read(Event.LONGEST_LAT_CACHE_MISS)
    return misses / max(1, loads + stores)


def test_workload_requires_prepare():
    with pytest.raises(RuntimeError):
        next(StreamWorkload().ops())


def test_stream_workload_misses_everything(machine):
    wl = StreamWorkload(buffer_bytes=16 * MB, think_cycles=0)
    run_ops(machine, wl, 5_000)
    assert miss_rate(machine) > 0.95


def test_stream_wraps_around(machine):
    wl = StreamWorkload(buffer_bytes=64 * 1024, stride=64, think_cycles=0)
    wl.prepare(machine)
    offsets = [op[1] - wl._base for op in itertools.islice(wl.ops(), 2048) if op[0] == LOAD]
    assert max(offsets) < 64 * 1024
    assert offsets[0] == offsets[1024]  # wrapped


def test_random_workload_small_set_hits(machine):
    wl = RandomAccessWorkload(working_set_bytes=64 * 1024, think_cycles=0)
    run_ops(machine, wl, 8_000)
    assert miss_rate(machine) < 0.3  # fits in LLC: mostly hits after warmup


def test_random_workload_large_set_misses(machine):
    wl = RandomAccessWorkload(working_set_bytes=32 * MB, think_cycles=0)
    run_ops(machine, wl, 8_000)
    assert miss_rate(machine) > 0.7


def test_pointer_chase_visits_all_lines(machine):
    wl = PointerChaseWorkload(working_set_bytes=64 * 1024)
    wl.prepare(machine)
    addrs = {op[1] for op in itertools.islice(wl.ops(), 4096) if op[0] == LOAD}
    assert len(addrs) == 1024  # full permutation cycle of 64KB/64B lines


def test_thrash_workload_misses_with_reuse(machine):
    wl = ThrashWorkload(footprint_bytes=6 * MB, think_cycles=0)
    run_ops(machine, wl, 20_000)
    assert miss_rate(machine) > 0.9


def test_store_fraction_generates_stores(machine):
    wl = StreamWorkload(buffer_bytes=1 * MB, store_fraction=0.5, seed=3)
    wl.prepare(machine)
    kinds = [op[0] for op in itertools.islice(wl.ops(), 2000)]
    stores = kinds.count(STORE)
    loads = kinds.count(LOAD)
    assert 0.3 < stores / (stores + loads) < 0.7


def test_think_cycles_emitted(machine):
    wl = StreamWorkload(buffer_bytes=1 * MB, think_cycles=25)
    wl.prepare(machine)
    ops = list(itertools.islice(wl.ops(), 10))
    assert any(op == (COMPUTE, 25) for op in ops)


def test_mixed_workload_draws_from_components(machine):
    a = StreamWorkload(buffer_bytes=1 * MB, seed=1)
    b = RandomAccessWorkload(working_set_bytes=1 * MB, seed=2)
    mixed = MixedWorkload([(a, 0.5), (b, 0.5)], seed=5)
    mixed.prepare(machine)
    ops = list(itertools.islice(mixed.ops(), 100))
    assert len(ops) == 100


def test_mixed_workload_empty_rejected():
    with pytest.raises(ValueError):
        MixedWorkload([])


# -- SPEC profiles ----------------------------------------------------------------------


def test_all_twelve_benchmarks_present():
    assert len(SPEC2006_INT) == 12
    assert set(SPEC2006_INT) == {
        "astar", "bzip2", "gcc", "gobmk", "h264ref", "hmmer",
        "libquantum", "mcf", "omnetpp", "perlbench", "sjeng", "xalancbmk",
    }


def test_spec_profile_lookup():
    assert spec_profile("mcf").name == "mcf"
    with pytest.raises(KeyError):
        spec_profile("povray")  # a SPECfp benchmark: not in the int suite


def test_paper_threshold_crossing_groups():
    """Section 4.3's groupings, derived from the profiles analytically:
    the heavy group's median windows cross 20K misses/6 ms; the light
    group's are far below."""
    for name in ("mcf", "libquantum", "omnetpp", "xalancbmk"):
        assert SPEC2006_INT[name].misses_per_ms * 6 > 20_000
    for name in ("h264ref", "gobmk", "sjeng", "hmmer"):
        assert SPEC2006_INT[name].misses_per_ms * 6 < 20_000 / 4


def test_window_misses_positive_and_scaled():
    import random

    rng = random.Random(0)
    profile = spec_profile("mcf")
    draws = [window_misses(profile, 6.0, rng, hot=False) for _ in range(200)]
    assert all(d >= 0 for d in draws)
    mean = sum(draws) / len(draws)
    assert 0.5 * 150_000 < mean < 2.0 * 150_000


def test_window_misses_hot_boost():
    import random

    profile = spec_profile("gobmk")
    cold = [window_misses(profile, 6.0, random.Random(i), hot=False) for i in range(100)]
    hot = [window_misses(profile, 6.0, random.Random(i), hot=True) for i in range(100)]
    assert sum(hot) > 5 * sum(cold)


def test_spec_workload_miss_fraction_solution():
    wl = SpecWorkload(spec_profile("mcf"))
    assert 0 < wl.miss_fraction <= 1.0


def test_spec_workload_achieves_profiled_miss_rate(machine):
    """The access-level generator's achieved miss rate should be within
    ~2x of the profile's target (it feeds background load, not headline
    numbers)."""
    profile = spec_profile("omnetpp")
    wl = SpecWorkload(profile)
    wl.prepare(machine)
    start_misses = machine.pmu.read(Event.LONGEST_LAT_CACHE_MISS)
    start_cycles = machine.cycles
    machine.run(itertools.islice(wl.ops(), 60_000))
    misses = machine.pmu.read(Event.LONGEST_LAT_CACHE_MISS) - start_misses
    elapsed_ms = machine.clock.ms_from_cycles(machine.cycles - start_cycles)
    achieved = misses / elapsed_ms
    assert 0.5 * profile.misses_per_ms < achieved < 2.0 * profile.misses_per_ms
