"""End-to-end ANVIL protection tests: the paper's central claims at
small-machine scale.

The small machine flips at 30K disturbance units; the matched ANVIL
config uses 1 ms windows so detection (~2 ms) beats the attack's
time-to-flip (~4-5 ms), preserving the paper's ratio of detection latency
(12 ms) to attack speed (15+ ms).
"""

from __future__ import annotations

import pytest

from repro.attacks import ClflushFreeAttack, DoubleSidedClflushAttack
from repro.core import AnvilModule
from repro.units import MB

BUF = 16 * MB


@pytest.mark.parametrize("attack_cls", [DoubleSidedClflushAttack, ClflushFreeAttack])
def test_anvil_prevents_all_flips(attack_machine, fast_anvil_config, attack_cls):
    """Table 3's bottom line: zero bit flips under every attack."""
    anvil = AnvilModule(attack_machine, fast_anvil_config)
    anvil.install()
    attack = attack_cls(buffer_bytes=BUF)
    result = attack.run(attack_machine, max_ms=20, stop_on_flip=False)
    assert result.flips == 0
    assert anvil.stats.detection_count > 0


def test_detection_faster_than_flip(attack_machine, fast_anvil_config):
    """Detection latency must beat the attack's unprotected time-to-flip."""
    unprotected_flip_ms = 4.0  # 30K units at ~137 ns/access, double-sided
    anvil = AnvilModule(attack_machine, fast_anvil_config)
    anvil.install()
    attack = DoubleSidedClflushAttack(buffer_bytes=BUF)
    attack.run(attack_machine, max_ms=10, stop_on_flip=False)
    first = anvil.first_detection_ms()
    assert first is not None and first < unprotected_flip_ms


def test_detected_aggressors_are_the_attack_rows(attack_machine, fast_anvil_config):
    anvil = AnvilModule(attack_machine, fast_anvil_config)
    anvil.install()
    attack = DoubleSidedClflushAttack(buffer_bytes=BUF)
    attack.run(attack_machine, max_ms=6, stop_on_flip=False)
    true_rows = {(c.rank, c.bank, c.row) for c in attack.aggressor_coords}
    detected = {a.row_key for d in anvil.stats.detections for a in d.aggressors}
    assert true_rows <= detected


def test_victim_rows_get_refreshed(attack_machine, fast_anvil_config):
    anvil = AnvilModule(attack_machine, fast_anvil_config)
    anvil.install()
    attack = DoubleSidedClflushAttack(buffer_bytes=BUF)
    attack.run(attack_machine, max_ms=6, stop_on_flip=False)
    victim = attack.victim_coords[0]
    victim_key = (victim.rank, victim.bank, victim.row)
    refreshed = {r for d in anvil.stats.detections for r in d.refreshed_rows}
    assert victim_key in refreshed


def test_detection_repeats_across_refresh_cycles(attack_machine, fast_anvil_config):
    """An ongoing attack is re-detected every tc+ts cycle, keeping victims
    refreshed indefinitely."""
    anvil = AnvilModule(attack_machine, fast_anvil_config)
    anvil.install()
    attack = DoubleSidedClflushAttack(buffer_bytes=BUF)
    attack.run(attack_machine, max_ms=20, stop_on_flip=False)
    assert anvil.stats.detection_count >= 5
    report = anvil.report()
    assert report.refreshes_per_64ms > 0


def test_selective_refresh_rate_too_low_to_hammer(attack_machine, fast_anvil_config):
    """Section 3.3: the selective refresh rate must stay far below the
    minimum hammering rate so the mechanism cannot be turned into an
    attack primitive."""
    anvil = AnvilModule(attack_machine, fast_anvil_config)
    anvil.install()
    attack = DoubleSidedClflushAttack(buffer_bytes=BUF)
    result = attack.run(attack_machine, max_ms=20, stop_on_flip=False)
    elapsed_s = result.elapsed_ms / 1e3
    refreshes_per_row_per_s = anvil.stats.selective_refreshes / max(
        1, len({r for d in anvil.stats.detections for r in d.refreshed_rows})
    ) / elapsed_s
    min_hammer_rate_per_s = fast_anvil_config.assumed_flip_accesses / 0.064
    assert refreshes_per_row_per_s < 0.01 * min_hammer_rate_per_s


def test_anvil_report_fields(attack_machine, fast_anvil_config):
    anvil = AnvilModule(attack_machine, fast_anvil_config, name="test-config")
    anvil.install()
    attack = DoubleSidedClflushAttack(buffer_bytes=BUF)
    attack.run(attack_machine, max_ms=8, stop_on_flip=False)
    report = anvil.report()
    assert report.config_name == "test-config"
    assert report.detections == anvil.stats.detection_count
    assert report.elapsed_ms > 0
    assert 0 < report.stage1_trigger_fraction <= 1
    assert report.samples_collected > 0


def test_anvil_uninstall_lets_attack_succeed(attack_machine, fast_anvil_config):
    anvil = AnvilModule(attack_machine, fast_anvil_config)
    anvil.install()
    anvil.uninstall()
    attack = DoubleSidedClflushAttack(buffer_bytes=BUF)
    result = attack.run(attack_machine, max_ms=20)
    assert result.flipped
