"""Address-mapping tests: decode/encode roundtrips, banks, neighbours."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import AddressMapping, DramConfig, DramCoord
from repro.errors import AddressError


def small_mapping(xor_hash=False) -> AddressMapping:
    return AddressMapping(
        DramConfig(ranks=1, banks_per_rank=4, rows_per_bank=2048, row_bytes=8192,
                   xor_bank_hash=xor_hash)
    )


def test_decode_fields():
    mapping = small_mapping()
    coord = mapping.decode(0)
    assert coord == DramCoord(rank=0, bank=0, row=0, col=0)


def test_decode_bank_bits():
    mapping = small_mapping()
    assert mapping.decode(8192).bank == 1  # first address of bank 1


def test_decode_row_bits():
    mapping = small_mapping()
    stride = 8192 * 4  # one full sweep of banks = next row
    assert mapping.decode(stride).row == 1


def test_decode_out_of_range():
    mapping = small_mapping()
    with pytest.raises(AddressError):
        mapping.decode(mapping.capacity)
    with pytest.raises(AddressError):
        mapping.decode(-1)


def test_encode_validates_fields():
    mapping = small_mapping()
    with pytest.raises(AddressError):
        mapping.encode(DramCoord(rank=0, bank=9, row=0, col=0))
    with pytest.raises(AddressError):
        mapping.encode(DramCoord(rank=0, bank=0, row=4096, col=0))


def test_same_bank():
    mapping = small_mapping()
    a = mapping.address_in_row(0, 2, 100)
    b = mapping.address_in_row(0, 2, 900)
    c = mapping.address_in_row(0, 3, 100)
    assert mapping.same_bank(a, b)
    assert not mapping.same_bank(a, c)


def test_neighbors_radius_one():
    mapping = small_mapping()
    coord = DramCoord(rank=0, bank=1, row=100, col=0)
    rows = [n.row for n in mapping.neighbors(coord)]
    assert rows == [99, 101]
    assert all(n.bank == 1 for n in mapping.neighbors(coord))


def test_neighbors_at_edge():
    mapping = small_mapping()
    first = DramCoord(rank=0, bank=0, row=0, col=0)
    assert [n.row for n in mapping.neighbors(first)] == [1]
    last = DramCoord(rank=0, bank=0, row=2047, col=0)
    assert [n.row for n in mapping.neighbors(last)] == [2046]


def test_neighbors_radius_two():
    mapping = small_mapping()
    coord = DramCoord(rank=0, bank=0, row=10, col=0)
    assert [n.row for n in mapping.neighbors(coord, radius=2)] == [8, 9, 11, 12]


def test_global_row_id_dense_and_unique():
    mapping = small_mapping()
    ids = {
        mapping.global_row_id(DramCoord(rank=0, bank=b, row=r, col=0))
        for b in range(4)
        for r in range(0, 2048, 97)
    }
    assert len(ids) == 4 * len(range(0, 2048, 97))


@settings(max_examples=200, deadline=None)
@given(paddr=st.integers(min_value=0, max_value=(1 << 26) - 1))
def test_roundtrip_decode_encode(paddr):
    mapping = small_mapping()
    assert mapping.encode(mapping.decode(paddr)) == paddr


@settings(max_examples=100, deadline=None)
@given(paddr=st.integers(min_value=0, max_value=(1 << 26) - 1))
def test_roundtrip_with_xor_bank_hash(paddr):
    mapping = small_mapping(xor_hash=True)
    assert mapping.encode(mapping.decode(paddr)) == paddr


@settings(max_examples=100, deadline=None)
@given(paddr=st.integers(min_value=0, max_value=(1 << 26) - 8192))
def test_same_row_within_row_bytes(paddr):
    """All addresses within one aligned 8 KB block share a row."""
    mapping = small_mapping()
    base = paddr & ~(8192 - 1)
    a, b = mapping.decode(base), mapping.decode(base + 8191)
    assert (a.rank, a.bank, a.row) == (b.rank, b.bank, b.row)
