"""Backend conformance: serial, process-pool, and TCP fleet are
interchangeable by construction.

The same 12-cell sweep runs on every backend and must yield bit-identical
:class:`JobResult` lists — values, seeds, ordering, and failure records —
and, under a checkpoint, byte-for-byte identical journal *content*.
Placement is irrelevant because per-cell seeds derive from
``(root_seed, key)`` alone; these tests are the enforcement.

The TCP rows run against real loopback sockets via in-process thread
workers (:func:`start_thread_worker`), so the full wire protocol —
handshake, pickled payloads, result framing, lost-worker detection — is
exercised without subprocess spawn costs.  The subprocess worker path is
covered by the fleet chaos bench (``benchmarks/bench_chaos_sweep.py``).
"""

from __future__ import annotations

import random
import socket
import threading

import pytest

from repro.runner import (
    Fault,
    FaultPlan,
    Job,
    RetryPolicy,
    SerialBackend,
    SweepJournal,
    SweepRunner,
    TcpFleetBackend,
    WireProtocolError,
    code_fingerprint,
    make_backend,
    start_thread_worker,
    sweep_id,
)
from repro.runner.backends.wire import (
    PROTOCOL_VERSION,
    parse_address,
    recv_message,
    send_message,
)

ROOT_SEED = 11


def conformance_cell(a: int, b: str, seed: int) -> tuple:
    """Pure function of (params, seed): any placement, same bits."""
    rng = random.Random(seed)
    return (a, b, seed, rng.random(), tuple(rng.sample(range(100), 5)))


def make_grid() -> list[Job]:
    return [
        Job.of(conformance_cell, key=f"grid/{a}/{b}", a=a, b=b)
        for a in range(4)
        for b in ("x", "y", "z")
    ]


@pytest.fixture
def fleet():
    """Two loopback thread workers; yields their HOST:PORT addresses."""
    addr1, stop1 = start_thread_worker()
    addr2, stop2 = start_thread_worker()
    yield [addr1, addr2]
    stop1()
    stop2()


def make_runner(backend: str, fleet_addrs, **kwargs) -> SweepRunner:
    if backend == "tcp":
        kwargs.setdefault("workers", fleet_addrs)
        kwargs.setdefault("jobs", 2)
    elif backend == "process":
        kwargs.setdefault("jobs", 3)
    else:
        kwargs.setdefault("jobs", 1)
    return SweepRunner(root_seed=ROOT_SEED, backend=backend, **kwargs)


BACKENDS = ("serial", "process", "tcp")


# -- bit-identical results across backends -----------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_matches_serial_reference(backend, fleet):
    cells = make_grid()
    reference = SweepRunner(jobs=1, root_seed=ROOT_SEED, backend="serial").run(cells)
    runner = make_runner(backend, fleet)
    results = runner.run(cells)
    assert results == reference
    # Bit-identical, not merely equal: compare the full value payloads.
    assert [r.value for r in results] == [r.value for r in reference]
    assert [r.seed for r in results] == [r.seed for r in reference]
    assert runner.last_stats["backend"] == backend
    assert runner.last_stats["cells"] == len(cells)


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_matches_serial_under_faults(backend, fleet):
    """A crash + a permanent error still converge to the same results."""
    plan = FaultPlan.of(
        Fault(kind="crash", cell="grid/0/x", attempts=(1,)),
        Fault(kind="error", cell="grid/2/y", attempts=None),  # permanent
    )
    cells = make_grid()
    ref_runner = SweepRunner(jobs=1, root_seed=ROOT_SEED, backend="serial",
                             policy="degrade", fault_plan=plan)
    reference = ref_runner.run(cells)
    runner = make_runner(backend, fleet, policy="degrade", fault_plan=plan)
    results = runner.run(cells)
    assert results == reference
    assert [r.key for r in runner.last_failures] == ["grid/2/y"]
    assert runner.last_stats["retries"] >= 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_journal_content_identical(backend, fleet, tmp_path):
    """The checkpoint journal records the same completed cells with the
    same payloads regardless of backend (kept alive by a permanent
    failure under ``degrade``)."""
    plan = FaultPlan.of(Fault(kind="error", cell="grid/3/z", attempts=None))
    cells = make_grid()
    keys = [job.key for job in cells]
    jid = sweep_id(ROOT_SEED, keys, code_fingerprint())

    journals = {}
    for name, path in ((backend, tmp_path / f"{backend}.journal"),
                       ("serial", tmp_path / "reference.journal")):
        runner = make_runner(name, fleet, policy="degrade", fault_plan=plan,
                             checkpoint=path)
        runner.run(cells)
        journals[path] = SweepJournal(path).load(jid)

    this, reference = journals.values()
    assert set(this) == set(reference)
    for key in reference:
        assert this[key] == reference[key]
        assert this[key].value == reference[key].value


# -- fleet-specific behavior ---------------------------------------------------


def test_tcp_partition_recovers_on_survivor(fleet):
    """A partitioned worker drops its connection mid-cell; the runner
    charges the attempt and finishes the cell on the surviving worker,
    with results still bit-identical to serial."""
    plan = FaultPlan.of(Fault(kind="partition", cell="grid/1/y", attempts=(1,)))
    cells = make_grid()
    reference = SweepRunner(jobs=1, root_seed=ROOT_SEED, backend="serial").run(cells)
    runner = make_runner("tcp", fleet, policy="degrade", fault_plan=plan)
    results = runner.run(cells)
    assert results == reference
    assert not runner.last_failures
    assert runner.last_stats["workers_lost"] == 1
    assert runner.last_stats["retries"] == 1
    # Exactly one worker was lost; the other carried the sweep.
    lost = [w for w in runner.last_worker_health if not w.alive and "lost" in w.detail]
    assert len(lost) <= 1  # shutdown marks survivors dead with "shut down"


def test_tcp_fleet_collapse_degrades_to_serial():
    """Every worker unreachable → the sweep degrades to in-process
    execution instead of failing."""
    cells = make_grid()
    reference = SweepRunner(jobs=1, root_seed=ROOT_SEED, backend="serial").run(cells)
    # A port nothing listens on: connection refused for the whole fleet.
    runner = SweepRunner(root_seed=ROOT_SEED, backend="tcp",
                         workers=["127.0.0.1:9"],)
    with pytest.warns(RuntimeWarning, match="backend unavailable"):
        results = runner.run(cells)
    assert results == reference
    assert runner.last_stats["mode"] == "serial-fallback"


def test_tcp_mid_sweep_total_loss_degrades_to_serial(fleet):
    """Both workers partition away mid-sweep: capacity hits zero and the
    runner finishes the remaining cells in-process."""
    plan = FaultPlan.of(
        Fault(kind="partition", cell="grid/0/y", attempts=None),
        Fault(kind="partition", cell="grid/2/x", attempts=None),
    )
    cells = make_grid()
    reference = SweepRunner(jobs=1, root_seed=ROOT_SEED, backend="serial").run(cells)
    runner = make_runner("tcp", fleet, policy="degrade", fault_plan=plan,
                         retry=None)
    results = runner.run(cells)
    # Partition faults fire on *every* attempt, but in-process they raise
    # InjectedPartitionError (no network to cut), so under degrade the two
    # targeted cells end as failures while every other cell survives.
    survivors = {r.key: r for r in results if r.ok}
    for ref in reference:
        if ref.key in survivors:
            assert survivors[ref.key] == ref
    assert runner.last_stats["mode"] == "serial-fallback"
    assert runner.last_stats["workers_lost"] == 2


def test_worker_health_reporting(fleet):
    runner = make_runner("tcp", fleet)
    runner.run(make_grid())
    health = runner.last_worker_health
    assert len(health) == 2
    assert {w.worker_id for w in health} == set(fleet)
    assert sum(w.tasks_done for w in health) == 12
    assert all(w.current_task is None for w in health)


# -- wire version negotiation ---------------------------------------------------


@pytest.mark.parametrize("reply", [
    {"op": "welcome", "version": 99, "pid": 0, "host": "impostor"},
    {"op": "unsupported", "version": 99, "got": PROTOCOL_VERSION,
     "error": "nope"},
])
def test_version_mismatch_runner_side_fails_fast(reply):
    """A worker speaking a foreign protocol version (or refusing ours)
    makes ``TcpFleetBackend.start`` raise :class:`WireProtocolError`
    naming both versions — never a silent drop or a mid-sweep decode
    error."""
    server = socket.create_server(("127.0.0.1", 0))
    host, port = server.getsockname()

    def impostor() -> None:
        conn, _peer = server.accept()
        with conn:
            recv_message(conn, b"")  # the runner's hello
            send_message(conn, reply)

    thread = threading.Thread(target=impostor, daemon=True)
    thread.start()
    backend = TcpFleetBackend([f"{host}:{port}"])
    try:
        with pytest.raises(WireProtocolError) as err:
            backend.start()
    finally:
        server.close()
    message = str(err.value)
    assert f"v{PROTOCOL_VERSION}" in message
    assert "99" in message


def test_version_mismatch_worker_side_replies_unsupported():
    """The worker's half of the same handshake: a ``hello`` with a
    foreign version is answered with ``unsupported`` naming both
    versions, then the connection closes."""
    address, stop = start_thread_worker()
    host, port = parse_address(address)
    sock = socket.create_connection((host, port), timeout=5.0)
    try:
        send_message(sock, {"op": "hello", "version": 99, "path": []})
        reply, buffer = recv_message(sock, b"")
        assert reply is not None and reply["op"] == "unsupported"
        assert reply["version"] == PROTOCOL_VERSION
        assert reply["got"] == 99
        assert f"v{PROTOCOL_VERSION}" in reply["error"]
        assert "99" in reply["error"]
        assert recv_message(sock, buffer)[0] is None  # connection closed
    finally:
        sock.close()
        stop()


def test_hung_worker_detected_by_heartbeat(fleet):
    """A frozen worker (connection open, nothing ever sent again — not
    even pongs) is detected by the heartbeat within two intervals and
    retired like a lost worker; the cell retries elsewhere and the sweep
    stays bit-identical."""
    plan = FaultPlan.of(Fault(kind="freeze", cell="grid/1/x", attempts=(1,)))
    cells = make_grid()
    reference = SweepRunner(jobs=1, root_seed=ROOT_SEED, backend="serial").run(cells)
    backend = TcpFleetBackend(fleet, heartbeat_s=0.15)
    runner = SweepRunner(root_seed=ROOT_SEED, backend=backend,
                         policy="degrade", fault_plan=plan,
                         retry=RetryPolicy(max_attempts=3, backoff_base_s=0.001))
    results = runner.run(cells)
    assert results == reference
    assert not runner.last_failures
    assert runner.last_stats["workers_hung"] >= 1
    assert runner.last_stats["retries"] >= 1
    hung = [w for w in runner.last_worker_health
            if not w.alive and "heartbeat" in w.detail]
    assert hung  # the loss is attributed to missed heartbeats, by name


# -- construction / registry ---------------------------------------------------


def test_make_backend_registry():
    assert isinstance(make_backend("serial"), SerialBackend)
    assert make_backend("process", jobs=2).capacity == 2
    tcp = make_backend("tcp://127.0.0.1:1234,127.0.0.1:1235")
    assert isinstance(tcp, TcpFleetBackend)
    assert tcp.addresses == ("127.0.0.1:1234", "127.0.0.1:1235")
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        make_backend("hovercraft")
    with pytest.raises(ConfigError):
        make_backend("tcp")  # no addresses anywhere


def test_runner_rejects_direct_pool_import():
    """The acceptance criterion of the refactor: SweepRunner's module no
    longer touches concurrent.futures — pool mechanics live only in the
    process backend."""
    import repro.runner.runner as runner_module

    source = open(runner_module.__file__).read()
    assert "ProcessPoolExecutor" not in source
    assert "concurrent.futures" not in source
