"""Single-level cache tests: indexing, fills, evictions, invalidation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import Cache, CacheConfig
from repro.cache.slicing import slice_of
from repro.errors import ConfigError
from repro.units import KB


def tiny_cache(ways=2, sets=4, policy="lru", slices=1) -> Cache:
    return Cache(
        CacheConfig(
            name="T",
            size_bytes=ways * sets * 64 * slices,
            ways=ways,
            policy=policy,
            slices=slices,
        )
    )


# -- config validation ----------------------------------------------------------


def test_config_rejects_unaligned_size():
    with pytest.raises(ConfigError):
        CacheConfig(name="X", size_bytes=100, ways=2)


def test_config_rejects_non_power_of_two_sets():
    with pytest.raises(ConfigError):
        CacheConfig(name="X", size_bytes=3 * 64 * 2, ways=2)


def test_config_derived_geometry():
    config = CacheConfig(name="X", size_bytes=32 * KB, ways=8)
    assert config.sets_per_slice == 64
    assert config.line_bits == 6
    assert config.set_bits == 6


# -- basic behaviour --------------------------------------------------------------


def test_miss_then_hit():
    cache = tiny_cache()
    assert not cache.access(0x1000)
    cache.fill(0x1000)
    assert cache.access(0x1000)
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_same_line_different_bytes_hit():
    cache = tiny_cache()
    cache.fill(0x1000)
    assert cache.access(0x1000 + 63)


def test_fill_evicts_when_set_full():
    cache = tiny_cache(ways=2, sets=1)
    cache.fill(0 << 6)
    cache.fill(1 << 6)
    result = cache.fill(2 << 6)
    assert result.evicted_line is not None
    assert cache.stats.evictions == 1


def test_fill_prefers_invalid_way():
    cache = tiny_cache(ways=4, sets=1)
    for i in range(3):
        assert cache.fill(i << 6).evicted_line is None


def test_fill_existing_line_is_noop_touch():
    cache = tiny_cache()
    cache.fill(0x40)
    assert cache.fill(0x40).evicted_line is None
    assert len(cache.resident_lines()) == 1


def test_invalidate_removes_line():
    cache = tiny_cache()
    cache.fill(0x40)
    assert cache.invalidate(0x40)
    assert not cache.probe(0x40)
    assert not cache.invalidate(0x40)  # second time: not resident


def test_probe_does_not_update_stats_or_state():
    cache = tiny_cache()
    cache.fill(0x40)
    cache.probe(0x40)
    assert cache.stats.accesses == 0


def test_set_index_uses_line_and_set_bits():
    cache = tiny_cache(ways=2, sets=4)
    # Addresses 4 sets apart (4 * 64 bytes) map to the same set.
    assert cache.set_index(0x0) == cache.set_index(4 * 64)
    assert cache.set_index(0x0) != cache.set_index(1 * 64)


def test_flush_all_empties():
    cache = tiny_cache()
    cache.fill(0x40)
    cache.fill(0x80)
    cache.flush_all()
    assert cache.resident_lines() == []


def test_miss_rate():
    cache = tiny_cache()
    cache.access(0x40)
    cache.fill(0x40)
    cache.access(0x40)
    assert cache.stats.miss_rate == 0.5


# -- sliced caches ------------------------------------------------------------------


def test_sliced_cache_same_set_requires_same_slice():
    cache = tiny_cache(ways=2, sets=4, slices=2)
    a = 0x0
    # Find an address with the same local set bits but a different slice.
    b = next(
        addr
        for addr in range(4 * 64, 1 << 20, 4 * 64)
        if slice_of(addr, 2) != slice_of(a, 2)
    )
    assert not cache.same_set(a, b)


def test_slice_of_single_slice_is_zero():
    assert slice_of(0xDEADBEEF, 1) == 0


def test_slice_of_rejects_non_power_of_two():
    with pytest.raises(ConfigError):
        slice_of(0x1000, 3)


def test_slice_of_distributes():
    slices = {slice_of(addr << 6, 2) for addr in range(4096)}
    assert slices == {0, 1}


# -- capacity property ------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(lines=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=120))
def test_residency_never_exceeds_capacity(lines):
    cache = tiny_cache(ways=2, sets=4)
    for line in lines:
        paddr = line << 6
        if not cache.access(paddr):
            cache.fill(paddr)
    assert len(cache.resident_lines()) <= 8


@settings(max_examples=30, deadline=None)
@given(lines=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=60))
def test_most_recent_fill_is_resident(lines):
    cache = tiny_cache(ways=2, sets=4, policy="bit-plru")
    for line in lines:
        paddr = line << 6
        if not cache.access(paddr):
            cache.fill(paddr)
        assert cache.probe(paddr)
