"""ANVIL detector state-machine tests (stage gating, facility choice,
refresher behaviour) on synthetic machines."""

from __future__ import annotations

from repro.core import AnvilConfig, AnvilModule, SelectiveRefresher
from repro.core.sampler import DetectedAggressor
from repro.presets import small_machine
from repro.sim import compute, load, store
from repro.units import MB


def idle_config(**kwargs) -> AnvilConfig:
    defaults = dict(
        llc_miss_threshold=3_300, tc_ms=1.0, ts_ms=1.0,
        sampling_rate_hz=50_000, assumed_flip_accesses=30_000,
    )
    defaults.update(kwargs)
    return AnvilConfig(**defaults)


def run_for_ms(machine, ops_fn, ms):
    def stream():
        while True:
            yield ops_fn()

    machine.run(stream(), max_cycles=machine.clock.cycles_from_ms(ms))


# -- stage gating -------------------------------------------------------------------


def test_idle_machine_never_enters_stage2(machine):
    anvil = AnvilModule(machine, idle_config())
    anvil.install()
    run_for_ms(machine, lambda: compute(100), 10)
    assert anvil.stats.stage1_windows >= 8
    assert anvil.stats.stage1_triggers == 0
    assert anvil.stats.stage2_windows == 0
    assert anvil.stats.detections == []


def test_low_miss_workload_does_not_trigger(machine):
    base = machine.memory.vm.mmap(64 * 1024)
    anvil = AnvilModule(machine, idle_config())
    anvil.install()
    counter = [0]

    def op():
        counter[0] += 1
        return load(base + (counter[0] % 1024) * 64)  # 64 KB: fits in caches

    run_for_ms(machine, op, 10)
    assert anvil.stats.stage1_triggers == 0


def test_miss_storm_triggers_stage2(machine):
    base = machine.memory.vm.mmap(32 * MB)
    anvil = AnvilModule(machine, idle_config())
    anvil.install()
    counter = [0]

    def op():
        counter[0] += 1
        return load(base + (counter[0] * 64) % (32 * MB))  # streaming misses

    run_for_ms(machine, op, 10)
    assert anvil.stats.stage1_triggers > 0
    assert anvil.stats.stage2_windows > 0


def test_streaming_misses_produce_no_detection(machine):
    """High miss rate with sequentially advancing rows: stage 2 runs but
    locality analysis must not flag an attack."""
    base = machine.memory.vm.mmap(32 * MB)
    anvil = AnvilModule(machine, idle_config())
    anvil.install()
    counter = [0]

    def op():
        counter[0] += 1
        return load(base + (counter[0] * 64) % (32 * MB))

    run_for_ms(machine, op, 20)
    assert anvil.stats.stage2_windows > 0
    assert anvil.stats.detection_count == 0


def test_sampling_disabled_between_windows(machine):
    base = machine.memory.vm.mmap(32 * MB)
    anvil = AnvilModule(machine, idle_config())
    anvil.install()
    counter = [0]

    def op():
        counter[0] += 1
        return load(base + (counter[0] * 64) % (32 * MB))

    run_for_ms(machine, op, 10)
    anvil.uninstall()
    assert machine.pmi_cost_cycles == 0
    sampler = machine.pmu.sampler
    assert sampler is None or not sampler.enabled


def test_uninstall_stops_windows(machine):
    anvil = AnvilModule(machine, idle_config())
    anvil.install()
    run_for_ms(machine, lambda: compute(100), 5)
    windows_at_uninstall = anvil.stats.stage1_windows
    anvil.uninstall()
    run_for_ms(machine, lambda: compute(100), 5)
    assert anvil.stats.stage1_windows == windows_at_uninstall


def test_store_hammer_selects_store_facility(machine):
    """A store-only miss storm must flip the detector to the Precise
    Store facility (Section 3.3's <10% load rule)."""
    base = machine.memory.vm.mmap(32 * MB)
    anvil = AnvilModule(machine, idle_config())
    anvil.install()
    counter = [0]

    def op():
        counter[0] += 1
        return store(base + (counter[0] * 64) % (32 * MB))

    run_for_ms(machine, op, 10)
    assert anvil.stats.stage2_windows > 0
    sampler = machine.pmu.sampler
    assert sampler is not None
    assert sampler.config.sample_stores and not sampler.config.sample_loads
    assert anvil.stats.samples_collected > 0


def test_overhead_charged(machine):
    base = machine.memory.vm.mmap(32 * MB)
    anvil = AnvilModule(machine, idle_config())
    anvil.install()
    counter = [0]

    def op():
        counter[0] += 1
        return load(base + (counter[0] * 64) % (32 * MB))

    run_for_ms(machine, op, 10)
    assert machine.overhead_cycles > 0
    report = anvil.report()
    assert report.overhead_cycles == machine.overhead_cycles


# -- refresher ---------------------------------------------------------------------


def agg(row, bank=0, rank=0):
    return DetectedAggressor(
        row_key=(rank, bank, row), sample_count=10,
        estimated_accesses=50_000.0, bank_other_samples=10,
    )


def test_victims_of_radius_one(machine):
    refresher = SelectiveRefresher(machine, AnvilConfig.baseline())
    victims = refresher.victims_of([agg(100)])
    assert victims == [(0, 0, 99), (0, 0, 101)]


def test_victims_of_dedup_and_excludes_aggressors(machine):
    """Double-sided: rows 99 and 101 flagged; row 100 (between them) is
    the victim and must appear once; 99/101 are not their own victims."""
    refresher = SelectiveRefresher(machine, AnvilConfig.baseline())
    victims = refresher.victims_of([agg(99), agg(101)])
    assert victims.count((0, 0, 100)) == 1
    assert (0, 0, 99) not in victims and (0, 0, 101) not in victims
    assert (0, 0, 98) in victims and (0, 0, 102) in victims


def test_victims_of_respects_bank_edges(machine):
    refresher = SelectiveRefresher(machine, AnvilConfig.baseline())
    victims = refresher.victims_of([agg(0)])
    assert victims == [(0, 0, 1)]


def test_victims_of_radius_two(machine):
    config = AnvilConfig(victim_radius=2)
    refresher = SelectiveRefresher(machine, config)
    victims = refresher.victims_of([agg(100)])
    assert set(victims) == {(0, 0, 98), (0, 0, 99), (0, 0, 101), (0, 0, 102)}


def test_refresh_charges_overhead_and_counts(machine):
    refresher = SelectiveRefresher(machine, AnvilConfig.baseline())
    refreshed = refresher.refresh([(0, 0, 99), (0, 0, 101)])
    assert refreshed == 2
    assert machine.overhead_cycles > 0
    assert machine.memory.controller.stats.selective_refreshes == 2
