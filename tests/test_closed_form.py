"""Property tests: generators' empirical statistics match their closed forms.

The fast-forward tier and the sweep benches reason about workloads through
:meth:`Workload.closed_form` — analytic steady-state LLC miss rate and
DRAM row locality.  These tests run the actual machine (after a warm-up
period) and pin the empirical statistics against the closed forms, with
hypothesis drawing the workload parameters.  A second group pins the
integer-exact batch kernels (:mod:`repro.sim.kernels`) against their
scalar counterparts — on both backends, since ``REPRO_ACCEL`` decides
which one runs.
"""

from __future__ import annotations

from itertools import islice

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.pmu import Event
from repro.presets import small_machine
from repro.sim import kernels
from repro.sim.ops import LOAD
from repro.workloads import (
    HammerWorkload,
    PointerChaseWorkload,
    RandomAccessWorkload,
    StreamWorkload,
    ThrashWorkload,
)

KB = 1024
MB = 1024 * KB

SLOW = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def measure(workload, mem_ops: int, warm_mem_ops: int):
    """Empirical (miss_rate, row_locality) over ``mem_ops`` memory ops,
    after discarding ``warm_mem_ops`` of cache/row-buffer warm-up."""
    machine = small_machine()
    workload.prepare(machine)
    per_mem = 2 if workload.think_cycles else 1
    stream = workload.ops()
    machine.run_fast(islice(stream, warm_mem_ops * per_mem))
    counter = machine.pmu.counter(Event.LONGEST_LAT_CACHE_MISS)
    device = machine.memory.controller.device.stats
    misses0, dram0, hits0 = counter.read(), device.accesses, device.row_hits
    machine.run_fast(islice(stream, mem_ops * per_mem))
    misses = counter.read() - misses0
    dram = device.accesses - dram0
    hits = device.row_hits - hits0
    return misses / mem_ops, (hits / dram if dram else 0.0)


# -- miss rate / row locality vs closed form -------------------------------------


@SLOW
@given(
    buffer_kb=st.sampled_from([128, 256, 512, 1024]),
    stride=st.sampled_from([64, 128, 256]),
    think=st.sampled_from([0, 20]),
)
def test_stream_cache_resident_closed_form(buffer_kb, stride, think):
    workload = StreamWorkload(
        buffer_bytes=buffer_kb * KB, stride=stride, think_cycles=think
    )
    form = workload.closed_form()
    assert form.miss_rate == 0.0
    period = form.mem_ops_per_period
    miss_rate, _locality = measure(workload, period, warm_mem_ops=2 * period)
    assert miss_rate == pytest.approx(form.miss_rate, abs=0.02)


#: The thrashing closed forms are asymptotic capacity models; bit-PLRU
#: retains a noticeable fraction of lines until the footprint clears
#: ~2.5x the LLC (empirically: 4 MB → 0.85 miss, 8 MB → 0.999 miss
#: against a 3 MB LLC), so the thrashing cells stay at or above 8 MB.
THRASH_MB = 8


@SLOW
@given(stride=st.sampled_from([64, 128]))
def test_stream_llc_thrashing_closed_form(stride):
    workload = StreamWorkload(buffer_bytes=THRASH_MB * MB, stride=stride)
    form = workload.closed_form()
    assert form.miss_rate > 0.0
    period = form.mem_ops_per_period
    miss_rate, locality = measure(workload, period // 4, warm_mem_ops=period)
    assert miss_rate == pytest.approx(form.miss_rate, abs=0.02)
    assert locality == pytest.approx(form.row_locality, abs=0.02)


@SLOW
@given(ws_mb=st.sampled_from([6, 8, 12]))
def test_random_closed_form(ws_mb):
    workload = RandomAccessWorkload(working_set_bytes=ws_mb * MB)
    form = workload.closed_form()
    miss_rate, locality = measure(workload, 20_000, warm_mem_ops=60_000)
    assert miss_rate == pytest.approx(form.miss_rate, abs=0.1)
    assert locality == pytest.approx(form.row_locality, abs=0.1)


@SLOW
@given(
    ws_kb=st.sampled_from([64, 256]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_pointer_chase_resident_closed_form(ws_kb, seed):
    workload = PointerChaseWorkload(working_set_bytes=ws_kb * KB, seed=seed)
    form = workload.closed_form()
    assert form.miss_rate == 0.0
    period = form.mem_ops_per_period
    miss_rate, _locality = measure(workload, period, warm_mem_ops=2 * period)
    assert miss_rate == pytest.approx(0.0, abs=0.02)


@SLOW
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_pointer_chase_thrashing_closed_form(seed):
    workload = PointerChaseWorkload(working_set_bytes=THRASH_MB * MB, seed=seed)
    form = workload.closed_form()
    assert form.miss_rate == 1.0
    period = form.mem_ops_per_period
    miss_rate, locality = measure(workload, period // 4, warm_mem_ops=period)
    assert miss_rate == pytest.approx(1.0, abs=0.02)
    assert locality == pytest.approx(form.row_locality, abs=0.05)


@SLOW
@given(footprint_mb=st.sampled_from([THRASH_MB, 12]))
def test_thrash_closed_form(footprint_mb):
    workload = ThrashWorkload(footprint_bytes=footprint_mb * MB)
    form = workload.closed_form()
    assert form.miss_rate == 1.0
    period = form.mem_ops_per_period
    miss_rate, locality = measure(workload, period // 4, warm_mem_ops=period)
    assert miss_rate == pytest.approx(1.0, abs=0.02)
    assert locality == pytest.approx(form.row_locality, abs=0.02)


@SLOW
@given(
    aggressors=st.sampled_from([1, 2, 4]),
    think=st.sampled_from([0, 120]),
)
def test_hammer_closed_form(aggressors, think):
    workload = HammerWorkload(aggressors=aggressors, think_cycles=think)
    form = workload.closed_form()
    assert form.miss_rate == 1.0
    machine = small_machine()
    workload.prepare(machine)
    lap = workload.steady_program().ops
    stream = workload.ops()
    machine.run_fast(islice(stream, 10 * len(lap)))
    device = machine.memory.controller.device.stats
    counter = machine.pmu.counter(Event.LONGEST_LAT_CACHE_MISS)
    misses0, dram0, hits0 = counter.read(), device.accesses, device.row_hits
    laps = 500
    machine.run_fast(islice(stream, laps * len(lap)))
    mem_ops = laps * aggressors
    miss_rate = (counter.read() - misses0) / mem_ops
    dram = device.accesses - dram0
    locality = (device.row_hits - hits0) / dram
    assert miss_rate == pytest.approx(1.0, abs=0.02)
    assert locality == pytest.approx(form.row_locality, abs=0.02)


# -- batch kernels are integer-exact against their scalar counterparts -----------


@pytest.fixture(params=["numpy", "stdlib"])
def accel_mode(request, monkeypatch):
    if request.param == "numpy":
        pytest.importorskip("numpy")
        monkeypatch.delenv(kernels.ACCEL_ENV, raising=False)
    else:
        monkeypatch.setenv(kernels.ACCEL_ENV, "0")
    return request.param


def test_batch_translate_matches_scalar(accel_mode):
    machine = small_machine()
    workload = StreamWorkload(buffer_bytes=256 * KB, stride=192, seed=11)
    workload.prepare(machine)
    vm = machine.memory.vm
    vaddrs = [op[1] for op in workload.steady_program().ops
              if op[0] == LOAD]
    batched = kernels.batch_translate(vaddrs, vm)
    assert batched == [vm.translate(vaddr) for vaddr in vaddrs]


def test_batch_set_index_and_decode_match_scalar(accel_mode):
    machine = small_machine()
    workload = RandomAccessWorkload(working_set_bytes=2 * MB, seed=12)
    workload.prepare(machine)
    vm = machine.memory.vm
    mapping = machine.memory.mapping
    device = machine.memory.controller.device
    vaddrs = [workload._base + offset
              for offset in islice(workload._addresses(), 2048)]
    paddrs = kernels.batch_translate(vaddrs, vm)
    for cache in (machine.memory.hierarchy.l1, machine.memory.hierarchy.l2):
        batched = kernels.batch_set_index(
            paddrs, cache._line_bits, cache._set_mask
        )
        assert batched == [cache.set_index(paddr) for paddr in paddrs]
    banks, rows, row_ids = kernels.batch_decode(paddrs, mapping)
    for paddr, bank, row, row_id in zip(paddrs, banks, rows, row_ids):
        coord = mapping.decode(paddr)
        dense = coord.rank * device._banks_per_rank + coord.bank
        assert (bank, row) == (dense, coord.row)
        assert row_id == dense * mapping.config.rows_per_bank + coord.row


@settings(max_examples=50, deadline=None)
@given(
    times=st.lists(st.integers(min_value=0, max_value=10**9), max_size=200),
    trefi=st.integers(min_value=100, max_value=100_000),
    trfc=st.integers(min_value=1, max_value=99),
)
def test_batch_blocking_matches_scalar(times, trefi, trfc):
    expected = [max(0, trfc - (t % trefi)) if (t % trefi) < trfc else 0
                for t in times]
    assert kernels.batch_blocking(times, trefi, trfc) == expected


@settings(max_examples=50, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.integers(min_value=0, max_value=7),
                  st.integers(min_value=0, max_value=31)),
        max_size=3000,
    ),
)
def test_count_activations_matches_scalar(data):
    banks = [bank for bank, _row in data]
    rows = [row for _bank, row in data]
    open_rows: list[int | None] = [None] * 8
    expected = 0
    for bank, row in data:
        if open_rows[bank] != row:
            open_rows[bank] = row
            expected += 1
    assert kernels.count_activations(banks, rows, 8) == expected


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(st.integers(min_value=0, max_value=2**40), min_size=1,
                    max_size=500),
    probe=st.integers(min_value=0, max_value=2**40),
)
def test_searchsorted_and_prefix_sums_match_scalar(values, probe):
    from bisect import bisect_left

    ordered = sorted(values)
    arr = kernels.int_array(ordered)
    assert kernels.searchsorted_left(arr, probe) == bisect_left(ordered, probe)
    total, sums = 0, []
    for value in values:
        total += value
        sums.append(total)
    assert kernels.prefix_sums(values) == sums
