"""Baseline-defense tests: PARA, TRR, ARMOR, ECC, refresh scaling, bans."""

from __future__ import annotations

import pytest

from repro.attacks import DoubleSidedClflushAttack
from repro.defenses import (
    Armor,
    ClflushBan,
    DoubleRefresh,
    EccScrubber,
    Para,
    TargetedRowRefresh,
    apply_refresh_scale,
)
from repro.errors import ClflushRestrictedError
from repro.presets import small_machine
from repro.units import MB

THRESHOLD = 4_000
BUF = 16 * MB


def attack_under(defense, max_ms=30, threshold=THRESHOLD):
    machine = small_machine(threshold_min=threshold)
    if defense is not None:
        defense.install(machine)
    attack = DoubleSidedClflushAttack(buffer_bytes=BUF)
    result = attack.run(machine, max_ms=max_ms)
    return machine, result


# -- PARA -------------------------------------------------------------------------


def test_para_stops_double_sided_attack():
    machine, result = attack_under(Para(probability=0.002))
    assert not result.flipped


def test_para_triggers_proportionally():
    para = Para(probability=0.01)
    machine, result = attack_under(para)
    activations = machine.memory.device.stats.activations
    # Expect ~1% of activations to trigger, within loose bounds.
    assert 0.003 * activations < para.triggered < 0.03 * activations


def test_para_zero_probability_rejected():
    with pytest.raises(ValueError):
        Para(probability=0.0)


def test_para_uninstall():
    machine = small_machine(threshold_min=THRESHOLD)
    para = Para(probability=1.0)
    para.install(machine)
    para.uninstall(machine)
    attack = DoubleSidedClflushAttack(buffer_bytes=BUF)
    assert attack.run(machine, max_ms=20).flipped


# -- TRR ---------------------------------------------------------------------------


def test_trr_stops_attack():
    machine, result = attack_under(TargetedRowRefresh(activation_threshold=500))
    assert not result.flipped


def test_trr_threshold_above_flip_point_fails():
    """A TRR threshold above the cell flip threshold refreshes too late —
    the DDR4 'optional module' worry of Section 1.2."""
    machine, result = attack_under(
        TargetedRowRefresh(activation_threshold=50_000), max_ms=30
    )
    assert result.flipped


def test_trr_limited_tracker_table_evicts():
    trr = TargetedRowRefresh(activation_threshold=500, table_size=2)
    machine = small_machine(threshold_min=THRESHOLD)
    trr.install(machine)
    # Touch many distinct rows in one bank to churn the tracker table.
    mapping = machine.memory.mapping
    for row in range(0, 64):
        machine.memory.controller.access(
            mapping.address_in_row(0, 0, row), 20_000 + row * 200
        )
    assert trr.evicted_trackers > 0


# -- ARMOR -----------------------------------------------------------------------------


def test_armor_stops_attack():
    machine, result = attack_under(Armor(hot_threshold=500))
    assert not result.flipped


def test_armor_absorbs_hot_activations():
    armor = Armor(hot_threshold=200)
    machine, result = attack_under(armor)
    assert armor.absorbed > 0


# -- ECC ---------------------------------------------------------------------------------


def test_ecc_corrects_single_flip():
    machine = small_machine(threshold_min=THRESHOLD)
    ecc = EccScrubber()
    ecc.install(machine)
    attack = DoubleSidedClflushAttack(buffer_bytes=BUF)
    attack.run(machine, max_ms=30)  # stops at first flip
    report = ecc.scrub()
    assert report.corrected_words >= 1
    assert report.protected


def test_ecc_overwhelmed_by_sustained_hammering():
    """Section 1.2: 'multiple bit-flips per word' defeat SECDED.  Keep
    hammering well past the first flip until some word collects two."""
    machine = small_machine(threshold_min=2_000)
    ecc = EccScrubber()
    ecc.install(machine)
    attack = DoubleSidedClflushAttack(buffer_bytes=BUF)
    attack.run(machine, max_ms=50, stop_on_flip=False)
    report = ecc.scrub()
    total_flips = machine.memory.device.flip_count()
    assert total_flips > 2
    # With enough flips in one row, word collisions appear eventually;
    # at minimum ECC must report every flipped word.
    assert report.corrected_words + 2 * report.uncorrectable_words <= total_flips
    assert report.corrected_words + report.uncorrectable_words > 0


def test_ecc_clean_without_attack():
    machine = small_machine()
    ecc = EccScrubber()
    ecc.install(machine)
    assert ecc.scrub().clean


def test_ecc_requires_install():
    with pytest.raises(RuntimeError):
        EccScrubber().scrub()


# -- refresh scaling -----------------------------------------------------------------------


def test_double_refresh_halves_retention():
    machine = small_machine()
    apply_refresh_scale(machine, 2.0)
    assert machine.memory.controller.config.timings.retention_ms == 32.0


def test_double_refresh_defense_object():
    machine = small_machine()
    DoubleRefresh().install(machine)
    assert machine.memory.controller.config.timings.retention_ms == 32.0


def test_double_refresh_insufficient_against_fast_attack():
    machine, result = attack_under(DoubleRefresh(), max_ms=40)
    assert result.flipped  # Section 2.1's headline


def test_refresh_scaling_bounded_by_trfc():
    """Refresh commands cannot arrive faster than they complete: the
    physical ceiling on the 'just refresh more' mitigation."""
    from repro.errors import ConfigError

    machine = small_machine()
    with pytest.raises(ConfigError):
        apply_refresh_scale(machine, 32.0)


def test_fast_refresh_scaling_beats_slow_attack():
    """With retention shorter than the attack's accumulation time, the
    victim is always refreshed first (the principle that works; the cost
    is what makes it impractical, Section 2.1)."""
    machine = small_machine(threshold_min=60_000, refresh_scale=16.0)
    attack = DoubleSidedClflushAttack(buffer_bytes=BUF)
    result = attack.run(machine, max_ms=30)
    assert not result.flipped


# -- CLFLUSH ban ------------------------------------------------------------------------------


def test_clflush_ban_blocks_instruction():
    machine = small_machine()
    ClflushBan().install(machine)
    base = machine.memory.vm.mmap(8192)
    with pytest.raises(ClflushRestrictedError):
        machine.memory.clflush(base, 0)


def test_clflush_ban_uninstall():
    machine = small_machine()
    ban = ClflushBan()
    ban.install(machine)
    ban.uninstall(machine)
    base = machine.memory.vm.mmap(8192)
    machine.memory.access(base, 0)
    assert machine.memory.clflush(base, 100) > 0
