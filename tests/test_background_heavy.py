"""Heavy-load interaction tests: background co-runners vs detection."""

from __future__ import annotations

from repro.attacks import DoubleSidedClflushAttack
from repro.core import AnvilConfig, AnvilModule
from repro.presets import small_machine
from repro.units import MB
from repro.workloads import BackgroundMix


def scaled_config() -> AnvilConfig:
    return AnvilConfig(
        llc_miss_threshold=3_300, tc_ms=1.0, ts_ms=1.0,
        sampling_rate_hz=50_000, assumed_flip_accesses=30_000,
    )


def test_attack_detected_under_heavy_load():
    """Table 3's heavy-load scenario at test scale: co-runner misses share
    the counters and dilute samples, but detection and protection hold."""
    machine = small_machine(threshold_min=30_000)
    mix = BackgroundMix(scale=0.15, seed=9, buffer_cap_bytes=4 << 20)
    mix.attach(machine)
    anvil = AnvilModule(machine, scaled_config())
    anvil.install()
    attack = DoubleSidedClflushAttack(buffer_bytes=8 * MB)
    result = attack.run(machine, max_ms=12, stop_on_flip=False)
    mix.detach()
    assert result.flips == 0
    assert anvil.stats.detection_count > 0
    assert mix.injected_ops > 0


def test_background_dilutes_attack_sample_share():
    """With co-runners, the attack rows' share of stage-2 samples drops —
    the mechanism behind the paper's heavy-load detection latencies."""

    def attack_share(with_background: bool) -> float:
        machine = small_machine(threshold_min=10**9)
        if with_background:
            mix = BackgroundMix(scale=0.15, seed=9, buffer_cap_bytes=4 << 20)
            mix.attach(machine)
        anvil = AnvilModule(machine, scaled_config())
        anvil.install()
        attack = DoubleSidedClflushAttack(buffer_bytes=8 * MB)
        attack.run(machine, max_ms=8, stop_on_flip=False)
        aggressor_rows = {
            (c.rank, c.bank, c.row) for c in attack.aggressor_coords
        }
        total = 0
        hits = 0
        for detection in anvil.stats.detections:
            for aggressor in detection.aggressors:
                total += aggressor.sample_count
                if aggressor.row_key in aggressor_rows:
                    hits += aggressor.sample_count
        samples = anvil.stats.samples_collected
        return hits / samples if samples else 0.0

    clean = attack_share(with_background=False)
    loaded = attack_share(with_background=True)
    assert clean > 0
    assert loaded < clean


def test_background_alone_is_not_flagged():
    """Co-runners by themselves (streaming + pointer-chasing profiles)
    must not trip the detector's locality analysis."""
    machine = small_machine()
    mix = BackgroundMix(scale=0.15, seed=9, buffer_cap_bytes=4 << 20)
    mix.attach(machine)
    anvil = AnvilModule(machine, scaled_config())
    anvil.install()

    from repro.sim import compute

    def stream():
        while True:
            yield compute(500)

    machine.run(stream(), max_cycles=machine.clock.cycles_from_ms(15))
    mix.detach()
    assert anvil.stats.detection_count == 0
