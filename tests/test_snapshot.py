"""Deterministic machine snapshots: bit-for-bit round-trip equivalence.

``Machine.snapshot()`` / ``Machine.restore()`` must capture *everything*
— caches + replacement state (via the canonical ``state_key()``
machinery), DRAM device + disturbance tracker, PMU/PEBS counters,
pending timers, RNG streams — so that a restored machine is
indistinguishable from the original under any future workload.  These
tests gate that the same way the fastpath/turbo suites gate engine
equivalence: run the original and the restored fork through identical
op streams and compare every observable.

Unsupported state (a replacement policy with no canonical form, an
unpicklable access hook) must surface as
:class:`~repro.errors.SnapshotUnsupportedError` — the signal the sweep
runner converts into cold execution — and corrupt blobs must raise
:class:`~repro.errors.SnapshotError`, never restore partially.
"""

from __future__ import annotations

from dataclasses import replace
from itertools import islice

import pytest

from tests.test_fastpath_equivalence import result_tuple, state_snapshot

from repro.cache.replacement import ReplacementPolicy, make_policy, policy_names
from repro.errors import SnapshotError, SnapshotUnsupportedError
from repro.presets import small_machine
from repro.sim.snapshot import (
    CHECKSUM_BYTES,
    MAGIC,
    machine_unsupported_reason,
    restore_value,
    snapshot_value,
)
from repro.workloads import HammerWorkload, RandomAccessWorkload

KB = 1024


def warmed_machine(threshold_min: int = 20_000, cycles: int = 2_000_000):
    """A small machine driven partway through a hammer run — open rows,
    partial disturbance deposits, PMU counts, cache residency."""
    machine = small_machine(threshold_min=threshold_min)
    workload = HammerWorkload(aggressors=2, think_cycles=120, seed=5)
    workload.prepare(machine)
    machine.run_fast(workload.ops(), max_cycles=cycles)
    return machine


def drive(machine, seed: int = 9, n_ops: int = 4_000):
    """Run a fixed op stream and return every observable."""
    workload = RandomAccessWorkload(working_set_bytes=256 * KB, seed=seed)
    workload.prepare(machine)
    result = machine.run_fast(islice(workload.ops(), n_ops))
    return result_tuple(result), state_snapshot(machine)


# -- round-trip equivalence ---------------------------------------------------


def test_round_trip_is_bit_identical():
    machine = warmed_machine()
    blob = machine.snapshot()
    fork = type(machine).restore(blob)
    assert state_snapshot(fork) == state_snapshot(machine)
    # The real gate: both machines must behave identically *forever*.
    assert drive(fork) == drive(machine)


def test_snapshot_blob_is_deterministic():
    machine = warmed_machine()
    assert machine.snapshot() == machine.snapshot()


def test_restored_forks_are_independent():
    machine = warmed_machine()
    blob = machine.snapshot()
    fork_a = type(machine).restore(blob)
    fork_b = type(machine).restore(blob)
    drive(fork_a, seed=1)  # mutate one fork heavily
    # The sibling fork and a fresh restore still match the original.
    assert state_snapshot(fork_b) == state_snapshot(machine)
    assert drive(fork_b) == drive(type(machine).restore(blob))


def test_snapshot_after_flips_round_trips():
    machine = warmed_machine(threshold_min=4_000, cycles=8_000_000)
    assert machine.memory.flip_count() > 0
    fork = type(machine).restore(machine.snapshot())
    assert state_snapshot(fork) == state_snapshot(machine)
    assert drive(fork) == drive(machine)


@pytest.mark.parametrize("policy", policy_names())
def test_round_trip_across_replacement_policies(policy):
    machine = small_machine()
    hierarchy = machine.memory.hierarchy
    # Swap every set's policy in place for the target policy (skipping
    # caches whose associativity the policy cannot express, e.g. the
    # 12-way LLC under tree-plru).
    for cache in (hierarchy.l1, hierarchy.l2, hierarchy.llc):
        ways = cache.config.ways
        if policy == "tree-plru" and ways & (ways - 1):
            continue
        cache.config = replace(cache.config, policy=policy)
        for i, cset in enumerate(cache._sets):
            cset.policy = make_policy(
                policy, cache.config.ways, seed=cache.config.policy_seed + i
            )
    drive(machine, seed=3, n_ops=2_000)  # populate replacement state
    blob = machine.snapshot()
    fork = type(machine).restore(blob)
    assert state_snapshot(fork) == state_snapshot(machine)
    assert drive(fork) == drive(machine)


# -- unsupported state --------------------------------------------------------


class OpaquePolicy(ReplacementPolicy):
    """A policy that cannot report canonical state."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._next = 0

    def on_hit(self, way: int) -> None:
        pass

    def on_fill(self, way: int) -> None:
        pass

    def victim(self) -> int:
        way = self._next
        self._next = (self._next + 1) % self.ways
        return way

    # state_key() inherited: returns None (no canonical form).


def test_unsnapshotable_policy_is_reported():
    machine = small_machine()
    cset = machine.memory.hierarchy.l2._sets[3]
    cset.policy = OpaquePolicy(machine.memory.hierarchy.l2.config.ways)
    reason = machine_unsupported_reason(machine)
    assert reason is not None
    assert "OpaquePolicy" in reason and "l2 set 3" in reason
    with pytest.raises(SnapshotUnsupportedError):
        machine.snapshot()


def test_machine_nested_in_context_is_still_vetoed():
    machine = small_machine()
    machine.memory.hierarchy.l1._sets[0].policy = OpaquePolicy(
        machine.memory.hierarchy.l1.config.ways
    )
    with pytest.raises(SnapshotUnsupportedError):
        snapshot_value({"machine": machine, "extra": (1, 2)})


def test_unpicklable_graph_is_unsupported_not_fatal():
    machine = small_machine()
    machine.add_access_hook(lambda record, cycles: None)
    with pytest.raises(SnapshotUnsupportedError):
        machine.snapshot()


# -- integrity ----------------------------------------------------------------


def test_corrupt_blob_is_detected():
    blob = snapshot_value({"a": 1})
    header = len(MAGIC) + CHECKSUM_BYTES
    flipped = blob[:header] + bytes([blob[header] ^ 0xFF]) + blob[header + 1:]
    with pytest.raises(SnapshotError):
        restore_value(flipped)
    with pytest.raises(SnapshotError):
        restore_value(b"junk" + blob)
    with pytest.raises(SnapshotError):
        restore_value(blob[: header - 2])


def test_restore_rejects_non_machine_blob():
    from repro.sim.machine import Machine

    blob = snapshot_value({"not": "a machine"})
    with pytest.raises(SnapshotError):
        Machine.restore(blob)


def test_plain_values_round_trip():
    value = {"tuple": (1, 2.5, "x"), "list": [b"bytes", None]}
    assert restore_value(snapshot_value(value)) == value
