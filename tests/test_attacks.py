"""End-to-end attack tests on unprotected and partially mitigated machines."""

from __future__ import annotations

import pytest

from repro.attacks import (
    ClflushFreeAttack,
    DoubleSidedClflushAttack,
    SingleSidedClflushAttack,
)
from repro.errors import ClflushRestrictedError
from repro.presets import small_machine
from repro.units import MB

THRESHOLD = 4_000  # fast-flipping test module
BUF = 16 * MB


def run_attack(attack_cls, machine=None, max_ms=30, **kwargs):
    machine = machine or small_machine(threshold_min=THRESHOLD)
    attack = attack_cls(buffer_bytes=BUF, **kwargs)
    result = attack.run(machine, max_ms=max_ms)
    return machine, attack, result


# -- Table 1 behaviours -----------------------------------------------------------


def test_double_sided_clflush_flips():
    machine, attack, result = run_attack(DoubleSidedClflushAttack)
    assert result.flipped
    assert result.time_to_first_flip_ms is not None


def test_double_sided_min_accesses_near_threshold():
    """Every counted access disturbs the victim, so the minimum access
    count equals the victim row's flip threshold (Table 1 calibration)."""
    machine, attack, result = run_attack(DoubleSidedClflushAttack)
    assert THRESHOLD * 0.95 <= result.min_row_accesses <= THRESHOLD * 1.3


def test_single_sided_needs_roughly_double_accesses():
    machine, attack, result = run_attack(SingleSidedClflushAttack, max_ms=60)
    assert result.flipped
    assert result.min_row_accesses >= 1.7 * THRESHOLD


def test_single_sided_slower_than_double_sided():
    _, _, double = run_attack(DoubleSidedClflushAttack)
    _, _, single = run_attack(SingleSidedClflushAttack, max_ms=60)
    assert single.time_to_first_flip_ms > double.time_to_first_flip_ms


def test_clflush_free_flips_without_clflush():
    machine, attack, result = run_attack(ClflushFreeAttack, max_ms=40)
    assert result.flipped
    from repro.sim import CLFLUSH

    assert all(op[0] != CLFLUSH for op in attack.iteration_ops())


def test_clflush_free_iteration_time_matches_paper_estimate():
    """~880 cycles = ~338 ns per double-sided hammer iteration (Sec. 2.2)."""
    machine, attack, result = run_attack(ClflushFreeAttack, max_ms=40)
    assert result.ns_per_iteration is not None
    assert 300 <= result.ns_per_iteration <= 420


def test_clflush_free_two_misses_per_set_per_iteration():
    machine, attack, result = run_attack(ClflushFreeAttack, max_ms=40)
    # 4 DRAM accesses per iteration: aggressor + sacrificial conflict, x2 sets.
    per_iter = result.total_dram_accesses / result.iterations
    assert 3.8 <= per_iter <= 4.3


def test_attack_victim_is_adjacent_to_aggressors():
    machine, attack, result = run_attack(DoubleSidedClflushAttack)
    aggressors = {c.row for c in attack.aggressor_coords}
    victim = attack.victim_coords[0].row
    assert aggressors == {victim - 1, victim + 1}
    flip_row = result.details["first_flip_row_id"]
    coord = machine.memory.device.coord_of_row_id(flip_row)
    assert abs(coord.row - victim) <= 2


def test_attack_result_reports_llc_misses():
    _, _, result = run_attack(DoubleSidedClflushAttack)
    assert result.llc_misses >= result.total_dram_accesses


# -- mitigation interactions ----------------------------------------------------------


def test_clflush_ban_stops_clflush_attack():
    machine = small_machine(threshold_min=THRESHOLD, clflush_allowed=False)
    attack = DoubleSidedClflushAttack(buffer_bytes=BUF)
    with pytest.raises(ClflushRestrictedError):
        attack.run(machine, max_ms=10)


def test_clflush_ban_does_not_stop_clflush_free():
    """The headline Section 2.2 result: banning CLFLUSH is insufficient."""
    machine = small_machine(threshold_min=THRESHOLD, clflush_allowed=False)
    attack = ClflushFreeAttack(buffer_bytes=BUF)
    result = attack.run(machine, max_ms=40)
    assert result.flipped


def test_double_refresh_does_not_stop_fast_attack():
    """Section 2.1: a 32 ms refresh period still leaves enough time for a
    double-sided CLFLUSH attack that flips in less than 32 ms."""
    machine = small_machine(threshold_min=THRESHOLD, refresh_scale=2.0)
    attack = DoubleSidedClflushAttack(buffer_bytes=BUF)
    result = attack.run(machine, max_ms=60)
    assert result.flipped
    assert result.time_to_first_flip_ms < 32.0


def test_slow_attack_defeated_by_short_retention():
    """A retention window shorter than the attack's time-to-flip resets
    the victim before it accumulates enough disturbance."""
    machine = small_machine(threshold_min=40_000, refresh_scale=16.0)  # 4 ms epochs
    attack = DoubleSidedClflushAttack(buffer_bytes=BUF)
    result = attack.run(machine, max_ms=40)
    assert not result.flipped


def test_restricted_pagemap_blocks_preparation():
    from repro.errors import PagemapRestrictedError

    machine = small_machine(threshold_min=THRESHOLD, pagemap_restricted=True)
    attack = ClflushFreeAttack(buffer_bytes=BUF)
    with pytest.raises(PagemapRestrictedError):
        attack.prepare(machine)


def test_privileged_pagemap_override():
    machine = small_machine(threshold_min=THRESHOLD, pagemap_restricted=True)
    attack = ClflushFreeAttack(buffer_bytes=BUF, privileged_pagemap=True)
    attack.prepare(machine)
    assert attack.prepared


# -- attack framework ----------------------------------------------------------------


def test_ops_requires_prepare():
    attack = DoubleSidedClflushAttack()
    with pytest.raises(RuntimeError):
        next(attack.ops())


def test_run_without_flip_budget_expires():
    machine = small_machine(threshold_min=10_000_000)  # effectively unflippable
    attack = DoubleSidedClflushAttack(buffer_bytes=BUF)
    result = attack.run(machine, max_ms=2)
    assert not result.flipped
    assert result.elapsed_ms >= 2.0


def test_eviction_sets_exposed():
    machine = small_machine(threshold_min=THRESHOLD)
    attack = ClflushFreeAttack(buffer_bytes=BUF)
    attack.prepare(machine)
    set_x, set_y = attack.eviction_sets
    assert len(set_x) == len(set_y) == 12
