"""PMU tests: counters, overflow interrupts, PEBS sampling."""

from __future__ import annotations

import pytest

from repro.mem import MemoryAccess
from repro.pmu import Counter, Event, PebsSampler, Pmu, SamplerConfig
from repro.errors import PmuError


def access(level="DRAM", latency=150, is_store=False, vaddr=0x1000) -> MemoryAccess:
    return MemoryAccess(
        vaddr=vaddr, paddr=vaddr, is_store=is_store, level=level,
        latency_cycles=latency, llc_miss=(level == "DRAM"),
    )


# -- counters ------------------------------------------------------------------


def test_counter_increments_and_reads():
    counter = Counter(Event.LONGEST_LAT_CACHE_MISS)
    counter.increment(0)
    counter.increment(0, amount=4)
    assert counter.read() == 5


def test_counter_overflow_fires_callback():
    counter = Counter(Event.LONGEST_LAT_CACHE_MISS)
    fired = []
    counter.program_overflow(3, fired.append)
    for i in range(3):
        counter.increment(i)
    assert len(fired) == 1
    assert fired[0].count_at_overflow == 3
    assert fired[0].time_cycles == 2


def test_counter_overflow_rearms():
    counter = Counter(Event.LONGEST_LAT_CACHE_MISS)
    fired = []
    counter.program_overflow(2, fired.append)
    for i in range(6):
        counter.increment(i)
    assert len(fired) == 3


def test_counter_clear_overflow():
    counter = Counter(Event.LONGEST_LAT_CACHE_MISS)
    fired = []
    counter.program_overflow(1, fired.append)
    counter.clear_overflow()
    counter.increment(0)
    assert fired == []


def test_counter_invalid_period():
    counter = Counter(Event.LONGEST_LAT_CACHE_MISS)
    with pytest.raises(PmuError):
        counter.program_overflow(0, lambda _: None)


def test_counter_reset():
    counter = Counter(Event.LONGEST_LAT_CACHE_MISS)
    counter.increment(0, amount=7)
    counter.reset()
    assert counter.read() == 0


# -- PEBS sampler -------------------------------------------------------------------


def make_sampler(rate_hz=1e6, loads=True, stores=False, threshold=40) -> PebsSampler:
    return PebsSampler(
        SamplerConfig(rate_hz=rate_hz, latency_threshold_cycles=threshold,
                      sample_loads=loads, sample_stores=stores),
        freq_hz=2.6e9,
    )


def test_sampler_disabled_by_default():
    sampler = make_sampler()
    assert sampler.offer(access(), 10_000_000) is None


def test_sampler_records_missing_load():
    sampler = make_sampler()
    sampler.enable(0)
    record = sampler.offer(access(latency=150), 10_000_000)
    assert record is not None
    assert record.data_source.value == "DRAM"


def test_sampler_skips_fast_loads():
    """Loads under the latency threshold (cache hits) are not recorded —
    ANVIL 'only sample[s] loads that miss in the L3 cache'."""
    sampler = make_sampler()
    sampler.enable(0)
    assert sampler.offer(access(level="L3", latency=29), 10_000_000) is None


def test_sampler_paces_by_time():
    sampler = make_sampler(rate_hz=5000)  # one sample per ~520K cycles
    sampler.enable(0)
    taken = sum(
        sampler.offer(access(), t) is not None
        for t in range(0, 2_600_000, 200)  # 1 ms of back-to-back misses
    )
    assert 3 <= taken <= 8  # ~5 samples per ms at 5 kHz


def test_sampler_store_facility():
    sampler = make_sampler(loads=False, stores=True)
    sampler.enable(0)
    assert sampler.offer(access(is_store=False), 10_000_000) is None
    record = sampler.offer(access(is_store=True), 20_000_000)
    assert record is not None and record.is_store


def test_sampler_store_misses_only():
    sampler = make_sampler(loads=False, stores=True)
    sampler.enable(0)
    assert sampler.offer(access(level="L2", latency=12, is_store=True), 10_000_000) is None


def test_sampler_drain_clears():
    sampler = make_sampler()
    sampler.enable(0)
    sampler.offer(access(), 10_000_000)
    assert len(sampler.drain()) == 1
    assert sampler.drain() == []


def test_sampler_config_validation():
    with pytest.raises(PmuError):
        SamplerConfig(rate_hz=0)
    with pytest.raises(PmuError):
        SamplerConfig(sample_loads=False, sample_stores=False)


# -- PMU facade ------------------------------------------------------------------------


def test_pmu_counts_loads_stores_and_misses():
    pmu = Pmu(2.6e9)
    pmu.on_access(access(is_store=False), 0)
    pmu.on_access(access(is_store=True), 0)
    pmu.on_access(access(level="L1", latency=4), 0)
    assert pmu.read(Event.LONGEST_LAT_CACHE_MISS) == 2
    assert pmu.read(Event.MEM_LOAD_UOPS_MISC_RETIRED_LLC_MISS) == 1
    assert pmu.read(Event.MEM_STORE_UOPS_RETIRED_LLC_MISS) == 1
    assert pmu.read(Event.MEM_UOPS_RETIRED_ALL_LOADS) == 2


def test_pmu_sampling_round_trip():
    pmu = Pmu(2.6e9)
    pmu.configure_sampler(SamplerConfig(rate_hz=1e6))
    pmu.enable_sampling(0)
    pmu.on_access(access(), 10_000_000)
    assert len(pmu.drain_samples()) == 1
    pmu.disable_sampling()
    pmu.on_access(access(), 20_000_000)
    assert pmu.drain_samples() == []


def test_pmu_enable_without_configure_raises():
    pmu = Pmu(2.6e9)
    with pytest.raises(RuntimeError):
        pmu.enable_sampling(0)
