"""Eviction-pattern planning and replacement-policy probe tests."""

from __future__ import annotations

import pytest

from repro.attacks.patterns import (
    AGGRESSOR,
    efficient_bit_plru_pattern,
    pattern_cost_cycles,
    pattern_miss_profile,
    search_pattern,
)
from repro.attacks.policy_probe import identify_replacement_policy, probe_sequence
from repro.cache.setmodel import SetModel, steady_state_misses
from repro.errors import ConfigError
from repro.sim import load


# -- set model ----------------------------------------------------------------------


def test_setmodel_hit_after_fill():
    model = SetModel("lru", 4)
    assert not model.access("a")
    assert model.access("a")


def test_setmodel_capacity_eviction():
    model = SetModel("lru", 2)
    model.access("a")
    model.access("b")
    model.access("c")
    assert not model.contains("a")


def test_steady_state_none_for_unstable():
    """Random replacement has no period-one steady state on a thrashing
    pattern."""
    pattern = list(range(5))
    result = steady_state_misses("random", 4, pattern, iterations=30)
    assert result is None or isinstance(result, tuple)


# -- the canonical pattern -----------------------------------------------------------


def test_efficient_pattern_misses_aggressor_and_one_conflict():
    """The Section 2.2 result: steady state misses exactly the aggressor
    plus one sacrificial conflict address per iteration."""
    pattern = efficient_bit_plru_pattern(12)
    misses = pattern_miss_profile(pattern, "bit-plru", 12)
    assert misses is not None
    assert len(misses) == 2
    assert AGGRESSOR in misses


def test_efficient_pattern_matches_paper_cost():
    """21 LLC hits at 29 cycles + 2 misses at ~146: the paper's '~880
    cycles' iteration estimate."""
    pattern = efficient_bit_plru_pattern(12)
    cost = pattern_cost_cycles(pattern, misses_per_iteration=2)
    assert 850 <= cost <= 910


def test_efficient_pattern_scales_to_other_ways():
    for ways in (8, 16):
        pattern = efficient_bit_plru_pattern(ways)
        misses = pattern_miss_profile(pattern, "bit-plru", ways)
        assert misses is not None and AGGRESSOR in misses and len(misses) == 2


def test_pattern_thrashes_under_true_lru():
    """Under true LRU the same pattern cannot keep the conflicts resident:
    a cyclic reuse distance beyond associativity misses everything, which
    is exactly why the attack needed the Bit-PLRU discovery."""
    pattern = efficient_bit_plru_pattern(12)
    misses = pattern_miss_profile(pattern, "lru", 12)
    assert misses is None or len(misses) > 2


def test_search_pattern_finds_bit_plru_solution():
    pattern = search_pattern("bit-plru", ways=8, trials=2000, seed=1)
    misses = pattern_miss_profile(pattern, "bit-plru", 8)
    assert misses is not None and AGGRESSOR in misses


def test_search_pattern_deterministic():
    a = search_pattern("bit-plru", ways=8, trials=500, seed=9)
    b = search_pattern("bit-plru", ways=8, trials=500, seed=9)
    assert a == b


# -- the probe -------------------------------------------------------------------------


def test_probe_sequence_shape():
    assert probe_sequence(3, 2) == [0, 1, 2, 0, 1, 2]


def build_same_set_addresses(machine, count):
    """Allocate until we own `count` addresses in one LLC set."""
    memsys = machine.memory
    base = memsys.vm.mmap(8 << 20)
    llc = memsys.hierarchy.llc
    target = memsys.vm.translate(base)
    addrs = [base]
    for page in range(1, (8 << 20) // 4096):
        vaddr = base + page * 4096 + (target & 0xFC0)
        if llc.same_set(memsys.vm.translate(vaddr), target):
            addrs.append(vaddr)
            if len(addrs) == count:
                return addrs
    raise AssertionError("pool too small")


def test_probe_identifies_bit_plru(machine):
    """Reproduces the Section 2.2 reverse-engineering result on the
    simulated Sandy Bridge LLC."""
    ways = machine.memory.hierarchy.llc.config.ways
    addrs = build_same_set_addresses(machine, ways + 1)
    result = identify_replacement_policy(machine, addrs, rounds=30)
    assert result.best == "bit-plru"
    assert result.scores["bit-plru"] == 1.0


def test_probe_identifies_true_lru():
    from repro.cache.config import CacheConfig
    from repro.mem import MemorySystemConfig
    from repro.cache import HierarchyConfig
    from repro.presets import small_machine
    from repro.sim import Machine, MachineConfig
    from repro.dram import DramConfig

    hierarchy = HierarchyConfig(
        llc=CacheConfig(name="L3", size_bytes=3 << 20, ways=12,
                        latency_cycles=29, policy="lru", slices=2)
    )
    dram = DramConfig(ranks=1, banks_per_rank=4, rows_per_bank=2048, row_bytes=8192)
    machine = Machine(MachineConfig(
        memory=MemorySystemConfig(hierarchy=hierarchy, dram=dram)))
    ways = 12
    addrs = build_same_set_addresses(machine, ways + 1)
    result = identify_replacement_policy(machine, addrs, rounds=30)
    # A cyclic sweep over ways+1 addresses thrashes identically under
    # several miss-everything policies; LRU must be among the top scorers.
    assert result.scores["lru"] == max(result.scores.values())


def test_probe_requires_enough_addresses(machine):
    base = machine.memory.vm.mmap(8192)
    with pytest.raises(ConfigError):
        identify_replacement_policy(machine, [base], rounds=5)


def test_probe_miss_fraction_reported(machine):
    ways = machine.memory.hierarchy.llc.config.ways
    addrs = build_same_set_addresses(machine, ways + 1)
    machine.run([load(a) for a in addrs])  # warm
    result = identify_replacement_policy(machine, addrs, rounds=10)
    assert 0 < result.observed_miss_fraction < 1
