"""Fixture: float leakage in an integer-exact kernel module."""

import math


def bad_scale(x):
    return x * 1.5  # KER001


def bad_ratio(a, b):
    return a / b  # KER002


def bad_root(x):
    return math.isqrt(x) + math.sqrt(x)  # KER003 (math.* calls)


def good_kernel(a, b):
    return (a * b) // 2 + (a ^ b)
