"""Fixture: every banned-call DET violation (linted with --det-all)."""

import os
import random
import time


def derive_key(params):
    return hash(params)  # DET001


def identity(obj):
    return id(obj)  # DET002


def stamp():
    return time.time()  # DET003


def jitter():
    return random.random()  # DET005


def entropy():
    return os.urandom(8)  # DET004
