"""Fixture: broad handlers that visibly do something with the failure."""

import warnings


def reraise(fn):
    try:
        return fn()
    except Exception as exc:
        raise RuntimeError("wrapped") from exc


def degrade(fn):
    try:
        return fn()
    except Exception as exc:
        return {"ok": False, "error": str(exc)}


def record(fn, sink):
    try:
        return fn()
    except Exception as exc:
        warnings.warn(f"recorded: {exc}", RuntimeWarning, stacklevel=2)


def narrow(fn):
    try:
        return fn()
    except OSError:
        pass
