"""Fixture mirror engine missing the phantom observable (EQV001)."""

from .machine import RunResult


def run_turbo(n):
    result = RunResult(cycles=n, ops=n)
    return result
