"""Fixture mirror engine that covers every observable (clean)."""

from .machine import RunResult


def run_fast(n):
    result = RunResult(cycles=n, ops=n)
    result.phantom_counter = n * 2
    return result
