"""Fixture reference engine: writes one observable no mirror covers."""


class RunResult:
    def __init__(self, cycles=0, ops=0):
        self.cycles = cycles
        self.ops = ops


class Machine:
    def run(self, n):
        result = RunResult(cycles=0, ops=0)
        for _ in range(n):
            result.cycles += 1
        result.ops = n
        result.phantom_counter = n * 2
        return result
