"""Fixture: serialization-core order hazards (linted with --det-all)."""

import json


def frame(payload):
    parts = []
    for key in payload.keys():  # DET006
        parts.append(key)
    for item in {"a", "b"}:  # DET007
        parts.append(item)
    return json.dumps(payload)  # DET008


def sorted_is_fine(payload):
    # The laundered forms stay legal: sorted() fixes the order.
    parts = [v for _, v in sorted((k, v) for k, v in payload.items())]
    for key in sorted(payload):
        parts.append(key)
    return json.dumps(payload, sort_keys=True)
