"""Fixture: broad exception handlers that swallow the error."""


def swallow_pass(fn):
    try:
        return fn()
    except Exception:  # ERR001
        pass


def swallow_continue(items):
    out = []
    for item in items:
        try:
            out.append(item())
        except Exception:  # ERR001
            continue
    return out
