"""Fixture: the same DET violations, each excused by a noqa comment."""

import os
import random
import time


def derive_key(params):
    return hash(params)  # repro: noqa[DET]


def identity(obj):
    return id(obj)  # repro: noqa[DET002]


def stamp():
    return time.time()  # repro: noqa


def jitter():
    return random.random()  # repro: noqa[DET005]


def entropy():
    return os.urandom(8)  # repro: noqa[DET, KER]
