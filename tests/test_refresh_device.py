"""Refresh engine and DRAM device tests."""

from __future__ import annotations

from repro.dram import DramConfig, DramCoord, DramDevice, RefreshEngine
from repro.dram.config import DisturbanceConfig, DramTimings
from repro.units import Clock


def small_device(threshold_min=1000, retention_ms=64.0) -> DramDevice:
    return DramDevice(
        DramConfig(
            ranks=1, banks_per_rank=4, rows_per_bank=2048, row_bytes=8192,
            timings=DramTimings(retention_ms=retention_ms),
            disturbance=DisturbanceConfig(
                threshold_min=threshold_min, spread=0.0, strong_fraction=0.0
            ),
        ),
        Clock(),
    )


# -- refresh engine -------------------------------------------------------------


def test_epoch_advances_each_retention_period():
    clock = Clock()
    engine = RefreshEngine(DramTimings(retention_ms=64), clock, total_rows=8192)
    retention = clock.cycles_from_ms(64)
    assert engine.epoch(0, 0) == 0 or engine.epoch(0, 0) == 1  # phase 0 row
    e1 = engine.epoch(100, retention // 2)
    e2 = engine.epoch(100, retention // 2 + retention)
    assert e2 == e1 + 1


def test_phases_staggered_across_rows():
    clock = Clock()
    engine = RefreshEngine(DramTimings(), clock, total_rows=8192)
    assert engine.phase(0) == 0
    assert engine.phase(4096) == engine.retention_cycles // 2


def test_next_refresh_after_time():
    clock = Clock()
    engine = RefreshEngine(DramTimings(), clock, total_rows=8192)
    t = engine.next_refresh(10, 12345)
    assert t > 12345
    assert (t - engine.phase(10)) % engine.retention_cycles == 0


def test_blocking_delay_inside_and_outside_trfc():
    clock = Clock()
    engine = RefreshEngine(DramTimings(), clock, total_rows=8192)
    assert engine.blocking_delay(0) == engine.trfc_cycles
    assert engine.blocking_delay(engine.trfc_cycles) == 0


def test_duty_fraction_doubles_with_refresh_rate():
    clock = Clock()
    base = RefreshEngine(DramTimings(), clock, 8192)
    double = RefreshEngine(DramTimings().scaled_refresh(2), clock, 8192)
    assert abs(double.duty_fraction() - 2 * base.duty_fraction()) < 1e-9


# -- device row buffer ---------------------------------------------------------------


def test_first_access_activates():
    device = small_device()
    out = device.access(DramCoord(0, 0, 100, 0), 0)
    assert out.activated and not out.row_hit


def test_second_access_row_hit():
    device = small_device()
    coord = DramCoord(0, 0, 100, 0)
    device.access(coord, 0)
    out = device.access(DramCoord(0, 0, 100, 512), 10)
    assert out.row_hit and not out.activated
    assert out.latency_cycles < device.config.timings.row_conflict_cycles(device.clock)


def test_row_conflict_costs_more_than_hit():
    device = small_device()
    device.access(DramCoord(0, 0, 100, 0), 0)
    conflict = device.access(DramCoord(0, 0, 200, 0), 10)
    hit = device.access(DramCoord(0, 0, 200, 64), 20)
    assert conflict.latency_cycles > hit.latency_cycles


def test_banks_have_independent_row_buffers():
    device = small_device()
    device.access(DramCoord(0, 0, 100, 0), 0)
    device.access(DramCoord(0, 1, 200, 0), 10)
    assert device.open_row(0, 0) == 100
    assert device.open_row(0, 1) == 200


def test_row_hits_do_not_disturb():
    """The row-buffer property of Section 3.1: repeated accesses to an
    open row cannot hammer."""
    device = small_device(threshold_min=10)
    coord = DramCoord(0, 0, 100, 0)
    device.access(coord, 0)
    for i in range(100):
        device.access(coord, i + 1)
    assert device.flip_count() == 0


def test_alternating_rows_disturb_the_victim():
    device = small_device(threshold_min=50)
    low, high = DramCoord(0, 0, 99, 0), DramCoord(0, 0, 101, 0)
    for i in range(60):
        device.access(low, i * 100)
        device.access(high, i * 100 + 50)
    flips = device.flips_in_row(DramCoord(0, 0, 100, 0))
    assert flips, "victim row should have flipped"


def test_activation_refreshes_own_row():
    device = small_device(threshold_min=50)
    aggressor = DramCoord(0, 0, 99, 0)
    victim_id = device.row_id(DramCoord(0, 0, 100, 0))
    other = DramCoord(0, 0, 500, 0)
    for i in range(30):
        device.access(aggressor, i * 100)
        device.access(other, i * 100 + 50)
    assert device.tracker.units(victim_id, device.refresh_engine.epoch(victim_id, 3000)) > 0
    # Now read the victim itself: its accumulator resets.
    device.access(DramCoord(0, 0, 100, 0), 4000)
    assert device.tracker.units(victim_id, device.refresh_engine.epoch(victim_id, 4000)) == 0


def test_refresh_row_resets_disturbance_even_when_open():
    device = small_device(threshold_min=1000)
    victim = DramCoord(0, 0, 100, 0)
    device.access(DramCoord(0, 0, 99, 0), 0)  # disturb victim
    device.access(victim, 10)  # victim now open
    device.access(DramCoord(0, 0, 99, 0), 20)  # disturb again, victim closed
    device.access(victim, 30)  # open again
    device.refresh_row(victim, 40)  # row-hit refresh path
    victim_id = device.row_id(victim)
    epoch = device.refresh_engine.epoch(victim_id, 40)
    assert device.tracker.units(victim_id, epoch) == 0


def test_weakest_rows_in_bank_excludes_edges():
    device = small_device()
    rows = device.weakest_rows_in_bank(0, 0, count=10)
    assert all(0 < r < 2047 for r in rows)
    assert len(rows) == 10


# -- device data + flips ---------------------------------------------------------------


def test_write_read_roundtrip():
    device = small_device()
    paddr = 8192 * 5 + 64
    device.write_word(paddr, 0xDEADBEEF)
    assert device.read_word(paddr) == 0xDEADBEEF


def test_unwritten_reads_fill_pattern():
    device = small_device()
    assert device.read_word(12345 & ~7) == 0xFFFFFFFFFFFFFFFF


def test_flip_corrupts_read_data():
    device = small_device(threshold_min=20)
    victim = DramCoord(0, 0, 100, 0)
    victim_base = device.mapping.encode(victim)
    low, high = DramCoord(0, 0, 99, 0), DramCoord(0, 0, 101, 0)
    for i in range(30):
        device.access(low, i * 100)
        device.access(high, i * 100 + 50)
    flips = device.flips_in_row(victim)
    assert flips
    flip = flips[0]
    word_addr = victim_base + (flip.bit_offset // 64) * 8
    value = device.read_word(word_addr)
    expected = 0xFFFFFFFFFFFFFFFF ^ (1 << (flip.bit_offset % 64))
    assert value == expected


def test_rewrite_heals_flipped_word():
    device = small_device(threshold_min=20)
    victim = DramCoord(0, 0, 100, 0)
    low, high = DramCoord(0, 0, 99, 0), DramCoord(0, 0, 101, 0)
    for i in range(30):
        device.access(low, i * 100)
        device.access(high, i * 100 + 50)
    flip = device.flips_in_row(victim)[0]
    word_addr = device.mapping.encode(victim) + (flip.bit_offset // 64) * 8
    device.write_word(word_addr, 0x1234)
    assert device.read_word(word_addr) == 0x1234
