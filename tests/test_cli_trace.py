"""CLI and trace-infrastructure tests."""

from __future__ import annotations

import io

import pytest

from repro.cli import main
from repro.errors import SimulationError
from repro.sim import clflush, compute, load, mfence, pair_load, store
from repro.sim.trace import format_op, iter_trace, parse_op, read_trace, write_trace


# -- trace round trips ---------------------------------------------------------------


OPS = [
    load(0x7F0000001040),
    store(0x7F0000002080),
    clflush(0x7F0000001040),
    mfence(),
    compute(36),
    pair_load(0x7F0000001040, 0x7F0000003100),
]


@pytest.mark.parametrize("op", OPS, ids=[op[0] for op in OPS])
def test_format_parse_roundtrip(op):
    assert parse_op(format_op(op)) == op


def test_trace_file_roundtrip(tmp_path):
    path = tmp_path / "attack.trace"
    written = write_trace(path, OPS)
    assert written == len(OPS)
    assert list(read_trace(path)) == OPS


def test_trace_limit(tmp_path):
    path = tmp_path / "t.trace"
    assert write_trace(path, iter(OPS), limit=3) == 3
    assert len(list(read_trace(path))) == 3


def test_trace_comments_and_blanks():
    text = "# header\nL 40\n\nC 10   # think\n"
    assert list(iter_trace(io.StringIO(text))) == [("L", 0x40), ("C", 10)]


def test_trace_malformed_lines():
    with pytest.raises(SimulationError):
        parse_op("L")
    with pytest.raises(SimulationError):
        parse_op("Z 1234")
    with pytest.raises(SimulationError):
        parse_op("C notanumber")


def test_trace_replay_on_machine(machine, tmp_path):
    base = machine.memory.vm.mmap(64 * 1024)
    ops = [load(base + i * 64) for i in range(32)]
    path = tmp_path / "replay.trace"
    write_trace(path, ops)
    result = machine.run(read_trace(path))
    assert result.loads == 32


# -- CLI ---------------------------------------------------------------------------------


def test_cli_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "bit-plru" in out and "64 MB" in out


def test_cli_probe_policy(capsys):
    assert main(["probe-policy", "--rounds", "8"]) == 0
    out = capsys.readouterr().out
    assert "bit-plru" in out and "best match" in out


def test_cli_attack_flips(capsys):
    assert main(["attack", "--type", "double-sided", "--ms", "8",
                 "--threshold", "4000"]) == 0
    out = capsys.readouterr().out
    assert "bit flips       : 1" in out


def test_cli_attack_under_anvil(capsys):
    assert main(["attack", "--type", "double-sided", "--ms", "8",
                 "--anvil"]) == 0
    out = capsys.readouterr().out
    assert "bit flips       : 0" in out
    assert "ANVIL detections" in out


def test_cli_attack_clflush_banned():
    # A CLFLUSH attack on a banned machine is a library error -> exit 2.
    assert main(["attack", "--type", "double-sided", "--ms", "5",
                 "--no-clflush"]) == 2


def test_cli_spec_overhead(capsys):
    assert main(["spec-overhead", "--seconds", "2"]) == 0
    out = capsys.readouterr().out
    assert "mcf" in out and "ANVIL time" in out


def test_cli_requires_command(capsys):
    with pytest.raises(SystemExit):
        main([])
