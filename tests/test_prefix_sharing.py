"""Prefix-sharing warm start: forked cells are bit-identical to cold runs.

A :class:`Prefix` declares a shared warmup stage.  The runner executes
each distinct ``(fn, params, derived seed)`` prefix once per worker,
snapshots the returned context, and hands every member cell a restored
fork.  The contract gated here mirrors the backend-conformance suite:
warm-started results must be **bit-identical** to cold per-cell
execution (``REPRO_SNAPSHOT=0``) on every backend at any worker count —
the optimisation must be invisible in the result set.
"""

from __future__ import annotations

import random

import pytest

from repro.runner import (
    Fault,
    FaultPlan,
    Job,
    Prefix,
    ResultCache,
    SNAPSHOT_ENV,
    SweepRunner,
    start_thread_worker,
)
from repro.runner.backends.base import _reset_prefix_memo

ROOT_SEED = 11


def warm_context(scale: int, trace: str = "", seed: int = 0) -> dict:
    """Shared warmup: deterministic in (params, seed), moderately large.

    ``trace`` (a file path) records one line per *execution*, so tests
    can count how many times the prefix actually ran.
    """
    if trace:
        with open(trace, "a", encoding="utf-8") as fh:
            fh.write("ran\n")
    rng = random.Random(seed * 7919 + scale)
    samples = [rng.randrange(1_000_000) for _ in range(256)]
    return {"scale": scale, "samples": samples, "rng_state": rng.getstate()}


def fork_cell(shift: int, prefix: dict, seed: int) -> tuple:
    """Diverging tail: consumes the warm context, then mutates it.

    The mutation is the isolation probe — ``n_samples`` lands in the
    result, so a leaked (shared, already-mutated) context shows up as a
    warm/cold result mismatch.
    """
    n_samples = len(prefix["samples"])
    rng = random.Random()
    rng.setstate(prefix["rng_state"])
    prefix["samples"].append(-1)  # must never leak into a sibling cell
    tail = [rng.randrange(1_000_000) + shift * seed for _ in range(32)]
    return (shift, seed, prefix["scale"], n_samples,
            sum(prefix["samples"][:256]), tuple(tail))


def opaque_context(scale: int, seed: int = 0):
    """A warm context no snapshot can capture (unpicklable graph)."""
    ctx = warm_context(scale, seed=seed)
    ctx["hook"] = lambda: None
    return ctx


def make_grid(trace: str = "", fn=warm_context) -> list[Job]:
    pre = Prefix.of(fn, scale=3, **({"trace": trace} if trace else {}))
    return [
        Job.of(fork_cell, key=f"cell/{shift}", prefix=pre, shift=shift)
        for shift in range(6)
    ]


@pytest.fixture
def fleet():
    addr1, stop1 = start_thread_worker()
    addr2, stop2 = start_thread_worker()
    yield [addr1, addr2]
    stop1()
    stop2()


@pytest.fixture(autouse=True)
def fresh_memo(monkeypatch):
    """Each test starts with an empty in-worker prefix memo and the
    snapshot knob at its default (enabled)."""
    monkeypatch.delenv(SNAPSHOT_ENV, raising=False)
    _reset_prefix_memo()
    yield
    _reset_prefix_memo()


def cold_reference(cells, monkeypatch) -> list:
    monkeypatch.setenv(SNAPSHOT_ENV, "0")
    _reset_prefix_memo()
    results = SweepRunner(jobs=1, root_seed=ROOT_SEED, backend="serial").run(cells)
    monkeypatch.delenv(SNAPSHOT_ENV, raising=False)
    _reset_prefix_memo()
    return results


# -- warm == cold, on every backend -------------------------------------------


@pytest.mark.parametrize("backend", ("serial", "process", "tcp"))
def test_warm_start_matches_cold_reference(backend, fleet, monkeypatch):
    cells = make_grid()
    reference = cold_reference(cells, monkeypatch)
    kwargs = {"workers": fleet, "jobs": 2} if backend == "tcp" else (
        {"jobs": 3} if backend == "process" else {"jobs": 1})
    runner = SweepRunner(root_seed=ROOT_SEED, backend=backend, **kwargs)
    results = runner.run(cells)
    assert results == reference
    assert [r.value for r in results] == [r.value for r in reference]
    assert runner.last_stats["prefix_groups"] == 1


def test_prefix_runs_once_per_worker_not_per_cell(tmp_path, monkeypatch):
    trace = tmp_path / "trace"
    cells = make_grid(trace=str(trace))
    warm = SweepRunner(jobs=1, root_seed=ROOT_SEED, backend="serial").run(cells)
    assert trace.read_text().count("ran") == 1  # 6 cells, one execution
    trace.unlink()
    reference = cold_reference(cells, monkeypatch)
    assert trace.read_text().count("ran") == len(cells)  # cold: every cell
    assert warm == reference


def test_snapshot_knob_disables_sharing(tmp_path, monkeypatch):
    monkeypatch.setenv(SNAPSHOT_ENV, "0")
    trace = tmp_path / "trace"
    cells = make_grid(trace=str(trace))
    runner = SweepRunner(jobs=1, root_seed=ROOT_SEED, backend="serial")
    runner.run(cells)
    assert trace.read_text().count("ran") == len(cells)
    assert runner.last_stats["snapshot_stores"] == 0
    assert runner.last_stats["snapshot_hits"] == 0


def test_distinct_prefixes_are_distinct_groups(monkeypatch):
    pre_a = Prefix.of(warm_context, scale=3)
    pre_b = Prefix.of(warm_context, scale=4)
    cells = [
        Job.of(fork_cell, key=f"a/{s}", prefix=pre_a, shift=s) for s in range(2)
    ] + [
        Job.of(fork_cell, key=f"b/{s}", prefix=pre_b, shift=s) for s in range(2)
    ]
    reference = cold_reference(cells, monkeypatch)
    runner = SweepRunner(jobs=1, root_seed=ROOT_SEED, backend="serial")
    assert runner.run(cells) == reference
    assert runner.last_stats["prefix_groups"] == 2


# -- graceful degradation ------------------------------------------------------


def test_unsnapshotable_prefix_falls_back_to_cold(monkeypatch):
    """A context the snapshot layer cannot capture must not fail the
    sweep: every cell silently runs its prefix cold."""
    cells = make_grid(fn=opaque_context)
    reference = cold_reference(cells, monkeypatch)
    runner = SweepRunner(jobs=1, root_seed=ROOT_SEED, backend="serial")
    results = runner.run(cells)
    assert results == reference
    assert all(r.ok for r in results)
    assert runner.last_stats["snapshot_stores"] == 0


def test_prefix_stage_crash_is_retried(fleet, monkeypatch):
    """A worker crash *during the prefix stage* charges the attempt and
    the cell converges on retry — same contract as cell-stage faults."""
    cells = make_grid()
    reference = cold_reference(cells, monkeypatch)
    plan = FaultPlan.of(
        Fault(kind="crash", cell="cell/0", attempts=(1,), stage="prefix"),
    )
    runner = SweepRunner(root_seed=ROOT_SEED, backend="tcp", workers=fleet,
                         jobs=2, policy="degrade", fault_plan=plan)
    results = runner.run(cells)
    assert results == reference
    assert not runner.last_failures
    assert runner.last_stats["retries"] >= 1


# -- identity ------------------------------------------------------------------


def test_prefix_identity_folds_into_job_keys():
    pre_a = Prefix.of(warm_context, scale=3)
    pre_b = Prefix.of(warm_context, scale=4)
    bare = Job.of(fork_cell, shift=1)
    assert Job.of(fork_cell, shift=1, prefix=pre_a).key != bare.key
    assert (Job.of(fork_cell, shift=1, prefix=pre_a).key
            != Job.of(fork_cell, shift=1, prefix=pre_b).key)
    assert (Job.of(fork_cell, shift=1, prefix=pre_a).key
            == Job.of(fork_cell, shift=1, prefix=pre_a).key)


def test_prefix_identity_folds_into_cache_keys(tmp_path):
    cache = ResultCache(tmp_path)
    pre_a = Prefix.of(warm_context, scale=3)
    pre_b = Prefix.of(warm_context, scale=4)
    job = Job.of(fork_cell, key="same-key", shift=1, prefix=pre_a)
    alias = Job.of(fork_cell, key="same-key", shift=1, prefix=pre_b)
    assert (cache.key_for(job.fn, job.params, 1, prefix=job.prefix)
            != cache.key_for(alias.fn, alias.params, 1, prefix=alias.prefix))


# -- snapshot cache ------------------------------------------------------------


def test_snapshot_cache_lifecycle(tmp_path, monkeypatch):
    """Store on first sweep → hit on a new grid sharing the prefix →
    corrupt entry quarantined and recomputed."""
    def jobs(*shifts):
        pre = Prefix.of(warm_context, scale=3)
        return [Job.of(fork_cell, key=f"cell/{s}", prefix=pre, shift=s)
                for s in shifts]

    cache_dir = tmp_path / "cache"
    r1 = SweepRunner(root_seed=ROOT_SEED, cache=cache_dir)
    first = r1.values(jobs(0, 1))
    assert r1.last_stats["snapshot_misses"] == 1
    assert r1.last_stats["snapshot_stores"] == 1

    # New cells, same prefix: the warm context comes off disk.
    _reset_prefix_memo()
    r2 = SweepRunner(root_seed=ROOT_SEED, cache=cache_dir)
    r2.values(jobs(2, 3))
    assert r2.last_stats["snapshot_hits"] == 1
    assert r2.last_stats["snapshot_stores"] == 0

    # Same cells again: pure result-cache hits, no prefix work at all.
    _reset_prefix_memo()
    r3 = SweepRunner(root_seed=ROOT_SEED, cache=cache_dir)
    assert r3.values(jobs(0, 1)) == first
    assert r3.last_stats["cache_hits"] == 2

    report = r3.cache.verify()
    assert report["snapshots_checked"] == 1
    assert report["snapshots_ok"] == 1
    assert not report["corrupt"]

    # Corrupt the blob on disk: verify() flags it, the next sweep
    # quarantines and recomputes instead of restoring garbage.
    snap = next((cache_dir / "snapshots").glob("*.pkl"))
    snap.write_bytes(b"garbage")
    report = r3.cache.verify(repair=False)
    assert report["corrupt"] and report["corrupt"][0].startswith("snapshots/")

    _reset_prefix_memo()
    r4 = SweepRunner(root_seed=ROOT_SEED, cache=cache_dir)
    r4.values(jobs(4))
    assert r4.last_stats["snapshot_misses"] == 1
    assert r4.last_stats["snapshot_stores"] == 1
