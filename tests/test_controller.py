"""Memory-controller tests: observers, refresh paths, blocking."""

from __future__ import annotations

import pytest

from repro.dram import DramConfig, DramCoord, MemoryController
from repro.dram.config import DisturbanceConfig, DramTimings
from repro.units import Clock


def small_controller(threshold_min=1000) -> MemoryController:
    return MemoryController(
        DramConfig(
            ranks=1, banks_per_rank=4, rows_per_bank=2048, row_bytes=8192,
            disturbance=DisturbanceConfig(threshold_min=threshold_min, spread=0.0,
                                          strong_fraction=0.0),
        ),
        Clock(),
    )


class RecordingObserver:
    """Test double for a controller-level defense."""

    def __init__(self, respond_with=()):
        self.activations = []
        self.respond_with = list(respond_with)

    def on_activation(self, coord, time_cycles):
        self.activations.append((coord, time_cycles))
        return self.respond_with


def test_access_decodes_and_reports_coord():
    ctrl = small_controller()
    out = ctrl.access(8192 * 7, 20_000)
    assert out.coord.bank == 3  # 4 banks: address 7 rows of 8K -> bank 3
    assert out.activated


def test_blocking_delay_applied_at_refresh_instant():
    ctrl = small_controller()
    out = ctrl.access(0, 0)  # t=0 is inside the refresh command window
    assert out.blocked_cycles > 0
    assert out.latency_cycles > out.blocked_cycles


def test_no_blocking_outside_refresh_window():
    ctrl = small_controller()
    trfc = ctrl.device.refresh_engine.trfc_cycles
    out = ctrl.access(0, trfc + 100)
    assert out.blocked_cycles == 0


def test_observer_called_on_activation_only():
    ctrl = small_controller()
    observer = RecordingObserver()
    ctrl.add_observer(observer)
    t = 20_000
    ctrl.access(0, t)  # activation
    ctrl.access(64, t + 100)  # row hit
    assert len(observer.activations) == 1


def test_observer_refresh_requests_are_executed():
    ctrl = small_controller()
    victim = DramCoord(0, 0, 10, 0)
    observer = RecordingObserver(respond_with=[victim])
    ctrl.add_observer(observer)
    ctrl.access(8192 * 4 * 11, 20_000)  # activate row 11 in bank 0
    assert ctrl.stats.observer_refreshes == 1


def test_remove_observer():
    ctrl = small_controller()
    observer = RecordingObserver()
    ctrl.add_observer(observer)
    ctrl.remove_observer(observer)
    ctrl.access(0, 20_000)
    assert observer.activations == []


def test_refresh_row_counts_selective():
    ctrl = small_controller()
    ctrl.refresh_row(DramCoord(0, 1, 5, 0), 20_000)
    assert ctrl.stats.selective_refreshes == 1
    assert ctrl.device.stats.refreshes_issued == 1


def test_refresh_neighbors_covers_radius():
    ctrl = small_controller()
    latency = ctrl.refresh_neighbors(DramCoord(0, 0, 100, 0), 20_000, radius=2)
    assert ctrl.stats.selective_refreshes == 4
    assert latency > 0


def test_refresh_resets_victim_units():
    ctrl = small_controller()
    aggressor_paddr = ctrl.mapping.encode(DramCoord(0, 0, 99, 0))
    other_paddr = ctrl.mapping.encode(DramCoord(0, 0, 500, 0))
    for i in range(20):
        ctrl.access(aggressor_paddr, 20_000 + i * 200)
        ctrl.access(other_paddr, 20_100 + i * 200)
    device = ctrl.device
    victim_id = device.row_id(DramCoord(0, 0, 100, 0))
    epoch = device.refresh_engine.epoch(victim_id, 30_000)
    assert device.tracker.units(victim_id, epoch) > 0
    ctrl.refresh_row(DramCoord(0, 0, 100, 0), 30_000)
    assert device.tracker.units(victim_id, epoch) == 0


def test_set_timings_rejected_after_traffic():
    ctrl = small_controller()
    ctrl.access(0, 0)
    with pytest.raises(RuntimeError):
        ctrl.set_timings(DramTimings().scaled_refresh(2))


def test_set_timings_rebuilds_device():
    ctrl = small_controller()
    ctrl.set_timings(DramTimings().scaled_refresh(2))
    assert ctrl.config.timings.retention_ms == 32.0
    assert ctrl.device.refresh_engine.retention_cycles == Clock().cycles_from_ms(32)
