"""Journal leases and cooperative sweeps — concurrent-append atomicity,
lease claim/renew/release/expiry, first-durable-done-wins dedup, and two
runners draining one sweep through one shared journal.

The journal is the entire coordination substrate: every property here
(no interleaved partial lines, file-order claim arbitration, adoption of
peers' completions, reclaim of a dead peer's cells) folds out of the
append-only record sequence, so two runners replaying the same file
always agree on who owns what and who finished first.
"""

from __future__ import annotations

import json
import random
import threading
import time

import pytest

from repro.errors import ConfigError
from repro.runner.cache import code_fingerprint
from repro.runner import (
    Job,
    JobResult,
    LeaseTable,
    SweepJournal,
    SweepRunner,
    sweep_id,
)

ROOT_SEED = 29


def grid_cell(a: int, b: str, seed: int) -> tuple:
    return (a, b, seed, random.Random(seed).random())


def slow_cell(a: int, seed: int) -> tuple:
    """Deterministic value, but slow enough that two cooperating runners
    genuinely overlap on a 16-cell sweep."""
    time.sleep(0.01)
    return (a, seed, random.Random(seed).random())


def make_grid(n: int, fn=grid_cell, **extra) -> list[Job]:
    if fn is grid_cell:
        extra.setdefault("b", "p")
    return [Job.of(fn, key=f"c/{i}", a=i, **extra) for i in range(n)]


def clean_reference(cells, root_seed=ROOT_SEED):
    return {r.key: r for r in SweepRunner(jobs=1, root_seed=root_seed).run(cells)}


# -- concurrent-append safety ---------------------------------------------------


def test_two_writers_never_interleave_partial_lines(tmp_path):
    """Records appended by two journal handles (O_APPEND, one write per
    line) from racing threads land whole — every line parses and every
    record loads."""
    path = tmp_path / "shared.journal"
    jid = sweep_id(1, [f"c/{i}" for i in range(200)], "fp")
    a, b = SweepJournal(path), SweepJournal(path)
    a.open_for(jid, resume=False)
    b.open_for(jid, resume=True)

    def write(journal: SweepJournal, offset: int) -> None:
        for i in range(offset, 200, 2):
            # A long-ish payload raises the odds any non-atomic append
            # would tear mid-line.
            journal.record(JobResult(
                key=f"c/{i}", value={"i": i, "pad": "x" * 512}, seed=i,
            ))

    threads = [threading.Thread(target=write, args=(a, 0)),
               threading.Thread(target=write, args=(b, 1))]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    a.close()
    b.close()

    for line in path.read_text(encoding="utf-8").splitlines():
        if line:
            json.loads(line)  # every line is complete JSON
    fresh = SweepJournal(path)
    done = fresh.load(jid)
    assert set(done) == {f"c/{i}" for i in range(200)}
    assert fresh.skipped_records == 0
    assert all(done[f"c/{i}"].value["i"] == i for i in range(200))


def test_two_writer_torn_tail_recovers_and_survivors_resume(tmp_path):
    """One of two writers dies mid-append (torn, newline-less tail); the
    other writer's records and every complete record still load, and a
    resuming journal neutralises the tear."""
    path = tmp_path / "shared.journal"
    jid = sweep_id(2, [f"c/{i}" for i in range(8)], "fp")
    a, b = SweepJournal(path), SweepJournal(path)
    a.open_for(jid, resume=False)
    b.open_for(jid, resume=True)
    for i in range(4):
        a.record(JobResult(key=f"c/{i}", value=i, seed=i))
    for i in range(4, 7):
        b.record(JobResult(key=f"c/{i}", value=i, seed=i))
    a.close()
    b.close()
    # Writer B dies mid-append of c/7: a torn tail, exactly what a
    # single interrupted write() can leave behind.
    with path.open("a", encoding="utf-8") as fh:
        fh.write('{"key": "c/7", "seed": 7, "value": "trunc')

    survivor = SweepJournal(path)
    assert set(survivor.load(jid)) == {f"c/{i}" for i in range(7)}
    # A third writer re-opens for append: the tear is neutralised and
    # subsequent records parse cleanly after it.
    survivor.open_for(jid, resume=True)
    survivor.record(JobResult(key="c/7", value=7, seed=7))
    survivor.close()
    done = SweepJournal(path).load(jid)
    assert set(done) == {f"c/{i}" for i in range(8)}


# -- lease records --------------------------------------------------------------


def test_lease_claim_renew_release_expiry_roundtrip(tmp_path):
    path = tmp_path / "leases.journal"
    jid = sweep_id(3, ["a", "b", "c"], "fp")
    journal = SweepJournal(path)
    journal.open_for(jid, resume=False)
    journal.load(jid)

    journal.claim("r1", ["a", "b"], ttl_s=30.0)
    journal.poll_updates(jid)
    assert journal.leases.holder("a") == "r1"
    assert journal.leases.holder("b") == "r1"
    assert journal.leases.holder("c") is None
    assert journal.leases.held_by("r1") == ["a", "b"]

    # A later claim by another runner on a held key loses (file order).
    journal.claim("r2", ["a"], ttl_s=30.0)
    journal.poll_updates(jid)
    assert journal.leases.holder("a") == "r1"

    # Renew extends, release clears.
    journal.renew("r1", ["a"], ttl_s=60.0)
    journal.release("r1", ["b"])
    journal.poll_updates(jid)
    assert journal.leases.holder("a") == "r1"
    assert journal.leases.holder("b") is None
    journal.close()


def test_expired_lease_is_reclaimable_and_names_stale_holder():
    table = LeaseTable()
    table.apply({"kind": "lease", "op": "claim", "runner": "dead",
                 "key": "a", "expires": 100.0}, now=50.0)
    assert table.holder("a", now=99.0) == "dead"
    # Past expiry the lease no longer holds, and the lapsed holder is
    # visible for reclaim accounting.
    assert table.holder("a", now=101.0) is None
    assert table.stale_holder("a", now=101.0) == "dead"
    # A survivor's claim over the expired lease wins and evicts it.
    table.apply({"kind": "lease", "op": "claim", "runner": "live",
                 "key": "a", "expires": 200.0}, now=150.0)
    assert table.holder("a", now=151.0) == "live"
    assert table.stale_holder("a", now=151.0) == "dead"
    # Renew by a non-holder is ignored.
    table.apply({"kind": "lease", "op": "renew", "runner": "dead",
                 "key": "a", "expires": 999.0}, now=151.0)
    assert table.holder("a", now=500.0) is None


# -- first-durable-done-wins ----------------------------------------------------


def test_duplicate_done_records_resolve_first_wins(tmp_path):
    path = tmp_path / "dupes.journal"
    jid = sweep_id(4, ["a", "b"], "fp")
    journal = SweepJournal(path)
    journal.open_for(jid, resume=False)
    journal.record(JobResult(key="a", value={"v": 1}, seed=5))
    journal.record(JobResult(key="a", value={"v": 1}, seed=5))  # benign dupe
    journal.record(JobResult(key="b", value=10, seed=6))
    journal.close()

    fresh = SweepJournal(path)
    done = fresh.load(jid)
    assert done["a"].value == {"v": 1}
    assert fresh.duplicate_records == 1
    assert fresh.conflicting_records == 0

    # A conflicting duplicate (same key, different payload) is dropped
    # loudly and the first durable record stays authoritative.
    journal.open_for(jid, resume=True)
    journal.record(JobResult(key="b", value=999, seed=6))
    journal.close()
    fresh = SweepJournal(path)
    with pytest.warns(RuntimeWarning, match="conflicting duplicate"):
        done = fresh.load(jid)
    assert done["b"].value == 10
    assert fresh.conflicting_records == 1


# -- cooperative sweeps ---------------------------------------------------------


def test_lease_ttl_requires_checkpoint():
    with pytest.raises(ConfigError):
        SweepRunner(jobs=1, lease_ttl=1.0)


def test_two_runners_cooperatively_drain_one_sweep(tmp_path):
    """Two runners, one journal: both return the full bit-identical
    result set, the work is claimed exactly once per cell, and at least
    one side adopts the other's completions instead of recomputing."""
    path = tmp_path / "coop.journal"
    cells = make_grid(16, fn=slow_cell)
    reference = clean_reference(cells)

    barrier = threading.Barrier(2)
    outputs: dict[str, list] = {}
    stats: dict[str, dict] = {}

    def drive(tag: str) -> None:
        runner = SweepRunner(
            jobs=1, root_seed=ROOT_SEED, policy="degrade",
            checkpoint=path, lease_ttl=2.0, runner_id=tag,
        )
        barrier.wait(timeout=10.0)
        outputs[tag] = runner.run(cells)
        stats[tag] = runner.last_stats

    threads = [threading.Thread(target=drive, args=(tag,))
               for tag in ("r1", "r2")]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    assert not any(t.is_alive() for t in threads)

    for tag in ("r1", "r2"):
        assert {r.key: r for r in outputs[tag]} == reference
        assert stats[tag]["failures"] == 0
    # Each cell was computed under exactly one lease; everything else
    # was adopted from the peer's durable done records.
    claimed = sum(stats[tag]["leases_claimed"] for tag in ("r1", "r2"))
    adopted = sum(stats[tag]["adopted"] for tag in ("r1", "r2"))
    assert claimed == len(cells)
    assert adopted >= 1
    assert claimed - len(cells) == 0 and adopted <= len(cells)


def test_dead_runners_expired_leases_are_reclaimed(tmp_path):
    """A runner that died holding leases (simulated by ghost claim
    records that never renew) only delays its cells by the TTL: a
    survivor reclaims and completes them."""
    path = tmp_path / "reclaim.journal"
    cells = make_grid(6)
    reference = clean_reference(cells)

    keys = [job.key for job in cells]
    jid = sweep_id(ROOT_SEED, keys, code_fingerprint())
    ghost = SweepJournal(path)
    ghost.open_for(jid, resume=False)
    ghost.claim("ghost", keys[:3], ttl_s=0.2)
    ghost.close()

    survivor = SweepRunner(jobs=1, root_seed=ROOT_SEED, policy="degrade",
                           checkpoint=path, lease_ttl=0.5,
                           runner_id="survivor")
    results = survivor.run(cells)
    assert {r.key: r for r in results} == reference
    assert survivor.last_stats["leases_reclaimed"] >= 1
    assert survivor.last_stats["failures"] == 0
