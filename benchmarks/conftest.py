"""Make the benchmark directory importable (for ``_common``) and keep
pytest-benchmark rounds minimal: each bench is a full experiment."""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
