"""Make the benchmark directory importable (for ``_common``), keep
pytest-benchmark rounds minimal (each bench is a full experiment), and
expose the sweep-parallelism knob: ``pytest benchmarks/ --jobs 4`` fans
sweep grids out over 4 worker processes (equivalent to ``REPRO_JOBS=4``;
results are bit-identical to a serial run at any worker count)."""

from __future__ import annotations

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        action="store",
        default=None,
        metavar="N",
        help="worker processes for sweep-shaped benches "
        "(0 = one per CPU; default: REPRO_JOBS or serial)",
    )


def pytest_configure(config):
    jobs = config.getoption("--jobs", default=None)
    if jobs is not None:
        os.environ["REPRO_JOBS"] = str(int(jobs))
