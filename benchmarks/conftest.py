"""Make the benchmark directory importable (for ``_common``), keep
pytest-benchmark rounds minimal (each bench is a full experiment), and
expose the sweep execution knobs:

- ``pytest benchmarks/ --jobs 4`` fans sweep grids out over 4 worker
  processes (equivalent to ``REPRO_JOBS=4``; results are bit-identical
  to a serial run at any worker count);
- ``--fail-policy degrade`` returns partial sweep results plus a failure
  manifest instead of raising on the first exhausted cell
  (``REPRO_FAIL_POLICY``);
- ``--cell-timeout 300`` bounds each cell attempt's wall clock on
  preemptible backends (``REPRO_CELL_TIMEOUT``, seconds);
- ``--backend tcp --workers HOST:PORT,...`` runs sweep grids on an
  explicit executor backend, e.g. a TCP fleet of
  ``python -m repro worker serve`` processes (``REPRO_BACKEND`` /
  ``REPRO_WORKERS``; results stay bit-identical on any backend).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        action="store",
        default=None,
        metavar="N",
        help="worker processes for sweep-shaped benches "
        "(0 = one per CPU; default: REPRO_JOBS or serial)",
    )
    parser.addoption(
        "--fail-policy",
        action="store",
        default=None,
        choices=("strict", "degrade"),
        help="sweep failure policy: strict raises an aggregated "
        "SweepError, degrade returns partial results + a failure "
        "manifest (default: REPRO_FAIL_POLICY or strict)",
    )
    parser.addoption(
        "--cell-timeout",
        action="store",
        default=None,
        metavar="S",
        help="per-attempt wall-clock budget (seconds) for each sweep "
        "cell, enforced on preemptible backends (default: "
        "REPRO_CELL_TIMEOUT or unlimited)",
    )
    parser.addoption(
        "--backend",
        action="store",
        default=None,
        choices=("serial", "process", "tcp"),
        help="executor backend for sweep-shaped benches (default: "
        "REPRO_BACKEND, else process when --jobs > 1)",
    )
    parser.addoption(
        "--workers",
        action="store",
        default=None,
        metavar="HOST:PORT[,...]",
        help="tcp fleet worker addresses for --backend tcp "
        "(default: REPRO_WORKERS)",
    )


def pytest_configure(config):
    jobs = config.getoption("--jobs", default=None)
    if jobs is not None:
        os.environ["REPRO_JOBS"] = str(int(jobs))
    policy = config.getoption("--fail-policy", default=None)
    if policy is not None:
        os.environ["REPRO_FAIL_POLICY"] = policy
    timeout = config.getoption("--cell-timeout", default=None)
    if timeout is not None:
        os.environ["REPRO_CELL_TIMEOUT"] = str(float(timeout))
    backend = config.getoption("--backend", default=None)
    if backend is not None:
        os.environ["REPRO_BACKEND"] = backend
    workers = config.getoption("--workers", default=None)
    if workers is not None:
        os.environ["REPRO_WORKERS"] = workers
