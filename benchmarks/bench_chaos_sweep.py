"""Chaos smoke bench: the sweep layer survives injected faults.

Runs the real epoch-model grid (the same cells behind fig3/table4) twice:

1. **clean serial** — the reference result set, and a per-cell duration
   measurement used to calibrate a safe timeout;
2. **chaos parallel** — ``--jobs 2`` under a deterministic
   :class:`FaultPlan` injecting a worker crash (attempt 1), an
   artificial hang that must trip the per-cell timeout (attempt 1), and
   a *permanent* cell exception (every attempt), with the ``degrade``
   failure policy.

Asserted on every run:

- the chaos sweep completes (no exception escapes);
- its failure manifest lists **exactly** the permanently-faulted cell;
- every surviving cell's result is bit-identical to the clean serial
  run (crash/hang recovery replays the same derived seed, so retried
  cells cannot drift);
- the crash and the timeout recovery paths actually fired
  (``pool_breaks >= 1``, ``timeouts >= 1`` — checked only when a real
  process pool started; sandboxes without one still verify the serial
  degrade semantics).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_chaos_sweep.py          # full
    PYTHONPATH=src python benchmarks/bench_chaos_sweep.py --smoke  # quick
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.runner import (
    Fault,
    FaultPlan,
    Job,
    RetryPolicy,
    SweepRunner,
    derive_seed,
)
from repro.sim.epoch import run_epoch_cell
from repro.workloads import SPEC2006_INT

from _common import publish

ROOT_SEED = 53

#: Deterministic fault targets (cell indices into the SPEC grid).
CRASH_CELL = 1
HANG_CELL = 3
ERROR_CELL = 5


def sweep_jobs(horizon_s: float) -> list[Job]:
    return [
        Job.of(
            run_epoch_cell,
            key=f"chaos/{name}",
            seed=derive_seed(ROOT_SEED, f"chaos/{name}"),
            benchmark=name,
            horizon_s=horizon_s,
        )
        for name in SPEC2006_INT
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny horizon for CI")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker count for the chaos run (default 2)")
    parser.add_argument("--horizon", type=float, default=20.0,
                        help="simulated seconds per epoch cell")
    args = parser.parse_args(argv)

    horizon = 3.0 if args.smoke else args.horizon
    cells = sweep_jobs(horizon)
    assert len(cells) > max(CRASH_CELL, HANG_CELL, ERROR_CELL)

    clean_runner = SweepRunner(jobs=1, root_seed=ROOT_SEED, cache=None)
    clean = clean_runner.run(cells)
    clean_by_key = {r.key: r for r in clean}
    max_cell_s = max(r.duration_s for r in clean)
    # Calibrate the deadline off the measured cells so a slow CI host
    # cannot produce spurious timeouts, and keep the injected hang just
    # past it so the timeout path always fires without stalling exit.
    timeout_s = max(3.0, 6.0 * max_cell_s)
    hang_s = timeout_s + 2.0

    plan = FaultPlan.of(
        Fault("crash", CRASH_CELL, attempts=(1,)),
        Fault("hang", HANG_CELL, attempts=(1,), hang_s=hang_s),
        Fault("error", ERROR_CELL, attempts=None),
    )
    chaos_runner = SweepRunner(
        jobs=args.jobs, root_seed=ROOT_SEED, cache=None,
        policy="degrade",
        retry=RetryPolicy(max_attempts=3, backoff_base_s=0.05,
                          timeout_s=timeout_s),
        fault_plan=plan,
    )
    results = chaos_runner.run(cells)
    stats = chaos_runner.last_stats

    assert len(results) == len(cells), "chaos sweep must complete every cell"
    failed = [r for r in results if not r.ok]
    expected_failed = [cells[ERROR_CELL].key]
    assert [r.key for r in failed] == expected_failed, (
        f"failure manifest {stats['failed']} != injected {expected_failed}"
    )
    survivors = [r for r in results if r.ok]
    assert all(r == clean_by_key[r.key] for r in survivors), (
        "surviving chaos results must be bit-identical to the clean serial run"
    )
    pool_ran = stats["mode"] == "parallel"
    if pool_ran:
        assert stats["pool_breaks"] >= 1, "crash fault must break the pool"
        assert stats["timeouts"] >= 1, "hang fault must trip the timeout"
    assert stats["retries"] >= 2, "crash + hang cells must be retried"

    lines = [
        f"chaos grid: {len(cells)} epoch cells, horizon {horizon:.0f}s, "
        f"{args.jobs} workers ({stats['mode']})",
        f"faults: crash@{cells[CRASH_CELL].key} (attempt 1), "
        f"hang@{cells[HANG_CELL].key} ({hang_s:.1f}s vs {timeout_s:.1f}s "
        f"timeout), error@{cells[ERROR_CELL].key} (permanent)",
        f"recovery: retries={stats['retries']} timeouts={stats['timeouts']} "
        f"pool_breaks={stats['pool_breaks']}",
        f"failure manifest: {stats['failed']} (expected exactly the "
        "permanent fault)",
        f"survivors: {len(survivors)}/{len(cells)} bit-identical to clean "
        "serial run",
    ]
    text = "\n".join(lines) + "\n"
    print(text)
    publish("chaos_sweep", text, data={
        "mode": "smoke" if args.smoke else "full",
        "cells": len(cells),
        "horizon_s": horizon,
        "workers": args.jobs,
        "parallel_mode": stats["mode"],
        "timeout_s": round(timeout_s, 3),
        "retries": stats["retries"],
        "timeouts": stats["timeouts"],
        "pool_breaks": stats["pool_breaks"],
        "failed": stats["failed"],
        "survivors_equal": True,
    })
    return 0


def test_chaos_smoke():
    """Pytest entry: injected crash/hang/error sweep, degrade semantics."""
    assert main(["--smoke"]) == 0


if __name__ == "__main__":
    sys.exit(main())
