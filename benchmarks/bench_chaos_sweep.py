"""Chaos smoke bench: the sweep layer survives injected faults.

Runs the real epoch-model grid (the same cells behind fig3/table4) twice:

1. **clean serial** — the reference result set, and a per-cell duration
   measurement used to calibrate a safe timeout;
2. **chaos parallel** — ``--jobs 2`` under a deterministic
   :class:`FaultPlan` injecting a worker crash (attempt 1), an
   artificial hang that must trip the per-cell timeout (attempt 1), and
   a *permanent* cell exception (every attempt), with the ``degrade``
   failure policy.

``--fleet`` runs the *fleet* chaos tier instead: a
:class:`WorkerSupervisor` pool of two real ``python -m repro worker
serve`` subprocesses on loopback TCP, with a crash fault hard-exiting
one worker mid-sweep (the runner must detect the lost worker,
re-dispatch its cell on the survivor, and finish) and a permanent cell
error exercising the failure manifest.  Gated on the survivor results
being bit-identical to the clean serial run, on the supervisor having
reaped the injected exit code and *restarted* the dead slot on its
original address, and (with the runner's heartbeat enabled) the
replacement being eligible for mid-sweep re-admission.

``--multi-runner`` runs the *cooperative* chaos tier: two real runner
processes drain ONE sweep through one shared journal (``lease_ttl``),
and the parent SIGKILLs one of them the moment it holds a lease with no
matching ``done`` record.  Gated on the survivor exiting cleanly with a
result set bit-identical to the clean serial run (digest compared
cross-process) and on it having *reclaimed* the victim's expired
leases.

``--prefix`` runs the *prefix* chaos tier: a warm-start grid (every
cell forks a shared machine-warmup :class:`Prefix`) on the same
two-subprocess fleet, with a crash fault that fires **during the prefix
stage** — the worker dies mid-warmup, before any cell code runs.  The
runner must charge the attempt, re-dispatch on the survivor, and finish
with results bit-identical to cold serial execution
(``REPRO_SNAPSHOT=0``).  A second grid whose prefix returns an
unsnapshotable context proves the cold-fallback path: the sweep
completes with zero snapshot stores and no errors.

Asserted on every run:

- the chaos sweep completes (no exception escapes);
- its failure manifest lists **exactly** the permanently-faulted cell;
- every surviving cell's result is bit-identical to the clean serial
  run (crash/hang recovery replays the same derived seed, so retried
  cells cannot drift);
- the crash and the timeout recovery paths actually fired
  (``pool_breaks >= 1``, ``timeouts >= 1`` — checked only when a real
  process pool started; sandboxes without one still verify the serial
  degrade semantics).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_chaos_sweep.py          # full
    PYTHONPATH=src python benchmarks/bench_chaos_sweep.py --smoke  # quick
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.runner import (
    Fault,
    FaultPlan,
    Job,
    Prefix,
    RetryPolicy,
    SNAPSHOT_ENV,
    SweepRunner,
    WorkerSupervisor,
    derive_seed,
    spawn_worker_process,
)
from repro.runner.backends.base import _reset_prefix_memo
from repro.runner.backends.wire import encode_value
from repro.runner.faults import CRASH_EXIT_CODE
from repro.runner.seeding import stable_digest
from repro.sim.epoch import run_epoch_cell
from repro.workloads import SPEC2006_INT

from _common import publish

ROOT_SEED = 53

#: Deterministic fault targets (cell indices into the SPEC grid).
CRASH_CELL = 1
HANG_CELL = 3
ERROR_CELL = 5


def sweep_jobs(horizon_s: float) -> list[Job]:
    return [
        Job.of(
            run_epoch_cell,
            key=f"chaos/{name}",
            seed=derive_seed(ROOT_SEED, f"chaos/{name}"),
            benchmark=name,
            horizon_s=horizon_s,
        )
        for name in SPEC2006_INT
    ]


def run_fleet(horizon: float) -> int:
    """The fleet chaos tier: kill a real supervised TCP worker mid-sweep.

    A :class:`WorkerSupervisor` pool of two ``python -m repro worker
    serve`` subprocesses on loopback; a crash fault hard-exits whichever
    one draws the target cell.  The sweep must finish on the survivor
    with results bit-identical to the clean serial run; the supervisor
    must reap the injected exit code and restart the dead slot on its
    original address (the runner's heartbeat makes the replacement
    re-admittable mid-sweep).  Environments that cannot spawn
    subprocesses or bind loopback sockets skip gracefully (the
    in-process conformance suite still covers the protocol there).
    """
    cells = sweep_jobs(horizon)
    clean = SweepRunner(jobs=1, root_seed=ROOT_SEED, cache=None).run(cells)
    clean_by_key = {r.key: r for r in clean}

    supervisor = WorkerSupervisor(workers=2, max_restarts=3,
                                  backoff_base_s=0.05, seed=ROOT_SEED)
    try:
        addresses = supervisor.start()
    except (OSError, ValueError) as exc:
        supervisor.stop()
        print(f"fleet workers unavailable ({exc}); skipping fleet tier")
        return 0
    stop = threading.Event()
    sup_thread = threading.Thread(target=supervisor.run, args=(stop, 0.05),
                                  daemon=True)
    sup_thread.start()

    plan = FaultPlan.of(
        Fault("crash", CRASH_CELL, attempts=(1,)),
        Fault("error", ERROR_CELL, attempts=None),
    )
    runner = SweepRunner(
        root_seed=ROOT_SEED, cache=None, policy="degrade",
        backend="tcp", workers=addresses, heartbeat_s=0.25,
        retry=RetryPolicy(max_attempts=3, backoff_base_s=0.05),
        fault_plan=plan,
    )
    try:
        results = runner.run(cells)
        stats = runner.last_stats

        assert len(results) == len(cells), "fleet sweep must complete every cell"
        failed = [r.key for r in results if not r.ok]
        assert failed == [cells[ERROR_CELL].key], (
            f"failure manifest {failed} != injected [{cells[ERROR_CELL].key}]"
        )
        survivors = [r for r in results if r.ok]
        assert all(r == clean_by_key[r.key] for r in survivors), (
            "survivor results must be bit-identical to the clean serial run"
        )
        assert stats["backend"] == "tcp", stats
        assert stats["workers_lost"] >= 1, (
            "the crash fault must cost the fleet a worker"
        )
        assert stats["retries"] >= 1, "the crashed cell must be retried"

        # The injected crash hard-exits the worker *process*: the
        # supervisor must reap the injected exit code and restart the
        # slot — pinned to the same host:port it originally bound.
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            if supervisor.restarts_total >= 1:
                break
            time.sleep(0.05)
        assert supervisor.restarts_total >= 1, (
            f"supervisor never restarted the crashed worker: "
            f"{supervisor.events}"
        )
        crashed = [s for s in supervisor.slots()
                   if s.last_exit == CRASH_EXIT_CODE]
        assert crashed, (
            f"no supervised worker died with exit code {CRASH_EXIT_CODE}: "
            f"{[s.last_exit for s in supervisor.slots()]}"
        )
        assert sorted(supervisor.addresses()) == sorted(addresses), (
            "restart must re-bind the slot's original address"
        )
        readmitted = stats.get("workers_readmitted", 0)
    finally:
        stop.set()
        sup_thread.join(timeout=10.0)
        supervisor.stop()

    lines = [
        f"fleet chaos: {len(cells)} epoch cells, horizon {horizon:.0f}s, "
        f"2 supervised loopback TCP workers (heartbeat 0.25s)",
        f"faults: crash@{cells[CRASH_CELL].key} (worker hard-exit, attempt 1), "
        f"error@{cells[ERROR_CELL].key} (permanent)",
        f"recovery: workers_lost={stats['workers_lost']} "
        f"retries={stats['retries']} fleet_size={stats['fleet_size']} "
        f"workers_readmitted={readmitted}",
        f"supervision: restarts={supervisor.restarts_total} "
        f"(crashed worker reaped with exit {CRASH_EXIT_CODE}, replacement "
        "re-bound the same address)",
        f"failure manifest: {stats['failed']} (expected exactly the "
        "permanent fault)",
        f"survivors: {len(survivors)}/{len(cells)} bit-identical to clean "
        "serial run",
    ]
    text = "\n".join(lines) + "\n"
    print(text)
    publish("chaos_fleet", text, data={
        "cells": len(cells),
        "horizon_s": horizon,
        "fleet_size": stats["fleet_size"],
        "workers_lost": stats["workers_lost"],
        "workers_readmitted": readmitted,
        "retries": stats["retries"],
        "restarts": supervisor.restarts_total,
        "failed": stats["failed"],
        "survivors_equal": True,
        "crash_exit_code": CRASH_EXIT_CODE,
    })
    return 0


# -- cooperative multi-runner tier ----------------------------------------------


def result_digest(results) -> str:
    """Cross-process digest of a result set: (key, seed, value pickle)
    triples in key order — bit-identical sweeps, identical digests."""
    return stable_digest("coop-sweep", tuple(
        (r.key, r.seed, encode_value(r.value))
        for r in sorted(results, key=lambda r: r.key)
    ))


def run_coop_child(args) -> int:
    """Hidden mode: one cooperating runner process of the multi-runner
    tier.  Prints a ``coop-result`` JSON line with the result digest and
    lease stats, so the parent can gate on bit-identity cross-process."""
    cells = sweep_jobs(args.horizon)
    runner = SweepRunner(
        jobs=1, root_seed=ROOT_SEED, cache=None, policy="degrade",
        checkpoint=args.journal, lease_ttl=args.ttl, runner_id=args.tag,
        retry=RetryPolicy(max_attempts=3, backoff_base_s=0.05),
    )
    results = runner.run(cells)
    stats = runner.last_stats
    print(json.dumps({
        "op": "coop-result", "tag": args.tag,
        "digest": result_digest(results), "cells": len(results),
        "failures": stats["failures"],
        "leases_claimed": stats["leases_claimed"],
        "leases_reclaimed": stats["leases_reclaimed"],
        "adopted": stats["adopted"],
    }, sort_keys=True), flush=True)
    return 0


def _unfinished_claims(journal_path: str, tag: str) -> set[str]:
    """Keys ``tag`` has claimed in the journal with no ``done`` record
    yet (reading only complete lines — the file may be mid-append)."""
    try:
        data = Path(journal_path).read_bytes()
    except OSError:
        return set()
    claimed: set[str] = set()
    done: set[str] = set()
    for raw in data.split(b"\n")[:-1]:  # the tail may be torn; skip it
        try:
            record = json.loads(raw)
        except ValueError:
            continue
        if not isinstance(record, dict):
            continue
        kind = record.get("kind", "done")
        if kind == "lease" and record.get("op") == "claim" \
                and record.get("runner") == tag:
            claimed.add(record.get("key"))
        elif kind == "done" and isinstance(record.get("key"), str):
            done.add(record["key"])
    return claimed - done


def run_multi_runner(smoke: bool, horizon_arg: float) -> int:
    """The cooperative chaos tier: SIGKILL one of two real runner
    processes sharing a sweep; the survivor must drain it bit-identically.

    The parent tails the shared journal until the victim holds a lease
    with no matching ``done`` record — proof it is mid-cell — and kills
    it exactly then, so the survivor must exercise lease expiry and
    reclaim, not just adoption.
    """
    horizon = 3.0 if smoke else horizon_arg
    ttl = 1.5
    cells = sweep_jobs(horizon)
    clean = SweepRunner(jobs=1, root_seed=ROOT_SEED, cache=None).run(cells)
    reference_digest = result_digest(clean)

    with tempfile.TemporaryDirectory(prefix="chaos-coop-") as tmp:
        journal = os.path.join(tmp, "coop.journal")

        def spawn(tag: str) -> subprocess.Popen:
            return subprocess.Popen(
                [sys.executable, str(Path(__file__).resolve()),
                 "--coop-child", "--journal", journal, "--ttl", str(ttl),
                 "--tag", tag, "--horizon", str(horizon)],
                stdout=subprocess.PIPE, text=True,
            )

        try:
            victim = spawn("victim")
            survivor = spawn("survivor")
        except OSError as exc:
            print(f"runner subprocesses unavailable ({exc}); "
                  "skipping multi-runner tier")
            return 0

        pending_after_kill: set[str] = set()
        try:
            deadline = time.monotonic() + 120.0
            killed = False
            while time.monotonic() < deadline:
                if _unfinished_claims(journal, "victim"):
                    victim.kill()
                    killed = True
                    break
                if victim.poll() is not None:
                    break
                time.sleep(0.02)
            assert killed, (
                "victim runner finished before it could be killed mid-cell "
                "— the chaos gate did not fire"
            )
            victim.wait(timeout=30.0)
            # Re-read after the kill: these are the cells the survivor
            # can only finish by reclaiming the victim's expired leases.
            pending_after_kill = _unfinished_claims(journal, "victim")

            out, _err = survivor.communicate(timeout=300.0)
            assert survivor.returncode == 0, (
                f"survivor runner exited {survivor.returncode}"
            )
        finally:
            for proc in (victim, survivor):
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10.0)
                if proc.stdout is not None:
                    proc.stdout.close()

        report = None
        for line in out.splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and record.get("op") == "coop-result":
                report = record
        assert report is not None, f"no coop-result line from survivor: {out!r}"
        assert report["cells"] == len(cells), report
        assert report["failures"] == 0, report
        assert report["digest"] == reference_digest, (
            "survivor result set must be bit-identical to the clean serial run"
        )
        if pending_after_kill:
            assert report["leases_reclaimed"] >= 1, (
                f"victim died holding {sorted(pending_after_kill)} but the "
                f"survivor never reclaimed a lease: {report}"
            )

    lines = [
        f"multi-runner chaos: {len(cells)} epoch cells, horizon "
        f"{horizon:.0f}s, 2 cooperating runner processes, lease TTL {ttl}s",
        "fault: SIGKILL the victim runner while it holds a lease with no "
        "done record",
        f"victim's unfinished cells at death: {sorted(pending_after_kill)}",
        f"survivor: exit 0, {report['cells']}/{len(cells)} cells, "
        f"digest == clean serial, leases_claimed={report['leases_claimed']} "
        f"leases_reclaimed={report['leases_reclaimed']} "
        f"adopted={report['adopted']}",
    ]
    text = "\n".join(lines) + "\n"
    print(text)
    publish("chaos_multi_runner", text, data={
        "cells": len(cells),
        "horizon_s": horizon,
        "lease_ttl_s": ttl,
        "pending_at_kill": sorted(pending_after_kill),
        "survivor_digest_equal": True,
        "leases_claimed": report["leases_claimed"],
        "leases_reclaimed": report["leases_reclaimed"],
        "adopted": report["adopted"],
    })
    return 0


def opaque_prefix(warm_cycles: int, seed: int = 0):
    """A warm context the snapshot layer must refuse: the machine drags
    along an unpicklable attribute, so every cell falls back to cold
    per-cell prefix execution (which never serialises the context)."""
    from bench_perf_sweep import warm_prefix

    machine = warm_prefix(20_000, warm_cycles, seed)
    machine.chaos_probe = lambda: None  # unpicklable on purpose
    return machine


def prefix_grid(warm_cycles: int, tail_cycles: int, n_cells: int,
                fn: str = "bench_perf_sweep:warm_prefix") -> list[Job]:
    pre = Prefix.of(fn, **(
        {"threshold_min": 20_000, "warm_cycles": warm_cycles}
        if fn.endswith("warm_prefix") else {"warm_cycles": warm_cycles}))
    return [
        Job.of("bench_perf_sweep:warm_tail_cell", key=f"prefix-chaos/{think}",
               prefix=pre, think_cycles=think, tail_cycles=tail_cycles)
        for think in range(120, 120 + 24 * n_cells, 24)
    ]


def run_prefix_tier(smoke: bool) -> int:
    """The prefix chaos tier: kill a worker *during the warmup stage*.

    The cold serial reference runs with snapshots disabled — the
    semantic baseline every warm-started, fault-recovered sweep must
    match bit for bit.
    """
    if smoke:
        warm_cycles, tail_cycles, n_cells = 800_000, 150_000, 4
    else:
        warm_cycles, tail_cycles, n_cells = 4_000_000, 300_000, 6
    cells = prefix_grid(warm_cycles, tail_cycles, n_cells)

    os.environ[SNAPSHOT_ENV] = "0"
    try:
        _reset_prefix_memo()
        clean = SweepRunner(jobs=1, root_seed=ROOT_SEED, cache=None).run(cells)
    finally:
        os.environ.pop(SNAPSHOT_ENV, None)
    clean_by_key = {r.key: r for r in clean}

    try:
        workers = [spawn_worker_process(), spawn_worker_process()]
    except (OSError, ValueError) as exc:
        print(f"fleet workers unavailable ({exc}); skipping prefix tier")
        return 0
    procs = [proc for proc, _addr in workers]
    addresses = [addr for _proc, addr in workers]

    plan = FaultPlan.of(
        Fault("crash", 0, attempts=(1,), stage="prefix"),
    )
    runner = SweepRunner(
        root_seed=ROOT_SEED, cache=None, policy="degrade",
        backend="tcp", workers=addresses,
        retry=RetryPolicy(max_attempts=3, backoff_base_s=0.05),
        fault_plan=plan,
    )
    try:
        _reset_prefix_memo()
        results = runner.run(cells)
        stats = runner.last_stats

        assert len(results) == len(cells), "prefix tier must complete"
        assert all(r.ok for r in results), (
            f"no cell may fail: {[r.key for r in results if not r.ok]}"
        )
        assert all(r == clean_by_key[r.key] for r in results), (
            "fault-recovered warm results must match the cold serial run"
        )
        assert stats["workers_lost"] >= 1, (
            "the prefix-stage crash must cost the fleet a worker"
        )
        assert stats["retries"] >= 1, "the crashed cell must be retried"
        assert stats["prefix_groups"] == 1, stats

        deadline = time.monotonic() + 10.0
        codes: list[int | None] = []
        while time.monotonic() < deadline:
            codes = [proc.poll() for proc in procs]
            if CRASH_EXIT_CODE in codes:
                break
            time.sleep(0.1)
        assert CRASH_EXIT_CODE in codes, (
            f"no worker died mid-prefix with exit code {CRASH_EXIT_CODE}: "
            f"{codes}"
        )
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()

    # Cold fallback: an unsnapshotable warm context degrades silently.
    fallback_cells = prefix_grid(warm_cycles // 2, tail_cycles, 2,
                                 fn="bench_chaos_sweep:opaque_prefix")
    os.environ[SNAPSHOT_ENV] = "0"
    try:
        _reset_prefix_memo()
        fallback_clean = SweepRunner(
            jobs=1, root_seed=ROOT_SEED, cache=None).run(fallback_cells)
    finally:
        os.environ.pop(SNAPSHOT_ENV, None)
    _reset_prefix_memo()
    fallback_runner = SweepRunner(jobs=1, root_seed=ROOT_SEED, cache=None)
    fallback = fallback_runner.run(fallback_cells)
    assert fallback == fallback_clean, "cold fallback must match cold serial"
    assert all(r.ok for r in fallback), "cold fallback must not error"
    assert fallback_runner.last_stats["snapshot_stores"] == 0

    lines = [
        f"prefix chaos: {len(cells)} warm-start cells, 1 shared prefix, "
        "2 loopback TCP workers",
        f"fault: crash@{cells[0].key} during the PREFIX stage (attempt 1)",
        f"recovery: workers_lost={stats['workers_lost']} "
        f"retries={stats['retries']} prefix_groups={stats['prefix_groups']}",
        f"results: {len(results)}/{len(cells)} bit-identical to cold serial "
        f"(REPRO_SNAPSHOT=0); crashed worker exited {CRASH_EXIT_CODE}",
        f"cold fallback: {len(fallback)} cells with an unsnapshotable "
        "prefix completed, 0 snapshot stores",
    ]
    text = "\n".join(lines) + "\n"
    print(text)
    publish("chaos_prefix", text, data={
        "cells": len(cells),
        "warm_cycles": warm_cycles,
        "workers_lost": stats["workers_lost"],
        "retries": stats["retries"],
        "prefix_groups": stats["prefix_groups"],
        "results_equal": True,
        "fallback_cells": len(fallback),
        "fallback_equal": True,
        "crash_exit_code": CRASH_EXIT_CODE,
    })
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny horizon for CI")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker count for the chaos run (default 2)")
    parser.add_argument("--horizon", type=float, default=20.0,
                        help="simulated seconds per epoch cell")
    parser.add_argument("--fleet", action="store_true",
                        help="run the TCP fleet chaos tier (two loopback "
                             "workers, one killed mid-sweep) instead of "
                             "the pool tier")
    parser.add_argument("--prefix", action="store_true",
                        help="run the prefix chaos tier (warm-start grid, "
                             "worker killed during the shared prefix stage) "
                             "instead of the pool tier")
    parser.add_argument("--multi-runner", action="store_true",
                        help="run the cooperative chaos tier (two runner "
                             "processes share one sweep via journal leases; "
                             "one is SIGKILLed mid-cell) instead of the "
                             "pool tier")
    # Hidden plumbing for the multi-runner tier's child processes.
    parser.add_argument("--coop-child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--journal", help=argparse.SUPPRESS)
    parser.add_argument("--ttl", type=float, default=1.5,
                        help=argparse.SUPPRESS)
    parser.add_argument("--tag", default="runner", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    horizon = 3.0 if args.smoke else args.horizon
    if args.coop_child:
        return run_coop_child(args)
    if args.multi_runner:
        return run_multi_runner(args.smoke, args.horizon)
    if args.fleet:
        return run_fleet(horizon)
    if args.prefix:
        return run_prefix_tier(args.smoke)
    cells = sweep_jobs(horizon)
    assert len(cells) > max(CRASH_CELL, HANG_CELL, ERROR_CELL)

    clean_runner = SweepRunner(jobs=1, root_seed=ROOT_SEED, cache=None)
    clean = clean_runner.run(cells)
    clean_by_key = {r.key: r for r in clean}
    max_cell_s = max(r.duration_s for r in clean)
    # Calibrate the deadline off the measured cells so a slow CI host
    # cannot produce spurious timeouts, and keep the injected hang just
    # past it so the timeout path always fires without stalling exit.
    timeout_s = max(3.0, 6.0 * max_cell_s)
    hang_s = timeout_s + 2.0

    plan = FaultPlan.of(
        Fault("crash", CRASH_CELL, attempts=(1,)),
        Fault("hang", HANG_CELL, attempts=(1,), hang_s=hang_s),
        Fault("error", ERROR_CELL, attempts=None),
    )
    chaos_runner = SweepRunner(
        jobs=args.jobs, root_seed=ROOT_SEED, cache=None,
        policy="degrade",
        retry=RetryPolicy(max_attempts=3, backoff_base_s=0.05,
                          timeout_s=timeout_s),
        fault_plan=plan,
    )
    results = chaos_runner.run(cells)
    stats = chaos_runner.last_stats

    assert len(results) == len(cells), "chaos sweep must complete every cell"
    failed = [r for r in results if not r.ok]
    expected_failed = [cells[ERROR_CELL].key]
    assert [r.key for r in failed] == expected_failed, (
        f"failure manifest {stats['failed']} != injected {expected_failed}"
    )
    survivors = [r for r in results if r.ok]
    assert all(r == clean_by_key[r.key] for r in survivors), (
        "surviving chaos results must be bit-identical to the clean serial run"
    )
    pool_ran = stats["mode"] == "parallel"
    if pool_ran:
        assert stats["pool_breaks"] >= 1, "crash fault must break the pool"
        assert stats["timeouts"] >= 1, "hang fault must trip the timeout"
    assert stats["retries"] >= 2, "crash + hang cells must be retried"

    lines = [
        f"chaos grid: {len(cells)} epoch cells, horizon {horizon:.0f}s, "
        f"{args.jobs} workers ({stats['mode']})",
        f"faults: crash@{cells[CRASH_CELL].key} (attempt 1), "
        f"hang@{cells[HANG_CELL].key} ({hang_s:.1f}s vs {timeout_s:.1f}s "
        f"timeout), error@{cells[ERROR_CELL].key} (permanent)",
        f"recovery: retries={stats['retries']} timeouts={stats['timeouts']} "
        f"pool_breaks={stats['pool_breaks']}",
        f"failure manifest: {stats['failed']} (expected exactly the "
        "permanent fault)",
        f"survivors: {len(survivors)}/{len(cells)} bit-identical to clean "
        "serial run",
    ]
    text = "\n".join(lines) + "\n"
    print(text)
    publish("chaos_sweep", text, data={
        "mode": "smoke" if args.smoke else "full",
        "cells": len(cells),
        "horizon_s": horizon,
        "workers": args.jobs,
        "parallel_mode": stats["mode"],
        "timeout_s": round(timeout_s, 3),
        "retries": stats["retries"],
        "timeouts": stats["timeouts"],
        "pool_breaks": stats["pool_breaks"],
        "failed": stats["failed"],
        "survivors_equal": True,
    })
    return 0


def test_chaos_smoke():
    """Pytest entry: injected crash/hang/error sweep, degrade semantics."""
    assert main(["--smoke"]) == 0


def test_fleet_chaos_smoke():
    """Pytest entry: TCP fleet sweep with a worker killed mid-run."""
    assert main(["--smoke", "--fleet"]) == 0


def test_prefix_chaos_smoke():
    """Pytest entry: warm-start sweep with a worker killed mid-prefix."""
    assert main(["--smoke", "--prefix"]) == 0


def test_multi_runner_chaos_smoke():
    """Pytest entry: two cooperating runner processes, one SIGKILLed
    mid-cell; the survivor drains the sweep bit-identically."""
    assert main(["--smoke", "--multi-runner"]) == 0


if __name__ == "__main__":
    sys.exit(main())
