"""Ablation — the cost of "just refresh faster" (Section 2.1).

The paper's argument against refresh-rate scaling as a rowhammer defense:
protecting its module needs a ~15 ms refresh period, "over a 4x increase
in refresh power and throughput overhead".  This bench sweeps the refresh
factor, reporting refresh power, throughput loss, and whether the
double-sided attack still flips — then contrasts ANVIL's selective-
refresh energy, which achieves the protection at numerically negligible
refresh power.

Each refresh factor plus the ANVIL contrast cell is one sweep-runner job;
all attack cells share a derived seed so the flip/no-flip boundary is a
paired comparison across refresh rates.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.dram import DramPowerModel
from repro.dram.config import DramTimings
from repro.presets import small_machine
from repro.attacks import DoubleSidedClflushAttack
from repro.core import AnvilConfig, AnvilModule
from repro.runner import Job, derive_seed
from repro.units import MB

from _common import publish, sweep_runner

FACTORS = (1.0, 2.0, 4.0, 64.0 / 15.0)
ROOT_SEED = 41


def factor_cell(factor: float, seed: int) -> dict:
    model = DramPowerModel()
    timings = DramTimings().scaled_refresh(factor)
    # Does a fast attack still flip at this refresh rate?  (Scaled
    # module: flips need 30K units, ~4.5 ms of hammering.)
    machine = small_machine(
        threshold_min=30_000, refresh_scale=factor, seed=seed
    )
    attack = DoubleSidedClflushAttack(buffer_bytes=16 * MB, seed=seed)
    result = attack.run(machine, max_ms=40)
    return {
        "factor": factor,
        "retention_ms": timings.retention_ms,
        "power_w": model.refresh_power_w(timings),
        "loss": timings.trfc_ns / timings.trefi_ns,
        "flipped": result.flipped,
    }


def anvil_cell(seed: int) -> dict:
    """ANVIL achieves the protection with selective refreshes instead."""
    model = DramPowerModel()
    machine = small_machine(threshold_min=30_000, seed=seed)
    anvil = AnvilModule(machine, AnvilConfig(
        llc_miss_threshold=3_300, tc_ms=1.0, ts_ms=1.0,
        sampling_rate_hz=50_000, assumed_flip_accesses=30_000,
    ))
    anvil.install()
    attack = DoubleSidedClflushAttack(buffer_bytes=16 * MB, seed=seed)
    result = attack.run(machine, max_ms=40, stop_on_flip=False)
    elapsed_s = machine.clock.s_from_cycles(machine.cycles)
    return {
        "flips": result.flips,
        "refresh_w": model.selective_refresh_power_w(
            anvil.stats.selective_refreshes / elapsed_s
        ),
    }


def power_jobs() -> list[Job]:
    seed = derive_seed(ROOT_SEED, "refresh/attack")
    jobs = [
        Job.of(factor_cell, key=f"refresh/{factor}", seed=seed, factor=factor)
        for factor in FACTORS
    ]
    jobs.append(Job.of(anvil_cell, key="refresh/anvil", seed=seed))
    return jobs


def run_sweep(jobs: int | None = None) -> dict:
    results = {
        r.key: r.value for r in sweep_runner(ROOT_SEED, jobs=jobs).run(power_jobs())
    }
    rows = []
    for factor in FACTORS:
        cell = results[f"refresh/{factor}"]
        rows.append([
            f"x{factor:.2f}",
            f"{cell['retention_ms']:.1f} ms",
            f"{cell['power_w'] * 1e3:.1f} mW",
            f"{cell['loss']:.1%}",
            "FLIPS" if cell["flipped"] else "protected",
        ])
    anvil = results["refresh/anvil"]
    return {
        "rows": rows,
        "anvil_flips": anvil["flips"],
        "anvil_refresh_w": anvil["refresh_w"],
        "base_refresh_w": DramPowerModel().refresh_power_w(DramTimings()),
    }


def test_refresh_power_ablation(benchmark):
    data = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    text = format_table(
        ["refresh rate", "retention", "refresh power", "throughput loss",
         "fast attack"],
        data["rows"],
        title="Ablation - the cost of refresh-rate scaling (Section 2.1)",
    )
    text += (
        f"\nANVIL under the same attack: {data['anvil_flips']} flips, "
        f"selective-refresh power {data['anvil_refresh_w'] * 1e6:.2f} uW "
        f"(auto-refresh baseline: {data['base_refresh_w'] * 1e3:.1f} mW)\n"
    )
    publish("ablation_refresh_power", text)
    # x1 and x2 flip; the paper's ~x4.27 point costs >4x refresh power.
    assert data["rows"][0][4] == "FLIPS"
    assert data["rows"][1][4] == "FLIPS"
    last = data["rows"][-1]
    assert float(last[2].split()[0]) > 4 * float(data["rows"][0][2].split()[0]) * 0.99
    # ANVIL: protection at negligible refresh power — well under 1% of
    # the auto-refresh baseline even while actively under attack (and the
    # scaled demo detector refreshes 6x as often as the paper's 6 ms
    # windows would).
    assert data["anvil_flips"] == 0
    assert data["anvil_refresh_w"] < data["base_refresh_w"] / 100
