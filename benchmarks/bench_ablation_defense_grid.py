"""Ablation — the full defense grid (Sections 2 and 5).

Every mitigation the paper discusses, against both double-sided attacks,
on the scaled test module.  The deployed software mitigations must each
fail somewhere; PARA/TRR/ARMOR and ANVIL must stop everything they see.

The 16 (defense x attack) cells are independent sweep-runner jobs, so
``--jobs N`` runs the grid on a process pool with identical verdicts.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.attacks import ClflushFreeAttack, DoubleSidedClflushAttack
from repro.core import AnvilConfig, AnvilModule
from repro.defenses import Armor, Para, TargetedRowRefresh
from repro.errors import ClflushRestrictedError, PagemapRestrictedError
from repro.presets import small_machine
from repro.runner import Job
from repro.units import MB

from _common import publish, sweep_runner

THRESHOLD = 30_000
BUF = 16 * MB
ROOT_SEED = 37
ANVIL_CONFIG = AnvilConfig(
    llc_miss_threshold=3_300, tc_ms=1.0, ts_ms=1.0,
    sampling_rate_hz=50_000, assumed_flip_accesses=30_000,
)

GRID = (
    "none", "double-refresh", "clflush-ban", "pagemap-restricted",
    "para", "trr", "armor", "anvil",
)

ATTACKS = {
    "clflush": DoubleSidedClflushAttack,
    "clflush-free": ClflushFreeAttack,
}


def run_cell(defense: str, attack: str, seed: int) -> str:
    kwargs = {"threshold_min": THRESHOLD, "seed": seed}
    if defense == "double-refresh":
        kwargs["refresh_scale"] = 2.0
    elif defense == "clflush-ban":
        kwargs["clflush_allowed"] = False
    elif defense == "pagemap-restricted":
        kwargs["pagemap_restricted"] = True
    machine = small_machine(**kwargs)
    if defense == "para":
        Para(probability=0.002).install(machine)
    elif defense == "trr":
        TargetedRowRefresh(activation_threshold=1_000).install(machine)
    elif defense == "armor":
        Armor(hot_threshold=1_000).install(machine)
    anvil = None
    if defense == "anvil":
        anvil = AnvilModule(machine, ANVIL_CONFIG)
        anvil.install()
    attack_obj = ATTACKS[attack](buffer_bytes=BUF, seed=seed)
    try:
        result = attack_obj.run(machine, max_ms=20, stop_on_flip=(anvil is None))
    except ClflushRestrictedError:
        return "blocked"
    except PagemapRestrictedError:
        return "blocked"
    return "FLIPS" if result.flips else "protected"


def grid_jobs() -> list[Job]:
    return [
        Job.of(run_cell, key=f"grid/{defense}/{attack}",
               defense=defense, attack=attack)
        for defense in GRID
        for attack in ATTACKS
    ]


def run_grid(jobs: int | None = None) -> dict[tuple[str, str], str]:
    results = sweep_runner(ROOT_SEED, jobs=jobs).run(grid_jobs())
    cells = {}
    for job_result in results:
        _, defense, attack = job_result.key.split("/")
        cells[(defense, attack)] = job_result.value
    return cells


def test_defense_grid(benchmark):
    cells = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = [
        [defense, cells[(defense, "clflush")], cells[(defense, "clflush-free")]]
        for defense in GRID
    ]
    text = format_table(
        ["defense", "CLFLUSH double-sided", "CLFLUSH-free"],
        rows,
        title="Ablation - defense grid (scaled module, 30K-unit weak cells)",
    )
    publish("ablation_defense_grid", text)
    assert cells[("none", "clflush")] == "FLIPS"
    assert cells[("none", "clflush-free")] == "FLIPS"
    # Deployed mitigations fail (the paper's Section 2):
    assert cells[("double-refresh", "clflush")] == "FLIPS"
    assert cells[("clflush-ban", "clflush")] == "blocked"
    assert cells[("clflush-ban", "clflush-free")] == "FLIPS"
    # Hardware proposals and ANVIL hold:
    for defense in ("para", "trr", "armor", "anvil"):
        assert cells[(defense, "clflush")] == "protected"
        assert cells[(defense, "clflush-free")] == "protected"
