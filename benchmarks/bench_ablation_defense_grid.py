"""Ablation — the full defense grid (Sections 2 and 5).

Every mitigation the paper discusses, against both double-sided attacks,
on the scaled test module.  The deployed software mitigations must each
fail somewhere; PARA/TRR/ARMOR and ANVIL must stop everything they see.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.attacks import ClflushFreeAttack, DoubleSidedClflushAttack
from repro.core import AnvilConfig, AnvilModule
from repro.defenses import Armor, Para, TargetedRowRefresh
from repro.errors import ClflushRestrictedError, PagemapRestrictedError
from repro.presets import small_machine
from repro.units import MB

from _common import publish

THRESHOLD = 30_000
BUF = 16 * MB
ANVIL_CONFIG = AnvilConfig(
    llc_miss_threshold=3_300, tc_ms=1.0, ts_ms=1.0,
    sampling_rate_hz=50_000, assumed_flip_accesses=30_000,
)

GRID = (
    "none", "double-refresh", "clflush-ban", "pagemap-restricted",
    "para", "trr", "armor", "anvil",
)


def run_cell(defense: str, attack_cls) -> str:
    kwargs = {"threshold_min": THRESHOLD}
    if defense == "double-refresh":
        kwargs["refresh_scale"] = 2.0
    elif defense == "clflush-ban":
        kwargs["clflush_allowed"] = False
    elif defense == "pagemap-restricted":
        kwargs["pagemap_restricted"] = True
    machine = small_machine(**kwargs)
    if defense == "para":
        Para(probability=0.002).install(machine)
    elif defense == "trr":
        TargetedRowRefresh(activation_threshold=1_000).install(machine)
    elif defense == "armor":
        Armor(hot_threshold=1_000).install(machine)
    anvil = None
    if defense == "anvil":
        anvil = AnvilModule(machine, ANVIL_CONFIG)
        anvil.install()
    attack = attack_cls(buffer_bytes=BUF)
    try:
        result = attack.run(machine, max_ms=20, stop_on_flip=(anvil is None))
    except ClflushRestrictedError:
        return "blocked"
    except PagemapRestrictedError:
        return "blocked"
    return "FLIPS" if result.flips else "protected"


def run_grid() -> dict[tuple[str, str], str]:
    cells = {}
    for defense in GRID:
        for label, attack_cls in (
            ("clflush", DoubleSidedClflushAttack),
            ("clflush-free", ClflushFreeAttack),
        ):
            cells[(defense, label)] = run_cell(defense, attack_cls)
    return cells


def test_defense_grid(benchmark):
    cells = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = [
        [defense, cells[(defense, "clflush")], cells[(defense, "clflush-free")]]
        for defense in GRID
    ]
    text = format_table(
        ["defense", "CLFLUSH double-sided", "CLFLUSH-free"],
        rows,
        title="Ablation - defense grid (scaled module, 30K-unit weak cells)",
    )
    publish("ablation_defense_grid", text)
    assert cells[("none", "clflush")] == "FLIPS"
    assert cells[("none", "clflush-free")] == "FLIPS"
    # Deployed mitigations fail (the paper's Section 2):
    assert cells[("double-refresh", "clflush")] == "FLIPS"
    assert cells[("clflush-ban", "clflush")] == "blocked"
    assert cells[("clflush-ban", "clflush-free")] == "FLIPS"
    # Hardware proposals and ANVIL hold:
    for defense in ("para", "trr", "armor", "anvil"):
        assert cells[(defense, "clflush")] == "protected"
        assert cells[(defense, "clflush-free")] == "protected"
